// Package tools pins the versions of the external analysis tools the
// lint and vulncheck Makefile targets invoke.
//
// The conventional tools.go pattern blank-imports each tool so go.mod
// records its version, but this repository builds offline with an
// empty module graph, so a tool requirement in go.mod would break
// `go build ./...`. Instead the tools run through the module-free
//
//	go run <import-path>@<version>
//
// form, and this file is the single source of truth for <version>:
// the Makefile extracts the constants below with sed, so bumping a
// pin is a one-line change that code review sees. On an offline
// builder `go run pkg@version` cannot download the tool; the Makefile
// probes for availability first and skips (staticcheck) or reports
// without failing (govulncheck) when the proxy is unreachable —
// ldplint and go vet, which are fully in-tree, still run and still
// gate.
package tools

const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2025.1.1"
	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.4"
)
