package ldprecover_test

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"ldprecover"
	"ldprecover/internal/experiment"
	"ldprecover/internal/ldp"
	"ldprecover/internal/persist"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§VI–§VII) at bench scale (2% of the paper's users, 2
// trials) so `go test -bench=.` finishes in minutes; cmd/experiments runs
// the same generators at paper scale. Each benchmark reports the headline
// metric of its experiment via b.ReportMetric so regressions in recovery
// quality — not just speed — are visible in benchmark diffs.

// benchConfig is the reduced-scale configuration shared by all paper
// benchmarks.
func benchConfig() experiment.Config {
	return experiment.Config{Scale: 0.02, Trials: 2, Seed: 1}
}

// runFigure executes a registered experiment generator b.N times.
func runFigure(b *testing.B, id string) {
	b.Helper()
	gen := experiment.Registry[id]
	if gen == nil {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := gen(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkFigure3_MSEByAttackAndMethod regenerates Fig. 3 (both
// datasets, 7 attack-protocol combos, 4 methods).
func BenchmarkFigure3_MSEByAttackAndMethod(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFigure4_FrequencyGain regenerates Fig. 4 (FG under MGA).
func BenchmarkFigure4_FrequencyGain(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFigure5_SweepsIPUMS regenerates Fig. 5 (beta/eps/eta sweeps).
func BenchmarkFigure5_SweepsIPUMS(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFigure6_SweepsFire regenerates Fig. 6.
func BenchmarkFigure6_SweepsFire(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFigure7_MaliciousEstimation regenerates Fig. 7.
func BenchmarkFigure7_MaliciousEstimation(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkTableI_UnpoisonedRecovery regenerates Table I.
func BenchmarkTableI_UnpoisonedRecovery(b *testing.B) { runFigure(b, "table1") }

// BenchmarkFigure8_MGAvsIPA regenerates Fig. 8.
func BenchmarkFigure8_MGAvsIPA(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFigure9_KMeansDefense regenerates Fig. 9.
func BenchmarkFigure9_KMeansDefense(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFigure10_MultiAttacker regenerates Fig. 10.
func BenchmarkFigure10_MultiAttacker(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkAblationRefiner compares Algorithm 1 vs exact projection.
func BenchmarkAblationRefiner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationRefiner(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimFidelity compares count- vs report-level paths.
func BenchmarkAblationSimFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationSimFidelity(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDetectionRule compares any- vs all-target detection.
func BenchmarkAblationDetectionRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationDetectionRule(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryQuality_MGA_OUE tracks the paper's headline numbers
// (MSE before/after, FG suppression) as benchmark metrics on a fixed
// MGA-OUE scenario, so quality regressions surface in benchmark diffs.
func BenchmarkRecoveryQuality_MGA_OUE(b *testing.B) {
	ds, err := ldprecover.SyntheticIPUMS().Scaled(0.05)
	if err != nil {
		b.Fatal(err)
	}
	var m *experiment.Metrics
	for i := 0; i < b.N; i++ {
		m, err = experiment.Run(experiment.Scenario{
			Dataset:  ds,
			Protocol: experiment.OUE,
			Attack:   experiment.MGAAttack,
			Trials:   3,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if m != nil {
		b.ReportMetric(m.MSEBefore, "mse-before")
		b.ReportMetric(m.MSEAfter, "mse-after")
		b.ReportMetric(m.MSEStar, "mse-star")
		b.ReportMetric(m.FGBefore, "fg-before")
		b.ReportMetric(m.FGAfter, "fg-after")
	}
}

// BenchmarkRecoverCore measures the recovery algorithm itself (no
// simulation): d=1024 poisoned vector through learning + estimation +
// Algorithm 1.
func BenchmarkRecoverCore(b *testing.B) {
	const d = 1024
	proto, err := ldprecover.NewOUE(d, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	r := ldprecover.NewRand(9)
	poisoned := make([]float64, d)
	for v := range poisoned {
		poisoned[v] = 2*(rFloat(r))*0.01 - 0.002
	}
	poisoned[3] = 0.4 // a spike
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func rFloat(r *ldprecover.Rand) float64 { return r.Float64() }

// BenchmarkEndToEndPipeline_OLH measures the full report-level pipeline
// (perturb, attack, aggregate, recover) on OLH at small scale, in three
// variants:
//
//   - itemwise ("before"): the seed implementation's cost model —
//     per-report perturbation re-deriving the perturbation probability
//     (two math.Exp per report), one boxed report allocation per user,
//     and one full, unamortized hash evaluation per (report, item) pair
//     during aggregation (Supports premixes per call, matching the
//     retired single-stage hash's per-pair cost while keeping the
//     statistical workload identical across the three variants);
//   - batched ("after", single core): arena-backed PerturbAllInto plus
//     the premixed item-major batch aggregation, allocating nothing per
//     report in steady state;
//   - sharded ("after", concurrent): the same fast path with ingest
//     fanned out over GOMAXPROCS goroutines through ShardedAccumulator,
//     the production report-level configuration.
func BenchmarkEndToEndPipeline_OLH(b *testing.B) {
	const d, eps = 102, 0.5
	ds, err := ldprecover.SyntheticIPUMS().Scaled(0.01)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := ldprecover.NewOLH(d, eps)
	if err != nil {
		b.Fatal(err)
	}
	// craft and finish return errors so each sub-benchmark reports
	// failures on its own *testing.B (Fatal on the parent from a
	// sub-benchmark goroutine is not allowed).
	craft := func(r *ldprecover.Rand, m int64) ([]ldprecover.Report, error) {
		targets, err := ldprecover.RandomTargets(r, d, 10)
		if err != nil {
			return nil, err
		}
		mga, err := ldprecover.NewMGA(targets)
		if err != nil {
			return nil, err
		}
		return mga.CraftReports(r, proto, m)
	}
	finish := func(all []ldprecover.Report, counts []int64) error {
		poisoned, err := ldprecover.Unbias(counts, int64(len(all)), proto.Params())
		if err != nil {
			return err
		}
		_, err = ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
		return err
	}

	b.Run("itemwise", func(b *testing.B) {
		g := proto.G()
		for i := 0; i < b.N; i++ {
			r := ldprecover.NewRand(uint64(i) + 1)
			var reports []ldprecover.Report
			for v, c := range ds.Counts {
				for k := int64(0); k < c; k++ {
					// Seed-faithful OLH perturbation: probability derived
					// from scratch per report, value-boxed report.
					seed := r.Uint64()
					h := proto.Hash(seed, v)
					value := h
					pPerturb := math.Exp(eps) / (math.Exp(eps) + float64(g) - 1)
					if !r.Bernoulli(pPerturb) {
						value = r.Intn(g - 1)
						if value >= h {
							value++
						}
					}
					reports = append(reports, ldp.OLHReport{Seed: seed, Value: value, G: g})
				}
			}
			malicious, err := craft(r, int64(len(reports)/19))
			if err != nil {
				b.Fatal(err)
			}
			all := append(reports, malicious...)
			counts := make([]int64, d)
			for _, rep := range all {
				// Seed-faithful aggregation: one full hash (premix
				// included — Supports cannot amortize it) per
				// (report, item) pair.
				for v := 0; v < d; v++ {
					if rep.Supports(v) {
						counts[v]++
					}
				}
			}
			if err := finish(all, counts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batched", func(b *testing.B) {
		scratch := &ldprecover.PerturbScratch{}
		for i := 0; i < b.N; i++ {
			r := ldprecover.NewRand(uint64(i) + 1)
			reports, err := ldprecover.PerturbAllInto(proto, r, ds.Counts, scratch)
			if err != nil {
				b.Fatal(err)
			}
			malicious, err := craft(r, int64(len(reports)/19))
			if err != nil {
				b.Fatal(err)
			}
			all := append(reports, malicious...)
			acc, err := ldprecover.NewAccumulator(d)
			if err != nil {
				b.Fatal(err)
			}
			if err := acc.AddBatch(all); err != nil {
				b.Fatal(err)
			}
			if err := finish(all, acc.Counts()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("sharded", func(b *testing.B) {
		scratch := &ldprecover.PerturbScratch{}
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			r := ldprecover.NewRand(uint64(i) + 1)
			reports, err := ldprecover.PerturbAllInto(proto, r, ds.Counts, scratch)
			if err != nil {
				b.Fatal(err)
			}
			malicious, err := craft(r, int64(len(reports)/19))
			if err != nil {
				b.Fatal(err)
			}
			all := append(reports, malicious...)
			sa, err := ldprecover.NewShardedAccumulator(d, 0)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			chunk := (len(all) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(all) {
					hi = len(all)
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(part []ldprecover.Report) {
					defer wg.Done()
					if err := sa.AddBatch(part); err != nil {
						b.Error(err)
					}
				}(all[lo:hi])
			}
			wg.Wait()
			if err := finish(all, sa.Counts()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionHarmony regenerates the Harmony mean-recovery table.
func BenchmarkExtensionHarmony(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ExtensionHarmony(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionKeyValue regenerates the key-value recovery table.
func BenchmarkExtensionKeyValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ExtensionKeyValue(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheoryValidation regenerates the theory-validation table.
func BenchmarkTheoryValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TheoryValidation(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-protocol perturbation micro-benchmarks (one user each).
func benchPerturb(b *testing.B, mk func() (ldprecover.Protocol, error)) {
	b.Helper()
	proto, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	r := ldprecover.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Perturb(r, i%102); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerturbGRR(b *testing.B) {
	benchPerturb(b, func() (ldprecover.Protocol, error) { return ldprecover.NewGRR(102, 0.5) })
}

func BenchmarkPerturbOUE(b *testing.B) {
	benchPerturb(b, func() (ldprecover.Protocol, error) { return ldprecover.NewOUE(102, 0.5) })
}

func BenchmarkPerturbOLH(b *testing.B) {
	benchPerturb(b, func() (ldprecover.Protocol, error) { return ldprecover.NewOLH(102, 0.5) })
}

// Ingest workload shared by the sharded/batch benchmarks: a 2^20-user
// OUE population over a 128-item domain, generated once per test binary.
const (
	ingestDomain = 128
	ingestUsers  = 1 << 20
)

var ingestSetup struct {
	once       sync.Once
	proto      ldprecover.Protocol
	trueCounts []int64
	reports    []ldprecover.Report
	err        error
}

func ingestWorkload(b *testing.B) (ldprecover.Protocol, []int64, []ldprecover.Report) {
	b.Helper()
	s := &ingestSetup
	s.once.Do(func() {
		s.proto, s.err = ldprecover.NewOUE(ingestDomain, 0.5)
		if s.err != nil {
			return
		}
		s.trueCounts = make([]int64, ingestDomain)
		var left int64 = ingestUsers
		for v := 0; v < ingestDomain-1; v++ {
			c := left / 3
			s.trueCounts[v] = c
			left -= c
		}
		s.trueCounts[ingestDomain-1] = left
		s.reports, s.err = ldprecover.PerturbAll(s.proto, ldprecover.NewRand(77), s.trueCounts)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.proto, s.trueCounts, s.reports
}

// BenchmarkShardedIngest compares the server-side aggregation paths on
// the same >=10^6-report workload:
//
//   - sequential-reports: the report-level baseline ("before"), one
//     Accumulator fed one report at a time through the interface;
//   - batched-reports: the same single core fed through
//     Accumulator.AddBatch's bit-plane fast path ("after" — the
//     report-level speedup the batched ingest contributes on its own);
//   - sharded-reports: concurrent chunked ingest through
//     ShardedAccumulator.AddBatch from GOMAXPROCS goroutines;
//   - batch-counts: the batch perturbation fast path, which never
//     materializes reports at all (population -> aggregate counts).
func BenchmarkShardedIngest(b *testing.B) {
	proto, trueCounts, reports := ingestWorkload(b)

	b.Run("sequential-reports", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc, err := ldprecover.NewAccumulator(ingestDomain)
			if err != nil {
				b.Fatal(err)
			}
			for _, rep := range reports {
				if err := acc.Add(rep); err != nil {
					b.Fatal(err)
				}
			}
			if acc.Total() != int64(len(reports)) {
				b.Fatal("lost reports")
			}
		}
	})

	b.Run("batched-reports", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc, err := ldprecover.NewAccumulator(ingestDomain)
			if err != nil {
				b.Fatal(err)
			}
			if err := acc.AddBatch(reports); err != nil {
				b.Fatal(err)
			}
			if acc.Total() != int64(len(reports)) {
				b.Fatal("lost reports")
			}
		}
	})

	b.Run("sharded-reports", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		const batchSize = 4096
		for i := 0; i < b.N; i++ {
			sa, err := ldprecover.NewShardedAccumulator(ingestDomain, 0)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			chunk := (len(reports) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(reports) {
					hi = len(reports)
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(part []ldprecover.Report) {
					defer wg.Done()
					for len(part) > 0 {
						n := batchSize
						if n > len(part) {
							n = len(part)
						}
						if err := sa.AddBatch(part[:n]); err != nil {
							b.Error(err)
							return
						}
						part = part[n:]
					}
				}(reports[lo:hi])
			}
			wg.Wait()
			if sa.Snapshot().Total() != int64(len(reports)) {
				b.Fatal("lost reports")
			}
		}
	})

	b.Run("batch-counts", func(b *testing.B) {
		var n int64
		for _, c := range trueCounts {
			n += c
		}
		for i := 0; i < b.N; i++ {
			r := ldprecover.NewRand(uint64(i) + 1)
			counts, err := ldprecover.BatchSimulate(proto, r, trueCounts, 0)
			if err != nil {
				b.Fatal(err)
			}
			sa, err := ldprecover.NewShardedAccumulator(ingestDomain, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := sa.AddCounts(counts, n); err != nil {
				b.Fatal(err)
			}
			if sa.Total() != n {
				b.Fatal("lost reports")
			}
		}
	})
}

// BenchmarkBatchSimulateWorkers measures the batch perturbation fast
// path's scaling across worker counts on the ingest population.
func BenchmarkBatchSimulateWorkers(b *testing.B) {
	proto, trueCounts, _ := ingestWorkload(b)
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ldprecover.BatchSimulate(proto, ldprecover.NewRand(uint64(i)+1), trueCounts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip measures report serialization.
func BenchmarkWireRoundTrip(b *testing.B) {
	proto, err := ldprecover.NewOUE(490, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	r := ldprecover.NewRand(2)
	rep, err := proto.Perturb(r, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := ldprecover.MarshalReport(rep)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ldprecover.UnmarshalReport(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedReadPath pins the cached merged-snapshot read path:
//
//   - cached: repeated Estimate calls on a quiet accumulator — only the
//     first read after an ingest merges the shards, the rest hit the
//     cache (the fix for the old full-merge-per-read cost);
//   - invalidated: an ingest lands between reads, so every Counts call
//     pays the O(shards·d) re-merge — the old behaviour's cost on every
//     read, quiet or not.
//
// The shard count is fixed at a serving-box 32 rather than this machine's
// GOMAXPROCS so the merge the cache elides is the one a loaded server
// actually pays.
func BenchmarkShardedReadPath(b *testing.B) {
	const d, shards = 4096, 32
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = int64(50 + v%97)
	}
	newLoaded := func(b *testing.B) *ldprecover.ShardedAccumulator {
		b.Helper()
		sa, err := ldprecover.NewShardedAccumulator(d, shards)
		if err != nil {
			b.Fatal(err)
		}
		if err := sa.AddCounts(counts, 1<<20); err != nil {
			b.Fatal(err)
		}
		return sa
	}

	b.Run("cached", func(b *testing.B) {
		sa := newLoaded(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := sa.Counts(); len(got) != d {
				b.Fatal("short counts")
			}
		}
	})

	b.Run("invalidated", func(b *testing.B) {
		sa := newLoaded(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sa.Add(ldp.GRRReport(i % d)); err != nil {
				b.Fatal(err)
			}
			if got := sa.Counts(); len(got) != d {
				b.Fatal("short counts")
			}
		}
	})
}

// BenchmarkSealEpoch measures the epoch-boundary primitive on a loaded
// accumulator: the per-shard swap plus the sealed merge.
func BenchmarkSealEpoch(b *testing.B) {
	const d = 4096
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = int64(50 + v%97)
	}
	sa, err := ldprecover.NewShardedAccumulator(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sa.AddCounts(counts, 1<<20); err != nil {
			b.Fatal(err)
		}
		ep := sa.SealEpoch()
		if ep.Total() != 1<<20 {
			b.Fatal("lost reports across seal")
		}
	}
}

// BenchmarkWALAppend measures the durable ingest hot path: appending a
// 256-report OUE batch frame (the serve layer's wire unit) to the
// write-ahead log, under the default fsync-every-batch policy and under
// the lazy policy that syncs only at epoch seals.
func BenchmarkWALAppend(b *testing.B) {
	const d, eps, batch = 128, 0.5, 256
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		b.Fatal(err)
	}
	r := ldprecover.NewRand(4)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = batch / d
	}
	reps, err := ldprecover.PerturbAll(proto, r, trueCounts)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := ldprecover.MarshalReportBatch(reps)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []struct {
		name  string
		every int
	}{
		{"fsync-every-batch", 1},
		{"fsync-at-seals", -1},
	} {
		b.Run(pol.name, func(b *testing.B) {
			w, err := persist.OpenWAL(filepath.Join(b.TempDir(), "wal"),
				persist.WALOptions{SyncEvery: pol.every})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			// Warm up before the clock starts: the first append pays
			// one-off costs (segment file creation, dirty-page and
			// allocator warm-up) that dwarf a steady-state append, so an
			// unwarmed run under a small -benchtime measures setup, not
			// appends — it once reported the never-fsyncing policy
			// *slower* than fsync-every-batch.
			for i := 0; i < 8; i++ {
				if _, err := w.Append(frame); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurableIngest measures report-equivalent durable ingest
// throughput — MB/s of report-level wire bytes made durable AND counted
// — for the three ingest lanes at equal user volume (4096 users per
// op, as sixteen 256-report OUE frames):
//
//	report-level   decode each frame into []Report, then AppendBatch
//	               (frame to the WAL, reports to the accumulator)
//	zero-copy      AppendBatchFrame validates, logs and counts the wire
//	               bytes in place; no []Report ever exists
//	partial-tally  the same 4096 users pre-aggregated at an edge
//	               Collector into ONE partial-tally frame (DESIGN.md §8)
//
// Every lane reports SetBytes of the report lanes' total frame bytes,
// so the MB/s column answers "how fast does this lane move the same
// users durably" — the partial lane's frame is ~250x smaller, which is
// the point. The WAL syncs lazily (at epoch seals), so the comparison
// is CPU + write volume, not sixteen fsyncs against one; `make
// bench-ingest` regenerates these rows in BENCH_report.json and CI
// gates on partial-tally ≥ 5x report-level.
func BenchmarkDurableIngest(b *testing.B) {
	const d, eps = 128, 0.5
	const perFrame, numFrames = 256, 16
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		b.Fatal(err)
	}
	r := ldprecover.NewRand(7)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = perFrame / d
	}
	var frames [][]byte
	var decoded [][]ldprecover.Report
	var wireBytes int64
	col, err := ldp.NewCollector("bench-edge", d)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < numFrames; i++ {
		reps, err := ldprecover.PerturbAll(proto, r, trueCounts)
		if err != nil {
			b.Fatal(err)
		}
		frame, err := ldprecover.MarshalReportBatch(reps)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, frame)
		decoded = append(decoded, reps)
		wireBytes += int64(len(frame))
		if err := col.AddBatch(reps); err != nil {
			b.Fatal(err)
		}
	}
	pframe, err := col.Flush(0)
	if err != nil {
		b.Fatal(err)
	}
	partial, err := ldprecover.UnmarshalPartial(pframe)
	if err != nil {
		b.Fatal(err)
	}

	newStore := func(b *testing.B) *ldprecover.DurableStore {
		b.Helper()
		mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{
			Params: proto.Params(), TargetK: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		store, err := ldprecover.OpenDurableStore(b.TempDir(), mgr,
			ldprecover.DurableOptions{SyncEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { store.Close() })
		return store
	}

	b.Run("report-level", func(b *testing.B) {
		store := newStore(b)
		b.SetBytes(wireBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, frame := range frames {
				// The lane includes the decode — that is what the
				// pre-zero-copy serve path paid per request.
				reps, err := ldprecover.UnmarshalReportBatch(frame)
				if err != nil {
					b.Fatal(err)
				}
				if err := store.AppendBatch(frame, reps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("zero-copy", func(b *testing.B) {
		store := newStore(b)
		b.SetBytes(wireBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, frame := range frames {
				if err := store.AppendBatchFrame(frame); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("partial-tally", func(b *testing.B) {
		store := newStore(b)
		b.SetBytes(wireBytes) // report-equivalent: the same users moved
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := store.AppendPartial(pframe, partial); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Sanity outside the timed regions: all three lanes must count the
	// same users per op (the equivalence the tests pin bit-for-bit).
	if got, want := partial.Users, int64(numFrames*len(decoded[0])); got != want {
		b.Fatalf("partial covers %d users, lanes move %d", got, want)
	}
}

// BenchmarkSnapshotWrite measures the per-seal durability cost: encoding
// and atomically writing (temp file + fsync + rename) the full state of
// a d=4096 manager with a loaded retention ring and outlier history —
// the work a durable seal adds over an in-memory one.
func BenchmarkSnapshotWrite(b *testing.B) {
	const d = 4096
	proto, err := ldprecover.NewOUE(d, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{
		Params: proto.Params(), Window: 4, History: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = int64(200 + v%53)
	}
	for e := 0; e < 16; e++ {
		if err := mgr.AddCounts(counts, 1<<20); err != nil {
			b.Fatal(err)
		}
		if _, err := mgr.Seal(); err != nil {
			b.Fatal(err)
		}
	}
	st := mgr.SnapshotState()
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := persist.WriteSnapshot(dir, uint64(i), st); err != nil {
			b.Fatal(err)
		}
	}
}
