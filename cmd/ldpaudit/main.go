// Command ldpaudit empirically audits the repository's privacy and
// recovery claims (internal/audit; DESIGN.md §11).
//
// Privacy mode drives each protocol's real client paths — itemwise
// Perturb, the PerturbAllInto bulk arena, and the BatchPerturb
// count-level path — over neighboring inputs and certifies an empirical
// privacy budget eps_emp with exact Clopper-Pearson bounds. Recovery
// mode replays the streamed MGA scenario across an attacker-strength
// grid and bounds the violation rate of the recovery guarantees.
//
//	ldpaudit -mode privacy  -protocol all -path all -eps 1,4 -trials 200000
//	ldpaudit -mode recovery -protocol OUE -betas 0.05,0.1 -rec-runs 8
//	ldpaudit -mode all -bench | benchjson -merge -o BENCH_report.json
//
// The process exits 1 if any audited cell fails its gate
// (eps_emp <= eps + slack for privacy cells; the certified
// violation-rate bound for recovery), so CI can wire it directly.
// -bench prints Go-benchmark-formatted lines that benchjson folds into
// BENCH_report.json next to the figure benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ldprecover/internal/audit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ldpaudit: %v\n", err)
		os.Exit(1)
	}
}

// options collects the parsed flag set.
type options struct {
	mode       string
	protocols  []string
	paths      []audit.Path
	trials     int64
	epsList    []float64
	domain     int
	confidence float64
	slack      float64
	seed       uint64
	jsonOut    bool
	benchOut   bool

	betas         []float64
	recConfidence float64
	recRuns       int
	recEpochs     int
	recDomain     int
	recN          int64
}

// report is the -json document.
type report struct {
	Privacy  []audit.Result          `json:"privacy,omitempty"`
	Recovery []*audit.RecoveryResult `json:"recovery,omitempty"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("ldpaudit", flag.ContinueOnError)
	mode := fs.String("mode", "privacy", "audit mode: privacy, recovery, or all")
	protocol := fs.String("protocol", "all", "protocol to audit (GRR, OUE, SUE, OLH, or all)")
	path := fs.String("path", "all", "client path to audit (itemwise, bulk, count, or all)")
	trials := fs.Int64("trials", 200000, "reports observed per neighboring input per cell")
	eps := fs.String("eps", "1,4", "comma-separated privacy budgets to audit")
	d := fs.Int("d", 16, "item-domain size for the privacy audit")
	confidence := fs.Float64("confidence", 0.99, "Clopper-Pearson confidence level")
	slack := fs.Float64("slack", 0.05, "privacy gate allowance: pass iff eps_emp <= eps + slack")
	seed := fs.Uint64("seed", 1, "deterministic audit seed")
	jsonOut := fs.Bool("json", false, "emit the full audit document as JSON")
	benchOut := fs.Bool("bench", false, "emit Go-benchmark-formatted lines for benchjson -merge")
	betas := fs.String("betas", "0.05,0.1,0.15", "attacker-strength grid for the recovery audit")
	recConfidence := fs.Float64("rec-confidence", 0.95, "confidence of the recovery violation-rate bound (looser than the privacy level: the exact bound must clear the gate on a short grid)")
	recRuns := fs.Int("rec-runs", 8, "stream seeds per beta in the recovery audit")
	recEpochs := fs.Int("rec-epochs", 16, "stream length for the recovery audit")
	recDomain := fs.Int("rec-d", 64, "domain size for the recovery audit")
	recN := fs.Int64("rec-n", 60000, "population size for the recovery audit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	opts := options{
		mode:          *mode,
		trials:        *trials,
		domain:        *d,
		confidence:    *confidence,
		slack:         *slack,
		seed:          *seed,
		jsonOut:       *jsonOut,
		benchOut:      *benchOut,
		recConfidence: *recConfidence,
		recRuns:       *recRuns,
		recEpochs:     *recEpochs,
		recDomain:     *recDomain,
		recN:          *recN,
	}
	var err error
	if opts.protocols, err = parseProtocols(*protocol); err != nil {
		return err
	}
	if opts.paths, err = parsePaths(*path); err != nil {
		return err
	}
	if opts.epsList, err = parseFloats(*eps); err != nil {
		return fmt.Errorf("-eps: %w", err)
	}
	if opts.betas, err = parseFloats(*betas); err != nil {
		return fmt.Errorf("-betas: %w", err)
	}
	if opts.recRuns < 1 {
		return fmt.Errorf("-rec-runs %d", opts.recRuns)
	}

	var rep report
	switch opts.mode {
	case "privacy":
		rep.Privacy, err = privacySweep(opts, w)
	case "recovery":
		rep.Recovery, err = recoverySweep(opts, w)
	case "all":
		if rep.Privacy, err = privacySweep(opts, w); err == nil {
			rep.Recovery, err = recoverySweep(opts, w)
		}
	default:
		return fmt.Errorf("unknown mode %q", opts.mode)
	}
	if err != nil {
		return err
	}
	if opts.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	}
	return gate(rep)
}

// privacySweep audits every protocol x path x eps cell, printing one
// line per cell as it completes.
func privacySweep(opts options, w io.Writer) ([]audit.Result, error) {
	var results []audit.Result
	for _, eps := range opts.epsList {
		for _, name := range opts.protocols {
			//ldplint:allow nowallclock audit wall time feeds the ns/op field of the bench lines only
			start := time.Now()
			cellResults, err := audit.Run(audit.Config{
				Protocol:   name,
				Epsilon:    eps,
				Domain:     opts.domain,
				Trials:     opts.trials,
				Confidence: opts.confidence,
				Slack:      opts.slack,
				Seed:       opts.seed,
				Paths:      opts.paths,
			})
			if err != nil {
				return nil, err
			}
			//ldplint:allow nowallclock audit wall time feeds the ns/op field of the bench lines only
			elapsed := time.Since(start)
			perPath := elapsed / time.Duration(len(cellResults))
			for _, res := range cellResults {
				printPrivacy(opts, w, res, perPath)
			}
			results = append(results, cellResults...)
		}
	}
	return results, nil
}

func printPrivacy(opts options, w io.Writer, res audit.Result, elapsed time.Duration) {
	if opts.benchOut {
		// One bench line per cell: trials as the iteration count, the
		// certified budget and its companions as custom metrics.
		fmt.Fprintf(w, "BenchmarkAudit/%s/%s/eps=%g %d %.1f ns/op %.4f eps-emp %.4f eps-point %.4f eps-hi\n",
			res.Protocol, res.Path, res.Epsilon, res.Trials,
			float64(elapsed.Nanoseconds())/float64(2*res.Trials),
			res.EpsEmp, res.EpsPoint, res.EpsHi)
		return
	}
	if !opts.jsonOut {
		fmt.Fprintf(w, "%-4s %-8s eps=%-4g eps_emp=%.4f [point %.4f, hi %.4f] %s\n",
			res.Protocol, res.Path, res.Epsilon, res.EpsEmp, res.EpsPoint, res.EpsHi, res.Verdict())
	}
}

// recoverySweep audits the streamed recovery guarantees per protocol.
func recoverySweep(opts options, w io.Writer) ([]*audit.RecoveryResult, error) {
	var results []*audit.RecoveryResult
	for _, name := range opts.protocols {
		if name == "SUE" {
			continue // no streamed scenario
		}
		seeds := make([]uint64, opts.recRuns)
		for i := range seeds {
			seeds[i] = opts.seed + uint64(i)
		}
		//ldplint:allow nowallclock audit wall time feeds the ns/op field of the bench lines only
		start := time.Now()
		res, err := audit.RunRecovery(audit.RecoveryConfig{
			Protocol:   name,
			Epsilon:    opts.epsList[0],
			Domain:     opts.recDomain,
			N:          opts.recN,
			Betas:      opts.betas,
			Seeds:      seeds,
			Epochs:     opts.recEpochs,
			Confidence: opts.recConfidence,
		})
		if err != nil {
			return nil, err
		}
		//ldplint:allow nowallclock audit wall time feeds the ns/op field of the bench lines only
		elapsed := time.Since(start)
		switch {
		case opts.benchOut:
			fmt.Fprintf(w, "BenchmarkAuditRecovery/%s/eps=%g %d %.1f ns/op %.4f violation-rate %.4f rate-hi\n",
				res.Protocol, res.Epsilon, len(res.Runs),
				float64(elapsed.Nanoseconds())/float64(len(res.Runs)),
				res.Rate, res.RateHi)
		case !opts.jsonOut:
			fmt.Fprintf(w, "%-4s recovery eps=%-4g violations=%d/%d rate_hi=%.3f %s\n",
				res.Protocol, res.Epsilon, res.Violated, len(res.Runs), res.RateHi, res.Verdict())
		}
		results = append(results, res)
	}
	return results, nil
}

// gate returns an error if any audited cell failed, so the process
// exits nonzero under CI.
func gate(rep report) error {
	var failed []string
	for _, res := range rep.Privacy {
		if !res.Pass {
			failed = append(failed, fmt.Sprintf("%s/%s eps=%g: %s", res.Protocol, res.Path, res.Epsilon, res.Verdict()))
		}
	}
	for _, res := range rep.Recovery {
		if !res.Pass {
			failed = append(failed, fmt.Sprintf("%s recovery: %s", res.Protocol, res.Verdict()))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("audit gate failed:\n  %s", strings.Join(failed, "\n  "))
	}
	return nil
}

func parseProtocols(s string) ([]string, error) {
	if s == "all" {
		return audit.Protocols, nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToUpper(strings.TrimSpace(tok))
		found := false
		for _, known := range audit.Protocols {
			if tok == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown protocol %q", tok)
		}
		out = append(out, tok)
	}
	return out, nil
}

func parsePaths(s string) ([]audit.Path, error) {
	if s == "all" {
		return audit.AllPaths, nil
	}
	var out []audit.Path
	for _, tok := range strings.Split(s, ",") {
		p, err := audit.ParsePath(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
