package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunPrivacyTable: a small sweep prints one verdict line per
// protocol x path x eps cell and exits clean.
func TestRunPrivacyTable(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-mode", "privacy", "-protocol", "GRR,OUE", "-path", "itemwise,count",
		"-eps", "1", "-trials", "5000", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d verdict lines for a 2x2 sweep:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "PASS") {
			t.Fatalf("cell did not pass: %q", line)
		}
		if !strings.Contains(line, "eps_emp=") {
			t.Fatalf("no empirical budget on %q", line)
		}
	}
}

// TestRunBenchLines: -bench output must parse as Go benchmark lines —
// even field count, ns/op present — or benchjson will drop the rows.
func TestRunBenchLines(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-mode", "privacy", "-protocol", "OLH", "-path", "bulk",
		"-eps", "1,4", "-trials", "5000", "-bench",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d bench lines for 2 cells:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if !strings.HasPrefix(fields[0], "BenchmarkAudit/OLH/bulk/eps=") {
			t.Fatalf("bad bench name in %q", line)
		}
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Fatalf("odd field count %d in %q", len(fields), line)
		}
		if !strings.Contains(line, " ns/op") || !strings.Contains(line, " eps-emp") {
			t.Fatalf("missing ns/op or eps-emp metric in %q", line)
		}
	}
}

// TestRunJSON: -json emits a decodable document with every cell.
func TestRunJSON(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-mode", "privacy", "-protocol", "SUE", "-path", "itemwise",
		"-eps", "1", "-trials", "5000", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Privacy []struct {
			Protocol string  `json:"protocol"`
			EpsEmp   float64 `json:"eps_emp"`
			Pass     bool    `json:"pass"`
		} `json:"privacy"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if len(doc.Privacy) != 1 || doc.Privacy[0].Protocol != "SUE" || !doc.Privacy[0].Pass {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Privacy[0].EpsEmp <= 0 {
		t.Fatalf("vacuous eps_emp %v", doc.Privacy[0].EpsEmp)
	}
}

// TestRunFlagValidation rejects malformed invocations.
func TestRunFlagValidation(t *testing.T) {
	var buf strings.Builder
	for _, args := range [][]string{
		{"-mode", "bogus"},
		{"-protocol", "XYZ"},
		{"-path", "sideways"},
		{"-eps", "one"},
		{"-rec-runs", "0", "-mode", "recovery"},
		{"extra-arg"},
	} {
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunRecoveryShortGrid exercises the recovery mode end to end on a
// minimal grid (8 seeds keep the exact rate bound under the gate).
func TestRunRecoveryShortGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("streamed grid")
	}
	var buf strings.Builder
	err := run([]string{
		"-mode", "recovery", "-protocol", "OUE", "-eps", "1",
		"-betas", "0.1", "-rec-runs", "8", "-seed", "5",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "OUE  recovery") || !strings.Contains(out, "PASS") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
