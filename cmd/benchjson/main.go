// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, so CI can archive per-commit benchmark
// trajectories (ns/op plus the recovery-quality metrics the benchmarks
// emit via b.ReportMetric, e.g. mse-after and fg-after).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -o BENCH_report.json
//
// Reading stdin and writing stdout are the defaults; non-benchmark lines
// (test summaries, package headers) pass through unparsed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the benchmark's full printed name, including sub-benchmark
	// path and Go's GOMAXPROCS suffix when present.
	Name string `json:"name"`
	// Runs is the measured iteration count (b.N).
	Runs int64 `json:"runs"`
	// NsPerOp is the headline latency.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair on the line: B/op,
	// allocs/op, and custom b.ReportMetric outputs such as mse-after.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, returning ok=false for
// anything that is not one.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, N, then (value, unit) pairs: at least "Name N value ns/op".
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			seen = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	if !seen {
		return Benchmark{}, false
	}
	return b, true
}

// parse consumes full `go test -bench` output.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Packages = append(rep.Packages, strings.TrimPrefix(line, "pkg: "))
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func run(in io.Reader, out io.Writer) error {
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
