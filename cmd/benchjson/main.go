// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, so CI can archive per-commit benchmark
// trajectories (ns/op plus the recovery-quality metrics the benchmarks
// emit via b.ReportMetric, e.g. mse-after and fg-after).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -o BENCH_report.json
//
// Reading stdin and writing stdout are the defaults; non-benchmark lines
// (test summaries, package headers) pass through unparsed.
//
// -merge folds the freshly parsed results into an existing report
// instead of starting from scratch: benchmarks sharing a name are
// replaced in place, new ones append. `make bench-ingest` uses it to
// re-baseline just the ingest rows of BENCH_report.json at a longer
// benchtime without re-running the full figure suite.
//
// -gate-num/-gate-den/-gate-min assert a throughput ratio between two
// benchmarks in the final report: the run fails (exit 1) unless the
// numerator's MB/s is at least min times the denominator's. CI gates
// the tally-first ingest lanes with it — the partial-tally lane must
// stay ≥5x the report lane.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the benchmark's full printed name, including sub-benchmark
	// path and Go's GOMAXPROCS suffix when present.
	Name string `json:"name"`
	// Runs is the measured iteration count (b.N).
	Runs int64 `json:"runs"`
	// NsPerOp is the headline latency.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair on the line: B/op,
	// allocs/op, and custom b.ReportMetric outputs such as mse-after.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, returning ok=false for
// anything that is not one.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, N, then (value, unit) pairs: at least "Name N value ns/op".
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			seen = true
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	if !seen {
		return Benchmark{}, false
	}
	return b, true
}

// parse consumes full `go test -bench` output.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Packages = append(rep.Packages, strings.TrimPrefix(line, "pkg: "))
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// mergeInto folds fresh results into base: same-name benchmarks are
// replaced in place (preserving the report's ordering), new ones
// append. Environment fields follow the fresh run when it reported
// them.
func mergeInto(base, fresh *Report) *Report {
	idx := make(map[string]int, len(base.Benchmarks))
	for i, b := range base.Benchmarks {
		idx[b.Name] = i
	}
	for _, b := range fresh.Benchmarks {
		if i, ok := idx[b.Name]; ok {
			base.Benchmarks[i] = b
		} else {
			idx[b.Name] = len(base.Benchmarks)
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if fresh.GOOS != "" {
		base.GOOS = fresh.GOOS
	}
	if fresh.GOARCH != "" {
		base.GOARCH = fresh.GOARCH
	}
	if fresh.CPU != "" {
		base.CPU = fresh.CPU
	}
	for _, p := range fresh.Packages {
		found := false
		for _, q := range base.Packages {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			base.Packages = append(base.Packages, p)
		}
	}
	return base
}

// findBench resolves name in the report, tolerating Go's -GOMAXPROCS
// suffix (BenchmarkX/lane vs BenchmarkX/lane-8).
func findBench(rep *Report, name string) (Benchmark, error) {
	for _, b := range rep.Benchmarks {
		if b.Name == name || strings.HasPrefix(b.Name, name+"-") {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("benchmark %q not in report", name)
}

// checkGate enforces MB/s(num) >= min * MB/s(den).
func checkGate(rep *Report, num, den string, min float64) error {
	nb, err := findBench(rep, num)
	if err != nil {
		return err
	}
	db, err := findBench(rep, den)
	if err != nil {
		return err
	}
	nv, ok := nb.Metrics["MB/s"]
	if !ok {
		return fmt.Errorf("benchmark %q reports no MB/s (missing b.SetBytes?)", nb.Name)
	}
	dv, ok := db.Metrics["MB/s"]
	if !ok {
		return fmt.Errorf("benchmark %q reports no MB/s (missing b.SetBytes?)", db.Name)
	}
	if dv <= 0 || nv < min*dv {
		return fmt.Errorf("gate failed: %s at %.2f MB/s is %.2fx %s (%.2f MB/s), need >= %.1fx",
			nb.Name, nv, nv/dv, db.Name, dv, min)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate ok: %s at %.2f MB/s is %.2fx %s (%.2f MB/s, need >= %.1fx)\n",
		nb.Name, nv, nv/dv, db.Name, dv, min)
	return nil
}

func run(in io.Reader, out io.Writer, base *Report) (*Report, error) {
	rep, err := parse(in)
	if err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	if base != nil {
		rep = mergeInto(base, rep)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	mergePath := flag.String("merge", "", "existing report to fold results into (may equal -o)")
	gateNum := flag.String("gate-num", "", "gate numerator benchmark name")
	gateDen := flag.String("gate-den", "", "gate denominator benchmark name")
	gateMin := flag.Float64("gate-min", 0, "minimum MB/s ratio numerator/denominator")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [-merge base.json] [bench-output.txt]")
		os.Exit(2)
	}

	// Load the merge base before -o possibly truncates the same file.
	var base *Report
	if *mergePath != "" {
		data, err := os.ReadFile(*mergePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		base = &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *mergePath, err)
			os.Exit(1)
		}
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	rep, err := run(in, out, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gateNum != "" || *gateDen != "" {
		if *gateNum == "" || *gateDen == "" || *gateMin <= 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -gate-num, -gate-den and -gate-min must be set together")
			os.Exit(2)
		}
		if err := checkGate(rep, *gateNum, *gateDen, *gateMin); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}
