package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ldprecover
cpu: Example CPU @ 3.00GHz
BenchmarkShardedIngest/sequential-reports-8         	       5	  75471791 ns/op
BenchmarkShardedIngest/batched-reports-8            	       5	  10938629 ns/op
BenchmarkRecoveryQuality_MGA_OUE 	       1	 212962964 ns/op	         0.04507 fg-after	         0.9323 fg-before	         0.0001805 mse-after	         0.004276 mse-before	         0.0001608 mse-star
BenchmarkPerturbOUE-8   	  705834	      1690 ns/op
PASS
ok  	ldprecover	5.047s
?   	ldprecover/cmd/datagen	[no test files]
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Fatalf("metadata wrong: %+v", rep)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "ldprecover" {
		t.Fatalf("packages wrong: %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkShardedIngest/sequential-reports-8" || b0.Runs != 5 || b0.NsPerOp != 75471791 {
		t.Fatalf("first benchmark wrong: %+v", b0)
	}
	q := rep.Benchmarks[2]
	if q.NsPerOp != 212962964 {
		t.Fatalf("quality ns/op wrong: %+v", q)
	}
	if q.Metrics["mse-after"] != 0.0001805 || q.Metrics["fg-after"] != 0.04507 {
		t.Fatalf("quality metrics wrong: %+v", q.Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBroken 12 nonsense ns/op\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("garbage parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("round trip lost benchmarks: %d", len(rep.Benchmarks))
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("nothing here\n"), &out); err == nil {
		t.Fatal("empty input accepted")
	}
}
