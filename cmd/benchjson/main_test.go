package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ldprecover
cpu: Example CPU @ 3.00GHz
BenchmarkShardedIngest/sequential-reports-8         	       5	  75471791 ns/op
BenchmarkShardedIngest/batched-reports-8            	       5	  10938629 ns/op
BenchmarkRecoveryQuality_MGA_OUE 	       1	 212962964 ns/op	         0.04507 fg-after	         0.9323 fg-before	         0.0001805 mse-after	         0.004276 mse-before	         0.0001608 mse-star
BenchmarkPerturbOUE-8   	  705834	      1690 ns/op
PASS
ok  	ldprecover	5.047s
?   	ldprecover/cmd/datagen	[no test files]
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Fatalf("metadata wrong: %+v", rep)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "ldprecover" {
		t.Fatalf("packages wrong: %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkShardedIngest/sequential-reports-8" || b0.Runs != 5 || b0.NsPerOp != 75471791 {
		t.Fatalf("first benchmark wrong: %+v", b0)
	}
	q := rep.Benchmarks[2]
	if q.NsPerOp != 212962964 {
		t.Fatalf("quality ns/op wrong: %+v", q)
	}
	if q.Metrics["mse-after"] != 0.0001805 || q.Metrics["fg-after"] != 0.04507 {
		t.Fatalf("quality metrics wrong: %+v", q.Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBroken 12 nonsense ns/op\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("garbage parsed as benchmarks: %+v", rep.Benchmarks)
	}
}

func TestRunEmitsValidJSON(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader(sample), &out, nil); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("round trip lost benchmarks: %d", len(rep.Benchmarks))
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader("nothing here\n"), &out, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestRunMerge: a fresh ingest-only run replaces its rows in the base
// report in place, keeps unrelated rows, and appends new names.
func TestRunMerge(t *testing.T) {
	base := &Report{
		GOOS: "linux",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkPerturbOUE-8", Runs: 1, NsPerOp: 99},
			{Name: "BenchmarkStale/only-in-base", Runs: 1, NsPerOp: 42},
		},
	}
	var out bytes.Buffer
	rep, err := run(strings.NewReader(sample), &out, base)
	if err != nil {
		t.Fatal(err)
	}
	// 2 base rows, one replaced in place + 3 new names from the sample.
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("merged %d benchmarks, want 5: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	if rep.Benchmarks[0].Name != "BenchmarkPerturbOUE-8" || rep.Benchmarks[0].NsPerOp != 1690 {
		t.Fatalf("same-name row not replaced in place: %+v", rep.Benchmarks[0])
	}
	if rep.Benchmarks[1].Name != "BenchmarkStale/only-in-base" || rep.Benchmarks[1].NsPerOp != 42 {
		t.Fatalf("base-only row lost in merge: %+v", rep.Benchmarks[1])
	}
}

// TestCheckGate: the MB/s ratio gate passes, fails, and tolerates the
// -GOMAXPROCS suffix on report names.
func TestCheckGate(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkDurableIngest/report-level-8", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 10}},
		{Name: "BenchmarkDurableIngest/partial-tally-8", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 120}},
		{Name: "BenchmarkDurableIngest/no-bytes"},
	}}
	if err := checkGate(rep, "BenchmarkDurableIngest/partial-tally", "BenchmarkDurableIngest/report-level", 5); err != nil {
		t.Fatalf("12x ratio failed a 5x gate: %v", err)
	}
	if err := checkGate(rep, "BenchmarkDurableIngest/partial-tally", "BenchmarkDurableIngest/report-level", 50); err == nil {
		t.Fatal("12x ratio passed a 50x gate")
	}
	if err := checkGate(rep, "BenchmarkDurableIngest/no-bytes", "BenchmarkDurableIngest/report-level", 1); err == nil {
		t.Fatal("missing MB/s metric passed the gate")
	}
	if err := checkGate(rep, "BenchmarkDurableIngest/missing", "BenchmarkDurableIngest/report-level", 1); err == nil {
		t.Fatal("unknown benchmark passed the gate")
	}
}
