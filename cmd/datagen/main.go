// Command datagen synthesizes item-frequency datasets to CSV.
//
// Usage:
//
//	datagen -corpus ipums -out ipums.csv
//	datagen -corpus fire -scale 0.1 -out fire_small.csv
//	datagen -corpus zipf -d 256 -n 100000 -s 1.2 -out zipf.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ldprecover/internal/dataset"
)

func main() {
	var (
		corpus = flag.String("corpus", "ipums", "dataset: ipums, fire, zipf, uniform")
		d      = flag.Int("d", 100, "domain size (zipf/uniform)")
		n      = flag.Int64("n", 100000, "number of users (zipf/uniform)")
		s      = flag.Float64("s", 1.0, "zipf exponent")
		scale  = flag.Float64("scale", 1.0, "scale factor applied to the user count")
		out    = flag.String("out", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	var (
		ds  *dataset.Dataset
		err error
	)
	switch *corpus {
	case "ipums":
		ds = dataset.SyntheticIPUMS()
	case "fire":
		ds = dataset.SyntheticFire()
	case "zipf":
		ds, err = dataset.Zipf("zipf", *d, *n, *s)
	case "uniform":
		ds, err = dataset.Uniform("uniform", *d, *n)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown corpus %q\n", *corpus)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *scale != 1 {
		if ds, err = ds.Scaled(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		if err := ds.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := ds.SaveCSV(*out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d items, %d users\n", *out, ds.Domain(), ds.N())
}
