package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"ldprecover/internal/lint/analysis"
	"ldprecover/internal/lint/load"
)

// vetConfig is the JSON the go command hands a -vettool for each
// package: the file set to analyze plus compiled export data for every
// dependency. Field names follow cmd/go's internal vet config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package per the unitchecker protocol: read the
// config, type-check from export data, report findings on stderr, and
// write the facts file go vet expects. Exit 0 clean, 2 findings.
func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldplint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ldplint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// ldplint has no cross-package facts, but go vet requires the vetx
	// file to exist before it will trust the run.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ldplint:", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no diagnostics wanted.
		if !writeVetx() {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "ldplint:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ldplint:", err)
		return 1
	}

	diags, err := analysis.Run(&analysis.Package{
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldplint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if !writeVetx() {
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
