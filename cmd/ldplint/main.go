// Command ldplint runs the project's invariant analyzers (DESIGN.md
// §10) over Go packages. It works two ways:
//
// Standalone, over go-list patterns (the Makefile's lint target):
//
//	ldplint ./...
//	ldplint -json -nowallclock=false ./internal/ldp
//
// As a go vet tool, speaking vet's unitchecker protocol — -V=full,
// -flags, then one <package>.cfg per package:
//
//	go vet -vettool=$(pwd)/.bin/ldplint ./...
//
// Exit status: 0 clean, 1 operational failure, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ldprecover/internal/lint"
	"ldprecover/internal/lint/analysis"
	"ldprecover/internal/lint/load"
)

func main() {
	// go vet probes the tool before handing it work. These two flags
	// must be handled before normal flag parsing (they are go vet's,
	// not ours).
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// No tool-level flags are exposed through vet; analyzers are
		// selected in standalone mode only.
		fmt.Println("[]")
		return
	}

	enabled := make(map[string]*bool, len(lint.Analyzers()))
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var analyzers []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "ldplint: every analyzer is disabled")
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, analyzers, *jsonOut))
}

// printVersion implements -V=full: an identifier that changes when the
// tool's behavior might, so go vet's result cache never serves stale
// findings. Hashing the executable covers both source and toolchain
// changes.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("ldplint version %x\n", h.Sum(nil)[:16])
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldplint:", err)
		return 1
	}
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldplint:", err)
		return 1
	}
	var findings []finding
	for _, pkg := range pkgs {
		diags, err := analysis.Run(&pkg.Package, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldplint: %s: %v\n", pkg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "ldplint:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
