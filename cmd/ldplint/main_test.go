package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildTool compiles the ldplint binary into a temp dir once per test.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ldplint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ldplint: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v\n%s", name, args, err, buf.String())
		}
		code = ee.ExitCode()
	}
	return buf.String(), code
}

// seedViolation writes a scratch module holding a noalias violation: a
// mutex-guarded type whose exported method returns its internal slice.
func seedViolation(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if out, code := run(t, dir, "go", "mod", "init", "scratch"); code != 0 {
		t.Fatalf("go mod init: %s", out)
	}
	src := `package scratch

import "sync"

type Box struct {
	mu    sync.Mutex
	items []int
}

func (b *Box) Items() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.items
}
`
	if err := os.WriteFile(filepath.Join(dir, "box.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module; skipped with -short")
	}
	bin := buildTool(t)
	out, code := run(t, "../..", bin, "./...")
	if code != 0 {
		t.Fatalf("ldplint ./... on the repo: exit %d\n%s", code, out)
	}
}

func TestStandaloneFailsOnSeededViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles scratch modules; skipped with -short")
	}
	bin := buildTool(t)
	dir := seedViolation(t)

	out, code := run(t, dir, bin, "./...")
	if code != 2 {
		t.Fatalf("seeded violation: exit %d, want 2\n%s", code, out)
	}
	if !bytes.Contains([]byte(out), []byte("noalias")) {
		t.Fatalf("output does not name the noalias analyzer:\n%s", out)
	}

	// Disabling the analyzer must clear the finding.
	out, code = run(t, dir, bin, "-noalias=false", "./...")
	if code != 0 {
		t.Fatalf("with -noalias=false: exit %d, want 0\n%s", code, out)
	}

	// JSON mode reports the same finding, machine-readably.
	out, code = run(t, dir, bin, "-json", "./...")
	if code != 2 {
		t.Fatalf("-json seeded violation: exit %d, want 2\n%s", code, out)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Analyzer != "noalias" {
		t.Fatalf("unexpected findings: %+v", findings)
	}
}

func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles scratch modules; skipped with -short")
	}
	bin := buildTool(t)

	// The probe handshake go vet performs first.
	out, code := run(t, ".", bin, "-V=full")
	if code != 0 || !bytes.HasPrefix([]byte(out), []byte("ldplint version ")) {
		t.Fatalf("-V=full handshake: exit %d, output %q", code, out)
	}
	out, code = run(t, ".", bin, "-flags")
	if code != 0 {
		t.Fatalf("-flags handshake: exit %d, output %q", code, out)
	}

	dir := seedViolation(t)
	out, code = run(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool on seeded violation: exit 0\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("noalias")) {
		t.Fatalf("go vet output does not name the noalias analyzer:\n%s", out)
	}
}
