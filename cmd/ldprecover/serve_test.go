package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ldprecover"
)

func testServer(t *testing.T, cfg streamServerConfig) (*streamServer, *httptest.Server) {
	t.Helper()
	srv, err := newStreamServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postBatch(t *testing.T, url string, reps []ldprecover.Report) *http.Response {
	t.Helper()
	frame, err := ldprecover.MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/reports", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServeEndToEnd is the acceptance round trip: reports travel through
// the wire codec into the HTTP ingest queue, an epoch is sealed over
// them, and the served window estimate (poisoned and recovered) must
// equal the batch pipeline's output on the same reports, float for
// float.
func TestServeEndToEnd(t *testing.T) {
	const d, eps = 48, 0.6
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	srv, hs := testServer(t, streamServerConfig{
		Stream: ldprecover.StreamConfig{
			Params:  proto.Params(),
			Window:  8,
			TargetK: -1, // deterministic non-knowledge recovery
		},
		QueueLen:  64,
		Ingesters: 2,
		MaxBody:   8 << 20,
	})

	// A poisoned population: genuine users plus an MGA attacker.
	r := ldprecover.NewRand(13)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(60 + 5*v)
	}
	genuine, err := ldprecover.PerturbAll(proto, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	mga, err := ldprecover.NewMGA([]int{7, 31})
	if err != nil {
		t.Fatal(err)
	}
	malicious, err := mga.CraftReports(r, proto, 150)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]ldprecover.Report(nil), genuine...), malicious...)

	// Ingest concurrently in small batches — two epochs' worth split by
	// a mid-stream seal, both inside the serving window.
	ingest := func(reps []ldprecover.Report) {
		t.Helper()
		var wg sync.WaitGroup
		const batch = 256
		for lo := 0; lo < len(reps); lo += batch {
			hi := lo + batch
			if hi > len(reps) {
				hi = len(reps)
			}
			wg.Add(1)
			go func(part []ldprecover.Report) {
				defer wg.Done()
				resp := postBatch(t, hs.URL, part)
				if resp.StatusCode != http.StatusAccepted {
					body, _ := io.ReadAll(resp.Body)
					t.Errorf("ingest status %d: %s", resp.StatusCode, body)
				}
				resp.Body.Close()
			}(reps[lo:hi])
		}
		wg.Wait()
	}
	half := len(all) / 2
	ingest(all[:half])
	waitForIngest(t, srv, int64(half))
	resp, err := http.Post(hs.URL+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sealed := decodeJSON[estimateResponse](t, resp)
	if sealed.Seq != 0 || sealed.Total != int64(half) {
		t.Fatalf("first seal: %+v", sealed)
	}
	ingest(all[half:])
	waitForIngest(t, srv, int64(len(all)))
	resp, err = http.Post(hs.URL+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeJSON[estimateResponse](t, resp); got.Epochs != 2 {
		t.Fatalf("second seal spans %d epochs", got.Epochs)
	}

	// The served estimate over both epochs vs. the batch pipeline.
	resp, err = http.Get(hs.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	est := decodeJSON[estimateResponse](t, resp)
	wantPoisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := ldprecover.Recover(wantPoisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != int64(len(all)) || est.Epochs != 2 {
		t.Fatalf("estimate window: %+v", est)
	}
	if !reflect.DeepEqual(est.Poisoned, wantPoisoned) {
		t.Fatal("served poisoned estimate differs from batch pipeline")
	}
	if !reflect.DeepEqual(est.Recovered, wantRec.Frequencies) {
		t.Fatal("served recovered estimate differs from batch pipeline")
	}

	// An on-demand single-epoch window estimates only the second half.
	resp, err = http.Get(hs.URL + "/v1/estimate?window=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeJSON[estimateResponse](t, resp); got.Epochs != 1 || got.Total != int64(len(all)-half) {
		t.Fatalf("window=1 estimate: %+v", got)
	}

	// Stats reflect the ingest.
	resp, err = http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeJSON[statsResponse](t, resp)
	if st.IngestedTotal != int64(len(all)) || st.Epochs != 2 || st.LiveTotal != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BatchesRejected != 0 {
		t.Fatalf("%d batches rejected", st.BatchesRejected)
	}

	// Drain seals the remainder (empty here) and refuses further ingest.
	if _, err := srv.drain(); err != nil {
		t.Fatal(err)
	}
	resp = postBatch(t, hs.URL, all[:1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// waitForIngest blocks until the manager has folded total reports — the
// queue is asynchronous, so sealing immediately after a POST could race
// the drain workers.
func waitForIngest(t *testing.T, srv *streamServer, total int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.mgr.Stats()
		if st.IngestedTotal >= total {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest stalled at %d/%d reports", st.IngestedTotal, total)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeBadRequests exercises the HTTP error paths.
func TestServeBadRequests(t *testing.T) {
	proto, err := ldprecover.NewGRR(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})

	// Garbage batch frame.
	resp, err := http.Post(hs.URL+"/v1/reports", "application/octet-stream", bytes.NewReader([]byte("not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Estimate before any seal.
	resp, err = http.Get(hs.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("estimate before seal: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad window parameter.
	resp, err = http.Get(hs.URL + "/v1/estimate?window=zero")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong methods.
	for path, method := range map[string]string{
		"/v1/reports":  http.MethodGet,
		"/v1/seal":     http.MethodGet,
		"/v1/estimate": http.MethodPost,
		"/v1/stats":    http.MethodPost,
	} {
		req, err := http.NewRequest(method, hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d", method, path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// An empty batch is acknowledged without touching the queue.
	resp, err = http.Post(hs.URL+"/v1/reports", "application/octet-stream",
		bytes.NewReader(mustFrame(t, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustFrame(t *testing.T, reps []ldprecover.Report) []byte {
	t.Helper()
	frame, err := ldprecover.MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestServeFlagValidation: flag combinations that used to pass through
// silently (negative -epoch behaved like 0) or surface as an internal
// "stream:" config error must fail up front, naming the flags.
func TestServeFlagValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want []string // substrings the error must mention
	}{
		"negative-epoch":       {[]string{"-epoch", "-1s"}, []string{"-epoch"}},
		"zero-window":          {[]string{"-window", "0"}, []string{"-window"}},
		"history-below-window": {[]string{"-history", "2", "-window", "4"}, []string{"-history", "-window"}},
		"bad-wal-segment":      {[]string{"-wal-segment", "-1"}, []string{"-wal-segment"}},
	} {
		t.Run(name, func(t *testing.T) {
			err := runServe(tc.args)
			if err == nil {
				t.Fatalf("runServe(%v) succeeded", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name %s", err, want)
				}
			}
		})
	}
}

// TestServeLoopSealFailureShutsDown is the regression test for the
// leaked HTTP server: when a ticker-driven seal fails, serveLoop must
// still stop the listener, terminate the Serve goroutine, and fold every
// queued batch into the manager before returning — an early return here
// used to strand all three.
func TestServeLoopSealFailureShutsDown(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newStreamServer(streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  8,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park the single worker so a real batch is still queued when the
	// seal fails; the drain on the error path must fold it anyway.
	block := make(chan struct{})
	srv.queue <- ingestBatch{reps: []ldprecover.Report{blockingReport{block}}}
	rep, err := proto.Perturb(ldprecover.NewRand(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	srv.queue <- ingestBatch{reps: []ldprecover.Report{rep}}

	sealErr := errors.New("synthetic seal failure")
	srv.sealFn = func() (*ldprecover.WindowEstimate, error) { return nil, sealErr }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	tick := make(chan time.Time, 1)
	loopErr := make(chan error, 1)
	go func() { loopErr <- serveLoop(hs, srv, tick, nil, errc) }()
	tick <- time.Time{}
	close(block) // let the parked worker finish so the drain can complete

	select {
	case err := <-loopErr:
		if !errors.Is(err, sealErr) {
			t.Fatalf("serveLoop returned %v, want the seal failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveLoop did not return after the failed seal")
	}

	// The listener is down...
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after failed seal")
	}
	// ...the ingest workers have exited...
	workersDone := make(chan struct{})
	go func() { srv.wg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest workers leaked after failed seal")
	}
	// ...and both queued batches (the blocker and the real report) were
	// folded into the manager, not dropped.
	if got := srv.mgr.Stats().IngestedTotal; got != 2 {
		t.Fatalf("drained %d reports, want 2", got)
	}
}

// TestServeSealEndpointFailureShutsDown: a failed POST /v1/seal is as
// fatal as a failed ticker seal — the handler answers 500, and the serve
// loop shuts the server down instead of letting it accept reports
// forever with broken durability.
func TestServeSealEndpointFailureShutsDown(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newStreamServer(streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  8,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sealErr := errors.New("synthetic seal failure")
	srv.sealFn = func() (*ldprecover.WindowEstimate, error) { return nil, sealErr }

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	loopErr := make(chan error, 1)
	go func() { loopErr <- serveLoop(hs, srv, nil, nil, errc) }()

	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("seal status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()

	select {
	case err := <-loopErr:
		if !errors.Is(err, sealErr) {
			t.Fatalf("serveLoop returned %v, want the seal failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveLoop kept running after a failed POST /v1/seal")
	}
	if conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after failed seal")
	}
}

// blockingReport parks the ingest worker that aggregates it until the
// release channel closes, so the bounded queue in front of the manager
// fills deterministically.
type blockingReport struct{ release <-chan struct{} }

func (b blockingReport) Supports(int) bool { return false }

func (b blockingReport) AddSupports([]int64) { <-b.release }

// TestServeBackpressure parks the single ingest worker, fills the
// bounded queue over HTTP, and checks the 429 overload path.
func TestServeBackpressure(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newStreamServer(streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  2,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	// Enqueue directly (the wire codec cannot carry a test double); the
	// worker dequeues it and parks inside AddBatch.
	srv.queue <- ingestBatch{reps: []ldprecover.Report{blockingReport{block}}}
	hs := httptest.NewServer(srv.handler())
	defer hs.Close()

	rep, err := proto.Perturb(ldprecover.NewRand(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	batch := []ldprecover.Report{rep}
	// At most three posts can be absorbed (one dequeued by the parked
	// worker, two queued); the fourth must bounce.
	seen429 := false
	for i := 0; i < 10 && !seen429; i++ {
		resp := postBatch(t, hs.URL, batch)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			seen429 = true
		default:
			t.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !seen429 {
		t.Fatal("queue never backpressured")
	}
}
