package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"ldprecover"
)

// durableStreamConfig is the serving configuration shared by both runs
// of the crash-restart test: window > 1 so restored window sums matter,
// hysteresis short enough that LDPRecover* engages within the stream.
func durableStreamConfig(proto ldprecover.Protocol) ldprecover.StreamConfig {
	return ldprecover.StreamConfig{
		Params:      proto.Params(),
		Window:      2,
		History:     12,
		StableAfter: 2,
		TargetK:     4,
	}
}

// durableEpochs pre-generates the whole test stream once — quiet epochs
// to build history, then MGA-attacked epochs — split into wire batches,
// so every server ingests byte-identical traffic.
func durableEpochs(t *testing.T, proto ldprecover.Protocol, d, quiet, attacked int, targets []int) [][][]ldprecover.Report {
	t.Helper()
	r := ldprecover.NewRand(21)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 200
	}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		t.Fatal(err)
	}
	var epochs [][][]ldprecover.Report
	for e := 0; e < quiet+attacked; e++ {
		reps, err := ldprecover.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		if e >= quiet {
			mal, err := mga.CraftReports(r, proto, int64(len(reps)/10))
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, mal...)
		}
		var batches [][]ldprecover.Report
		const per = 1024
		for lo := 0; lo < len(reps); lo += per {
			hi := min(lo+per, len(reps))
			batches = append(batches, reps[lo:hi])
		}
		epochs = append(epochs, batches)
	}
	return epochs
}

// ingestBatches posts batches over HTTP and waits until the manager has
// folded them all.
func ingestBatches(t *testing.T, srv *streamServer, url string, batches [][]ldprecover.Report, expectTotal int64) {
	t.Helper()
	for _, b := range batches {
		resp := postBatch(t, url, b)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	waitForIngest(t, srv, expectTotal)
}

func sealOverHTTP(t *testing.T, url string) estimateResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal status %d", resp.StatusCode)
	}
	return decodeJSON[estimateResponse](t, resp)
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return decodeJSON[T](t, resp)
}

// TestServeCrashRestartE2E is the durability acceptance test: a durable
// server is killed mid-stream — mid-epoch, mid-hysteresis, with a torn
// final WAL record for good measure — restarted from snapshot + WAL
// tail, and must serve, for every remaining epoch, window estimates
// bit-identical to an uninterrupted (in-memory) server fed the same
// report stream: the same floats, the same LDPRecover* engagement epoch,
// the same stable target set.
func TestServeCrashRestartE2E(t *testing.T) {
	const d, eps = 32, 1.0
	const quiet, attacked = 6, 6
	targets := []int{5, 21}
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	epochs := durableEpochs(t, proto, d, quiet, attacked, targets)
	epochTotal := func(e int) int64 {
		var n int64
		for _, b := range epochs[e] {
			n += int64(len(b))
		}
		return n
	}

	newServer := func(dataDir string) (*streamServer, *httptest.Server) {
		t.Helper()
		srv, err := newStreamServer(streamServerConfig{
			Stream:    durableStreamConfig(proto),
			QueueLen:  64,
			Ingesters: 2,
			MaxBody:   8 << 20,
			DataDir:   dataDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.handler())
		return srv, hs
	}

	// Uninterrupted reference run, entirely in memory.
	ref, refHS := newServer("")
	defer refHS.Close()
	var want []estimateResponse
	var total int64
	for e := range epochs {
		total += epochTotal(e)
		ingestBatches(t, ref, refHS.URL, epochs[e], total)
		want = append(want, sealOverHTTP(t, refHS.URL))
	}
	wantStats := getJSON[statsResponse](t, refHS.URL+"/v1/stats")
	wantAdHoc := getJSON[estimateResponse](t, refHS.URL+"/v1/estimate?window=3")

	// Sanity on the scenario itself: the upgrade engages mid-attack.
	engaged := -1
	for e, est := range want {
		if est.PartialKnowledge {
			engaged = e
			break
		}
	}
	if engaged < quiet || engaged >= quiet+attacked {
		t.Fatalf("LDPRecover* engaged at epoch %d, outside the attacked range", engaged)
	}

	// Durable run: crash after sealing the first attacked epoch (the
	// tracker streak is mid-flight) with half of the next epoch's
	// batches ingested but unsealed.
	crashAt := quiet // last epoch sealed before the crash
	if engaged <= crashAt {
		t.Fatalf("engagement epoch %d not after the crash point %d", engaged, crashAt)
	}
	dataDir := t.TempDir()
	srv1, hs1 := newServer(dataDir)
	var got []estimateResponse
	total = 0
	for e := 0; e <= crashAt; e++ {
		total += epochTotal(e)
		ingestBatches(t, srv1, hs1.URL, epochs[e], total)
		got = append(got, sealOverHTTP(t, hs1.URL))
	}
	half := len(epochs[crashAt+1]) / 2
	for _, b := range epochs[crashAt+1][:half] {
		total += int64(len(b))
	}
	ingestBatches(t, srv1, hs1.URL, epochs[crashAt+1][:half], total)

	// Crash: stop routing requests and abandon the server — no drain, no
	// store close, no final seal. Then tear the WAL's final record the
	// way a crash mid-append would.
	hs1.Close()
	tearWALTail(t, filepath.Join(dataDir, "wal"))

	srv2, hs2 := newServer(dataDir)
	defer hs2.Close()
	defer srv2.close()
	ri := srv2.store.Restored()
	if ri.SnapshotSeq != crashAt+1 {
		t.Fatalf("restored %d sealed epochs, want %d", ri.SnapshotSeq, crashAt+1)
	}
	if ri.ReplayedBatches != half {
		t.Fatalf("replayed %d batches, want %d", ri.ReplayedBatches, half)
	}
	// The pre-crash serving estimate is back verbatim.
	if est := getJSON[estimateResponse](t, hs2.URL+"/v1/estimate"); !reflect.DeepEqual(est, got[crashAt]) {
		t.Fatalf("restored estimate %+v, want %+v", est, got[crashAt])
	}
	waitForIngest(t, srv2, total)

	// Finish the interrupted epoch and the rest of the stream.
	for e := crashAt + 1; e < len(epochs); e++ {
		rest := epochs[e]
		if e == crashAt+1 {
			rest = rest[half:]
		}
		for _, b := range rest {
			total += int64(len(b))
		}
		ingestBatches(t, srv2, hs2.URL, rest, total)
		got = append(got, sealOverHTTP(t, hs2.URL))
	}

	// Bit-for-bit: every per-epoch window estimate, the ad-hoc window
	// query, and the stats (modulo queue counters, which count HTTP
	// batches per process, not reports).
	for e := range want {
		if !reflect.DeepEqual(got[e], want[e]) {
			t.Fatalf("epoch %d estimate diverged after crash-restart:\n got %+v\nwant %+v", e, got[e], want[e])
		}
	}
	gotAdHoc := getJSON[estimateResponse](t, hs2.URL+"/v1/estimate?window=3")
	if !reflect.DeepEqual(gotAdHoc, wantAdHoc) {
		t.Fatal("ad-hoc window estimate diverged after crash-restart")
	}
	gotStats := getJSON[statsResponse](t, hs2.URL+"/v1/stats")
	if gotStats.Epochs != wantStats.Epochs || gotStats.IngestedTotal != wantStats.IngestedTotal ||
		gotStats.WindowTotal != wantStats.WindowTotal || !reflect.DeepEqual(gotStats.Targets, wantStats.Targets) {
		t.Fatalf("stats diverged after crash-restart:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	sort.Ints(targets)
	if !reflect.DeepEqual(gotStats.Targets, targets) {
		t.Fatalf("restarted server identifies targets %v, want %v", gotStats.Targets, targets)
	}
}

// tearWALTail appends a truncated record to the newest WAL segment —
// exactly what a crash between a write and its completion leaves behind.
func tearWALTail(t *testing.T, walDir string) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			newest = filepath.Join(walDir, e.Name()) // sorted: last wins
		}
	}
	if newest == "" {
		t.Fatal("no WAL segment to tear")
	}
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A header that declares more payload than follows.
	if _, err := f.Write([]byte{0xe8, 0x03, 0, 0, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
