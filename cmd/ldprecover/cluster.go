package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ldprecover"
)

// Cluster mode (DESIGN.md §7) splits `ldprecover serve` into two tiers:
//
//   - frontend nodes run the existing ingest pipeline (bounded queue,
//     ShardedAccumulator, optional report-level WAL) over their slice of
//     the user population, seal epochs on the shared epoch clock, and
//     push each sealed epoch's tally to the root over the CRC-framed
//     sealed-tally codec — retrying with backoff until the root's
//     durably sealed watermark passes the tally's epoch;
//   - the root accepts tallies on POST /v1/tally, dedupes them by
//     (node, epoch), holds an epoch barrier until every expected
//     frontend has delivered (or the straggler timeout forces a partial
//     seal), and seals the merged counts into its EpochManager — so the
//     served window estimates, recovered history, and LDPRecover*
//     hysteresis run on exactly the union of reports.
//
// Because tally merging is exact integer addition and epochs seal in
// clock order, the root's estimates are bit-identical to a single-node
// server fed every report; TestClusterEquivalenceE2E pins that.

// tallyResponse is the root's answer to a pushed tally.
type tallyResponse struct {
	// Duplicate reports that the tally had already been merged (or its
	// epoch already sealed) and this submission changed nothing.
	Duplicate bool `json:"duplicate"`
	// SealedThrough is the root's sealed-epoch watermark — persisted
	// when the root is durable — up to which frontends may prune their
	// unacked tallies.
	SealedThrough int `json:"sealed_through"`
}

// defaultPushInterval is how often a frontend re-pushes tallies the
// root has accepted but not yet sealed past (tests shrink it).
const defaultPushInterval = 500 * time.Millisecond

// maxPushBackoff caps the exponential backoff after push failures.
const maxPushBackoff = 5 * time.Second

// tallyPusher is the frontend's delivery side: a FIFO of sealed tallies
// retried in order until the root's sealed watermark covers them.
// Delivery is at-least-once by construction — a tally is retained
// through crashes by the frontend's durable epoch ring and re-enqueued
// on boot — and the root's dedupe makes every re-send a no-op. The
// queue is bounded to the ring's retention: a tally that outlives its
// ring epoch would not survive a restart either, so during a root
// outage longer than -history epochs the oldest pending tallies are
// dropped (counted, logged) rather than growing memory without limit.
type tallyPusher struct {
	nodeID     string
	rootURL    string
	client     *http.Client
	interval   time.Duration
	maxPending int // 0: unbounded

	mu       sync.Mutex
	pending  []*ldprecover.Tally // unacked, epoch ascending
	dropped  int64               // tallies evicted past maxPending
	rootSeen int                 // highest sealed watermark any answer carried
	lastErr  error               // most recent push failure, for stats/logs

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

func newTallyPusher(nodeID, rootURL string, interval time.Duration, maxPending int) *tallyPusher {
	if interval <= 0 {
		interval = defaultPushInterval
	}
	p := &tallyPusher{
		nodeID:     nodeID,
		rootURL:    rootURL,
		client:     &http.Client{Timeout: 10 * time.Second},
		interval:   interval,
		maxPending: maxPending,
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// enqueue adds a sealed tally to the delivery queue and wakes the loop,
// evicting the oldest pending tallies beyond the retention bound.
func (p *tallyPusher) enqueue(t *ldprecover.Tally) {
	p.mu.Lock()
	p.pending = append(p.pending, t)
	var evicted int
	if p.maxPending > 0 && len(p.pending) > p.maxPending {
		evicted = len(p.pending) - p.maxPending
		p.pending = append([]*ldprecover.Tally(nil), p.pending[evicted:]...)
		p.dropped += int64(evicted)
	}
	p.mu.Unlock()
	if evicted > 0 {
		fmt.Printf("tally queue full: dropped %d oldest undelivered epochs (root unreachable beyond -history retention)\n", evicted)
	}
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// pendingCount returns how many tallies await the root's watermark.
func (p *tallyPusher) pendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// droppedCount returns how many undelivered tallies retention evicted.
func (p *tallyPusher) droppedCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// loop pushes pending tallies, re-checking every interval (the root
// seals an epoch only once every frontend delivered, so "accepted but
// not sealed" is the steady state between clock ticks) and backing off
// exponentially when the root is unreachable.
func (p *tallyPusher) loop() {
	defer p.wg.Done()
	backoff := p.interval
	for {
		select {
		case <-p.done:
			// Final flush with a deadline: a durable frontend re-sends on
			// its next boot anyway, so an unreachable root must not hang
			// shutdown. The pause applies after every unfinished pass —
			// "accepted but not sealed yet" must wait for the other
			// frontends' tallies, not hammer the root in a hot loop.
			deadline := time.Now().Add(5 * time.Second)
			for {
				p.pushAll()
				if p.pendingCount() == 0 || !time.Now().Before(deadline) {
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		case <-p.kick:
		case <-time.After(backoff):
		}
		if p.pushAll() {
			backoff = p.interval
		} else if backoff = backoff * 2; backoff > maxPushBackoff {
			backoff = maxPushBackoff
		}
	}
}

// pushAll attempts one delivery pass over the pending queue, oldest
// first, pruning everything the root's watermark covers. It reports
// whether every attempted push got an answer from the root.
func (p *tallyPusher) pushAll() bool {
	p.mu.Lock()
	batch := append([]*ldprecover.Tally(nil), p.pending...)
	p.mu.Unlock()
	ok := true
	watermark := -1
	for _, t := range batch {
		if t.Epoch < watermark {
			continue // already covered by an earlier answer this pass
		}
		resp, err := p.pushOne(t)
		if err != nil {
			p.mu.Lock()
			p.lastErr = err
			p.mu.Unlock()
			ok = false
			break // preserve ordering; retry the whole tail later
		}
		watermark = resp.SealedThrough
	}
	if watermark >= 0 {
		p.mu.Lock()
		kept := p.pending[:0]
		for _, t := range p.pending {
			if t.Epoch >= watermark {
				kept = append(kept, t)
			}
		}
		p.pending = append([]*ldprecover.Tally(nil), kept...)
		if watermark > p.rootSeen {
			p.rootSeen = watermark
		}
		if ok {
			p.lastErr = nil
		}
		p.mu.Unlock()
	}
	return ok
}

// rootWatermark returns the highest sealed-epoch watermark the root has
// reported. The frontend fast-forwards its epoch clock to it before
// sealing, so a node that fell behind the barrier (outage past the
// straggler timeout, in-memory restart) rejoins the shared clock
// instead of issuing stale indices forever.
func (p *tallyPusher) rootWatermark() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rootSeen
}

// pushOne POSTs one tally frame to the root.
func (p *tallyPusher) pushOne(t *ldprecover.Tally) (*tallyResponse, error) {
	frame, err := ldprecover.MarshalTally(t)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Post(p.rootURL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("root answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var tr tallyResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, fmt.Errorf("decoding root answer: %v", err)
	}
	return &tr, nil
}

// close stops the loop after a bounded final flush.
func (p *tallyPusher) close() error {
	close(p.done)
	p.wg.Wait()
	if n := p.pendingCount(); n > 0 {
		p.mu.Lock()
		err := p.lastErr
		p.mu.Unlock()
		return fmt.Errorf("%d sealed tallies undelivered at shutdown (last error: %v); "+
			"a durable frontend re-sends them on next boot", n, err)
	}
	return nil
}

// rootMerge is the root's barrier driver around a SealedMerger: it
// seals complete epochs as they fill, arms the straggler timer while a
// barrier is partially filled, persists each merged seal before
// advancing the advertised watermark, and fail-stops the server when
// persistence breaks (the PR 4 durability policy).
type rootMerge struct {
	merger  *ldprecover.SealedMerger
	snaps   *ldprecover.SnapshotStore // nil when the root is in-memory
	timeout time.Duration             // 0: wait for stragglers forever
	fatal   func(error)

	mu        sync.Mutex
	timer     *time.Timer
	persisted int // durably sealed watermark (== merger's when snaps == nil)
}

func newRootMerge(merger *ldprecover.SealedMerger, snaps *ldprecover.SnapshotStore,
	timeout time.Duration, fatal func(error)) *rootMerge {
	return &rootMerge{merger: merger, snaps: snaps, timeout: timeout, fatal: fatal,
		persisted: merger.SealedThrough()}
}

// rootSealError marks a server-side seal/persist failure surfacing
// through the tally path — a 500-class fault the server also
// fail-stops on, as opposed to a client-visible tally rejection.
type rootSealError struct{ err error }

func (e rootSealError) Error() string { return e.err.Error() }
func (e rootSealError) Unwrap() error { return e.err }

// onTally folds one pushed tally, sealing through the barrier when the
// tally completes it and arming the straggler timer when it starts a
// new partial epoch.
func (r *rootMerge) onTally(t *ldprecover.Tally) (tallyResponse, error) {
	res, err := r.merger.MergeSealed(t)
	if err != nil {
		return tallyResponse{}, err
	}
	if res.Ready {
		if err := r.seal(-1); err != nil {
			r.fatal(err)
			return tallyResponse{}, rootSealError{err}
		}
	} else if !res.Duplicate {
		r.mu.Lock()
		r.armTimerLocked()
		r.mu.Unlock()
	}
	return tallyResponse{Duplicate: res.Duplicate, SealedThrough: r.watermark()}, nil
}

// seal drains the barrier: every complete epoch seals, and with
// forceEpoch >= 0 the barrier epoch additionally seals partial — but
// only while it still *is* epoch forceEpoch and tallies are actually
// waiting. The guard is what makes a stale force harmless: a straggler
// timer (or POST /v1/seal) that fired for epoch N but lost the race to
// N's completing tally must not force-seal an empty N+1 — that would
// advance the barrier past tallies still en route and turn an entire
// epoch's re-sends into stale duplicates. Each merged seal is persisted
// before the watermark moves, so frontends never prune a tally the root
// could forget.
func (r *rootMerge) seal(forceEpoch int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	for {
		est, info, err := r.merger.TrySeal()
		if err != nil {
			return err
		}
		if est == nil {
			if forceEpoch != r.merger.SealedThrough() || !r.merger.BarrierPending() {
				break
			}
			forceEpoch = -1
			if est, info, err = r.merger.SealPartial(); err != nil {
				return err
			}
		}
		if r.snaps != nil {
			if err := r.snaps.Persist(); err != nil {
				return fmt.Errorf("persisting merged epoch %d: %w", info.Epoch, err)
			}
		}
		r.persisted = r.merger.SealedThrough()
		if len(info.Missing) == 0 {
			fmt.Printf("merged epoch %d: %d nodes / %d reports, window estimate seq %d\n",
				info.Epoch, len(info.Nodes), info.Total, est.Seq)
		} else {
			fmt.Printf("merged epoch %d PARTIAL: merged %v, missing %v, %d reports\n",
				info.Epoch, info.Nodes, info.Missing, info.Total)
		}
	}
	r.armTimerLocked()
	return nil
}

// armTimerLocked starts the straggler timer when a barrier is partially
// filled and no timer runs; it disarms when nothing is pending. The
// callback captures the epoch it was armed for, so a timer that fires
// after its epoch sealed cannot force-seal the next one. The caller
// holds r.mu.
func (r *rootMerge) armTimerLocked() {
	if !r.merger.BarrierPending() {
		if r.timer != nil {
			r.timer.Stop()
			r.timer = nil
		}
		return
	}
	if r.timeout <= 0 || r.timer != nil {
		return
	}
	armedFor := r.merger.SealedThrough()
	r.timer = time.AfterFunc(r.timeout, func() {
		r.mu.Lock()
		r.timer = nil
		r.mu.Unlock()
		if err := r.seal(armedFor); err != nil {
			r.fatal(err)
		}
	})
}

// watermark is the sealed-epoch count frontends may prune against: the
// persisted one when the root is durable, the in-memory one otherwise.
func (r *rootMerge) watermark() int {
	if r.snaps == nil {
		return r.merger.SealedThrough()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persisted
}

// errNothingToSeal answers a forced seal on a root whose barrier is
// empty and that has never sealed: there is no epoch to close and no
// estimate to serve. It is an ordinary client-visible condition, not
// the fail-stop kind of seal failure.
var errNothingToSeal = errors.New("no tallies at the barrier and no merged epoch sealed yet")

// forceSeal is the root's sealFn: POST /v1/seal force-closes the
// barrier epoch if tallies are waiting there, then serves the merged
// estimate. With nothing pending it never invents an empty epoch —
// root epochs close on the frontends' clock, and advancing the barrier
// past tallies still en route would discard them as stale.
func (r *rootMerge) forceSeal() (*ldprecover.WindowEstimate, error) {
	if err := r.seal(r.merger.SealedThrough()); err != nil {
		return nil, err
	}
	if est := r.merger.Manager().Latest(); est != nil {
		return est, nil
	}
	return nil, errNothingToSeal
}

// stop disarms the straggler timer (shutdown path).
func (r *rootMerge) stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	if r.snaps != nil {
		return r.snaps.Close()
	}
	return nil
}

// handleTally is the root's ingest endpoint: one CRC-framed sealed
// tally per POST.
func (s *streamServer) handleTally(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a sealed tally frame")
		return
	}
	if s.root == nil {
		httpError(w, http.StatusNotFound, "this node is not a root; tallies go to the -role=root server")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading tally: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading tally: %v", err)
		return
	}
	tally, err := ldprecover.UnmarshalTally(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding tally: %v", err)
		return
	}
	resp, err := s.root.onTally(tally)
	if err != nil {
		// Seal/persist failures are server faults (and fail-stop the
		// server); only tally validation is the client's problem.
		var sealErr rootSealError
		if errors.As(err, &sealErr) {
			httpError(w, http.StatusInternalServerError, "sealing merged epoch: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "merging tally from %q: %v", tally.NodeID, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterStatsResponse is the role-specific stats section.
type clusterStatsResponse struct {
	Role string `json:"role"`
	// Frontend fields.
	NodeID         string `json:"node_id,omitempty"`
	RootAddr       string `json:"root_addr,omitempty"`
	PendingTallies int    `json:"pending_tallies,omitempty"`
	DroppedTallies int64  `json:"dropped_tallies,omitempty"`
	// Root fields.
	Nodes         []string              `json:"nodes,omitempty"`
	SealedThrough int                   `json:"sealed_through,omitempty"`
	Duplicates    int64                 `json:"duplicates,omitempty"`
	Merged        []mergedEpochResponse `json:"merged,omitempty"`
}

// mergedEpochResponse is one sealed epoch's partial-epoch accounting.
type mergedEpochResponse struct {
	Epoch      int      `json:"epoch"`
	Nodes      []string `json:"nodes,omitempty"`
	Missing    []string `json:"missing,omitempty"`
	Total      int64    `json:"total"`
	Duplicates int      `json:"duplicates,omitempty"`
}

// clusterStats builds the role section of /v1/stats, nil in single-node
// mode.
func (s *streamServer) clusterStats() *clusterStatsResponse {
	switch {
	case s.pusher != nil:
		return &clusterStatsResponse{
			Role:           "frontend",
			NodeID:         s.pusher.nodeID,
			RootAddr:       s.pusher.rootURL,
			PendingTallies: s.pusher.pendingCount(),
			DroppedTallies: s.pusher.droppedCount(),
		}
	case s.root != nil:
		cs := &clusterStatsResponse{
			Role:          "root",
			Nodes:         s.root.merger.Nodes(),
			SealedThrough: s.root.watermark(),
			Duplicates:    s.root.merger.Duplicates(),
		}
		for _, m := range s.root.merger.Merged() {
			cs.Merged = append(cs.Merged, mergedEpochResponse{
				Epoch: m.Epoch, Nodes: m.Nodes, Missing: m.Missing,
				Total: m.Total, Duplicates: m.Duplicates,
			})
		}
		return cs
	default:
		return nil
	}
}
