package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ldprecover"
)

// Cluster mode (DESIGN.md §7) splits `ldprecover serve` into two tiers:
//
//   - frontend nodes run the existing ingest pipeline (bounded queue,
//     ShardedAccumulator, optional report-level WAL) over their slice of
//     the user population, seal epochs on the shared epoch clock, and
//     push each sealed epoch's tally to the root over the CRC-framed
//     sealed-tally codec — retrying with backoff until the root's
//     durably sealed watermark passes the tally's epoch;
//   - the root accepts tallies on POST /v1/tally, dedupes them by
//     (node, epoch), holds an epoch barrier until every expected
//     frontend has delivered (or the straggler timeout forces a partial
//     seal), and seals the merged counts into its EpochManager — so the
//     served window estimates, recovered history, and LDPRecover*
//     hysteresis run on exactly the union of reports.
//
// Because tally merging is exact integer addition and epochs seal in
// clock order, the root's estimates are bit-identical to a single-node
// server fed every report; TestClusterEquivalenceE2E pins that.
//
// The two tiers compose into an N-level tree (DESIGN.md §9): a
// -role=merger node runs the root's barrier machinery over its own
// children and a frontend's delivery queue toward its parent — each
// epoch it seals is re-pushed upward as a single merged tally under the
// merger's node id, persisted (when durable) before the push, so the
// at-least-once/dedupe contract holds level by level and the top root's
// estimates stay bit-identical at any depth (TestTreeEquivalenceE2E).
//
// Membership is elastic: a frontend started with -join announces itself
// on POST /v1/membership and begins contributing at the epoch boundary
// the root assigns; one stopped with -leave-on-shutdown retires the
// same way, so the barrier stops waiting for it without a straggler
// timeout. And the root is replaceable: a -role=standby node tails the
// root's snapshots and seal-log, and when the root's lease goes stale
// it promotes in place — frontends started with -standby-addr fail
// over, and their ring re-send makes the switch lose nothing
// (TestClusterElasticFailoverE2E pins all three transitions).

// tallyResponse is the root's answer to a pushed tally.
type tallyResponse struct {
	// Duplicate reports that the tally had already been merged (or its
	// epoch already sealed) and this submission changed nothing.
	Duplicate bool `json:"duplicate"`
	// SealedThrough is the root's sealed-epoch watermark — persisted
	// when the root is durable — up to which frontends may prune their
	// unacked tallies.
	SealedThrough int `json:"sealed_through"`
}

// announceResponse is the root's answer to a join/leave announcement.
type announceResponse struct {
	// Effective is the epoch boundary the change takes effect at: the
	// first epoch a joiner contributes, the first a leaver does not.
	Effective int `json:"effective_epoch"`
	// SealedThrough is the root's sealed watermark, so a joiner can
	// align its epoch clock in the same round trip.
	SealedThrough int `json:"sealed_through"`
}

// defaultPushInterval is how often a frontend re-pushes tallies the
// root has accepted but not yet sealed past (tests shrink it).
const defaultPushInterval = 500 * time.Millisecond

// maxPushBackoff caps the exponential backoff after push failures.
const maxPushBackoff = 5 * time.Second

// shutdownFlushTimeout bounds the pusher's final delivery attempt: a
// durable frontend re-sends on its next boot anyway, so an unreachable
// root must not hang shutdown.
const shutdownFlushTimeout = 5 * time.Second

// failoverAfter is how many consecutive failed delivery passes switch
// the pusher to the next candidate root (the -standby-addr).
const failoverAfter = 2

// tallyPusher is the frontend's delivery side: a FIFO of sealed tallies
// retried in order until the root's sealed watermark covers them.
// Delivery is at-least-once by construction — a tally is retained
// through crashes by the frontend's durable epoch ring and re-enqueued
// on boot — and the root's dedupe makes every re-send a no-op. The
// queue is bounded to the ring's retention: a tally that outlives its
// ring epoch would not survive a restart either, so during a root
// outage longer than -history epochs the oldest pending tallies are
// dropped (counted, logged) rather than growing memory without limit.
//
// urls lists the candidate roots (the root, then the standby, if any);
// after failoverAfter consecutive failed passes the pusher rotates to
// the next candidate and keeps going — dedupe makes it harmless to
// push to a root that already has everything.
type tallyPusher struct {
	nodeID       string
	urls         []string
	client       *http.Client
	interval     time.Duration
	maxPending   int           // 0: unbounded
	flushTimeout time.Duration // bound on the shutdown flush (tests shrink it)

	mu         sync.Mutex
	pending    []*ldprecover.Tally // unacked, epoch ascending
	dropped    int64               // tallies evicted past maxPending
	rootSeen   int                 // highest sealed watermark any answer carried
	lastErr    error               // most recent push failure, for stats/logs
	active     int                 // index into urls currently delivered to
	failStreak int                 // consecutive failed passes on the active url
	failovers  int64               // times the active url rotated

	// backoffRng drives the decorrelated retry jitter. Seeded from the
	// node id so each pusher's schedule is deterministic per node yet
	// distinct across siblings; used only from the loop goroutine.
	backoffRng *rand.Rand

	runCtx    context.Context // canceled at close: in-flight steady-state pushes abort
	runCancel context.CancelFunc
	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

func newTallyPusher(nodeID string, urls []string, interval time.Duration, maxPending int) *tallyPusher {
	if interval <= 0 {
		interval = defaultPushInterval
	}
	ctx, cancel := context.WithCancel(context.Background())
	seed := fnv.New64a()
	seed.Write([]byte(nodeID))
	p := &tallyPusher{
		nodeID:       nodeID,
		urls:         urls,
		client:       &http.Client{Timeout: 10 * time.Second},
		interval:     interval,
		maxPending:   maxPending,
		flushTimeout: shutdownFlushTimeout,
		//ldplint:allow nowallclock push-retry jitter seeded from the node-ID hash; never in the replay path
		backoffRng: rand.New(rand.NewSource(int64(seed.Sum64()))),
		runCtx:       ctx,
		runCancel:    cancel,
		kick:         make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

// url returns the candidate root currently delivered to.
func (p *tallyPusher) url() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.urls[p.active]
}

// enqueue adds a sealed tally to the delivery queue and wakes the loop,
// evicting the oldest pending tallies beyond the retention bound.
func (p *tallyPusher) enqueue(t *ldprecover.Tally) {
	p.mu.Lock()
	p.pending = append(p.pending, t)
	var evicted int
	if p.maxPending > 0 && len(p.pending) > p.maxPending {
		evicted = len(p.pending) - p.maxPending
		p.pending = append([]*ldprecover.Tally(nil), p.pending[evicted:]...)
		p.dropped += int64(evicted)
	}
	p.mu.Unlock()
	if evicted > 0 {
		fmt.Printf("tally queue full: dropped %d oldest undelivered epochs (root unreachable beyond -history retention)\n", evicted)
	}
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// pendingCount returns how many tallies await the root's watermark.
func (p *tallyPusher) pendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// droppedCount returns how many undelivered tallies retention evicted.
func (p *tallyPusher) droppedCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// failoverCount returns how many times delivery rotated roots.
func (p *tallyPusher) failoverCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failovers
}

// loop pushes pending tallies, re-checking every interval (the root
// seals an epoch only once every frontend delivered, so "accepted but
// not sealed" is the steady state between clock ticks) and backing off
// with decorrelated jitter when the root is unreachable. Every wait
// selects on the stop channel: shutdown never sits out a backoff or an
// in-flight retry against a dead root.
func (p *tallyPusher) loop() {
	defer p.wg.Done()
	backoff := p.interval
	for {
		select {
		case <-p.done:
			p.finalFlush()
			return
		case <-p.kick:
		//ldplint:allow nowallclock push-loop retry pacing; estimates never depend on it
		case <-time.After(backoff):
		}
		if p.pushAll(p.runCtx) {
			backoff = p.interval
		} else {
			backoff = p.nextBackoff(backoff)
		}
	}
}

// nextBackoff picks the retry delay after a failed pass: uniform in
// [interval, 3*prev), capped at maxPushBackoff — decorrelated jitter
// rather than plain doubling. When a root restart leaves every child
// with a failed pass at the same instant, synchronized exponential
// schedules would keep the whole tier retrying in lockstep bursts;
// jittered schedules diverge after the first round, and the per-node
// seed keeps each node's sequence reproducible for debugging. Only the
// loop goroutine calls this.
func (p *tallyPusher) nextBackoff(prev time.Duration) time.Duration {
	span := 3*prev - p.interval
	next := p.interval + time.Duration(p.backoffRng.Float64()*float64(span))
	if next > maxPushBackoff {
		next = maxPushBackoff
	}
	return next
}

// finalFlush is the shutdown delivery attempt, bounded as a whole by
// shutdownFlushTimeout: the context caps every request in flight, and
// the pass pacing — "accepted but not sealed yet" must wait for the
// other frontends' tallies, not hammer the root in a hot loop — aborts
// the moment the deadline passes instead of sleeping through it.
func (p *tallyPusher) finalFlush() {
	ctx, cancel := context.WithTimeout(context.Background(), p.flushTimeout)
	defer cancel()
	for {
		p.pushAll(ctx)
		if p.pendingCount() == 0 || ctx.Err() != nil {
			return
		}
		select {
		//ldplint:allow nowallclock shutdown flush retry pacing
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return
		}
	}
}

// pushAll attempts one delivery pass over the pending queue, oldest
// first, pruning everything the root's watermark covers. It reports
// whether every attempted push got an answer from the root, and rotates
// to the next candidate root after failoverAfter consecutive failed
// passes.
func (p *tallyPusher) pushAll(ctx context.Context) bool {
	p.mu.Lock()
	batch := append([]*ldprecover.Tally(nil), p.pending...)
	p.mu.Unlock()
	ok := true
	watermark := -1
	for _, t := range batch {
		if t.Epoch < watermark {
			continue // already covered by an earlier answer this pass
		}
		resp, err := p.pushOne(ctx, t)
		if err != nil {
			p.mu.Lock()
			p.lastErr = err
			p.mu.Unlock()
			ok = false
			break // preserve ordering; retry the whole tail later
		}
		watermark = resp.SealedThrough
	}
	if watermark >= 0 {
		p.mu.Lock()
		kept := p.pending[:0]
		for _, t := range p.pending {
			if t.Epoch >= watermark {
				kept = append(kept, t)
			}
		}
		p.pending = append([]*ldprecover.Tally(nil), kept...)
		if watermark > p.rootSeen {
			p.rootSeen = watermark
		}
		if ok {
			p.lastErr = nil
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	if ok {
		p.failStreak = 0
	} else if len(batch) > 0 && ctx.Err() == nil {
		if p.failStreak++; p.failStreak >= failoverAfter && len(p.urls) > 1 {
			p.active = (p.active + 1) % len(p.urls)
			p.failStreak = 0
			p.failovers++
			fmt.Printf("frontend %q: tally delivery failing, switching to %s\n", p.nodeID, p.urls[p.active])
		}
	}
	p.mu.Unlock()
	return ok
}

// rootWatermark returns the highest sealed-epoch watermark the root has
// reported. The frontend fast-forwards its epoch clock to it before
// sealing, so a node that fell behind the barrier (outage past the
// straggler timeout, in-memory restart) rejoins the shared clock
// instead of issuing stale indices forever.
func (p *tallyPusher) rootWatermark() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rootSeen
}

// noteWatermark folds a watermark learnt outside the push path (a join
// announcement's answer) into the clock-resync state.
func (p *tallyPusher) noteWatermark(w int) {
	p.mu.Lock()
	if w > p.rootSeen {
		p.rootSeen = w
	}
	p.mu.Unlock()
}

// pushOne POSTs one tally frame to the active root.
func (p *tallyPusher) pushOne(ctx context.Context, t *ldprecover.Tally) (*tallyResponse, error) {
	frame, err := ldprecover.MarshalTally(t)
	if err != nil {
		return nil, err
	}
	var tr tallyResponse
	if err := p.post(ctx, "/v1/tally", frame, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// announce sends a join/leave announcement to the active root. epoch is
// the requested boundary (leave: the first epoch this node will not
// contribute); the answer carries the boundary the root assigned.
func (p *tallyPusher) announce(ctx context.Context, kind ldprecover.AnnounceKind, epoch int) (*announceResponse, error) {
	frame, err := ldprecover.MarshalAnnounce(&ldprecover.Announce{NodeID: p.nodeID, Kind: kind, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var ar announceResponse
	if err := p.post(ctx, "/v1/membership", frame, &ar); err != nil {
		return nil, err
	}
	p.noteWatermark(ar.SealedThrough)
	return &ar, nil
}

// post delivers one frame to the active root and decodes the JSON
// answer into out.
func (p *tallyPusher) post(ctx context.Context, path string, frame []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url()+path, bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("root answered %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding root answer: %v", err)
	}
	return nil
}

// close stops the loop after a bounded final flush. In-flight
// steady-state pushes are aborted immediately — the flush re-sends
// anything they would have delivered.
func (p *tallyPusher) close() error {
	p.runCancel()
	close(p.done)
	p.wg.Wait()
	if n := p.pendingCount(); n > 0 {
		p.mu.Lock()
		err := p.lastErr
		p.mu.Unlock()
		return fmt.Errorf("%d sealed tallies undelivered at shutdown (last error: %v); "+
			"a durable frontend re-sends them on next boot", n, err)
	}
	return nil
}

// rootMerge is the root's barrier driver around a SealedMerger: it
// seals complete epochs as they fill, arms the straggler timer while a
// barrier is partially filled, persists each merged seal (snapshot,
// then seal-log record) before advancing the advertised watermark,
// journals membership changes before acking them, heartbeats the data
// directory's lease, and fail-stops the server when persistence breaks
// (the PR 4 durability policy).
type rootMerge struct {
	merger  *ldprecover.SealedMerger
	snaps   *ldprecover.SnapshotStore // nil when the root is in-memory
	slog    *ldprecover.SealLog       // nil when the root is in-memory
	timeout time.Duration             // 0: wait for stragglers forever
	fatal   func(error)

	// onSealed, when set, is invoked under r.mu for every epoch this
	// barrier seals, after the seal has been persisted and the watermark
	// advanced. An interior merger (-role=merger) uses it to enqueue the
	// just-merged epoch for delivery to its own parent — persist before
	// push, so the parent never acks a tally this node could forget.
	onSealed func(epoch int)

	mu        sync.Mutex
	timer     *time.Timer
	persisted int // durably sealed watermark (== merger's when snaps == nil)

	lease     *ldprecover.Lease
	leaseStop chan struct{}
	leaseWG   sync.WaitGroup
}

func newRootMerge(merger *ldprecover.SealedMerger, snaps *ldprecover.SnapshotStore,
	slog *ldprecover.SealLog, timeout time.Duration, fatal func(error)) *rootMerge {
	return &rootMerge{merger: merger, snaps: snaps, slog: slog, timeout: timeout, fatal: fatal,
		persisted: merger.SealedThrough()}
}

// startLease begins heartbeating the held lease. A failed heartbeat
// means this root was superseded (a standby promoted over it) — the
// only safe move is to fail-stop before merging anything more.
func (r *rootMerge) startLease(l *ldprecover.Lease, interval time.Duration) {
	r.lease = l
	r.leaseStop = make(chan struct{})
	r.leaseWG.Add(1)
	go func() {
		defer r.leaseWG.Done()
		//ldplint:allow nowallclock lease heartbeat is wall-clock liveness by design
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.leaseStop:
				return
			case <-t.C:
				if err := l.Refresh(); err != nil {
					r.fatal(fmt.Errorf("root lease heartbeat: %w", err))
					return
				}
			}
		}
	}()
}

// rootSealError marks a server-side seal/persist failure surfacing
// through the tally path — a 500-class fault the server also
// fail-stops on, as opposed to a client-visible tally rejection.
type rootSealError struct{ err error }

func (e rootSealError) Error() string { return e.err.Error() }
func (e rootSealError) Unwrap() error { return e.err }

// onTally folds one pushed tally, sealing through the barrier when the
// tally completes it and arming the straggler timer when it starts a
// new partial epoch.
func (r *rootMerge) onTally(t *ldprecover.Tally) (tallyResponse, error) {
	res, err := r.merger.MergeSealed(t)
	if err != nil {
		return tallyResponse{}, err
	}
	if res.Ready {
		if err := r.seal(-1); err != nil {
			r.fatal(err)
			return tallyResponse{}, rootSealError{err}
		}
	} else if !res.Duplicate {
		r.mu.Lock()
		r.armTimerLocked()
		r.mu.Unlock()
	}
	return tallyResponse{Duplicate: res.Duplicate, SealedThrough: r.watermark()}, nil
}

// onAnnounce applies one membership announcement. The resulting
// membership state is journaled to the seal-log *before* the change is
// acked — a joiner that got its effective epoch must still be expected
// after a root restart. A leave that removes the barrier's last
// straggler seals through it.
func (r *rootMerge) onAnnounce(a *ldprecover.Announce) (announceResponse, error) {
	var (
		eff   int
		ready bool
		err   error
	)
	switch a.Kind {
	case ldprecover.AnnounceJoin:
		eff, err = r.merger.Join(a.NodeID)
	case ldprecover.AnnounceLeave:
		eff, ready, err = r.merger.Leave(a.NodeID, a.Epoch)
	default:
		err = fmt.Errorf("unknown announce kind %v", a.Kind)
	}
	if err != nil {
		return announceResponse{}, err
	}
	if r.slog != nil {
		members, sched := r.merger.Membership()
		if err := r.slog.Append(ldprecover.SealRecord{
			Kind: ldprecover.SealRecordMember, Epoch: eff,
			Node: a.NodeID, Join: a.Kind == ldprecover.AnnounceJoin,
			Members: members, Sched: sched,
		}); err != nil {
			err = fmt.Errorf("journaling membership change for %q: %w", a.NodeID, err)
			r.fatal(err)
			return announceResponse{}, rootSealError{err}
		}
	}
	if ready {
		if err := r.seal(-1); err != nil {
			r.fatal(err)
			return announceResponse{}, rootSealError{err}
		}
	} else {
		r.mu.Lock()
		r.armTimerLocked()
		r.mu.Unlock()
	}
	fmt.Printf("membership: %s %q effective at epoch %d\n", a.Kind, a.NodeID, eff)
	return announceResponse{Effective: eff, SealedThrough: r.watermark()}, nil
}

// seal drains the barrier: every complete epoch seals, and with
// forceEpoch >= 0 the barrier epoch additionally seals partial — but
// only while it still *is* epoch forceEpoch and tallies are actually
// waiting. The guard is what makes a stale force harmless: a straggler
// timer (or POST /v1/seal) that fired for epoch N but lost the race to
// N's completing tally must not force-seal an empty N+1 — that would
// advance the barrier past tallies still en route and turn an entire
// epoch's re-sends into stale duplicates. Each merged seal is persisted
// (snapshot, then seal-log record) before the watermark moves, so
// frontends never prune a tally the root could forget.
func (r *rootMerge) seal(forceEpoch int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	for {
		est, info, err := r.merger.TrySeal()
		if err != nil {
			return err
		}
		if est == nil {
			if forceEpoch != r.merger.SealedThrough() || !r.merger.BarrierPending() {
				break
			}
			forceEpoch = -1
			if est, info, err = r.merger.SealPartial(); err != nil {
				return err
			}
		}
		if r.snaps != nil {
			if err := r.snaps.Persist(); err != nil {
				return fmt.Errorf("persisting merged epoch %d: %w", info.Epoch, err)
			}
		}
		if r.slog != nil {
			members, sched := r.merger.Membership()
			if err := r.slog.Append(ldprecover.SealRecord{
				Kind: ldprecover.SealRecordSeal, Epoch: info.Epoch,
				Nodes: info.Nodes, Missing: info.Missing,
				Members: members, Sched: sched,
			}); err != nil {
				return fmt.Errorf("journaling merged epoch %d: %w", info.Epoch, err)
			}
		}
		r.persisted = r.merger.SealedThrough()
		if r.onSealed != nil {
			r.onSealed(info.Epoch)
		}
		if len(info.Missing) == 0 {
			fmt.Printf("merged epoch %d: %d nodes / %d reports, window estimate seq %d\n",
				info.Epoch, len(info.Nodes), info.Total, est.Seq)
		} else {
			fmt.Printf("merged epoch %d PARTIAL: merged %v, missing %v, %d reports\n",
				info.Epoch, info.Nodes, info.Missing, info.Total)
		}
	}
	r.armTimerLocked()
	return nil
}

// armTimerLocked starts the straggler timer when a barrier is partially
// filled and no timer runs; it disarms when nothing is pending. The
// callback captures the epoch it was armed for, so a timer that fires
// after its epoch sealed cannot force-seal the next one. The caller
// holds r.mu.
func (r *rootMerge) armTimerLocked() {
	if !r.merger.BarrierPending() {
		if r.timer != nil {
			r.timer.Stop()
			r.timer = nil
		}
		return
	}
	if r.timeout <= 0 || r.timer != nil {
		return
	}
	armedFor := r.merger.SealedThrough()
	//ldplint:allow nowallclock straggler timeout arms the barrier's partial-epoch seal; a liveness bound, not a fold input
	r.timer = time.AfterFunc(r.timeout, func() {
		r.mu.Lock()
		r.timer = nil
		r.mu.Unlock()
		if err := r.seal(armedFor); err != nil {
			r.fatal(err)
		}
	})
}

// watermark is the sealed-epoch count frontends may prune against: the
// persisted one when the root is durable, the in-memory one otherwise.
func (r *rootMerge) watermark() int {
	if r.snaps == nil {
		return r.merger.SealedThrough()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persisted
}

// errNothingToSeal answers a forced seal on a root whose barrier is
// empty and that has never sealed: there is no epoch to close and no
// estimate to serve. It is an ordinary client-visible condition, not
// the fail-stop kind of seal failure.
var errNothingToSeal = errors.New("no tallies at the barrier and no merged epoch sealed yet")

// forceSeal is the root's sealFn: POST /v1/seal force-closes the
// barrier epoch if tallies are waiting there, then serves the merged
// estimate. With nothing pending it never invents an empty epoch —
// root epochs close on the frontends' clock, and advancing the barrier
// past tallies still en route would discard them as stale.
func (r *rootMerge) forceSeal() (*ldprecover.WindowEstimate, error) {
	if err := r.seal(r.merger.SealedThrough()); err != nil {
		return nil, err
	}
	if est := r.merger.Manager().Latest(); est != nil {
		return est, nil
	}
	return nil, errNothingToSeal
}

// stop disarms the straggler timer, stops the lease heartbeat and
// releases the lease, and closes the seal-log and snapshot store
// (shutdown path).
func (r *rootMerge) stop() error {
	var errs []error
	if r.leaseStop != nil {
		close(r.leaseStop)
		r.leaseWG.Wait()
		errs = append(errs, r.lease.Release())
	}
	r.mu.Lock()
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	if r.slog != nil {
		errs = append(errs, r.slog.Close())
	}
	if r.snaps != nil {
		errs = append(errs, r.snaps.Close())
	}
	r.mu.Unlock()
	return errors.Join(errs...)
}

// errStandbyNotPromoted answers write-path requests on a standby that
// has not taken over yet — the root is still the cluster's merge front.
var errStandbyNotPromoted = errors.New("this standby has not been promoted; the root is still serving")

// standbyControl is the -role=standby machinery: it tails the root's
// data directory to keep a warm manager, health-checks the root, and
// when the root has been unreachable past -promote-after AND its lease
// has gone stale, promotes — acquiring the lease, wrapping the warm
// state in a rootMerge, and swapping it into the server, which from
// then on behaves exactly like a -role=root node.
type standbyControl struct {
	tailer       *ldprecover.StandbyTailer
	dataDir      string
	rootAddr     string
	owner        string
	fallback     []string // -nodes, used only when the seal-log is empty
	promoteAfter time.Duration
	pollEvery    time.Duration
	tallyTimeout time.Duration
	client       *http.Client
	srv          *streamServer

	root       atomic.Pointer[rootMerge] // non-nil once promoted
	promotedAt atomic.Int64              // snapshot seq at promotion, for stats

	stopc chan struct{}
	wg    sync.WaitGroup
}

// start launches the tail/health/promotion loop.
func (c *standbyControl) start() {
	c.stopc = make(chan struct{})
	c.wg.Add(1)
	go c.loop()
}

// loop is the standby's watch cycle. It exits once promoted (the
// rootMerge takes over) or when the server shuts down.
func (c *standbyControl) loop() {
	defer c.wg.Done()
	//ldplint:allow nowallclock standby health watch is wall-clock liveness by design
	lastHealthy := time.Now()
	//ldplint:allow nowallclock standby poll ticker is wall-clock liveness by design
	t := time.NewTicker(c.pollEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case <-t.C:
		}
		if _, err := c.tailer.Poll(); err != nil {
			fmt.Printf("standby %q: tailing snapshots: %v\n", c.owner, err)
		}
		if c.rootHealthy() {
			//ldplint:allow nowallclock standby health watch is wall-clock liveness by design
			lastHealthy = time.Now()
			continue
		}
		//ldplint:allow nowallclock promotion delay is a wall-clock liveness bound
		if time.Since(lastHealthy) < c.promoteAfter {
			continue
		}
		if err := c.promote(); err != nil {
			// Typically the lease is still fresh — the root is cut off
			// from us but alive, or another standby won. Keep watching.
			fmt.Printf("standby %q: promotion blocked: %v\n", c.owner, err)
			continue
		}
		return
	}
}

// rootHealthy probes the root's stats endpoint.
func (c *standbyControl) rootHealthy() bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.pollEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.rootAddr+"/v1/stats", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// promote performs the takeover: lease first (refusing while the old
// root's heartbeat is fresh — the split-brain guard), then the warm
// merger from the last snapshot + seal-log membership, then the
// rootMerge swap that turns this server into the root. Frontends find
// it via -standby-addr; their ring re-send replays anything the old
// root accepted but never durably sealed.
func (c *standbyControl) promote() error {
	lease, err := ldprecover.AcquireLease(c.dataDir, c.owner, c.promoteAfter)
	if err != nil {
		return err
	}
	merger, err := c.tailer.Promote(c.fallback)
	if err != nil {
		return errors.Join(err, lease.Release())
	}
	snaps, err := ldprecover.AttachSnapshotStore(c.dataDir, merger.Manager(), 0)
	if err != nil {
		return errors.Join(err, lease.Release())
	}
	slog, err := ldprecover.OpenSealLog(c.dataDir)
	if err != nil {
		return errors.Join(err, lease.Release())
	}
	rm := newRootMerge(merger, snaps, slog, c.tallyTimeout, c.srv.reportFatal)
	rm.startLease(lease, leaseHeartbeat(c.promoteAfter))
	c.promotedAt.Store(int64(merger.SealedThrough()))
	c.root.Store(rm)
	c.srv.sealMu.Lock()
	c.srv.sealFn = rm.forceSeal
	c.srv.sealMu.Unlock()
	fmt.Printf("standby %q PROMOTED: serving as root at watermark %d, members %v\n",
		c.owner, merger.SealedThrough(), merger.Nodes())
	return nil
}

// stop ends the watch loop (a promoted standby's rootMerge is stopped
// by the server like any root's).
func (c *standbyControl) stop() {
	if c.stopc != nil {
		close(c.stopc)
		c.wg.Wait()
	}
}

// leaseHeartbeat derives the heartbeat period from the staleness
// threshold: several beats must fit comfortably inside it.
func leaseHeartbeat(staleAfter time.Duration) time.Duration {
	hb := staleAfter / 4
	if hb < 50*time.Millisecond {
		hb = 50 * time.Millisecond
	}
	return hb
}

// currentRoot returns the barrier driver this server is merging with:
// the configured one on -role=root, the promoted one on a standby that
// took over, nil otherwise.
func (s *streamServer) currentRoot() *rootMerge {
	if s.root != nil {
		return s.root
	}
	if s.standby != nil {
		return s.standby.root.Load()
	}
	return nil
}

// handleTally is the root's ingest endpoint: one CRC-framed sealed
// tally per POST.
func (s *streamServer) handleTally(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a sealed tally frame")
		return
	}
	root := s.currentRoot()
	if root == nil {
		if s.standby != nil {
			httpError(w, http.StatusServiceUnavailable, "this standby has not been promoted; the root is still serving")
			return
		}
		httpError(w, http.StatusNotFound, "this node is not a root; tallies go to the -role=root server")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading tally: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading tally: %v", err)
		return
	}
	tally, err := ldprecover.UnmarshalTally(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding tally: %v", err)
		return
	}
	resp, err := root.onTally(tally)
	if err != nil {
		// Seal/persist failures are server faults (and fail-stop the
		// server); only tally validation is the client's problem.
		var sealErr rootSealError
		if errors.As(err, &sealErr) {
			httpError(w, http.StatusInternalServerError, "sealing merged epoch: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "merging tally from %q: %v", tally.NodeID, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMembership is the root's join/leave endpoint: one CRC-framed
// announcement per POST, answered with the effective epoch boundary.
func (s *streamServer) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a membership announce frame")
		return
	}
	root := s.currentRoot()
	if root == nil {
		if s.standby != nil {
			httpError(w, http.StatusServiceUnavailable, "this standby has not been promoted; announce to the root")
			return
		}
		httpError(w, http.StatusNotFound, "this node is not a root; membership changes go to the -role=root server")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading announce: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading announce: %v", err)
		return
	}
	a, err := ldprecover.UnmarshalAnnounce(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding announce: %v", err)
		return
	}
	resp, err := root.onAnnounce(a)
	if err != nil {
		var sealErr rootSealError
		if errors.As(err, &sealErr) {
			httpError(w, http.StatusInternalServerError, "applying membership change: %v", err)
			return
		}
		// Membership conflicts — a stranger leaving, the last member
		// leaving — are the client's state being wrong, not a bad frame.
		httpError(w, http.StatusConflict, "membership change for %q: %v", a.NodeID, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterStatsResponse is the role-specific stats section.
type clusterStatsResponse struct {
	Role string `json:"role"`
	// Frontend fields.
	NodeID         string `json:"node_id,omitempty"`
	RootAddr       string `json:"root_addr,omitempty"`
	PendingTallies int    `json:"pending_tallies,omitempty"`
	DroppedTallies int64  `json:"dropped_tallies,omitempty"`
	Failovers      int64  `json:"failovers,omitempty"`
	// Root fields (also set on a promoted standby).
	Nodes         []string              `json:"nodes,omitempty"`
	SealedThrough int                   `json:"sealed_through,omitempty"`
	Duplicates    int64                 `json:"duplicates,omitempty"`
	Merged        []mergedEpochResponse `json:"merged,omitempty"`
	// Standby fields.
	Promoted    bool `json:"promoted,omitempty"`
	SnapshotSeq int  `json:"snapshot_seq,omitempty"`
}

// mergedEpochResponse is one sealed epoch's partial-epoch accounting.
type mergedEpochResponse struct {
	Epoch      int              `json:"epoch"`
	Nodes      []string         `json:"nodes,omitempty"`
	Missing    []string         `json:"missing,omitempty"`
	NodeTotals map[string]int64 `json:"node_totals,omitempty"`
	Total      int64            `json:"total"`
	Duplicates int              `json:"duplicates,omitempty"`
}

// clusterStats builds the role section of /v1/stats, nil in single-node
// mode. A merger carries both halves: the barrier it runs over its
// children and the delivery queue toward its parent.
func (s *streamServer) clusterStats() *clusterStatsResponse {
	root := s.currentRoot()
	if s.pusher != nil && root == nil {
		return &clusterStatsResponse{
			Role:           "frontend",
			NodeID:         s.pusher.nodeID,
			RootAddr:       s.pusher.url(),
			PendingTallies: s.pusher.pendingCount(),
			DroppedTallies: s.pusher.droppedCount(),
			Failovers:      s.pusher.failoverCount(),
		}
	}
	if root == nil && s.standby == nil {
		return nil
	}
	if root == nil {
		// An unpromoted standby: report what it has tailed so far.
		seq, _ := s.standby.tailer.SnapshotSeq()
		return &clusterStatsResponse{Role: "standby", SnapshotSeq: seq}
	}
	cs := &clusterStatsResponse{
		Role:          "root",
		Nodes:         root.merger.Nodes(),
		SealedThrough: root.watermark(),
		Duplicates:    root.merger.Duplicates(),
	}
	if s.standby != nil {
		cs.Role = "standby"
		cs.Promoted = true
	}
	if s.pusher != nil {
		cs.Role = "merger"
		cs.NodeID = s.pusher.nodeID
		cs.RootAddr = s.pusher.url()
		cs.PendingTallies = s.pusher.pendingCount()
		cs.DroppedTallies = s.pusher.droppedCount()
		cs.Failovers = s.pusher.failoverCount()
	}
	for _, m := range root.merger.Merged() {
		cs.Merged = append(cs.Merged, mergedEpochResponse{
			Epoch: m.Epoch, Nodes: m.Nodes, Missing: m.Missing,
			NodeTotals: m.NodeTotals, Total: m.Total, Duplicates: m.Duplicates,
		})
	}
	return cs
}
