package main

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ldprecover"
)

// runRecover post-processes an existing poisoned frequency vector.
func runRecover(args []string) error {
	fs := newFlagSet("recover")
	var (
		in      = fs.String("in", "", "input CSV of poisoned frequencies (item,frequency); required")
		out     = fs.String("out", "", "output CSV path (default stdout)")
		protoN  = fs.String("protocol", "oue", "protocol the frequencies came from: grr, oue, olh")
		eps     = fs.Float64("epsilon", 0.5, "privacy budget used during collection")
		eta     = fs.Float64("eta", ldprecover.DefaultEta, "assumed malicious/genuine ratio")
		targets = fs.String("targets", "", "comma-separated target items for LDPRecover* (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("recover: -in is required")
	}

	poisoned, err := loadFrequencyCSV(*in)
	if err != nil {
		return err
	}
	proto, err := buildProtocol(*protoN, len(poisoned), *eps)
	if err != nil {
		return err
	}
	opts := ldprecover.Options{Eta: *eta}
	if *targets != "" {
		ts, err := parseTargets(*targets)
		if err != nil {
			return err
		}
		opts.Targets = ts
	}
	res, err := ldprecover.Recover(poisoned, proto.Params(), opts)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeFrequencyCSV(w, res.Frequencies); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recovered %d frequencies (eta=%g, malicious sum %.4f, partial=%v)\n",
		len(res.Frequencies), res.Eta, res.MaliciousSum, res.PartialKnowledge)
	return nil
}

// loadFrequencyCSV reads "item,frequency" rows covering items 0..d-1.
func loadFrequencyCSV(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: empty file", path)
	}
	if _, err := strconv.Atoi(rows[0][0]); err != nil {
		rows = rows[1:] // header
	}
	freqs := make([]float64, len(rows))
	seen := make([]bool, len(rows))
	for i, rec := range rows {
		item, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%s row %d: bad item %q", path, i, rec[0])
		}
		if item < 0 || item >= len(rows) || seen[item] {
			return nil, fmt.Errorf("%s row %d: item %d invalid or duplicate", path, i, item)
		}
		seen[item] = true
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s row %d: bad frequency %q", path, i, rec[1])
		}
		freqs[item] = v
	}
	return freqs, nil
}

// writeFrequencyCSV writes "item,frequency" rows.
func writeFrequencyCSV(w io.Writer, freqs []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("item,frequency\n"); err != nil {
		return err
	}
	for v, f := range freqs {
		if _, err := fmt.Fprintf(bw, "%d,%.10g\n", v, f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseTargets parses "3,7,11" into a target list.
func parseTargets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad target %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("no targets parsed")
	}
	return out, nil
}
