package main

import (
	"fmt"
	"strings"

	"ldprecover"
)

// runDemo simulates the full pipeline: dataset -> LDP collection ->
// poisoning attack -> LDPRecover / LDPRecover* -> metrics report.
func runDemo(args []string) error {
	fs := newFlagSet("demo")
	var (
		corpus  = fs.String("corpus", "ipums", "dataset: ipums, fire, or zipf")
		d       = fs.Int("d", 100, "domain size (zipf corpus)")
		n       = fs.Int64("n", 100000, "users (zipf corpus)")
		zs      = fs.Float64("zipf", 1.0, "zipf exponent (zipf corpus)")
		scale   = fs.Float64("scale", 0.1, "dataset scale factor")
		protoN  = fs.String("protocol", "oue", "protocol: grr, oue, olh")
		attackN = fs.String("attack", "mga", "attack: manip, mga, aa, mga-ipa")
		eps     = fs.Float64("epsilon", 0.5, "privacy budget")
		beta    = fs.Float64("beta", 0.05, "fraction of malicious users m/(n+m)")
		eta     = fs.Float64("eta", ldprecover.DefaultEta, "assumed malicious/genuine ratio")
		r       = fs.Int("r", 10, "number of target items (targeted attacks)")
		seed    = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ds  *ldprecover.Dataset
		err error
	)
	switch *corpus {
	case "ipums":
		ds = ldprecover.SyntheticIPUMS()
	case "fire":
		ds = ldprecover.SyntheticFire()
	case "zipf":
		ds, err = ldprecover.ZipfDataset("zipf", *d, *n, *zs)
	default:
		return fmt.Errorf("unknown corpus %q", *corpus)
	}
	if err != nil {
		return err
	}
	if *scale != 1 {
		if ds, err = ds.Scaled(*scale); err != nil {
			return err
		}
	}

	rand := ldprecover.NewRand(*seed)
	proto, err := buildProtocol(*protoN, ds.Domain(), *eps)
	if err != nil {
		return err
	}

	// Genuine collection.
	genuine, err := ldprecover.PerturbAll(proto, rand, ds.Counts)
	if err != nil {
		return err
	}
	genuineEst, err := ldprecover.EstimateFrequencies(genuine, proto.Params())
	if err != nil {
		return err
	}

	// Attack.
	nUsers := ds.N()
	m := int64(float64(nUsers) * *beta / (1 - *beta))
	atk, targets, err := buildAttack(rand, strings.ToLower(*attackN), ds.Domain(), *r)
	if err != nil {
		return err
	}
	malicious, err := atk.CraftReports(rand, proto, m)
	if err != nil {
		return err
	}
	all := append(append([]ldprecover.Report{}, genuine...), malicious...)
	poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		return err
	}

	// Recovery.
	res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{Eta: *eta})
	if err != nil {
		return err
	}
	var resStar *ldprecover.Result
	if targets != nil {
		if resStar, err = ldprecover.RecoverWithTargets(poisoned, proto.Params(), targets, *eta); err != nil {
			return err
		}
	}

	// Report.
	trueF := ds.Frequencies()
	report := func(label string, est []float64) error {
		mse, err := ldprecover.MSE(est, trueF)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("  %-22s MSE %.3E", label, mse)
		if targets != nil {
			fg, err := ldprecover.FrequencyGain(est, genuineEst, targets)
			if err != nil {
				return err
			}
			line += fmt.Sprintf("   FG %+.4f", fg)
		}
		fmt.Println(line)
		return nil
	}

	fmt.Printf("dataset %s: %d items, %d genuine users, %d malicious (beta=%g)\n",
		ds.Name, ds.Domain(), nUsers, m, *beta)
	fmt.Printf("protocol %s (epsilon=%g)  attack %s  eta=%g\n\n",
		proto.Name(), *eps, atk.Name(), *eta)
	if err := report("unpoisoned estimate", genuineEst); err != nil {
		return err
	}
	if err := report("poisoned (before)", poisoned); err != nil {
		return err
	}
	if err := report("LDPRecover", res.Frequencies); err != nil {
		return err
	}
	if resStar != nil {
		if err := report("LDPRecover*", resStar.Frequencies); err != nil {
			return err
		}
	}
	return nil
}

func buildProtocol(name string, d int, eps float64) (ldprecover.Protocol, error) {
	switch strings.ToLower(name) {
	case "grr":
		return ldprecover.NewGRR(d, eps)
	case "oue":
		return ldprecover.NewOUE(d, eps)
	case "olh":
		return ldprecover.NewOLH(d, eps)
	default:
		return nil, fmt.Errorf("unknown protocol %q (want grr, oue, olh)", name)
	}
}

func buildAttack(rand *ldprecover.Rand, name string, d, r int) (ldprecover.Attack, []int, error) {
	switch name {
	case "manip":
		a, err := ldprecover.NewManip(0.5, rand.Uint64())
		return a, nil, err
	case "mga":
		targets, err := ldprecover.RandomTargets(rand, d, r)
		if err != nil {
			return nil, nil, err
		}
		a, err := ldprecover.NewMGA(targets)
		return a, targets, err
	case "aa":
		a, err := ldprecover.NewRandomAdaptive(rand, d)
		return a, nil, err
	case "mga-ipa":
		targets, err := ldprecover.RandomTargets(rand, d, r)
		if err != nil {
			return nil, nil, err
		}
		a, err := ldprecover.NewMGAIPA(targets, d)
		return a, targets, err
	default:
		return nil, nil, fmt.Errorf("unknown attack %q (want manip, mga, aa, mga-ipa)", name)
	}
}
