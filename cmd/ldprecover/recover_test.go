package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ldprecover"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("3, 7,11")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 11 {
		t.Fatalf("targets %v", got)
	}
	if _, err := parseTargets(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseTargets("a,b"); err == nil {
		t.Fatal("non-numeric accepted")
	}
	got, err = parseTargets("5,") // trailing comma tolerated
	if err != nil || len(got) != 1 || got[0] != 5 {
		t.Fatalf("targets %v (err %v)", got, err)
	}
}

func TestFrequencyCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "freqs.csv")
	want := []float64{0.5, 0.25, 0.15, 0.1}
	var buf bytes.Buffer
	if err := writeFrequencyCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadFrequencyCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("freqs %v want %v", got, want)
		}
	}
}

func TestLoadFrequencyCSVErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"empty.csv":     "",
		"dup.csv":       "0,0.5\n0,0.5\n",
		"gap.csv":       "0,0.5\n5,0.5\n",
		"badfreq.csv":   "0,zzz\n",
		"badfields.csv": "0,0.5,9\n",
	}
	for name, content := range cases {
		if _, err := loadFrequencyCSV(write(name, content)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := loadFrequencyCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Header row is tolerated.
	p := write("hdr.csv", "item,frequency\n0,0.6\n1,0.4\n")
	fs, err := loadFrequencyCSV(p)
	if err != nil || len(fs) != 2 {
		t.Fatalf("header file: %v (err %v)", fs, err)
	}
}

func TestBuildProtocol(t *testing.T) {
	for _, name := range []string{"grr", "OUE", "olh"} {
		p, err := buildProtocol(name, 10, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Params().Domain != 10 {
			t.Fatalf("%s: domain %d", name, p.Params().Domain)
		}
	}
	if _, err := buildProtocol("nope", 10, 0.5); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := buildProtocol("grr", 1, 0.5); err == nil {
		t.Fatal("bad domain accepted")
	}
}

func TestBuildAttack(t *testing.T) {
	r := ldprecover.NewRand(123)
	for _, name := range []string{"manip", "mga", "aa", "mga-ipa"} {
		a, targets, err := buildAttack(r, name, 20, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a == nil {
			t.Fatalf("%s: nil attack", name)
		}
		targeted := name == "mga" || name == "mga-ipa"
		if targeted && len(targets) != 5 {
			t.Fatalf("%s: targets %v", name, targets)
		}
		if !targeted && targets != nil {
			t.Fatalf("%s: unexpected targets %v", name, targets)
		}
	}
	if _, _, err := buildAttack(r, "nope", 20, 5); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

func TestRunRecoverEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "poisoned.csv")
	out := filepath.Join(dir, "recovered.csv")
	// A d=4 poisoned vector with a negative cell and an inflated cell.
	if err := os.WriteFile(in, []byte("0,0.70\n1,-0.05\n2,0.25\n3,0.10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runRecover([]string{"-in", in, "-out", out, "-protocol", "grr", "-epsilon", "1.0"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loadFrequencyCSV(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range got {
		if f < 0 {
			t.Fatalf("negative recovered frequency: %v", got)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("recovered frequencies sum to %v", sum)
	}
}

func TestRunRecoverWithTargets(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "poisoned.csv")
	if err := os.WriteFile(in, []byte("0,0.2\n1,0.6\n2,0.1\n3,0.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runRecover([]string{"-in", in, "-protocol", "oue", "-targets", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := runRecover([]string{"-in", in, "-protocol", "oue", "-targets", "x"}); err == nil {
		t.Fatal("bad targets accepted")
	}
}

func TestRunRecoverRequiresInput(t *testing.T) {
	if err := runRecover(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}

func TestRunDemoSmoke(t *testing.T) {
	// Tiny zipf corpus keeps this fast; exercises the full CLI pipeline.
	err := runDemo([]string{
		"-corpus", "zipf", "-d", "20", "-n", "5000", "-scale", "1",
		"-protocol", "grr", "-attack", "mga", "-r", "3", "-seed", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runDemo([]string{"-corpus", "nope"}); err == nil {
		t.Fatal("unknown corpus accepted")
	}
	if err := runDemo([]string{"-corpus", "zipf", "-d", "20", "-n", "5000", "-protocol", "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
