package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ldprecover"
)

// The serve subcommand runs the epoch-streamed recovery service: a
// long-lived collector that ingests codec-encoded report batches over
// HTTP, seals epochs on a timer (or on demand), and serves per-window
// poisoned vs. recovered frequency estimates.
//
// Endpoints:
//
//	POST /v1/reports   body = MarshalReportBatch frame; enqueued for
//	                   ingest. 202 on accept, 429 when the queue is full.
//	POST /v1/seal      close the current epoch now; returns the window
//	                   estimate (also what the -epoch ticker calls).
//	GET  /v1/estimate  latest sealed window estimate; ?window=k merges
//	                   the newest k sealed epochs on demand instead.
//	GET  /v1/stats     ingest/queue/epoch counters for monitoring.
//
// Ingest is decoupled from request handling by a bounded queue draining
// into EpochManager.AddBatch from -ingesters goroutines, so a slow
// aggregation moment backpressures clients with 429 instead of
// accumulating unbounded memory. Shutdown (SIGINT/SIGTERM) stops the
// listener, drains the queue, seals the final epoch, and prints it.
func runServe(args []string) error {
	fs := newFlagSet("serve")
	var (
		addr     = fs.String("addr", "127.0.0.1:8347", "listen address")
		protoN   = fs.String("protocol", "oue", "protocol: grr, oue, olh")
		d        = fs.Int("d", 128, "domain size")
		eps      = fs.Float64("epsilon", 0.5, "privacy budget")
		epoch    = fs.Duration("epoch", time.Minute, "epoch length (0: seal only via POST /v1/seal)")
		window   = fs.Int("window", 4, "sealed epochs per serving estimate")
		history  = fs.Int("history", 16, "sealed epochs retained (ring + outlier history)")
		eta      = fs.Float64("eta", ldprecover.DefaultEta, "assumed malicious/genuine ratio")
		targetK  = fs.Int("targets", 0, "max auto-identified targets per epoch (0: min(10, d), negative: disable)")
		minZ     = fs.Float64("minz", 3, "z-score threshold for flagging a target")
		stable   = fs.Int("stable", 3, "consecutive epochs before LDPRecover* engages")
		queueLen = fs.Int("queue", 256, "ingest queue bound (batches)")
		ingest   = fs.Int("ingesters", 2, "ingest worker goroutines")
		maxBody  = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := buildProtocol(*protoN, *d, *eps)
	if err != nil {
		return err
	}
	srv, err := newStreamServer(streamServerConfig{
		Stream: ldprecover.StreamConfig{
			Params:      proto.Params(),
			Window:      *window,
			History:     *history,
			Eta:         *eta,
			TargetK:     *targetK,
			MinZ:        *minZ,
			StableAfter: *stable,
		},
		QueueLen:  *queueLen,
		Ingesters: *ingest,
		MaxBody:   *maxBody,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *epoch > 0 {
		ticker = time.NewTicker(*epoch)
		tick = ticker.C
		defer ticker.Stop()
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	fmt.Printf("serving %s (d=%d, epsilon=%g) on http://%s  epoch=%s window=%d\n",
		proto.Name(), *d, *eps, ln.Addr(), *epoch, *window)

	for {
		select {
		case <-tick:
			est, err := srv.seal()
			if err != nil {
				return err
			}
			fmt.Printf("sealed epoch %d: window of %d epochs / %d reports, partial-knowledge=%v\n",
				est.Seq, est.Epochs, est.Total, est.PartialKnowledge)
		case sig := <-sigc:
			fmt.Printf("%v: draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := hs.Shutdown(ctx)
			cancel()
			if err != nil {
				return err
			}
			final, derr := srv.drain()
			if derr != nil {
				return derr
			}
			fmt.Printf("final epoch %d sealed: window of %d epochs / %d reports\n",
				final.Seq, final.Epochs, final.Total)
			<-errc // Serve has returned http.ErrServerClosed
			return nil
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}

// streamServerConfig wires the HTTP layer around an EpochManager.
type streamServerConfig struct {
	Stream    ldprecover.StreamConfig
	QueueLen  int
	Ingesters int
	MaxBody   int64
}

// streamServer owns the manager, the bounded ingest queue and its
// drain workers. All handler methods are safe for concurrent use.
type streamServer struct {
	mgr     *ldprecover.EpochManager
	queue   chan []ldprecover.Report
	wg      sync.WaitGroup
	maxBody int64

	// sealMu serializes seals so ticker, /v1/seal and drain cannot
	// interleave epoch boundaries.
	sealMu sync.Mutex

	// drainMu protects the queue against a send racing its close:
	// enqueuers hold it shared around the send, drain takes it exclusive
	// to flip draining before closing the channel.
	drainMu  sync.RWMutex
	draining bool

	accepted atomic.Int64 // batches accepted into the queue
	rejected atomic.Int64 // batches turned away with 429
}

func newStreamServer(cfg streamServerConfig) (*streamServer, error) {
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("queue bound %d < 1", cfg.QueueLen)
	}
	if cfg.Ingesters < 1 {
		return nil, fmt.Errorf("ingester count %d < 1", cfg.Ingesters)
	}
	if cfg.MaxBody < 64 {
		return nil, fmt.Errorf("max body %d bytes is below a single report frame", cfg.MaxBody)
	}
	mgr, err := ldprecover.NewEpochManager(cfg.Stream)
	if err != nil {
		return nil, err
	}
	s := &streamServer{
		mgr:     mgr,
		queue:   make(chan []ldprecover.Report, cfg.QueueLen),
		maxBody: cfg.MaxBody,
	}
	for i := 0; i < cfg.Ingesters; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for reps := range s.queue {
				// AddBatch only fails on nil reports, which the decoder
				// cannot produce; a failure here is a programming error
				// worth crashing the server over rather than silently
				// dropping reports.
				if err := s.mgr.AddBatch(reps); err != nil {
					panic(err)
				}
			}
		}()
	}
	return s, nil
}

// handler routes the versioned API.
func (s *streamServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/seal", s.handleSeal)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// seal closes the current epoch under the seal lock.
func (s *streamServer) seal() (*ldprecover.WindowEstimate, error) {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	return s.mgr.Seal()
}

// drain closes the ingest queue, waits for the workers to fold every
// queued batch, and seals the final epoch.
func (s *streamServer) drain() (*ldprecover.WindowEstimate, error) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return nil, errors.New("already draining")
	}
	s.draining = true
	s.drainMu.Unlock()
	close(s.queue)
	s.wg.Wait()
	return s.seal()
}

// httpError writes a plain-text error status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ingestResponse acknowledges an accepted batch.
type ingestResponse struct {
	Accepted int `json:"accepted"`
	// QueueDepth is the queue occupancy after the enqueue, a congestion
	// signal clients can use to pace themselves before hitting 429s.
	QueueDepth int `json:"queue_depth"`
}

func (s *streamServer) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a report batch")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	reps, err := ldprecover.UnmarshalReportBatch(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(reps) == 0 {
		writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: 0, QueueDepth: len(s.queue)})
		return
	}
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- reps:
		s.drainMu.RUnlock()
		s.accepted.Add(1)
		writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: len(reps), QueueDepth: len(s.queue)})
	default:
		s.drainMu.RUnlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue full")
	}
}

// estimateResponse is the JSON shape of a window estimate.
type estimateResponse struct {
	Seq              int       `json:"seq"`
	Epochs           int       `json:"epochs"`
	Total            int64     `json:"total"`
	Poisoned         []float64 `json:"poisoned,omitempty"`
	Recovered        []float64 `json:"recovered,omitempty"`
	Targets          []int     `json:"targets,omitempty"`
	PartialKnowledge bool      `json:"partial_knowledge"`
}

func toEstimateResponse(est *ldprecover.WindowEstimate) estimateResponse {
	return estimateResponse{
		Seq:              est.Seq,
		Epochs:           est.Epochs,
		Total:            est.Total,
		Poisoned:         est.Poisoned,
		Recovered:        est.Recovered,
		Targets:          est.Targets,
		PartialKnowledge: est.PartialKnowledge,
	}
}

func (s *streamServer) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST to seal the current epoch")
		return
	}
	est, err := s.seal()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "sealing: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toEstimateResponse(est))
}

func (s *streamServer) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET the window estimate")
		return
	}
	if q := r.URL.Query().Get("window"); q != "" {
		k, err := strconv.Atoi(q)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "window must be a positive epoch count")
			return
		}
		est, err := s.mgr.EstimateWindow(k)
		if err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, toEstimateResponse(est))
		return
	}
	est := s.mgr.Latest()
	if est == nil {
		httpError(w, http.StatusConflict, "no epoch sealed yet")
		return
	}
	writeJSON(w, http.StatusOK, toEstimateResponse(est))
}

// statsResponse is the monitoring summary.
type statsResponse struct {
	Domain          int   `json:"domain"`
	Epochs          int   `json:"epochs"`
	LiveTotal       int64 `json:"live_total"`
	WindowTotal     int64 `json:"window_total"`
	IngestedTotal   int64 `json:"ingested_total"`
	Targets         []int `json:"targets,omitempty"`
	QueueDepth      int   `json:"queue_depth"`
	BatchesAccepted int64 `json:"batches_accepted"`
	BatchesRejected int64 `json:"batches_rejected"`
}

func (s *streamServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET the server stats")
		return
	}
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Domain:          st.Domain,
		Epochs:          st.Epochs,
		LiveTotal:       st.LiveTotal,
		WindowTotal:     st.WindowTotal,
		IngestedTotal:   st.IngestedTotal,
		Targets:         st.Targets,
		QueueDepth:      len(s.queue),
		BatchesAccepted: s.accepted.Load(),
		BatchesRejected: s.rejected.Load(),
	})
}
