package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ldprecover"
)

// The serve subcommand runs the epoch-streamed recovery service: a
// long-lived collector that ingests codec-encoded report batches over
// HTTP, seals epochs on a timer (or on demand), and serves per-window
// poisoned vs. recovered frequency estimates.
//
// Endpoints:
//
//	POST /v1/reports   body = MarshalReportBatch frame; enqueued for
//	                   ingest. 202 on accept, 429 when the queue is full.
//	POST /v1/partial   body = MarshalPartial frame: an edge collector's
//	                   pre-aggregated partial tally (DESIGN.md §8),
//	                   folded synchronously. 202 on accept, 409 when
//	                   the epoch hint is behind the sealed watermark.
//	POST /v1/seal      close the current epoch now; returns the window
//	                   estimate (also what the -epoch ticker calls).
//	GET  /v1/estimate  latest sealed window estimate; ?window=k merges
//	                   the newest k sealed epochs on demand instead.
//	GET  /v1/stats     ingest/queue/epoch counters for monitoring.
//
// Ingest is decoupled from request handling by a bounded queue draining
// into EpochManager.AddBatch from -ingesters goroutines, so a slow
// aggregation moment backpressures clients with 429 instead of
// accumulating unbounded memory. Shutdown (SIGINT/SIGTERM) stops the
// listener, drains the queue, seals the final epoch, and prints it.
//
// With -data-dir the service is durable (DESIGN.md §6): batches are
// written to a CRC-framed WAL before they are aggregated, every seal
// snapshots the manager's cross-epoch state atomically and truncates the
// log, and a restart resumes from snapshot + WAL tail with window
// estimates bit-identical to an uninterrupted run — including the
// recovered-baseline history and target-tracker hysteresis that drive
// the LDPRecover* upgrade, which an in-memory server forgets.
//
// With -role the server joins a cluster (DESIGN.md §7):
// -role=frontend ingests reports as above but pushes every sealed
// epoch's tally to -root-addr instead of identifying targets itself;
// -role=root accepts those tallies on POST /v1/tally, merges them
// behind an epoch barrier over the -nodes set (with a -tally-timeout
// straggler policy), and serves estimates bit-identical to a single
// node that saw every report. -role=merger is both at once (DESIGN.md
// §9): it runs the root's barrier over its -nodes children and pushes
// each epoch it seals upward to -root-addr as one merged tally under
// its -node-id, composing into an aggregation tree of any depth.
func runServe(args []string) error {
	fs := newFlagSet("serve")
	var (
		addr     = fs.String("addr", "127.0.0.1:8347", "listen address")
		protoN   = fs.String("protocol", "oue", "protocol: grr, oue, olh")
		d        = fs.Int("d", 128, "domain size")
		eps      = fs.Float64("epsilon", 0.5, "privacy budget")
		epoch    = fs.Duration("epoch", time.Minute, "epoch length (0: seal only via POST /v1/seal)")
		window   = fs.Int("window", 4, "sealed epochs per serving estimate")
		history  = fs.Int("history", 16, "sealed epochs retained (ring + outlier history)")
		eta      = fs.Float64("eta", ldprecover.DefaultEta, "assumed malicious/genuine ratio")
		targetK  = fs.Int("targets", 0, "max auto-identified targets per epoch (0: min(10, d), negative: disable)")
		minZ     = fs.Float64("minz", 3, "z-score threshold for flagging a target")
		stable   = fs.Int("stable", 3, "consecutive epochs before LDPRecover* engages")
		queueLen = fs.Int("queue", 256, "ingest queue bound (batches)")
		ingest   = fs.Int("ingesters", 2, "ingest worker goroutines")
		maxBody  = fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
		dataDir  = fs.String("data-dir", "", "durable state directory: WAL + per-seal snapshots (empty: in-memory only)")
		fsyncN   = fs.Int("fsync-every", 1, "fsync the WAL every n-th batch (negative: only at epoch seals)")
		walSeg   = fs.Int64("wal-segment", ldprecover.DefaultWALSegmentBytes, "WAL segment rotation size in bytes")
		role     = fs.String("role", "", "cluster role: frontend (ingest + push sealed tallies), root (merge tallies), merger (merge children, push the merged tally upward), or standby (tail the root, promote on failure); empty: single node")
		rootAddr = fs.String("root-addr", "", "frontend/merger/standby: the parent (root) node's base URL, e.g. http://10.0.0.1:8347")
		nodeID   = fs.String("node-id", "", "frontend/merger: unique node id (the parent dedupes tallies by it); standby: lease owner name")
		nodesF   = fs.String("nodes", "", "root/merger: comma-separated expected child node ids (the epoch barrier set); standby: promotion fallback when the seal-log is empty")
		tallyTO  = fs.Duration("tally-timeout", 30*time.Second, "root/merger/standby: straggler timeout before a partial epoch seal (0: wait forever)")
		sbAddr   = fs.String("standby-addr", "", "frontend/merger: the parent's standby base URL; tally delivery fails over to it when the parent stops answering")
		joinF    = fs.Bool("join", false, "frontend: announce this node to the root at boot and start contributing at the assigned epoch boundary")
		leaveF   = fs.Bool("leave-on-shutdown", false, "frontend: announce departure at shutdown so the root's barrier stops expecting this node")
		promoteA = fs.Duration("promote-after", 10*time.Second, "standby: promote once the root has been unreachable this long and its lease is stale")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	nodes, err := validateClusterFlags(*role, *rootAddr, *nodeID, *nodesF, *sbAddr, *dataDir, *tallyTO, *promoteA, explicit)
	if err != nil {
		return err
	}
	// Validate what would otherwise pass through silently or surface as
	// an internal config error without the flag names.
	if *epoch < 0 {
		return fmt.Errorf("-epoch %s is negative; use 0 to seal only via POST /v1/seal", *epoch)
	}
	if *window < 1 {
		return fmt.Errorf("-window %d is below 1 sealed epoch", *window)
	}
	if *history < *window {
		return fmt.Errorf("-history %d is below -window %d: the retention ring must cover the serving window",
			*history, *window)
	}
	if *walSeg < 1 {
		return fmt.Errorf("-wal-segment %d bytes is below 1", *walSeg)
	}
	proto, err := buildProtocol(*protoN, *d, *eps)
	if err != nil {
		return err
	}
	srv, err := newStreamServer(streamServerConfig{
		Stream: ldprecover.StreamConfig{
			Params:      proto.Params(),
			Window:      *window,
			History:     *history,
			Eta:         *eta,
			TargetK:     *targetK,
			MinZ:        *minZ,
			StableAfter: *stable,
		},
		QueueLen:        *queueLen,
		Ingesters:       *ingest,
		MaxBody:         *maxBody,
		DataDir:         *dataDir,
		SyncEvery:       *fsyncN,
		SegmentBytes:    *walSeg,
		Role:            *role,
		NodeID:          *nodeID,
		RootAddr:        *rootAddr,
		Nodes:           nodes,
		TallyTimeout:    *tallyTO,
		StandbyAddr:     *sbAddr,
		Join:            *joinF,
		LeaveOnShutdown: *leaveF,
		PromoteAfter:    *promoteA,
	})
	if err != nil {
		return err
	}
	if srv.store != nil {
		ri := srv.store.Restored()
		fmt.Printf("durable state in %s: restored %d sealed epochs, replayed %d batches / %d reports, %d partials / %d users\n",
			*dataDir, ri.SnapshotSeq, ri.ReplayedBatches, ri.ReplayedReports,
			ri.ReplayedPartials, ri.ReplayedPartialUsers)
	}
	if srv.root != nil && srv.root.snaps != nil {
		fmt.Printf("root state in %s: restored %d merged epochs\n",
			*dataDir, srv.root.snaps.Restored().SnapshotSeq)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.close()
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *epoch > 0 && srv.root == nil && srv.standby == nil {
		// Roots and standbys have no epoch ticker: their epochs close on
		// the frontends' shared clock, via tally barriers and the
		// straggler timeout.
		//ldplint:allow nowallclock the epoch ticker IS the cluster's shared epoch clock
		ticker = time.NewTicker(*epoch)
		tick = ticker.C
		defer ticker.Stop()
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	switch *role {
	case roleFrontend:
		fmt.Printf("frontend %q serving %s (d=%d, epsilon=%g) on http://%s  epoch=%s, pushing sealed tallies to %s\n",
			*nodeID, proto.Name(), *d, *eps, ln.Addr(), *epoch, *rootAddr)
	case roleRoot:
		fmt.Printf("root serving %s (d=%d, epsilon=%g) on http://%s  merging %d frontends %v, straggler timeout %s\n",
			proto.Name(), *d, *eps, ln.Addr(), len(nodes), nodes, *tallyTO)
	case roleMerger:
		fmt.Printf("merger %q on http://%s  merging %d children %v (straggler timeout %s), pushing merged tallies to %s\n",
			*nodeID, ln.Addr(), len(nodes), nodes, *tallyTO, *rootAddr)
	case roleStandby:
		fmt.Printf("standby on http://%s  tailing %s, watching root %s, promoting after %s unreachable\n",
			ln.Addr(), *dataDir, *rootAddr, *promoteA)
	default:
		fmt.Printf("serving %s (d=%d, epsilon=%g) on http://%s  epoch=%s window=%d\n",
			proto.Name(), *d, *eps, ln.Addr(), *epoch, *window)
	}

	return serveLoop(hs, srv, tick, sigc, errc)
}

// Cluster role names for -role.
const (
	roleFrontend = "frontend"
	roleRoot     = "root"
	roleMerger   = "merger"
	roleStandby  = "standby"
)

// validateClusterFlags rejects inconsistent cluster configurations up
// front, naming the flags (the PR 4 validation style): every error a
// misconfigured node would otherwise hit mid-flight — a frontend with
// no root, a root with no barrier set, role-specific flags on the wrong
// role — fails at startup instead. It returns the parsed -nodes set.
func validateClusterFlags(role, rootAddr, nodeID, nodesF, standbyAddr, dataDir string,
	tallyTO, promoteAfter time.Duration, explicit map[string]bool) ([]string, error) {
	switch role {
	case "", roleFrontend, roleRoot, roleMerger, roleStandby:
	default:
		return nil, fmt.Errorf("-role %q is not one of frontend, root, merger, standby (or empty for single-node)", role)
	}
	checkURL := func(flagName, v string) error {
		if u, err := url.Parse(v); err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
			return fmt.Errorf("-%s %q is not an http(s) base URL like http://10.0.0.1:8347", flagName, v)
		}
		return nil
	}
	if role != roleFrontend && role != roleMerger && role != roleStandby {
		if explicit["root-addr"] {
			return nil, fmt.Errorf("-root-addr is for nodes that talk to a parent (-role=frontend and -role=merger push tallies there, -role=standby health-checks it); not for -role=%q", role)
		}
		if explicit["node-id"] {
			return nil, fmt.Errorf("-node-id names a frontend or merger (the parent dedupes by it) or a standby's lease owner; not for -role=%q", role)
		}
	}
	if role != roleRoot && role != roleMerger && role != roleStandby {
		if explicit["nodes"] {
			return nil, fmt.Errorf("-nodes is the epoch barrier set; it needs -role=root or -role=merger (or -role=standby as promotion fallback)")
		}
		if explicit["tally-timeout"] {
			return nil, fmt.Errorf("-tally-timeout is the straggler policy; it needs -role=root or -role=merger (or -role=standby for after promotion)")
		}
	}
	if role != roleFrontend && role != roleMerger && explicit["standby-addr"] {
		return nil, fmt.Errorf("-standby-addr is the upward failover target; it needs -role=frontend or -role=merger")
	}
	if role != roleFrontend {
		for _, f := range []string{"join", "leave-on-shutdown"} {
			if explicit[f] {
				// A merger cannot join/leave its parent elastically: its
				// node id is a fixed entry in the parent's -nodes barrier.
				return nil, fmt.Errorf("-%s is a frontend flag; it needs -role=frontend", f)
			}
		}
	}
	if role != roleStandby && explicit["promote-after"] {
		return nil, fmt.Errorf("-promote-after is the standby's failover threshold; it needs -role=standby")
	}
	parseNodes := func() ([]string, error) {
		var nodes []string
		seen := make(map[string]bool)
		for _, n := range strings.Split(nodesF, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				return nil, fmt.Errorf("-nodes %q lists an empty node id", nodesF)
			}
			if seen[n] {
				return nil, fmt.Errorf("-nodes lists %q twice; node ids must be unique", n)
			}
			seen[n] = true
			nodes = append(nodes, n)
		}
		return nodes, nil
	}
	switch role {
	case roleFrontend:
		// Target identification runs on the root, over the merged view; a
		// partition-local z-score would silently drift from it. Reject the
		// flags rather than silently overriding them.
		for _, f := range []string{"targets", "minz", "stable"} {
			if explicit[f] {
				return nil, fmt.Errorf("-%s configures target identification, which -role=frontend delegates to the root; set it there", f)
			}
		}
		if rootAddr == "" {
			return nil, fmt.Errorf("-role=frontend requires -root-addr (the root node's base URL)")
		}
		if err := checkURL("root-addr", rootAddr); err != nil {
			return nil, err
		}
		if standbyAddr != "" {
			if err := checkURL("standby-addr", standbyAddr); err != nil {
				return nil, err
			}
		}
		if nodeID == "" {
			return nil, fmt.Errorf("-role=frontend requires -node-id (unique per frontend; the root dedupes tallies by it)")
		}
		if len(nodeID) > 256 {
			return nil, fmt.Errorf("-node-id of %d bytes exceeds the tally codec's 256-byte cap", len(nodeID))
		}
		return nil, nil
	case roleRoot:
		if explicit["epoch"] {
			return nil, fmt.Errorf("-epoch is the frontends' shared clock; a root's epochs close on tally barriers and -tally-timeout")
		}
		if nodesF == "" {
			return nil, fmt.Errorf("-role=root requires -nodes (comma-separated frontend node ids forming the epoch barrier)")
		}
		if tallyTO < 0 {
			return nil, fmt.Errorf("-tally-timeout %s is negative; use 0 to wait for stragglers forever", tallyTO)
		}
		return parseNodes()
	case roleMerger:
		// Like a frontend toward its parent: target identification runs
		// at the tree's true root, over the full union.
		for _, f := range []string{"targets", "minz", "stable"} {
			if explicit[f] {
				return nil, fmt.Errorf("-%s configures target identification, which -role=merger delegates to the tree's root; set it there", f)
			}
		}
		if explicit["epoch"] {
			return nil, fmt.Errorf("-epoch is the frontends' shared clock; a merger's epochs close on its children's tally barriers and -tally-timeout")
		}
		if rootAddr == "" {
			return nil, fmt.Errorf("-role=merger requires -root-addr (the parent node's base URL)")
		}
		if err := checkURL("root-addr", rootAddr); err != nil {
			return nil, err
		}
		if standbyAddr != "" {
			if err := checkURL("standby-addr", standbyAddr); err != nil {
				return nil, err
			}
		}
		if nodeID == "" {
			return nil, fmt.Errorf("-role=merger requires -node-id (unique per merger; the parent dedupes tallies by it)")
		}
		if len(nodeID) > 256 {
			return nil, fmt.Errorf("-node-id of %d bytes exceeds the tally codec's 256-byte cap", len(nodeID))
		}
		if nodesF == "" {
			return nil, fmt.Errorf("-role=merger requires -nodes (comma-separated child node ids forming the epoch barrier)")
		}
		if tallyTO < 0 {
			return nil, fmt.Errorf("-tally-timeout %s is negative; use 0 to wait for stragglers forever", tallyTO)
		}
		return parseNodes()
	case roleStandby:
		if explicit["epoch"] {
			return nil, fmt.Errorf("-epoch is the frontends' shared clock; a standby's epochs close on tally barriers after promotion")
		}
		if dataDir == "" {
			return nil, fmt.Errorf("-role=standby requires -data-dir (the root's data directory, shared or replicated, to tail snapshots and the seal-log from)")
		}
		if rootAddr == "" {
			return nil, fmt.Errorf("-role=standby requires -root-addr (the root to health-check for failover)")
		}
		if err := checkURL("root-addr", rootAddr); err != nil {
			return nil, err
		}
		if tallyTO < 0 {
			return nil, fmt.Errorf("-tally-timeout %s is negative; use 0 to wait for stragglers forever", tallyTO)
		}
		if promoteAfter <= 0 {
			return nil, fmt.Errorf("-promote-after %s must be positive: it is both the failover threshold and the lease staleness bound", promoteAfter)
		}
		if nodesF == "" {
			return nil, nil
		}
		return parseNodes()
	}
	return nil, nil
}

// serveLoop runs the epoch ticker / shutdown select around a listening
// server. Every exit path — signal, seal failure, listener failure —
// stops the listener, drains the ingest queue into the manager, and
// closes the durable store, so none of them leaks the Serve goroutine or
// strands queued batches.
func serveLoop(hs *http.Server, srv *streamServer, tick <-chan time.Time, sigc <-chan os.Signal, errc <-chan error) error {
	for {
		select {
		case <-tick:
			est, err := srv.seal()
			if err != nil {
				// A failing seal is fatal, but not a reason to leak: shut
				// the listener down and fold every queued batch before
				// returning (an early return here used to strand the
				// listener, the Serve goroutine and the queue).
				return errors.Join(err, shutdownAndDrain(hs, srv, errc, false))
			}
			fmt.Printf("sealed epoch %d: window of %d epochs / %d reports, partial-knowledge=%v\n",
				est.Seq, est.Epochs, est.Total, est.PartialKnowledge)
		case err := <-srv.fatalc:
			// A handler hit a fatal error (failed POST /v1/seal): same
			// fail-stop as a failed ticker seal.
			return errors.Join(err, shutdownAndDrain(hs, srv, errc, false))
		case sig := <-sigc:
			fmt.Printf("%v: draining\n", sig)
			return shutdownAndDrain(hs, srv, errc, true)
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return drainAndClose(srv, true)
			}
			// The listener died under us; the queue may still hold
			// accepted batches — fold and persist them before failing.
			return errors.Join(err, drainAndClose(srv, false))
		}
	}
}

// shutdownAndDrain stops accepting requests, waits for the Serve
// goroutine to return, then drains the queue, seals the final epoch and
// closes the durable store.
func shutdownAndDrain(hs *http.Server, srv *streamServer, errc <-chan error, report bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err := hs.Shutdown(ctx)
	cancel()
	<-errc // Serve has returned (http.ErrServerClosed after Shutdown)
	return errors.Join(err, drainAndClose(srv, report))
}

// drainAndClose folds every queued batch, seals the final epoch, and
// closes the durable store.
func drainAndClose(srv *streamServer, report bool) error {
	final, err := srv.drain()
	if err == nil && report && final != nil {
		fmt.Printf("final epoch %d sealed: window of %d epochs / %d reports\n",
			final.Seq, final.Epochs, final.Total)
	}
	return errors.Join(err, srv.close())
}

// streamServerConfig wires the HTTP layer around an EpochManager.
type streamServerConfig struct {
	Stream    ldprecover.StreamConfig
	QueueLen  int
	Ingesters int
	MaxBody   int64
	// DataDir enables durable mode; empty keeps all state in memory.
	// Frontends and single nodes keep a report-level WAL + per-seal
	// snapshots; a root keeps per-seal snapshots of the merged state
	// only (its inputs are re-sent tallies, not report batches).
	DataDir      string
	SyncEvery    int
	SegmentBytes int64
	// Role selects cluster mode: "" (single node), "frontend" (push
	// sealed tallies to RootAddr as NodeID), "root" (merge tallies
	// from the Nodes barrier set, forcing partial seals after
	// TallyTimeout), "merger" (both: merge the Nodes children, push
	// each merged epoch upward to RootAddr as NodeID), or "standby"
	// (tail the root's DataDir, promote when the root goes dark past
	// PromoteAfter).
	Role         string
	NodeID       string
	RootAddr     string
	Nodes        []string
	TallyTimeout time.Duration
	// PushInterval is the frontend's re-push cadence; zero selects
	// defaultPushInterval (tests shrink it).
	PushInterval time.Duration
	// StandbyAddr is the frontend's failover delivery target: after
	// consecutive failed pushes to RootAddr the pusher rotates here.
	StandbyAddr string
	// Join makes a frontend announce itself to the root at boot and
	// align its epoch clock to the assigned boundary; LeaveOnShutdown
	// announces departure after the final flush.
	Join            bool
	LeaveOnShutdown bool
	// JoinTimeout bounds the boot-time join retry loop; zero selects
	// 30s (tests shrink it).
	JoinTimeout time.Duration
	// PromoteAfter is the standby's failover threshold and, on both
	// root and standby, the lease staleness bound; zero selects 10s.
	PromoteAfter time.Duration
	// StandbyPoll is the standby's snapshot-tail/health-check cadence;
	// zero derives it from PromoteAfter.
	StandbyPoll time.Duration
}

// ingestBatch is one queued POST /v1/reports body. The zero-copy lane
// (the HTTP handlers) fills only frame: a validated wire frame held in
// a pooled buffer, which the worker folds in place — durable mode
// appends it to the WAL verbatim, counting never materializes a
// []Report — and returns to the pool. reps is the decoded-report lane
// kept for callers that already hold reports (tests, internal feeds);
// when set it wins and frame is only the optional WAL image.
type ingestBatch struct {
	frame  []byte
	reps   []ldprecover.Report
	pooled bool // frame came from the server's buffer pool
}

// streamServer owns the manager, the bounded ingest queue and its
// drain workers, and (in durable mode) the persistence store. All
// handler methods are safe for concurrent use.
type streamServer struct {
	mgr     *ldprecover.EpochManager
	store   *ldprecover.DurableStore // nil in memory-only mode
	queue   chan ingestBatch
	wg      sync.WaitGroup
	maxBody int64

	// pusher is set on frontends and mergers: sealed epochs enqueue here
	// and are delivered to the parent at-least-once. root is set on
	// roots and mergers: the barrier driver behind POST /v1/tally.
	// standby is set on standbys: the tail/health/promotion machinery,
	// which installs a rootMerge of its own when it takes over. All nil
	// on a single node.
	pusher  *tallyPusher
	root    *rootMerge
	standby *standbyControl
	// leaveOnShutdown: the frontend announces its departure after the
	// final flush, so the root's barrier stops expecting it.
	leaveOnShutdown bool
	// sealOnDrain: a shutdown drain seals the final epoch — except on a
	// root or standby, whose epochs close on the frontends' clock;
	// sealing there would advance the barrier past tallies still en
	// route.
	sealOnDrain bool

	// sealMu serializes seals so ticker, /v1/seal and drain cannot
	// interleave epoch boundaries.
	sealMu sync.Mutex
	// sealFn is what seal() runs under sealMu — the store's persisting
	// seal in durable mode, the manager's otherwise. Tests substitute a
	// failing one to drive the error paths.
	sealFn func() (*ldprecover.WindowEstimate, error)

	// fatalc carries a handler-observed fatal error (a failed seal) to
	// serveLoop, so a durable server whose snapshots stop persisting
	// fail-stops whether the seal came from the ticker or POST /v1/seal.
	fatalc chan error

	// drainMu protects the queue against a send racing its close:
	// enqueuers hold it shared around the send, drain takes it exclusive
	// to flip draining before closing the channel.
	drainMu  sync.RWMutex
	draining bool

	accepted atomic.Int64 // batches accepted into the queue
	rejected atomic.Int64 // batches turned away with 429

	// partial-tally lane counters (POST /v1/partial).
	partialsAccepted atomic.Int64
	partialsStale    atomic.Int64 // rejected with 409 ErrStalePartial

	// bufPool recycles request-body buffers between /v1/reports
	// handlers and the ingest workers that release them after the fold.
	// poolGets counts handler checkouts, poolMisses the checkouts the
	// pool had to allocate for; hits = gets - misses.
	bufPool    sync.Pool
	poolGets   atomic.Int64
	poolMisses atomic.Int64
}

// getBuf checks an empty body buffer out of the pool.
func (s *streamServer) getBuf() []byte {
	s.poolGets.Add(1)
	return *(s.bufPool.Get().(*[]byte))
}

// putBuf returns a body buffer (however grown) to the pool. MaxBytes
// bounds every buffer's capacity at maxBody, so retention is bounded by
// pool size, not by the largest request ever seen times the queue.
func (s *streamServer) putBuf(b []byte) {
	b = b[:0]
	s.bufPool.Put(&b)
}

// readAllInto reads r to EOF into buf, growing it as needed, and
// returns the filled slice — io.ReadAll against pooled capacity.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func newStreamServer(cfg streamServerConfig) (*streamServer, error) {
	if cfg.QueueLen < 1 {
		return nil, fmt.Errorf("queue bound %d < 1", cfg.QueueLen)
	}
	if cfg.Ingesters < 1 {
		return nil, fmt.Errorf("ingester count %d < 1", cfg.Ingesters)
	}
	if cfg.MaxBody < 64 {
		return nil, fmt.Errorf("max body %d bytes is below a single report frame", cfg.MaxBody)
	}
	switch cfg.Role {
	case "", roleFrontend, roleRoot, roleMerger, roleStandby:
	default:
		return nil, fmt.Errorf("unknown cluster role %q", cfg.Role)
	}
	if cfg.PromoteAfter <= 0 {
		cfg.PromoteAfter = 10 * time.Second
	}
	if cfg.StandbyPoll <= 0 {
		cfg.StandbyPoll = cfg.PromoteAfter / 4
		if cfg.StandbyPoll > 500*time.Millisecond {
			cfg.StandbyPoll = 500 * time.Millisecond
		}
		if cfg.StandbyPoll < 10*time.Millisecond {
			cfg.StandbyPoll = 10 * time.Millisecond
		}
	}
	if cfg.Role == roleFrontend || cfg.Role == roleMerger {
		// Frontends and interior mergers never identify targets: each
		// sees only its subtree's slice of the population, and a
		// partition-local z-score would drift from the merged view.
		// Detection runs at the tree's root, over the full union.
		cfg.Stream.TargetK = -1
	}
	mgr, err := ldprecover.NewEpochManager(cfg.Stream)
	if err != nil {
		return nil, err
	}
	s := &streamServer{
		mgr:         mgr,
		queue:       make(chan ingestBatch, cfg.QueueLen),
		maxBody:     cfg.MaxBody,
		fatalc:      make(chan error, 1),
		sealOnDrain: cfg.Role != roleRoot && cfg.Role != roleMerger && cfg.Role != roleStandby,
	}
	s.bufPool.New = func() any {
		s.poolMisses.Add(1)
		b := make([]byte, 0, 64<<10)
		return &b
	}
	switch {
	case cfg.Role == roleRoot, cfg.Role == roleMerger:
		var (
			snaps *ldprecover.SnapshotStore
			slog  *ldprecover.SealLog
			lease *ldprecover.Lease
		)
		if cfg.DataDir != "" {
			// The lease first: a directory whose lease another root (or a
			// promoted standby) is heartbeating must not be opened — two
			// writers would fork the snapshot history. A merger owns its
			// lease under its node id: one data directory per tree node.
			owner := "root"
			if cfg.Role == roleMerger {
				owner = cfg.NodeID
			}
			lease, err = ldprecover.AcquireLease(cfg.DataDir, owner, cfg.PromoteAfter)
			if err != nil {
				return nil, fmt.Errorf("-role=%s with -data-dir %s: %w", cfg.Role, cfg.DataDir, err)
			}
			// Restore before the merger exists: the barrier resumes at
			// the restored sealed-epoch watermark.
			snaps, err = ldprecover.OpenSnapshotStore(cfg.DataDir, mgr, 0)
			if err != nil {
				return nil, errors.Join(fmt.Errorf("-role=%s with -data-dir %s: %w", cfg.Role, cfg.DataDir, err), lease.Release())
			}
			if slog, err = ldprecover.OpenSealLog(cfg.DataDir); err != nil {
				return nil, errors.Join(err, lease.Release())
			}
		}
		merger, err := ldprecover.NewSealedMerger(mgr, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		if slog != nil {
			// The journaled membership supersedes -nodes: joins and leaves
			// acked before the restart must survive it.
			if members, sched, ok := slog.Membership(); ok {
				if err := merger.SetMembership(members, sched); err != nil {
					return nil, errors.Join(fmt.Errorf("restoring seal-log membership: %w", err), lease.Release())
				}
				fmt.Printf("%s membership restored from seal-log: %v\n", cfg.Role, members)
			}
		}
		s.root = newRootMerge(merger, snaps, slog, cfg.TallyTimeout, s.reportFatal)
		if lease != nil {
			s.root.startLease(lease, leaseHeartbeat(cfg.PromoteAfter))
		}
		s.sealFn = s.root.forceSeal
		if cfg.Role == roleMerger {
			// The upward half: every epoch this barrier seals is delivered
			// to the parent as one merged tally under this merger's node
			// id, at-least-once, after it has been persisted (the onSealed
			// hook runs past the snapshot/seal-log writes) — so the parent
			// never acks an epoch this node could forget. The queue bound
			// is the ring's retention, as on a frontend.
			urls := []string{cfg.RootAddr}
			if cfg.StandbyAddr != "" {
				urls = append(urls, cfg.StandbyAddr)
			}
			s.pusher = newTallyPusher(cfg.NodeID, urls, cfg.PushInterval, mgr.Config().History)
			nodeID := cfg.NodeID
			s.root.onSealed = func(epoch int) {
				if eps := mgr.Epochs(); len(eps) > 0 {
					last := eps[len(eps)-1]
					if last.Seq == epoch {
						s.pusher.enqueue(&ldprecover.Tally{
							NodeID: nodeID, Epoch: last.Seq, Counts: last.Counts, Total: last.Total,
						})
					}
				}
			}
			// At-least-once across restarts: re-send every retained merged
			// epoch (the restored ring, on a durable merger); the parent
			// dedupes what it has already merged. The merger's epoch clock
			// is driven by its children, never resynced to the parent —
			// skipping ahead would discard child tallies still en route.
			for _, ep := range mgr.Epochs() {
				s.pusher.enqueue(&ldprecover.Tally{
					NodeID: nodeID, Epoch: ep.Seq, Counts: ep.Counts, Total: ep.Total,
				})
			}
		}
	case cfg.Role == roleStandby:
		// Before cfg.DataDir: the standby's data dir is the *root's* —
		// tailed read-only until promotion, never a report WAL.
		streamCfg := cfg.Stream
		tailer, err := ldprecover.NewStandbyTailer(cfg.DataDir, func() (*ldprecover.EpochManager, error) {
			return ldprecover.NewEpochManager(streamCfg)
		})
		if err != nil {
			return nil, err
		}
		owner := cfg.NodeID
		if owner == "" {
			owner = "standby"
		}
		s.standby = &standbyControl{
			tailer:       tailer,
			dataDir:      cfg.DataDir,
			rootAddr:     cfg.RootAddr,
			owner:        owner,
			fallback:     cfg.Nodes,
			promoteAfter: cfg.PromoteAfter,
			pollEvery:    cfg.StandbyPoll,
			tallyTimeout: cfg.TallyTimeout,
			client:       &http.Client{},
			srv:          s,
		}
		s.sealFn = func() (*ldprecover.WindowEstimate, error) { return nil, errStandbyNotPromoted }
		s.standby.start()
	case cfg.DataDir != "":
		s.store, err = ldprecover.OpenDurableStore(cfg.DataDir, mgr, ldprecover.DurableOptions{
			SegmentBytes: cfg.SegmentBytes,
			SyncEvery:    cfg.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
		s.sealFn = s.store.Seal
	default:
		s.sealFn = mgr.Seal
	}
	if cfg.Role == roleFrontend {
		// The delivery queue's bound is the sealed-epoch ring's retention:
		// a tally older than the ring would not survive a restart either.
		urls := []string{cfg.RootAddr}
		if cfg.StandbyAddr != "" {
			urls = append(urls, cfg.StandbyAddr)
		}
		s.leaveOnShutdown = cfg.LeaveOnShutdown
		s.pusher = newTallyPusher(cfg.NodeID, urls, cfg.PushInterval, mgr.Config().History)
		// Every seal also enqueues the sealed epoch's tally for delivery.
		// The clock resync first: if the root has sealed past this node's
		// counter — it was down past the straggler timeout, or restarted
		// without durable state — the next epoch rejoins the shared clock
		// at the root's watermark instead of issuing stale indices the
		// root would dedupe forever (the skipped indices have no epoch
		// from this node, which is the truth).
		base := s.sealFn
		nodeID := cfg.NodeID
		s.sealFn = func() (*ldprecover.WindowEstimate, error) {
			s.mgr.AdvanceEpochTo(s.pusher.rootWatermark())
			est, err := base()
			if err != nil {
				return est, err
			}
			if eps := mgr.Epochs(); len(eps) > 0 {
				last := eps[len(eps)-1]
				s.pusher.enqueue(&ldprecover.Tally{
					NodeID: nodeID, Epoch: last.Seq, Counts: last.Counts, Total: last.Total,
				})
			}
			return est, nil
		}
		// At-least-once across restarts: re-send every retained sealed
		// epoch (the restored ring, on a durable frontend); the root
		// dedupes what it has already merged.
		for _, ep := range mgr.Epochs() {
			s.pusher.enqueue(&ldprecover.Tally{
				NodeID: nodeID, Epoch: ep.Seq, Counts: ep.Counts, Total: ep.Total,
			})
		}
		if cfg.Join {
			// Announce at boot, synchronously: the node must know its
			// assigned epoch boundary before its first seal, or its early
			// tallies would be rejected as from a non-member. The root
			// answers its sealed watermark in the same round trip, so the
			// joiner's clock aligns to the boundary it was given. Join is
			// idempotent on the root — a re-announcing member just gets
			// its standing boundary back.
			jt := cfg.JoinTimeout
			if jt <= 0 {
				jt = 30 * time.Second
			}
			//ldplint:allow nowallclock join deadline bounds startup, not any deterministic path
			deadline := time.Now().Add(jt)
			for {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				ar, err := s.pusher.announce(ctx, ldprecover.AnnounceJoin, 0)
				cancel()
				if err == nil {
					mgr.AdvanceEpochTo(ar.Effective)
					fmt.Printf("frontend %q joined: contributing from epoch %d\n", nodeID, ar.Effective)
					break
				}
				//ldplint:allow nowallclock join deadline bounds startup, not any deterministic path
				if time.Now().After(deadline) {
					errs := errors.Join(fmt.Errorf("joining the cluster via %s: %w", s.pusher.url(), err), s.pusher.close())
					if s.store != nil {
						errs = errors.Join(errs, s.store.Close())
					}
					return nil, errs
				}
				//ldplint:allow nowallclock join retry backoff during startup
				time.Sleep(200 * time.Millisecond)
			}
		}
	}
	for i := 0; i < cfg.Ingesters; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for b := range s.queue {
				// The fold only fails on inputs the handler's validation
				// cannot admit, and a WAL append fails only when the
				// log can no longer be written — either way the server
				// cannot keep its promises, so crash rather than drop
				// reports silently.
				if err := s.ingest(b); err != nil {
					panic(err)
				}
				if b.pooled {
					// Neither the WAL nor the counting fold retains the
					// frame, so the buffer can serve the next request.
					s.putBuf(b.frame)
				}
			}
		}()
	}
	return s, nil
}

// ingest folds one dequeued batch — through the WAL first in durable
// mode, so a batch is never aggregated without being logged. A
// frame-only batch takes the zero-copy lane: the wire bytes are
// appended verbatim and counted in place, no []Report ever exists.
func (s *streamServer) ingest(b ingestBatch) error {
	if b.reps != nil {
		if s.store != nil {
			return s.store.AppendBatch(b.frame, b.reps)
		}
		return s.mgr.AddBatch(b.reps)
	}
	if s.store != nil {
		return s.store.AppendBatchFrame(b.frame)
	}
	return s.mgr.AddBatchFrame(b.frame)
}

// handler routes the versioned API.
func (s *streamServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/partial", s.handlePartial)
	mux.HandleFunc("/v1/tally", s.handleTally)
	mux.HandleFunc("/v1/membership", s.handleMembership)
	mux.HandleFunc("/v1/seal", s.handleSeal)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

// manager returns the EpochManager reads should serve from: a standby
// serves the promoted root's manager once it took over, the warm tailed
// one before that (so /v1/estimate answers from the last snapshot even
// pre-promotion), and every other role its own.
func (s *streamServer) manager() *ldprecover.EpochManager {
	if s.standby != nil {
		if rm := s.standby.root.Load(); rm != nil {
			return rm.merger.Manager()
		}
		if m := s.standby.tailer.Manager(); m != nil {
			return m
		}
	}
	return s.mgr
}

// reportFatal hands a handler- or timer-observed fatal error to
// serveLoop, which fail-stops the server.
func (s *streamServer) reportFatal(err error) {
	select {
	case s.fatalc <- err:
	default:
	}
}

// seal closes the current epoch under the seal lock (persisting it in
// durable mode).
func (s *streamServer) seal() (*ldprecover.WindowEstimate, error) {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	return s.sealFn()
}

// drain closes the ingest queue, waits for the workers to fold every
// queued batch, and seals the final epoch. A root skips the seal (nil
// estimate): its epochs close on the frontends' shared clock, and
// sealing at shutdown would advance the barrier past tallies still en
// route, turning their re-sends into stale duplicates.
func (s *streamServer) drain() (*ldprecover.WindowEstimate, error) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return nil, errors.New("already draining")
	}
	s.draining = true
	s.drainMu.Unlock()
	close(s.queue)
	s.wg.Wait()
	if !s.sealOnDrain {
		return nil, nil
	}
	return s.seal()
}

// close releases the role-specific machinery: the frontend's pusher
// (after a bounded final flush, then the leave announcement if
// configured), the root's lease, seal-log and snapshot store, the
// standby's watch loop, the durable store.
func (s *streamServer) close() error {
	var errs []error
	if s.pusher != nil {
		// The flush first — a leave boundary at or past the last sealed
		// epoch only holds if that epoch's tally got delivered.
		errs = append(errs, s.pusher.close())
		if s.leaveOnShutdown {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			from := s.mgr.Stats().Epochs
			if ar, err := s.pusher.announce(ctx, ldprecover.AnnounceLeave, from); err != nil {
				// Not fatal to the departing node: the root's straggler
				// timeout retires it from the barrier eventually.
				fmt.Printf("frontend %q leave announcement failed (the root keeps expecting it until its straggler timeout): %v\n",
					s.pusher.nodeID, err)
			} else {
				fmt.Printf("frontend %q left: not expected from epoch %d\n", s.pusher.nodeID, ar.Effective)
			}
			cancel()
		}
	}
	if s.root != nil {
		errs = append(errs, s.root.stop())
	}
	if s.standby != nil {
		s.standby.stop()
		if rm := s.standby.root.Load(); rm != nil {
			errs = append(errs, rm.stop())
		}
	}
	if s.store != nil {
		errs = append(errs, s.store.Close())
	}
	return errors.Join(errs...)
}

// httpError writes a plain-text error status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ingestResponse acknowledges an accepted batch.
type ingestResponse struct {
	Accepted int `json:"accepted"`
	// QueueDepth is the queue occupancy after the enqueue, a congestion
	// signal clients can use to pace themselves before hitting 429s.
	QueueDepth int `json:"queue_depth"`
}

func (s *streamServer) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a report batch")
		return
	}
	if s.root != nil || s.standby != nil {
		httpError(w, http.StatusConflict,
			"this node merges sealed tallies (/v1/tally), it does not ingest report batches; POST them to a frontend")
		return
	}
	// The zero-copy lane: the body lands in a pooled buffer, is
	// structurally validated (never decoded into reports), and travels
	// through the queue, the WAL and the counting fold as those same
	// bytes; the worker returns the buffer to the pool after the fold.
	buf := s.getBuf()
	body, err := readAllInto(buf, http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.putBuf(body)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	count, err := ldprecover.ValidateReportBatchFrame(body)
	if err != nil {
		s.putBuf(body)
		httpError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if count == 0 {
		s.putBuf(body)
		writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: 0, QueueDepth: len(s.queue)})
		return
	}
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.putBuf(body)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- ingestBatch{frame: body, pooled: true}:
		s.drainMu.RUnlock()
		s.accepted.Add(1)
		writeJSON(w, http.StatusAccepted, ingestResponse{Accepted: count, QueueDepth: len(s.queue)})
	default:
		s.drainMu.RUnlock()
		s.putBuf(body)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue full")
	}
}

// partialResponse acknowledges an accepted partial tally.
type partialResponse struct {
	// Users is how many users' reports the partial pre-aggregated.
	Users int64 `json:"users"`
	// EpochHint echoes the frame's hint; the fold landed in the
	// currently open epoch regardless (the hint is advisory, DESIGN.md
	// §8), this is for collector-side logging.
	EpochHint int `json:"epoch_hint"`
}

func (s *streamServer) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a partial tally")
		return
	}
	if s.root != nil || s.standby != nil {
		httpError(w, http.StatusConflict,
			"this node merges sealed tallies (/v1/tally), it does not ingest partial tallies; POST them to a frontend")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	p, err := ldprecover.UnmarshalPartial(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding partial tally: %v", err)
		return
	}
	if d := s.mgr.Config().Params.Domain; len(p.Counts) != d {
		httpError(w, http.StatusBadRequest, "partial tally over domain %d, server domain is %d", len(p.Counts), d)
		return
	}
	// Folded synchronously, not queued: partials are rare (one frame
	// summarizes thousands of users) and the staleness verdict must be
	// in this response — the collector discards its local aggregate on
	// 202 and re-aggregates on 409, so a late answer is a wrong answer.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.store != nil {
		err = s.store.AppendPartial(body, p)
	} else {
		err = s.mgr.AddPartial(p)
	}
	s.drainMu.RUnlock()
	switch {
	case err == nil:
		s.partialsAccepted.Add(1)
		writeJSON(w, http.StatusAccepted, partialResponse{Users: p.Users, EpochHint: p.EpochHint})
	case errors.Is(err, ldprecover.ErrStalePartial):
		// The sealed-boundary taxonomy of /v1/tally: an ordinary
		// client-visible conflict, not broken durability.
		s.partialsStale.Add(1)
		httpError(w, http.StatusConflict, "folding partial tally: %v", err)
	default:
		// Everything client-shaped was validated above; what remains is
		// a WAL that can no longer be written — as fatal as a failed
		// seal.
		httpError(w, http.StatusInternalServerError, "folding partial tally: %v", err)
		s.reportFatal(err)
	}
}

// estimateResponse is the JSON shape of a window estimate.
type estimateResponse struct {
	Seq              int       `json:"seq"`
	Epochs           int       `json:"epochs"`
	Total            int64     `json:"total"`
	Poisoned         []float64 `json:"poisoned,omitempty"`
	Recovered        []float64 `json:"recovered,omitempty"`
	Targets          []int     `json:"targets,omitempty"`
	PartialKnowledge bool      `json:"partial_knowledge"`
}

func toEstimateResponse(est *ldprecover.WindowEstimate) estimateResponse {
	return estimateResponse{
		Seq:              est.Seq,
		Epochs:           est.Epochs,
		Total:            est.Total,
		Poisoned:         est.Poisoned,
		Recovered:        est.Recovered,
		Targets:          est.Targets,
		PartialKnowledge: est.PartialKnowledge,
	}
}

func (s *streamServer) handleSeal(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST to seal the current epoch")
		return
	}
	est, err := s.seal()
	if err != nil {
		if errors.Is(err, errNothingToSeal) {
			// A root with an empty barrier has nothing to close — an
			// ordinary client-visible condition, not broken durability.
			httpError(w, http.StatusConflict, "sealing: %v", err)
			return
		}
		if errors.Is(err, errStandbyNotPromoted) {
			httpError(w, http.StatusServiceUnavailable, "sealing: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "sealing: %v", err)
		// A failed seal is as fatal here as on the ticker path: tell the
		// serve loop so the server shuts down and drains instead of
		// accepting reports forever with broken durability.
		s.reportFatal(err)
		return
	}
	writeJSON(w, http.StatusOK, toEstimateResponse(est))
}

func (s *streamServer) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET the window estimate")
		return
	}
	if q := r.URL.Query().Get("window"); q != "" {
		k, err := strconv.Atoi(q)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "window must be a positive epoch count")
			return
		}
		est, err := s.manager().EstimateWindow(k)
		if err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, toEstimateResponse(est))
		return
	}
	est := s.manager().Latest()
	if est == nil {
		httpError(w, http.StatusConflict, "no epoch sealed yet")
		return
	}
	writeJSON(w, http.StatusOK, toEstimateResponse(est))
}

// statsResponse is the monitoring summary.
type statsResponse struct {
	Domain          int   `json:"domain"`
	Epochs          int   `json:"epochs"`
	LiveTotal       int64 `json:"live_total"`
	WindowTotal     int64 `json:"window_total"`
	IngestedTotal   int64 `json:"ingested_total"`
	Targets         []int `json:"targets,omitempty"`
	QueueDepth      int   `json:"queue_depth"`
	BatchesAccepted int64 `json:"batches_accepted"`
	BatchesRejected int64 `json:"batches_rejected"`
	// Partial-tally lane (POST /v1/partial) counters.
	PartialsAccepted int64 `json:"partials_accepted"`
	PartialsStale    int64 `json:"partials_stale"`
	// Request-body buffer pool effectiveness for the report lane.
	BufPoolHits   int64 `json:"buf_pool_hits"`
	BufPoolMisses int64 `json:"buf_pool_misses"`
	// Cluster is the role-specific section: the frontend's push state
	// or the root's barrier/merge accounting. Omitted on a single node.
	Cluster *clusterStatsResponse `json:"cluster,omitempty"`
}

func (s *streamServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET the server stats")
		return
	}
	st := s.manager().Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Domain:           st.Domain,
		Epochs:           st.Epochs,
		LiveTotal:        st.LiveTotal,
		WindowTotal:      st.WindowTotal,
		IngestedTotal:    st.IngestedTotal,
		Targets:          st.Targets,
		QueueDepth:       len(s.queue),
		BatchesAccepted:  s.accepted.Load(),
		BatchesRejected:  s.rejected.Load(),
		PartialsAccepted: s.partialsAccepted.Load(),
		PartialsStale:    s.partialsStale.Load(),
		BufPoolHits:      s.poolGets.Load() - s.poolMisses.Load(),
		BufPoolMisses:    s.poolMisses.Load(),
		Cluster:          s.clusterStats(),
	})
}
