package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ldprecover"
)

// clusterStreamConfig is the serving configuration both sides of the
// equivalence test run: small windows and thresholds so the MGA ramp
// engages LDPRecover* within a short stream.
func clusterStreamConfig(params ldprecover.Params) ldprecover.StreamConfig {
	return ldprecover.StreamConfig{
		Params:      params,
		Window:      2,
		History:     8,
		TargetK:     2,
		MinZ:        2.5,
		StableAfter: 2,
		MinHistory:  2,
	}
}

// postAll ships reports to a frontend in small wire batches.
func postAll(t *testing.T, url string, reps []ldprecover.Report) {
	t.Helper()
	const batch = 200
	for lo := 0; lo < len(reps); lo += batch {
		hi := min(lo+batch, len(reps))
		resp := postBatch(t, url, reps[lo:hi])
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
}

// canonicalEstimate round-trips an estimate response through JSON so
// nil-vs-empty slice differences cannot masquerade as divergence.
func canonicalEstimate(t *testing.T, est estimateResponse) estimateResponse {
	t.Helper()
	raw, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	var out estimateResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getEstimate fetches a server's latest window estimate.
func getEstimate(t *testing.T, url string) estimateResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("estimate status %d: %s", resp.StatusCode, body)
	}
	return decodeJSON[estimateResponse](t, resp)
}

// getStats fetches a server's stats.
func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decodeJSON[statsResponse](t, resp)
}

// sealFrontend ticks one frontend's epoch clock.
func sealFrontend(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("frontend seal status %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()
}

// waitForRootEpochs blocks until the root has sealed n merged epochs.
func waitForRootEpochs(t *testing.T, root *streamServer, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if root.mgr.Stats().Epochs >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("root stalled at %d/%d merged epochs", root.mgr.Stats().Epochs, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterEquivalenceE2E is the headline cluster guarantee: three
// frontend nodes over a partitioned user population, pushing sealed
// tallies to a root merger, must produce per-epoch window estimates,
// an LDPRecover* engagement epoch, and a stable target set
// bit-identical to the single-node pipeline fed the union of the same
// reports — including after one frontend is killed and restarted
// mid-epoch (durable WAL replay + ring re-send) and after a duplicate
// tally is explicitly re-sent (root dedupe).
func TestClusterEquivalenceE2E(t *testing.T) {
	const (
		d, eps   = 32, 0.6
		nFront   = 3
		epochs   = 8
		attackAt = 4 // first attacked epoch
	)
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := clusterStreamConfig(proto.Params())

	// The single-node reference pipeline over the union of reports.
	ref, err := ldprecover.NewEpochManager(streamCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The root merger (no straggler timeout: the barrier is exact).
	nodeIDs := make([]string, nFront)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("fe-%d", i)
	}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    streamCfg,
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   8 << 20,
		Role:      roleRoot,
		Nodes:     nodeIDs,
	})

	// Three durable frontends (the WAL is what survives the crash).
	dirs := make([]string, nFront)
	feSrv := make([]*streamServer, nFront)
	feHS := make([]*httptest.Server, nFront)
	newFrontend := func(i int) {
		dirs[i] = filepath.Join(t.TempDir(), "fe")
		feSrv[i], feHS[i] = testServer(t, streamServerConfig{
			Stream:       streamCfg,
			QueueLen:     64,
			Ingesters:    2,
			MaxBody:      8 << 20,
			DataDir:      dirs[i],
			Role:         roleFrontend,
			NodeID:       nodeIDs[i],
			RootAddr:     rootHS.URL,
			PushInterval: 20 * time.Millisecond,
		})
	}
	restartFrontend := func(i int) {
		var err error
		feSrv[i], err = newStreamServer(streamServerConfig{
			Stream:       streamCfg,
			QueueLen:     64,
			Ingesters:    2,
			MaxBody:      8 << 20,
			DataDir:      dirs[i],
			Role:         roleFrontend,
			NodeID:       nodeIDs[i],
			RootAddr:     rootHS.URL,
			PushInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		feHS[i] = httptest.NewServer(feSrv[i].handler())
		t.Cleanup(feHS[i].Close)
	}
	for i := range feSrv {
		newFrontend(i)
	}

	// Deterministic population: genuine users each epoch, an MGA ramp
	// on fixed targets from attackAt on. Reports are partitioned across
	// frontends round-robin — disjoint by construction.
	r := ldprecover.NewRand(29)
	mga, err := ldprecover.NewMGA([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(30 + 2*v)
	}

	engagedRef, engagedRoot := -1, -1
	ingested := make([]int64, nFront) // cumulative per-frontend report totals
	for e := 0; e < epochs; e++ {
		genuine, err := ldprecover.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		union := genuine
		if e >= attackAt {
			malicious, err := mga.CraftReports(r, proto, 250)
			if err != nil {
				t.Fatal(err)
			}
			union = append(append([]ldprecover.Report(nil), genuine...), malicious...)
		}
		parts := make([][]ldprecover.Report, nFront)
		for i, rep := range union {
			parts[i%nFront] = append(parts[i%nFront], rep)
		}

		if e == attackAt {
			// Kill frontend 1 mid-epoch: half its share ingested (and
			// durably logged), then the process "dies" — listener gone,
			// WAL released — and a fresh process resumes from the same
			// data dir, ingests the rest, and seals on the shared clock.
			half := parts[1][:len(parts[1])/2]
			rest := parts[1][len(parts[1])/2:]
			postAll(t, feHS[1].URL, half)
			waitForIngest(t, feSrv[1], ingested[1]+int64(len(half)))
			feHS[1].Close()
			if err := feSrv[1].pusher.close(); err != nil {
				t.Fatalf("pusher close before crash: %v", err)
			}
			if err := feSrv[1].store.Close(); err != nil {
				t.Fatal(err)
			}
			restartFrontend(1)
			if got := feSrv[1].mgr.Stats().IngestedTotal; got != ingested[1]+int64(len(half)) {
				t.Fatalf("restart replayed %d reports, want %d", got, ingested[1]+int64(len(half)))
			}
			parts[1] = rest
			ingested[1] += int64(len(half))
		}

		for i := range parts {
			postAll(t, feHS[i].URL, parts[i])
			ingested[i] += int64(len(parts[i]))
			waitForIngest(t, feSrv[i], ingested[i])
		}
		// The shared epoch clock ticks: every frontend seals epoch e and
		// pushes its tally; the root's barrier completes and seals.
		for i := range feHS {
			sealFrontend(t, feHS[i].URL)
		}
		waitForRootEpochs(t, rootSrv, e+1)

		// Reference pipeline over the union.
		if err := ref.AddBatch(union); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got := getEstimate(t, rootHS.URL)
		wantResp := canonicalEstimate(t, toEstimateResponse(want))
		if !reflect.DeepEqual(got, wantResp) {
			t.Fatalf("epoch %d: cluster estimate diverged from single node\ngot  %+v\nwant %+v", e, got, wantResp)
		}
		if want.PartialKnowledge && engagedRef < 0 {
			engagedRef = e
		}
		if got.PartialKnowledge && engagedRoot < 0 {
			engagedRoot = e
		}

		if e == attackAt+1 {
			// Re-send an old tally verbatim: the root must dedupe it and
			// nothing — estimate, epoch count, window totals — may move.
			before := getEstimate(t, rootHS.URL)
			epochsBefore := rootSrv.mgr.Stats().Epochs
			feEpochs := feSrv[0].mgr.Epochs()
			dup := &ldprecover.Tally{
				NodeID: nodeIDs[0], Epoch: feEpochs[0].Seq,
				Counts: feEpochs[0].Counts, Total: feEpochs[0].Total,
			}
			frame, err := ldprecover.MarshalTally(dup)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
			if err != nil {
				t.Fatal(err)
			}
			tr := decodeJSON[tallyResponse](t, resp)
			if !tr.Duplicate {
				t.Fatalf("re-sent tally not deduped: %+v", tr)
			}
			if after := getEstimate(t, rootHS.URL); !reflect.DeepEqual(after, before) {
				t.Fatal("duplicate tally changed the served estimate")
			}
			if rootSrv.mgr.Stats().Epochs != epochsBefore {
				t.Fatal("duplicate tally sealed an epoch")
			}
		}
	}

	// The attack must actually have engaged LDPRecover* — otherwise the
	// hysteresis/target-set equivalence above was never exercised — and
	// it must have engaged at the same epoch with the same targets.
	if engagedRef < 0 {
		t.Fatal("single-node pipeline never engaged LDPRecover*; the scenario is vacuous")
	}
	if engagedRoot != engagedRef {
		t.Fatalf("engagement epochs diverged: cluster %d, single node %d", engagedRoot, engagedRef)
	}
	final := getEstimate(t, rootHS.URL)
	if !final.PartialKnowledge || len(final.Targets) == 0 {
		t.Fatalf("cluster final estimate lost the stable target set: %+v", final)
	}

	// Partial-epoch accounting for the full run: every merged epoch saw
	// all three nodes, and the dedupes (restart ring re-send + explicit
	// duplicate) were counted.
	st := getStats(t, rootHS.URL)
	if st.Cluster == nil || st.Cluster.Role != "root" {
		t.Fatalf("root stats missing cluster section: %+v", st)
	}
	if st.Cluster.SealedThrough != epochs {
		t.Fatalf("root sealed through %d, want %d", st.Cluster.SealedThrough, epochs)
	}
	for _, m := range st.Cluster.Merged {
		if len(m.Missing) != 0 || len(m.Nodes) != nFront {
			t.Fatalf("merged epoch %d incomplete: %+v", m.Epoch, m)
		}
	}
	if st.Cluster.Duplicates == 0 {
		t.Fatal("root observed no duplicates despite the restart re-send")
	}
}

// TestRootStragglerTimeoutHTTP: with a straggler timeout configured,
// the root force-seals a partial epoch, the stats name exactly which
// nodes merged and which were missing, and the straggler's late tally
// dedupes to a no-op (idempotence at the HTTP layer).
func TestRootStragglerTimeoutHTTP(t *testing.T) {
	proto, err := ldprecover.NewGRR(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:       ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      1 << 20,
		Role:         roleRoot,
		Nodes:        []string{"fe-0", "fe-1"},
		TallyTimeout: 50 * time.Millisecond,
	})
	tally := &ldprecover.Tally{NodeID: "fe-0", Epoch: 0, Counts: make([]int64, 16), Total: 40}
	tally.Counts[2] = 40
	push := func(tl *ldprecover.Tally) tallyResponse {
		t.Helper()
		frame, err := ldprecover.MarshalTally(tl)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("tally status %d: %s", resp.StatusCode, body)
		}
		return decodeJSON[tallyResponse](t, resp)
	}
	if tr := push(tally); tr.Duplicate || tr.SealedThrough != 0 {
		t.Fatalf("first tally: %+v", tr)
	}
	// fe-1 never arrives; the straggler timer must force the seal.
	waitForRootEpochs(t, rootSrv, 1)
	st := getStats(t, rootHS.URL)
	if st.Cluster == nil || len(st.Cluster.Merged) != 1 {
		t.Fatalf("stats after partial seal: %+v", st)
	}
	m := st.Cluster.Merged[0]
	if !reflect.DeepEqual(m.Nodes, []string{"fe-0"}) || !reflect.DeepEqual(m.Missing, []string{"fe-1"}) {
		t.Fatalf("partial epoch accounting: %+v", m)
	}
	if m.Total != 40 {
		t.Fatalf("partial epoch total %d", m.Total)
	}
	// The straggler's late tally and a re-send of the merged one are
	// both deduped without moving anything.
	before := rootSrv.mgr.Stats()
	late := &ldprecover.Tally{NodeID: "fe-1", Epoch: 0, Counts: make([]int64, 16), Total: 7}
	if tr := push(late); !tr.Duplicate || tr.SealedThrough != 1 {
		t.Fatalf("late tally: %+v", tr)
	}
	if tr := push(tally); !tr.Duplicate {
		t.Fatalf("re-sent tally: %+v", tr)
	}
	if after := rootSrv.mgr.Stats(); !reflect.DeepEqual(after, before) {
		t.Fatalf("duplicates changed the merged state: %+v -> %+v", before, after)
	}
	st = getStats(t, rootHS.URL)
	if st.Cluster.Merged[0].Duplicates != 2 {
		t.Fatalf("duplicate accounting: %+v", st.Cluster.Merged[0])
	}
}

// TestClusterEndpointRouting: report batches bounce off a root, tallies
// bounce off anything that is not a root, and garbage tally frames are
// rejected.
func TestClusterEndpointRouting(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, rootHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
		Role:      roleRoot,
		Nodes:     []string{"fe-0"},
	})
	rep, err := proto.Perturb(ldprecover.NewRand(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	resp := postBatch(t, rootHS.URL, []ldprecover.Report{rep})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report batch on a root: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage tally: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	// A tally from a node outside the barrier set is an error, not a seal.
	outsider := &ldprecover.Tally{NodeID: "rogue", Epoch: 0, Counts: make([]int64, 8), Total: 1}
	frame, err := ldprecover.MarshalTally(outsider)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rogue tally: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A single node is not a tally sink.
	_, plainHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})
	resp, err = http.Post(plainHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tally on a single node: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeClusterFlagValidation: every inconsistent cluster flag
// combination fails up front with the offending flag named, in the
// PR 4 validation style.
func TestServeClusterFlagValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want []string // substrings the error must mention
	}{
		"unknown-role":          {[]string{"-role", "sideways"}, []string{"-role"}},
		"frontend-no-root":      {[]string{"-role", "frontend"}, []string{"-root-addr"}},
		"frontend-no-node-id":   {[]string{"-role", "frontend", "-root-addr", "http://r:1"}, []string{"-node-id"}},
		"frontend-bad-root-url": {[]string{"-role", "frontend", "-root-addr", "r:1:2:3", "-node-id", "a"}, []string{"-root-addr"}},
		"frontend-with-nodes": {
			[]string{"-role", "frontend", "-root-addr", "http://r:1", "-node-id", "a", "-nodes", "a,b"},
			[]string{"-nodes", "-role=root"}},
		"frontend-with-timeout": {
			[]string{"-role", "frontend", "-root-addr", "http://r:1", "-node-id", "a", "-tally-timeout", "5s"},
			[]string{"-tally-timeout", "-role=root"}},
		"root-no-nodes":       {[]string{"-role", "root"}, []string{"-nodes"}},
		"root-empty-node":     {[]string{"-role", "root", "-nodes", "a,,b"}, []string{"-nodes"}},
		"root-duplicate-node": {[]string{"-role", "root", "-nodes", "a,a"}, []string{"-nodes"}},
		"root-negative-timeout": {
			[]string{"-role", "root", "-nodes", "a", "-tally-timeout", "-5s"},
			[]string{"-tally-timeout"}},
		"root-with-node-id":   {[]string{"-role", "root", "-nodes", "a", "-node-id", "x"}, []string{"-node-id"}},
		"root-with-root-addr": {[]string{"-role", "root", "-nodes", "a", "-root-addr", "http://r:1"}, []string{"-root-addr"}},
		"frontend-with-targets": {
			[]string{"-role", "frontend", "-root-addr", "http://r:1", "-node-id", "a", "-targets", "5"},
			[]string{"-targets", "root"}},
		"root-with-epoch": {
			[]string{"-role", "root", "-nodes", "a", "-epoch", "30s"},
			[]string{"-epoch", "-tally-timeout"}},
		"rootless-root-addr": {[]string{"-root-addr", "http://r:1"}, []string{"-root-addr", "-role"}},
		"rootless-nodes":     {[]string{"-nodes", "a"}, []string{"-nodes", "-role"}},
		"standby-no-data-dir": {
			[]string{"-role", "standby", "-root-addr", "http://r:1"},
			[]string{"-data-dir"}},
		"standby-no-root-addr": {
			[]string{"-role", "standby", "-data-dir", "/tmp/x"},
			[]string{"-root-addr"}},
		"standby-bad-promote-after": {
			[]string{"-role", "standby", "-data-dir", "/tmp/x", "-root-addr", "http://r:1", "-promote-after", "0s"},
			[]string{"-promote-after"}},
		"standby-with-epoch": {
			[]string{"-role", "standby", "-data-dir", "/tmp/x", "-root-addr", "http://r:1", "-epoch", "30s"},
			[]string{"-epoch"}},
		"root-with-join": {
			[]string{"-role", "root", "-nodes", "a", "-join"},
			[]string{"-join", "-role=frontend"}},
		"root-with-promote-after": {
			[]string{"-role", "root", "-nodes", "a", "-promote-after", "5s"},
			[]string{"-promote-after", "-role=standby"}},
		"rootless-standby-addr": {
			[]string{"-standby-addr", "http://s:1"},
			[]string{"-standby-addr", "-role=frontend"}},
		"frontend-bad-standby-url": {
			[]string{"-role", "frontend", "-root-addr", "http://r:1", "-node-id", "a", "-standby-addr", "s:1:2:3"},
			[]string{"-standby-addr"}},
		"root-with-leave": {
			[]string{"-role", "root", "-nodes", "a", "-leave-on-shutdown"},
			[]string{"-leave-on-shutdown", "-role=frontend"}},
	} {
		t.Run(name, func(t *testing.T) {
			err := runServe(tc.args)
			if err == nil {
				t.Fatalf("runServe(%v) succeeded", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name %s", err, want)
				}
			}
		})
	}
}

// TestServeRootRejectsReportWAL: pointing -role=root at a data
// directory holding a report-level WAL must be refused — a root merges
// sealed tallies and cannot replay report batch frames.
func TestServeRootRejectsReportWAL(t *testing.T) {
	dir := t.TempDir()
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{Params: proto.Params()})
	if err != nil {
		t.Fatal(err)
	}
	store, err := ldprecover.OpenDurableStore(dir, mgr, ldprecover.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := proto.Perturb(ldprecover.NewRand(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := ldprecover.MarshalReportBatch([]ldprecover.Report{rep})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendBatch(frame, []ldprecover.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	err = runServe([]string{"-role", "root", "-nodes", "fe-0", "-data-dir", dir})
	if err == nil {
		t.Fatal("root opened over a report-level WAL")
	}
	for _, want := range []string{"-role=root", "-data-dir", "report-level WAL"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
	// The WAL itself must be untouched by the refused open.
	segs, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("report WAL disturbed by the refused root open: %v (%d segments)", err, len(segs))
	}
}

// TestRootForceSealStaleGuard pins the force-seal guard: a forced seal
// (straggler timer, POST /v1/seal) only closes the barrier epoch it was
// armed for, and only while tallies actually wait there. A stale force
// — the epoch sealed while the timer callback waited on the lock —
// must not invent an empty next epoch, which would advance the barrier
// past tallies still en route and discard them as stale duplicates.
func TestRootForceSealStaleGuard(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1})
	if err != nil {
		t.Fatal(err)
	}
	merger, err := ldprecover.NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	rm := newRootMerge(merger, nil, nil, 0, func(err error) { t.Errorf("fatal: %v", err) })

	// Nothing pending, nothing sealed: a forced seal is a visible no-op.
	if _, err := rm.forceSeal(); !errors.Is(err, errNothingToSeal) {
		t.Fatalf("force seal on an empty root: %v", err)
	}
	if mgr.Stats().Epochs != 0 {
		t.Fatal("empty force seal sealed an epoch")
	}

	tally := func(node string, epoch int) *ldprecover.Tally {
		tl := &ldprecover.Tally{NodeID: node, Epoch: epoch, Counts: make([]int64, 8), Total: 5}
		tl.Counts[1] = 5
		return tl
	}
	// Partial barrier at epoch 0: a force armed for epoch 0 seals it...
	if _, err := rm.onTally(tally("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := rm.seal(0); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Epochs; got != 1 {
		t.Fatalf("forced partial seal left %d epochs", got)
	}
	// ...and replaying the same stale force (armed for 0, now sealed)
	// must not seal epoch 1 — even with tallies already waiting there.
	if _, err := rm.onTally(tally("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rm.seal(0); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Epochs; got != 1 {
		t.Fatalf("stale force sealed ahead: %d epochs", got)
	}
	// A complete barrier seals through onTally; a stale force armed for
	// that epoch then finds nothing pending and seals nothing.
	if _, err := rm.onTally(tally("b", 1)); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Epochs; got != 2 {
		t.Fatalf("complete barrier sealed %d epochs", got)
	}
	if err := rm.seal(1); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Epochs; got != 2 {
		t.Fatalf("stale timer force after a complete seal: %d epochs", got)
	}
	// After something sealed, an idle forced seal serves the estimate.
	est, err := rm.forceSeal()
	if err != nil || est == nil || est.Seq != 1 {
		t.Fatalf("idle force seal: est=%+v err=%v", est, err)
	}
}

// TestRootSealEndpointEmptyBarrier: POST /v1/seal on a root with an
// empty barrier answers 409 — an ordinary condition, not the fail-stop
// kind of seal failure — and the server keeps merging afterwards.
func TestRootSealEndpointEmptyBarrier(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
		Role:      roleRoot,
		Nodes:     []string{"fe-0"},
	})
	resp, err := http.Post(rootHS.URL+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("empty-barrier seal status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	select {
	case err := <-rootSrv.fatalc:
		t.Fatalf("empty-barrier seal was treated as fatal: %v", err)
	default:
	}
	// The root still merges and seals normally.
	tl := &ldprecover.Tally{NodeID: "fe-0", Epoch: 0, Counts: make([]int64, 8), Total: 3}
	frame, err := ldprecover.MarshalTally(tl)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if tr := decodeJSON[tallyResponse](t, resp); tr.SealedThrough != 1 {
		t.Fatalf("tally after refused seal: %+v", tr)
	}
}

// TestTallyPusherQueueBound: during a root outage the pending queue
// evicts its oldest tallies past the retention bound instead of
// growing without limit, and counts what it dropped.
func TestTallyPusherQueueBound(t *testing.T) {
	p := newTallyPusher("fe-0", []string{"http://127.0.0.1:1"}, time.Hour, 3) // unreachable root
	p.flushTimeout = 50 * time.Millisecond
	defer func() {
		// close() reports the undelivered tail; that is the point here.
		if err := p.close(); err == nil {
			t.Error("close with undelivered tallies reported no error")
		}
	}()
	for e := 0; e < 5; e++ {
		p.enqueue(&ldprecover.Tally{NodeID: "fe-0", Epoch: e, Counts: make([]int64, 4), Total: 1})
	}
	if got := p.pendingCount(); got != 3 {
		t.Fatalf("pending %d tallies, bound is 3", got)
	}
	if got := p.droppedCount(); got != 2 {
		t.Fatalf("dropped %d tallies, want 2", got)
	}
	p.mu.Lock()
	oldest := p.pending[0].Epoch
	p.mu.Unlock()
	if oldest != 2 {
		t.Fatalf("eviction kept epoch %d as oldest, want 2 (newest retained)", oldest)
	}
}

// TestFrontendRejoinsSharedClock: a frontend that fell behind the
// root's barrier (its epochs force-sealed partial while it was down)
// fast-forwards to the root's watermark at its next seal, so its
// tallies merge again instead of being deduped as stale forever.
func TestFrontendRejoinsSharedClock(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1, History: 8}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    streamCfg,
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
		Role:      roleRoot,
		Nodes:     []string{"fe-0", "ghost"},
	})
	feSrv, _ := testServer(t, streamServerConfig{
		Stream:       streamCfg,
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      1 << 20,
		Role:         roleFrontend,
		NodeID:       "fe-0",
		RootAddr:     rootHS.URL,
		PushInterval: 10 * time.Millisecond,
	})
	pushGhost := func(epoch int) {
		t.Helper()
		frame, err := ldprecover.MarshalTally(&ldprecover.Tally{
			NodeID: "ghost", Epoch: epoch, Counts: make([]int64, 8), Total: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Epoch 0 completes normally: both nodes deliver.
	if _, err := feSrv.seal(); err != nil {
		t.Fatal(err)
	}
	pushGhost(0)
	waitForRootEpochs(t, rootSrv, 1)

	// fe-0 "goes dark" while the root force-seals epochs 1..3 partial
	// (driven here through the forced-seal path the straggler timer
	// uses, after ghost's tallies arrive).
	for e := 1; e <= 3; e++ {
		pushGhost(e)
		if err := rootSrv.root.seal(rootSrv.root.merger.SealedThrough()); err != nil {
			t.Fatal(err)
		}
	}
	waitForRootEpochs(t, rootSrv, 4)

	// fe-0's counter is at 1 — three epochs behind. Its next seal is
	// sacrificed as stale (epoch 1), but the dedupe answer teaches the
	// pusher the watermark, and the seal after that rejoins at 4+.
	if _, err := feSrv.seal(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for feSrv.pusher.rootWatermark() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pusher never learned the watermark (at %d)", feSrv.pusher.rootWatermark())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := feSrv.seal(); err != nil {
		t.Fatal(err)
	}
	pushGhost(4)
	waitForRootEpochs(t, rootSrv, 5)
	st := getStats(t, rootHS.URL)
	last := st.Cluster.Merged[len(st.Cluster.Merged)-1]
	if last.Epoch != 4 || !reflect.DeepEqual(last.Nodes, []string{"fe-0", "ghost"}) {
		t.Fatalf("rejoined epoch accounting: %+v", last)
	}
}
