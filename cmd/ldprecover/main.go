// Command ldprecover is the end-to-end CLI: simulate an LDP collection
// under attack, recover frequencies from a poisoned estimate, and report
// the paper's metrics.
//
// Subcommands:
//
//	ldprecover demo    -corpus ipums -protocol oue -attack mga -beta 0.05
//	ldprecover recover -in poisoned.csv -protocol grr -epsilon 0.5 [-targets 3,7]
//
// demo runs the whole pipeline on a synthetic corpus and prints
// before/after metrics; recover post-processes an existing poisoned
// frequency vector (CSV rows "item,frequency").
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = runDemo(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ldprecover: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldprecover: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ldprecover demo    [flags]   simulate -> attack -> recover -> report
  ldprecover recover [flags]   recover frequencies from a poisoned CSV

run 'ldprecover <subcommand> -h' for flags`)
}

// newFlagSet builds a flag set that prints its own usage.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
