// Command ldprecover is the end-to-end CLI: simulate an LDP collection
// under attack, recover frequencies from a poisoned estimate, and report
// the paper's metrics.
//
// Subcommands:
//
//	ldprecover demo    -corpus ipums -protocol oue -attack mga -beta 0.05
//	ldprecover recover -in poisoned.csv -protocol grr -epsilon 0.5 [-targets 3,7]
//	ldprecover serve   -protocol oue -d 128 -epsilon 0.5 -epoch 1m -window 4
//	ldprecover serve   -role=root -nodes fe-0,fe-1,fe-2 -tally-timeout 30s
//	ldprecover serve   -role=frontend -node-id fe-0 -root-addr http://root:8347
//
// demo runs the whole pipeline on a synthetic corpus and prints
// before/after metrics; recover post-processes an existing poisoned
// frequency vector (CSV rows "item,frequency"); serve runs the
// epoch-streamed recovery service (HTTP ingest of report batches,
// per-window poisoned vs. recovered estimates — see README "Serving
// mode"), either single-node or as a scale-out cluster of frontend
// ingest nodes pushing sealed tallies to a root merger (README
// "Scale-out serving", DESIGN.md §7).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "demo":
		err = runDemo(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ldprecover: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldprecover: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ldprecover demo    [flags]   simulate -> attack -> recover -> report
  ldprecover recover [flags]   recover frequencies from a poisoned CSV
  ldprecover serve   [flags]   run the epoch-streamed recovery service

run 'ldprecover <subcommand> -h' for flags`)
}

// newFlagSet builds a flag set that prints its own usage.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
