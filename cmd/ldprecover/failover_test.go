package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ldprecover"
)

// TestTallyPusherShutdownBounded: the shutdown flush is bounded and
// interruptible. Against a root that accepts connections but never
// answers, close() must abort the in-flight push and return within the
// flush budget — not sit out the client timeout or sleep through the
// stop signal (the old shutdown path slept unconditionally between
// flush attempts).
func TestTallyPusherShutdownBounded(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold every request until the test lets go — the pusher's
		// clients must abandon these on their own.
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer hang.Close()
	defer close(release) // deferred LIFO: unblock handlers, then Close
	p := newTallyPusher("fe-0", []string{hang.URL}, 10*time.Millisecond, 0)
	p.flushTimeout = 150 * time.Millisecond
	p.enqueue(&ldprecover.Tally{NodeID: "fe-0", Epoch: 0, Counts: make([]int64, 4), Total: 1})
	time.Sleep(50 * time.Millisecond) // let the loop start a push that will hang
	start := time.Now()
	err := p.close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("close took %s against a hanging root; the flush bound is %s", elapsed, p.flushTimeout)
	}
	if err == nil {
		t.Fatal("close delivered nothing yet reported no undelivered tallies")
	}
}

// TestRequestBodyCaps: every ingest endpoint bounds its request body
// with the -max-body cap and answers 413, so an oversized (or endless)
// body cannot balloon server memory.
func TestRequestBodyCaps(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xee}, 200) // over the 64-byte cap below
	post := func(url string) int {
		t.Helper()
		resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	_, plainHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   64,
	})
	if code := post(plainHS.URL + "/v1/reports"); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized report batch: status %d, want 413", code)
	}

	_, rootHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   64,
		Role:      roleRoot,
		Nodes:     []string{"fe-0"},
	})
	if code := post(rootHS.URL + "/v1/tally"); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized tally: status %d, want 413", code)
	}
	if code := post(rootHS.URL + "/v1/membership"); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized announce: status %d, want 413", code)
	}
}

// announceHTTP posts one membership announcement and returns the raw
// response.
func announceHTTP(t *testing.T, url string, a *ldprecover.Announce) *http.Response {
	t.Helper()
	frame, err := ldprecover.MarshalAnnounce(a)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/membership", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMembershipEndpointHTTP: the join/leave endpoint's status-code
// contract — 200 with the effective boundary, 400 for garbage frames,
// 409 for membership conflicts, 404 off-role, 503 on an unpromoted
// standby.
func TestMembershipEndpointHTTP(t *testing.T) {
	proto, err := ldprecover.NewGRR(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
		Role:      roleRoot,
		Nodes:     []string{"fe-0"},
	})
	resp, err := http.Post(rootHS.URL+"/v1/membership", "application/octet-stream", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage announce: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// A stranger cannot leave; the last member cannot leave either.
	resp = announceHTTP(t, rootHS.URL, &ldprecover.Announce{NodeID: "ghost", Kind: ldprecover.AnnounceLeave})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stranger leave: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	resp = announceHTTP(t, rootHS.URL, &ldprecover.Announce{NodeID: "fe-0", Kind: ldprecover.AnnounceLeave})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("last-member leave: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// A join answers the assigned boundary; the barrier expects the node.
	resp = announceHTTP(t, rootHS.URL, &ldprecover.Announce{NodeID: "fe-1", Kind: ldprecover.AnnounceJoin})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("join: status %d: %s", resp.StatusCode, body)
	}
	ar := decodeJSON[announceResponse](t, resp)
	if ar.Effective != 0 {
		t.Fatalf("join on a virgin root effective at %d, want 0", ar.Effective)
	}
	if got := rootSrv.root.merger.Nodes(); !reflect.DeepEqual(got, []string{"fe-0", "fe-1"}) {
		t.Fatalf("membership after join: %v", got)
	}

	// A single node has no membership to change.
	_, plainHS := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})
	resp = announceHTTP(t, plainHS.URL, &ldprecover.Announce{NodeID: "x", Kind: ldprecover.AnnounceJoin})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("announce on a single node: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// An unpromoted standby redirects writes back to the root with 503.
	sbSrv, sbHS := testServer(t, streamServerConfig{
		Stream:       ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      1 << 20,
		Role:         roleStandby,
		DataDir:      t.TempDir(),
		RootAddr:     "http://127.0.0.1:1",
		PromoteAfter: time.Hour, // never promotes during this test
	})
	defer sbSrv.close()
	resp = announceHTTP(t, sbHS.URL, &ldprecover.Announce{NodeID: "x", Kind: ldprecover.AnnounceJoin})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("announce on an unpromoted standby: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	sealResp, err := http.Post(sbHS.URL+"/v1/seal", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sealResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("seal on an unpromoted standby: status %d, want 503", sealResp.StatusCode)
	}
	sealResp.Body.Close()
}

// waitForEpochs blocks until mgr() reports n sealed epochs.
func waitForEpochs(t *testing.T, what string, mgr func() *ldprecover.EpochManager, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if mgr().Stats().Epochs >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stalled at %d/%d merged epochs", what, mgr().Stats().Epochs, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterElasticFailoverE2E is the headline elasticity guarantee: a
// cluster that lives through a frontend join, a frontend leave, and a
// root kill with standby promotion must produce per-epoch window
// estimates, an LDPRecover* engagement epoch, and a final target set
// bit-identical to an uninterrupted single-node pipeline fed the union
// of the same reports.
func TestClusterElasticFailoverE2E(t *testing.T) {
	const (
		d, eps   = 32, 0.6
		epochs   = 8
		attackAt = 4 // first attacked epoch
		joinAt   = 3 // fe-2's first contributed epoch
		leaveAt  = 5 // fe-1's first absent epoch
		killAt   = 7 // first epoch merged by the promoted standby
	)
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := clusterStreamConfig(proto.Params())

	// The single-node reference pipeline over the union of reports.
	ref, err := ldprecover.NewEpochManager(streamCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The root and standby share a data directory (in production: shared
	// or replicated storage). promote-after is both the failover
	// threshold and the lease staleness bound.
	rootDir := t.TempDir()
	const promoteAfter = 300 * time.Millisecond
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:       streamCfg,
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      8 << 20,
		Role:         roleRoot,
		Nodes:        []string{"fe-0", "fe-1"},
		DataDir:      rootDir,
		PromoteAfter: promoteAfter,
	})
	sbSrv, sbHS := testServer(t, streamServerConfig{
		Stream:       streamCfg,
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      8 << 20,
		Role:         roleStandby,
		DataDir:      rootDir,
		RootAddr:     rootHS.URL,
		PromoteAfter: promoteAfter,
		StandbyPoll:  15 * time.Millisecond,
	})
	defer sbSrv.close()

	// Frontends know both delivery targets; fe-2 is started mid-run via
	// the join announcement.
	feSrv := make(map[string]*streamServer)
	feHS := make(map[string]*httptest.Server)
	startFrontend := func(node string, join bool) {
		t.Helper()
		srv, hs := testServer(t, streamServerConfig{
			Stream:       streamCfg,
			QueueLen:     64,
			Ingesters:    2,
			MaxBody:      8 << 20,
			Role:         roleFrontend,
			NodeID:       node,
			RootAddr:     rootHS.URL,
			StandbyAddr:  sbHS.URL,
			PushInterval: 20 * time.Millisecond,
			Join:         join,
			JoinTimeout:  5 * time.Second,
		})
		feSrv[node], feHS[node] = srv, hs
	}
	startFrontend("fe-0", false)
	startFrontend("fe-1", false)

	// Deterministic population, partitioned round-robin across whichever
	// frontends are members of each epoch.
	r := ldprecover.NewRand(29)
	mga, err := ldprecover.NewMGA([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(30 + 2*v)
	}

	members := []string{"fe-0", "fe-1"}
	activeURL := func() string { return rootHS.URL }
	rootEpochs := func() *ldprecover.EpochManager { return rootSrv.mgr }
	engagedRef, engagedCluster := -1, -1
	for e := 0; e < epochs; e++ {
		switch e {
		case joinAt:
			// fe-2 joins a running cluster: the boot-time announcement
			// assigns its first epoch and aligns its clock in one round
			// trip; no node stops, no epoch is skipped.
			startFrontend("fe-2", true)
			if got := feSrv["fe-2"].mgr.Stats().Epochs; got != joinAt {
				t.Fatalf("joiner's clock aligned to %d, want the assigned boundary %d", got, joinAt)
			}
			if got := len(feSrv["fe-2"].mgr.Epochs()); got != 0 {
				t.Fatalf("joiner retained %d sealed epochs before contributing", got)
			}
			members = []string{"fe-0", "fe-1", "fe-2"}
			if got := rootSrv.root.merger.Nodes(); !reflect.DeepEqual(got, members) {
				t.Fatalf("membership after join: %v, want %v", got, members)
			}
		case leaveAt:
			// fe-1 leaves cleanly at the epoch boundary: final flush,
			// then the leave announcement retires it from the barrier —
			// no straggler timeout needed.
			feHS["fe-1"].Close()
			feSrv["fe-1"].leaveOnShutdown = true
			if err := feSrv["fe-1"].close(); err != nil {
				t.Fatalf("fe-1 leave shutdown: %v", err)
			}
			members = []string{"fe-0", "fe-2"}
			if got := rootSrv.root.merger.Nodes(); !reflect.DeepEqual(got, members) {
				t.Fatalf("membership after leave: %v, want %v", got, members)
			}
		case killAt:
			// The root dies without releasing its lease (a crash, not a
			// shutdown): listener gone, heartbeat stopped. The standby
			// must see it unreachable past promote-after, wait out the
			// lease staleness, and take over at the persisted watermark.
			rootHS.Close()
			close(rootSrv.root.leaseStop)
			rootSrv.root.leaseWG.Wait()
			rootSrv.root.leaseStop = nil
			deadline := time.Now().Add(15 * time.Second)
			for sbSrv.standby.root.Load() == nil {
				if time.Now().After(deadline) {
					t.Fatal("standby never promoted")
				}
				time.Sleep(5 * time.Millisecond)
			}
			promoted := sbSrv.standby.root.Load()
			if got := promoted.merger.SealedThrough(); got != killAt {
				t.Fatalf("promoted standby resumed at watermark %d, want %d", got, killAt)
			}
			if got := promoted.merger.Nodes(); !reflect.DeepEqual(got, members) {
				t.Fatalf("promoted membership: %v, want %v", got, members)
			}
			// The warm state serves immediately: the last merged estimate
			// survives the failover bit-identical.
			if got, want := getEstimate(t, sbHS.URL), canonicalEstimate(t, toEstimateResponse(ref.Latest())); !reflect.DeepEqual(got, want) {
				t.Fatalf("promoted standby's warm estimate diverged\ngot  %+v\nwant %+v", got, want)
			}
			// Dedupe is idempotent across the promotion: re-sending every
			// retained sealed epoch from a frontend's ring changes nothing.
			for _, ep := range feSrv["fe-0"].mgr.Epochs() {
				frame, err := ldprecover.MarshalTally(&ldprecover.Tally{
					NodeID: "fe-0", Epoch: ep.Seq, Counts: ep.Counts, Total: ep.Total,
				})
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(sbHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					t.Fatal(err)
				}
				if tr := decodeJSON[tallyResponse](t, resp); !tr.Duplicate {
					t.Fatalf("epoch %d re-send after promotion not deduped: %+v", ep.Seq, tr)
				}
			}
			if got, want := getEstimate(t, sbHS.URL), canonicalEstimate(t, toEstimateResponse(ref.Latest())); !reflect.DeepEqual(got, want) {
				t.Fatalf("post-promotion re-sends changed the estimate\ngot  %+v\nwant %+v", got, want)
			}
			activeURL = func() string { return sbHS.URL }
			rootEpochs = func() *ldprecover.EpochManager { return sbSrv.manager() }
		}

		genuine, err := ldprecover.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		union := genuine
		if e >= attackAt {
			malicious, err := mga.CraftReports(r, proto, 250)
			if err != nil {
				t.Fatal(err)
			}
			union = append(append([]ldprecover.Report(nil), genuine...), malicious...)
		}
		// Partition the union round-robin across this epoch's members and
		// wait until every member folded its share before the clock ticks
		// (ingest is async behind the queue; waitForIngest tracks the
		// cumulative per-node total).
		parts := make(map[string][]ldprecover.Report)
		for i, rep := range union {
			node := members[i%len(members)]
			parts[node] = append(parts[node], rep)
		}
		for _, node := range members {
			before := feSrv[node].mgr.Stats().IngestedTotal
			postAll(t, feHS[node].URL, parts[node])
			waitForIngest(t, feSrv[node], before+int64(len(parts[node])))
		}
		// The shared epoch clock ticks; the barrier completes and seals.
		for _, node := range members {
			sealFrontend(t, feHS[node].URL)
		}
		waitForEpochs(t, "cluster", rootEpochs, e+1)

		// Reference pipeline over the union.
		if err := ref.AddBatch(union); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got := getEstimate(t, activeURL())
		wantResp := canonicalEstimate(t, toEstimateResponse(want))
		if !reflect.DeepEqual(got, wantResp) {
			t.Fatalf("epoch %d: cluster estimate diverged from single node\ngot  %+v\nwant %+v", e, got, wantResp)
		}
		if want.PartialKnowledge && engagedRef < 0 {
			engagedRef = e
		}
		if got.PartialKnowledge && engagedCluster < 0 {
			engagedCluster = e
		}
	}

	if engagedRef < 0 {
		t.Fatal("single-node pipeline never engaged LDPRecover*; the scenario is vacuous")
	}
	if engagedCluster != engagedRef {
		t.Fatalf("engagement epochs diverged: cluster %d, single node %d", engagedCluster, engagedRef)
	}
	final := getEstimate(t, activeURL())
	if !final.PartialKnowledge || len(final.Targets) == 0 {
		t.Fatalf("final estimate lost the stable target set: %+v", final)
	}
	st := getStats(t, sbHS.URL)
	if st.Cluster == nil || st.Cluster.Role != "standby" || !st.Cluster.Promoted {
		t.Fatalf("promoted standby stats: %+v", st.Cluster)
	}
	if st.Cluster.SealedThrough != epochs {
		t.Fatalf("promoted standby sealed through %d, want %d", st.Cluster.SealedThrough, epochs)
	}
	if fo := feSrv["fe-0"].pusher.failoverCount(); fo == 0 {
		t.Fatal("fe-0's pusher never failed over despite the root kill")
	}
}
