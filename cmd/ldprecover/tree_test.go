package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ldprecover"
)

// restartableServer wraps a streamServer behind a stable URL so a test
// can "crash" and restart it without the URL its peers hold changing —
// the process-restart situation, where the address survives the
// process. While down (no current server) every request answers 503,
// exactly like a listener that stopped accepting.
type restartableServer struct {
	cur atomic.Pointer[streamServer]
	hs  *httptest.Server
}

func newRestartableServer(t *testing.T, srv *streamServer) *restartableServer {
	t.Helper()
	rs := &restartableServer{}
	rs.cur.Store(srv)
	rs.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := rs.cur.Load()
		if s == nil {
			httpError(w, http.StatusServiceUnavailable, "node is down")
			return
		}
		s.handler().ServeHTTP(w, r)
	}))
	t.Cleanup(rs.hs.Close)
	return rs
}

// waitForMergerPending blocks until the merger's current barrier has
// accepted tallies from exactly the given nodes.
func waitForMergerPending(t *testing.T, srv *streamServer, nodes []string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		pending := srv.root.merger.PendingNodes()
		got := 0
		for _, n := range nodes {
			if pending[n] {
				got++
			}
		}
		if got == len(nodes) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("merger barrier never saw %v (pending: %v)", nodes, pending)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTreeEquivalenceE2E is the headline tree guarantee: a two-level
// aggregation tree — a root over two mergers, each merging three
// frontends — must produce per-epoch window estimates, an LDPRecover*
// engagement epoch, and a stable target set bit-identical to the
// single-node pipeline fed the union of the same reports. Mid-run the
// durable merger is killed after two of its children delivered (losing
// its in-memory barrier) and restarted from its data directory: the
// children's at-least-once re-push rebuilds the barrier, the restored
// ring re-sends upward, and the root dedupes — nothing diverges. An
// explicitly re-sent merged tally must likewise dedupe to a no-op.
func TestTreeEquivalenceE2E(t *testing.T) {
	const (
		d, eps    = 32, 0.6
		nMergers  = 2
		nPerM     = 3
		epochs    = 8
		attackAt  = 4 // first attacked epoch; also when the merger dies
		nFrontend = nMergers * nPerM
	)
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := clusterStreamConfig(proto.Params())

	// The single-node reference pipeline over the union of reports.
	ref, err := ldprecover.NewEpochManager(streamCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Level 0: the root, merging the two mergers.
	mergerIDs := []string{"m-0", "m-1"}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    streamCfg,
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   8 << 20,
		Role:      roleRoot,
		Nodes:     mergerIDs,
	})

	// Level 1: the mergers. m-0 is durable — it is the one that dies and
	// restarts; m-1 stays in memory.
	childIDs := make([][]string, nMergers)
	for m := range childIDs {
		childIDs[m] = make([]string, nPerM)
		for i := range childIDs[m] {
			childIDs[m][i] = fmt.Sprintf("fe-%d%d", m, i)
		}
	}
	m0Dir := filepath.Join(t.TempDir(), "m0")
	mergerCfg := func(m int) streamServerConfig {
		cfg := streamServerConfig{
			Stream:       streamCfg,
			QueueLen:     4,
			Ingesters:    1,
			MaxBody:      8 << 20,
			Role:         roleMerger,
			NodeID:       mergerIDs[m],
			RootAddr:     rootHS.URL,
			Nodes:        childIDs[m],
			PushInterval: 20 * time.Millisecond,
		}
		if m == 0 {
			cfg.DataDir = m0Dir
		}
		return cfg
	}
	mSrv := make([]*streamServer, nMergers)
	mRS := make([]*restartableServer, nMergers)
	for m := range mSrv {
		srv, err := newStreamServer(mergerCfg(m))
		if err != nil {
			t.Fatal(err)
		}
		mSrv[m] = srv
		mRS[m] = newRestartableServer(t, srv)
	}
	t.Cleanup(func() {
		for _, srv := range mSrv {
			if srv != nil {
				srv.drain()
				srv.close()
			}
		}
	})

	// Level 2: in-memory frontends, three per merger.
	feSrv := make([]*streamServer, nFrontend)
	feHS := make([]*httptest.Server, nFrontend)
	for m := 0; m < nMergers; m++ {
		for i := 0; i < nPerM; i++ {
			feSrv[m*nPerM+i], feHS[m*nPerM+i] = testServer(t, streamServerConfig{
				Stream:       streamCfg,
				QueueLen:     64,
				Ingesters:    2,
				MaxBody:      8 << 20,
				Role:         roleFrontend,
				NodeID:       childIDs[m][i],
				RootAddr:     mRS[m].hs.URL,
				PushInterval: 20 * time.Millisecond,
			})
		}
	}

	r := ldprecover.NewRand(29)
	mga, err := ldprecover.NewMGA([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(30 + 2*v)
	}

	engagedRef, engagedRoot := -1, -1
	ingested := make([]int64, nFrontend)
	for e := 0; e < epochs; e++ {
		genuine, err := ldprecover.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		union := genuine
		if e >= attackAt {
			malicious, err := mga.CraftReports(r, proto, 250)
			if err != nil {
				t.Fatal(err)
			}
			union = append(append([]ldprecover.Report(nil), genuine...), malicious...)
		}
		parts := make([][]ldprecover.Report, nFrontend)
		for i, rep := range union {
			parts[i%nFrontend] = append(parts[i%nFrontend], rep)
		}
		for i := range parts {
			postAll(t, feHS[i].URL, parts[i])
			ingested[i] += int64(len(parts[i]))
			waitForIngest(t, feSrv[i], ingested[i])
		}

		if e == attackAt {
			// Two of m-0's children seal and deliver; then m-0 "dies" —
			// its in-memory barrier (two accepted, unsealed tallies) is
			// gone — and a fresh process resumes from the same data dir
			// behind the same URL. The children's pushers still hold those
			// tallies (the watermark never covered them), so their re-push
			// rebuilds the barrier; the restored ring re-sends upward and
			// the root dedupes it.
			sealFrontend(t, feHS[0].URL)
			sealFrontend(t, feHS[1].URL)
			waitForMergerPending(t, mSrv[0], childIDs[0][:2])
			mRS[0].cur.Store(nil)
			if err := mSrv[0].close(); err != nil {
				t.Fatalf("merger close before crash: %v", err)
			}
			srv, err := newStreamServer(mergerCfg(0))
			if err != nil {
				t.Fatal(err)
			}
			mSrv[0] = srv
			if got := srv.root.merger.SealedThrough(); got != e {
				t.Fatalf("restarted merger resumed at watermark %d, want %d", got, e)
			}
			mRS[0].cur.Store(srv)
			sealFrontend(t, feHS[2].URL)
			for i := nPerM; i < nFrontend; i++ {
				sealFrontend(t, feHS[i].URL)
			}
		} else {
			// The shared epoch clock ticks: every frontend seals epoch e;
			// each merger's barrier completes and seals; each merged tally
			// propagates; the root's barrier completes and seals.
			for i := range feHS {
				sealFrontend(t, feHS[i].URL)
			}
		}
		waitForRootEpochs(t, rootSrv, e+1)

		if err := ref.AddBatch(union); err != nil {
			t.Fatal(err)
		}
		want, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got := getEstimate(t, rootHS.URL)
		wantResp := canonicalEstimate(t, toEstimateResponse(want))
		if !reflect.DeepEqual(got, wantResp) {
			t.Fatalf("epoch %d: tree estimate diverged from single node\ngot  %+v\nwant %+v", e, got, wantResp)
		}
		if want.PartialKnowledge && engagedRef < 0 {
			engagedRef = e
		}
		if got.PartialKnowledge && engagedRoot < 0 {
			engagedRoot = e
		}

		if e == attackAt+1 {
			// Re-send m-1's oldest merged tally verbatim: the root must
			// dedupe it and nothing may move.
			before := getEstimate(t, rootHS.URL)
			epochsBefore := rootSrv.mgr.Stats().Epochs
			mEpochs := mSrv[1].mgr.Epochs()
			dup := &ldprecover.Tally{
				NodeID: mergerIDs[1], Epoch: mEpochs[0].Seq,
				Counts: mEpochs[0].Counts, Total: mEpochs[0].Total,
			}
			frame, err := ldprecover.MarshalTally(dup)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(rootHS.URL+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
			if err != nil {
				t.Fatal(err)
			}
			tr := decodeJSON[tallyResponse](t, resp)
			if !tr.Duplicate {
				t.Fatalf("re-sent merged tally not deduped: %+v", tr)
			}
			if after := getEstimate(t, rootHS.URL); !reflect.DeepEqual(after, before) {
				t.Fatal("duplicate merged tally changed the served estimate")
			}
			if rootSrv.mgr.Stats().Epochs != epochsBefore {
				t.Fatal("duplicate merged tally sealed an epoch")
			}
		}
	}

	if engagedRef < 0 {
		t.Fatal("single-node pipeline never engaged LDPRecover*; the scenario is vacuous")
	}
	if engagedRoot != engagedRef {
		t.Fatalf("engagement epochs diverged: tree %d, single node %d", engagedRoot, engagedRef)
	}
	final := getEstimate(t, rootHS.URL)
	if !final.PartialKnowledge || len(final.Targets) == 0 {
		t.Fatalf("tree final estimate lost the stable target set: %+v", final)
	}

	// Accounting: the root merged both mergers every epoch, observed the
	// ring re-send's duplicates, and each level reports its own role.
	st := getStats(t, rootHS.URL)
	if st.Cluster == nil || st.Cluster.Role != "root" {
		t.Fatalf("root stats missing cluster section: %+v", st)
	}
	if st.Cluster.SealedThrough != epochs {
		t.Fatalf("root sealed through %d, want %d", st.Cluster.SealedThrough, epochs)
	}
	for _, m := range st.Cluster.Merged {
		if len(m.Missing) != 0 || !reflect.DeepEqual(m.Nodes, mergerIDs) {
			t.Fatalf("merged epoch %d incomplete: %+v", m.Epoch, m)
		}
		var sum int64
		for _, tot := range m.NodeTotals {
			sum += tot
		}
		if sum != m.Total {
			t.Fatalf("merged epoch %d node totals sum to %d, epoch total %d", m.Epoch, sum, m.Total)
		}
	}
	if st.Cluster.Duplicates == 0 {
		t.Fatal("root observed no duplicates despite the restart ring re-send")
	}
	mst := getStats(t, mRS[0].hs.URL)
	if mst.Cluster == nil || mst.Cluster.Role != "merger" {
		t.Fatalf("merger stats missing merger section: %+v", mst)
	}
	if mst.Cluster.NodeID != "m-0" || mst.Cluster.SealedThrough != epochs {
		t.Fatalf("merger section: %+v", mst.Cluster)
	}
	if !reflect.DeepEqual(mst.Cluster.Nodes, childIDs[0]) {
		t.Fatalf("merger barrier set: %+v", mst.Cluster.Nodes)
	}
}

// TestMergerStragglerAndMembership exercises the straggler and
// join/leave paths at an intermediate tree level: a merger whose child
// goes dark force-seals a partial epoch, and that partial's accounting
// propagates upward as an ordinary merged tally — the root's barrier
// completes with it, so a slow leaf slows nothing above one straggler
// timeout. Membership changes at the merger level (a child joining, a
// child leaving) likewise stay local to that merger's barrier.
func TestMergerStragglerAndMembership(t *testing.T) {
	proto, err := ldprecover.NewGRR(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1, History: 8}
	rootSrv, rootHS := testServer(t, streamServerConfig{
		Stream:    streamCfg,
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
		Role:      roleRoot,
		Nodes:     []string{"m-0"},
	})
	mSrv, mHS := testServer(t, streamServerConfig{
		Stream:       streamCfg,
		QueueLen:     4,
		Ingesters:    1,
		MaxBody:      1 << 20,
		Role:         roleMerger,
		NodeID:       "m-0",
		RootAddr:     rootHS.URL,
		Nodes:        []string{"a", "b"},
		TallyTimeout: 50 * time.Millisecond,
		PushInterval: 10 * time.Millisecond,
	})
	push := func(url, node string, epoch int, val int64) tallyResponse {
		t.Helper()
		tl := &ldprecover.Tally{NodeID: node, Epoch: epoch, Counts: make([]int64, 16), Total: val}
		tl.Counts[2] = val
		frame, err := ldprecover.MarshalTally(tl)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/tally", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tally status %d", resp.StatusCode)
		}
		return decodeJSON[tallyResponse](t, resp)
	}
	announce := func(kind ldprecover.AnnounceKind, node string, epoch int) announceResponse {
		t.Helper()
		frame, err := ldprecover.MarshalAnnounce(&ldprecover.Announce{NodeID: node, Kind: kind, Epoch: epoch})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(mHS.URL+"/v1/membership", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("announce status %d", resp.StatusCode)
		}
		return decodeJSON[announceResponse](t, resp)
	}

	// Epoch 0: "b" goes dark. The merger's straggler timer force-seals
	// the partial epoch, which must reach the root as a merged tally.
	push(mHS.URL, "a", 0, 40)
	waitForRootEpochs(t, rootSrv, 1)
	mst := getStats(t, mHS.URL)
	if len(mst.Cluster.Merged) != 1 {
		t.Fatalf("merger merged epochs: %+v", mst.Cluster)
	}
	if m := mst.Cluster.Merged[0]; !reflect.DeepEqual(m.Missing, []string{"b"}) || m.Total != 40 {
		t.Fatalf("merger partial accounting: %+v", m)
	}
	rst := getStats(t, rootHS.URL)
	if len(rst.Cluster.Merged) != 1 {
		t.Fatalf("root merged epochs: %+v", rst.Cluster)
	}
	// The root's barrier is complete — the partial-ness lives in the
	// merger's accounting, the root just sees m-0's (reduced) total.
	if m := rst.Cluster.Merged[0]; len(m.Missing) != 0 || m.Total != 40 || m.NodeTotals["m-0"] != 40 {
		t.Fatalf("root accounting of the propagated partial: %+v", m)
	}

	// A child joins at the merger level, effective next epoch: the
	// barrier now needs a, b, and c.
	if ar := announce(ldprecover.AnnounceJoin, "c", 0); ar.Effective != 1 {
		t.Fatalf("join effective %d, want 1", ar.Effective)
	}
	push(mHS.URL, "a", 1, 10)
	push(mHS.URL, "b", 1, 20)
	if rootSrv.mgr.Stats().Epochs != 1 {
		t.Fatal("merger sealed epoch 1 without its joined child")
	}
	push(mHS.URL, "c", 1, 30)
	waitForRootEpochs(t, rootSrv, 2)
	rst = getStats(t, rootHS.URL)
	if m := rst.Cluster.Merged[1]; m.Total != 60 {
		t.Fatalf("root epoch 1 after merger-level join: %+v", m)
	}

	// A child leaves from epoch 2: the barrier completes without it.
	if ar := announce(ldprecover.AnnounceLeave, "b", 2); ar.Effective != 2 {
		t.Fatalf("leave effective %d, want 2", ar.Effective)
	}
	push(mHS.URL, "a", 2, 5)
	push(mHS.URL, "c", 2, 6)
	waitForRootEpochs(t, rootSrv, 3)
	mst = getStats(t, mHS.URL)
	if m := mst.Cluster.Merged[2]; len(m.Missing) != 0 || !reflect.DeepEqual(m.Nodes, []string{"a", "c"}) {
		t.Fatalf("merger epoch 2 after leave: %+v", m)
	}
	rst = getStats(t, rootHS.URL)
	if m := rst.Cluster.Merged[2]; m.Total != 11 {
		t.Fatalf("root epoch 2 after merger-level leave: %+v", m)
	}
	_ = mSrv
}

// TestPusherBackoffJitterDiverges pins the retry schedule's shape: a
// failed pass backs off to somewhere in [interval, 3*prev) capped at
// maxPushBackoff, the draw is deterministic per node id, and two nodes'
// schedules diverge — a root restart must not get every child back in
// lockstep.
func TestPusherBackoffJitterDiverges(t *testing.T) {
	const interval = 100 * time.Millisecond
	mk := func(node string) *tallyPusher {
		p := newTallyPusher(node, []string{"http://127.0.0.1:1"}, interval, 0)
		t.Cleanup(func() { p.close() })
		return p
	}
	schedule := func(p *tallyPusher, n int) []time.Duration {
		out := make([]time.Duration, n)
		prev := p.interval
		for i := range out {
			prev = p.nextBackoff(prev)
			out[i] = prev
		}
		return out
	}
	a, b := mk("fe-0"), mk("fe-1")
	seqA, seqB := schedule(a, 12), schedule(b, 12)
	prev := interval
	for i, d := range seqA {
		lo, hi := interval, 3*prev
		if hi > maxPushBackoff {
			hi = maxPushBackoff + 1
		}
		if d < lo || d >= hi {
			t.Fatalf("step %d: backoff %s outside [%s, %s)", i, d, lo, hi)
		}
		prev = d
	}
	if reflect.DeepEqual(seqA, seqB) {
		t.Fatalf("two nodes drew identical backoff schedules: %v", seqA)
	}
	if again := schedule(mk("fe-0"), 12); !reflect.DeepEqual(seqA, again) {
		t.Fatalf("same node id drew different schedules: %v vs %v", seqA, again)
	}
}

// TestServeMergerFlagValidation: the merger role's flag surface fails
// up front with the offending flag named, like the other roles'.
func TestServeMergerFlagValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		want []string
	}{
		"merger-no-root-addr": {[]string{"-role", "merger"}, []string{"-root-addr"}},
		"merger-no-node-id": {
			[]string{"-role", "merger", "-root-addr", "http://r:1"},
			[]string{"-node-id"}},
		"merger-no-nodes": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0"},
			[]string{"-nodes"}},
		"merger-bad-root-url": {
			[]string{"-role", "merger", "-root-addr", "r:1:2:3", "-node-id", "m-0", "-nodes", "a,b"},
			[]string{"-root-addr"}},
		"merger-with-targets": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a", "-targets", "5"},
			[]string{"-targets", "root"}},
		"merger-with-epoch": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a", "-epoch", "30s"},
			[]string{"-epoch", "-tally-timeout"}},
		"merger-with-join": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a", "-join"},
			[]string{"-join", "-role=frontend"}},
		"merger-with-promote-after": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a", "-promote-after", "5s"},
			[]string{"-promote-after", "-role=standby"}},
		"merger-negative-timeout": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a", "-tally-timeout", "-5s"},
			[]string{"-tally-timeout"}},
		"merger-duplicate-node": {
			[]string{"-role", "merger", "-root-addr", "http://r:1", "-node-id", "m-0", "-nodes", "a,a"},
			[]string{"-nodes"}},
	} {
		t.Run(name, func(t *testing.T) {
			err := runServe(tc.args)
			if err == nil {
				t.Fatalf("runServe(%v) succeeded", tc.args)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q does not name %s", err, want)
				}
			}
		})
	}
}
