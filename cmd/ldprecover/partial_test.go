package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"ldprecover"
)

// postPartial pre-aggregates reps through a Collector and posts the
// flushed partial-tally frame.
func postPartial(t *testing.T, url string, d, hint int, reps []ldprecover.Report) *http.Response {
	t.Helper()
	col, err := ldprecover.NewCollector("edge-test", d)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	frame, err := col.Flush(hint)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/partial", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServePartialEndpoint: the partial-tally lane end to end against an
// in-memory server — a pre-aggregated epoch serves the same estimate as
// the same reports through /v1/reports, a stale hint answers 409
// (mirroring the sealed-boundary taxonomy of /v1/tally), and the stats
// counters see both.
func TestServePartialEndpoint(t *testing.T) {
	const d, eps = 24, 0.8
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params(), TargetK: -1},
		QueueLen:  16,
		Ingesters: 1,
		MaxBody:   1 << 20,
	}
	refSrv, refHS := testServer(t, cfg)
	partSrv, partHS := testServer(t, cfg)

	r := ldprecover.NewRand(31)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(40 + 3*v)
	}
	reps, err := ldprecover.PerturbAll(proto, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: report-level ingest.
	resp := postBatch(t, refHS.URL, reps)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("report ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	waitForIngest(t, refSrv, int64(len(reps)))
	want := sealOverHTTP(t, refHS.URL)

	// Partial lane: the same users, one frame.
	resp = postPartial(t, partHS.URL, d, 0, reps)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("partial ingest status %d", resp.StatusCode)
	}
	pr := decodeJSON[partialResponse](t, resp)
	if pr.Users != int64(len(reps)) || pr.EpochHint != 0 {
		t.Fatalf("partial ack %+v", pr)
	}
	got := sealOverHTTP(t, partHS.URL)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partial-lane estimate diverged from report-level:\n got %+v\nwant %+v", got, want)
	}

	// Stale: the watermark is now 1, a hint-0 partial must bounce with
	// 409 and fold nothing.
	resp = postPartial(t, partHS.URL, d, 0, reps[:64])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale partial status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	if live := partSrv.mgr.Stats().LiveTotal; live != 0 {
		t.Fatalf("stale partial folded %d live users", live)
	}
	// A current (even future) hint clamps into the open epoch.
	resp = postPartial(t, partHS.URL, d, 7, reps[:64])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ahead-hint partial status %d", resp.StatusCode)
	}
	resp.Body.Close()

	st := getJSON[statsResponse](t, partHS.URL+"/v1/stats")
	if st.PartialsAccepted != 2 || st.PartialsStale != 1 {
		t.Fatalf("partial counters %+v", st)
	}
	if st.LiveTotal != 64 {
		t.Fatalf("live total %d want 64", st.LiveTotal)
	}
}

// TestServePartialBadRequests: the partial lane's error taxonomy.
func TestServePartialBadRequests(t *testing.T) {
	proto, err := ldprecover.NewGRR(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, hs := testServer(t, streamServerConfig{
		Stream:    ldprecover.StreamConfig{Params: proto.Params()},
		QueueLen:  4,
		Ingesters: 1,
		MaxBody:   1 << 20,
	})

	// Garbage frame.
	resp, err := http.Post(hs.URL+"/v1/partial", "application/octet-stream", bytes.NewReader([]byte("not a frame")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage partial: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// A valid frame over the wrong domain.
	col, err := ldprecover.NewCollector("edge", 8)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := col.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(hs.URL+"/v1/partial", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("domain-mismatched partial: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wrong method.
	resp, err = http.Get(hs.URL + "/v1/partial")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET partial: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeMixedLaneCrashRestartE2E is the tally-first acceptance test:
// a durable server ingesting over both lanes — report batches on
// /v1/reports (the zero-copy path) and edge-aggregated partials on
// /v1/partial — is crashed mid-epoch with both record kinds in the WAL
// tail, restarted, and must serve window estimates bit-identical to an
// uninterrupted in-memory server fed every report through /v1/reports.
func TestServeMixedLaneCrashRestartE2E(t *testing.T) {
	const d, eps = 32, 1.0
	const quiet, attacked = 6, 6
	targets := []int{5, 21}
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	epochs := durableEpochs(t, proto, d, quiet, attacked, targets)
	epochTotal := func(e int) int64 {
		var n int64
		for _, b := range epochs[e] {
			n += int64(len(b))
		}
		return n
	}

	newServer := func(dataDir string) (*streamServer, *httptest.Server) {
		t.Helper()
		srv, err := newStreamServer(streamServerConfig{
			Stream:    durableStreamConfig(proto),
			QueueLen:  64,
			Ingesters: 2,
			MaxBody:   8 << 20,
			DataDir:   dataDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.handler())
		return srv, hs
	}

	// Pure report-level reference, in memory.
	ref, refHS := newServer("")
	defer refHS.Close()
	var want []estimateResponse
	var total int64
	for e := range epochs {
		total += epochTotal(e)
		ingestBatches(t, ref, refHS.URL, epochs[e], total)
		want = append(want, sealOverHTTP(t, refHS.URL))
	}

	// Mixed-lane durable run: every third batch of each epoch is
	// pre-aggregated at the edge and posted as a partial tally with the
	// current epoch as its hint; the rest go through /v1/reports.
	ingestMixed := func(srv *streamServer, url string, e, from int, soFar int64) int64 {
		t.Helper()
		for i := from; i < len(epochs[e]); i++ {
			b := epochs[e][i]
			var resp *http.Response
			if i%3 == 2 {
				resp = postPartial(t, url, d, e, b)
			} else {
				resp = postBatch(t, url, b)
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("epoch %d batch %d: status %d", e, i, resp.StatusCode)
			}
			resp.Body.Close()
			soFar += int64(len(b))
		}
		waitForIngest(t, srv, soFar)
		return soFar
	}

	crashAt := quiet
	dataDir := t.TempDir()
	srv1, hs1 := newServer(dataDir)
	var got []estimateResponse
	total = 0
	for e := 0; e <= crashAt; e++ {
		total = ingestMixed(srv1, hs1.URL, e, 0, total)
		got = append(got, sealOverHTTP(t, hs1.URL))
	}
	// Leave both record kinds in the crashed epoch's WAL tail: one
	// partial, one report batch.
	next := epochs[crashAt+1]
	resp := postPartial(t, hs1.URL, d, crashAt+1, next[0])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tail partial status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postBatch(t, hs1.URL, next[1])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tail batch status %d", resp.StatusCode)
	}
	resp.Body.Close()
	total += int64(len(next[0]) + len(next[1]))
	waitForIngest(t, srv1, total)

	// Crash: no drain, no close, and a torn final WAL record.
	hs1.Close()
	tearWALTail(t, filepath.Join(dataDir, "wal"))

	srv2, hs2 := newServer(dataDir)
	defer hs2.Close()
	defer srv2.close()
	ri := srv2.store.Restored()
	if ri.SnapshotSeq != crashAt+1 {
		t.Fatalf("restored %d sealed epochs, want %d", ri.SnapshotSeq, crashAt+1)
	}
	if ri.ReplayedPartials != 1 || ri.ReplayedPartialUsers != int64(len(next[0])) {
		t.Fatalf("replayed %d partials / %d users, want 1 / %d",
			ri.ReplayedPartials, ri.ReplayedPartialUsers, len(next[0]))
	}
	if ri.ReplayedBatches != 1 {
		t.Fatalf("replayed %d report batches, want 1", ri.ReplayedBatches)
	}
	if est := getJSON[estimateResponse](t, hs2.URL+"/v1/estimate"); !reflect.DeepEqual(est, got[crashAt]) {
		t.Fatalf("restored estimate %+v, want %+v", est, got[crashAt])
	}
	waitForIngest(t, srv2, total)

	total = ingestMixed(srv2, hs2.URL, crashAt+1, 2, total)
	got = append(got, sealOverHTTP(t, hs2.URL))
	for e := crashAt + 2; e < len(epochs); e++ {
		total = ingestMixed(srv2, hs2.URL, e, 0, total)
		got = append(got, sealOverHTTP(t, hs2.URL))
	}

	for e := range want {
		if !reflect.DeepEqual(got[e], want[e]) {
			t.Fatalf("epoch %d estimate diverged from pure report-level:\n got %+v\nwant %+v", e, got[e], want[e])
		}
	}
	st := getJSON[statsResponse](t, hs2.URL+"/v1/stats")
	if st.PartialsAccepted == 0 || st.PartialsStale != 0 {
		t.Fatalf("partial counters %+v", st)
	}
	// The pooled report-lane buffers were recycled: far fewer
	// allocations than checkouts once the workers keep returning them.
	if st.BufPoolHits == 0 {
		t.Fatalf("report-lane buffer pool never hit: %d gets, %d misses",
			st.BufPoolHits+st.BufPoolMisses, st.BufPoolMisses)
	}
}
