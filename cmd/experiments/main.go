// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig3,fig4 -scale 0.1 -trials 5
//	experiments -exp all -scale 1 -trials 10 -csv
//	experiments -exp ablation:refiner
//
// At -scale 1 the datasets match the paper's sizes (389,894 and 667,574
// users); figures that need report-level simulation (fig3, fig4) take a
// few minutes there. Smaller scales preserve the qualitative shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ldprecover/internal/experiment"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids (see -list), 'all', or 'ablation:<id>'")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1 = paper scale)")
		trials  = flag.Int("trials", experiment.DefaultTrials, "trials per experimental cell")
		seed    = flag.Uint64("seed", 20240403, "random seed")
		workers = flag.Int("workers", 1, "per-trial batch-simulation goroutines (1 = sequential, 0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list available experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper tables/figures):")
		for _, id := range experiment.RegistryOrder {
			fmt.Printf("  %s\n", id)
		}
		fmt.Println("ablations (prefix with 'ablation:'):")
		for _, id := range experiment.AblationOrder {
			fmt.Printf("  ablation:%s\n", id)
		}
		return
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg := experiment.Config{Scale: *scale, Trials: *trials, Seed: *seed, Workers: *workers}

	var ids []string
	if *exps == "all" {
		ids = append(ids, experiment.RegistryOrder...)
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing to run (see -list)")
		os.Exit(2)
	}

	for _, id := range ids {
		gen := experiment.Registry[id]
		if gen == nil && strings.HasPrefix(id, "ablation:") {
			gen = experiment.AblationRegistry[strings.TrimPrefix(id, "ablation:")]
		}
		if gen == nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		//ldplint:allow nowallclock wall-time measurement for the run report only
		start := time.Now()
		tables, err := gen(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
		//ldplint:allow nowallclock wall-time measurement for the run report only
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Printf("[%s completed in %v: scale=%g trials=%d seed=%d]\n\n",
			id, elapsed, *scale, *trials, *seed)
	}
}
