package ldprecover_test

import (
	"fmt"
	"math"
	"testing"

	"ldprecover"
)

// TestFacadeEndToEnd exercises the public API exactly as a downstream
// user would: simulate, attack, recover, evaluate.
func TestFacadeEndToEnd(t *testing.T) {
	const d, eps = 30, 0.5
	r := ldprecover.NewRand(1)

	ds, err := ldprecover.ZipfDataset("demo", d, 30000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := ldprecover.RandomTargets(r, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		t.Fatal(err)
	}
	malicious, err := mga.CraftReports(r, proto, 1500)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]ldprecover.Report{}, genuine...), malicious...)

	poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	genuineEst, err := ldprecover.EstimateFrequencies(genuine, proto.Params())
	if err != nil {
		t.Fatal(err)
	}

	res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resStar, err := ldprecover.RecoverWithTargets(poisoned, proto.Params(), targets, ldprecover.DefaultEta)
	if err != nil {
		t.Fatal(err)
	}

	trueF := ds.Frequencies()
	mseBefore, err := ldprecover.MSE(poisoned, trueF)
	if err != nil {
		t.Fatal(err)
	}
	mseAfter, err := ldprecover.MSE(res.Frequencies, trueF)
	if err != nil {
		t.Fatal(err)
	}
	if mseAfter >= mseBefore {
		t.Fatalf("recovery failed: before %v after %v", mseBefore, mseAfter)
	}

	fgBefore, err := ldprecover.FrequencyGain(poisoned, genuineEst, targets)
	if err != nil {
		t.Fatal(err)
	}
	fgStar, err := ldprecover.FrequencyGain(resStar.Frequencies, genuineEst, targets)
	if err != nil {
		t.Fatal(err)
	}
	if fgBefore <= 0 || fgStar >= fgBefore/2 {
		t.Fatalf("FG not suppressed: before %v star %v", fgBefore, fgStar)
	}

	// Detection baseline runs on the same reports.
	det, err := ldprecover.Detection(all, targets, proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	if det.Removed == 0 {
		t.Fatal("detection removed nobody")
	}
}

// TestFacadeShardedBatchPipeline exercises the concurrent ingest engine
// and the batch perturbation fast path through the public API: a genuine
// population simulated in batch, a poisoning attack's counts folded in,
// and recovery run on the sharded aggregate's estimate.
func TestFacadeShardedBatchPipeline(t *testing.T) {
	const d, eps = 24, 0.8
	r := ldprecover.NewRand(9)

	ds, err := ldprecover.ZipfDataset("sharded-demo", d, 40000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	var _ ldprecover.BatchPerturber = proto // fast path is part of the API

	genCounts, err := ldprecover.BatchSimulate(proto, r, ds.Counts, 0)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := ldprecover.RandomTargets(r, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		t.Fatal(err)
	}
	const m = 2000
	malCounts, err := mga.CraftCounts(r, proto, m)
	if err != nil {
		t.Fatal(err)
	}

	sa, err := ldprecover.NewShardedAccumulator(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.AddCounts(genCounts, ds.N()); err != nil {
		t.Fatal(err)
	}
	if err := sa.AddCounts(malCounts, m); err != nil {
		t.Fatal(err)
	}
	if sa.Total() != ds.N()+m {
		t.Fatalf("total %d want %d", sa.Total(), ds.N()+m)
	}

	poisoned, err := sa.Estimate(proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	trueF := ds.Frequencies()
	mseBefore, err := ldprecover.MSE(poisoned, trueF)
	if err != nil {
		t.Fatal(err)
	}
	mseAfter, err := ldprecover.MSE(res.Frequencies, trueF)
	if err != nil {
		t.Fatal(err)
	}
	if mseAfter >= mseBefore {
		t.Fatalf("recovery failed on batch pipeline: before %v after %v", mseBefore, mseAfter)
	}
}

func TestFacadeMaliciousSum(t *testing.T) {
	proto, _ := ldprecover.NewGRR(102, 0.5)
	sum, err := ldprecover.MaliciousSum(proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	if sum < 0.9 || sum > 1.1 {
		t.Fatalf("GRR malicious sum %v", sum)
	}
}

func TestFacadeRefiners(t *testing.T) {
	in := []float64{0.8, -0.2, 0.6}
	a, err := ldprecover.RefineKKT(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ldprecover.ProjectSimplex(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("refiners disagree: %v vs %v", a, b)
		}
	}
}

func TestFacadeOutlierPipeline(t *testing.T) {
	ds := ldprecover.SyntheticIPUMS()
	small, err := ds.Scaled(0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := ldprecover.NewRand(3)
	hist, err := ldprecover.GenerateHistory(small, 8, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	current := append([]float64(nil), small.Frequencies()...)
	current[11] += 0.2
	found, err := ldprecover.ZScoreOutliers(hist, current, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0] != 11 {
		t.Fatalf("outliers %v want [11]", found)
	}
	top, err := ldprecover.TopIncrease(small.Frequencies(), current, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 11 {
		t.Fatalf("top increase %v", top)
	}
}

func TestFacadeSyntheticCorpora(t *testing.T) {
	if ldprecover.SyntheticIPUMS().Domain() != 102 {
		t.Fatal("IPUMS surrogate domain wrong")
	}
	if ldprecover.SyntheticFire().Domain() != 490 {
		t.Fatal("Fire surrogate domain wrong")
	}
}

// ExampleRecover demonstrates non-knowledge recovery on an analytically
// poisoned vector.
func ExampleRecover() {
	proto, _ := ldprecover.NewGRR(4, 1.0)
	// A poisoned estimate: item 0's frequency has been inflated.
	poisoned := []float64{0.70, 0.15, 0.10, 0.05}
	res, _ := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	var sum float64
	for _, f := range res.Frequencies {
		sum += f
	}
	fmt.Printf("simplex sum = %.3f\n", sum)
	// Output: simplex sum = 1.000
}

// TestFacadeStreamingPipeline exercises the streaming re-exports as a
// downstream service would: batch frames off the wire into an
// EpochManager, seal epochs, and read window estimates.
func TestFacadeStreamingPipeline(t *testing.T) {
	const d, eps = 16, 0.8
	proto, err := ldprecover.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{
		Params: proto.Params(),
		Window: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := ldprecover.NewRand(4)
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = 500
	}
	for e := 0; e < 3; e++ {
		reports, err := ldprecover.PerturbAll(proto, r, counts)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip one epoch through the batch wire codec, the way the
		// serve endpoint receives it.
		frame, err := ldprecover.MarshalReportBatch(reports[:256])
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ldprecover.UnmarshalReportBatch(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.AddBatch(decoded); err != nil {
			t.Fatal(err)
		}
		if err := mgr.AddBatch(reports[256:]); err != nil {
			t.Fatal(err)
		}
		est, err := mgr.Seal()
		if err != nil {
			t.Fatal(err)
		}
		wantEpochs := 2
		if e == 0 {
			wantEpochs = 1
		}
		if est.Epochs != wantEpochs || est.Total != int64(wantEpochs*len(reports)) {
			t.Fatalf("epoch %d: window %d epochs / %d reports", e, est.Epochs, est.Total)
		}
		var sum float64
		for _, f := range est.Recovered {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("recovered window estimate sums to %v", sum)
		}
	}
	st := mgr.Stats()
	if st.Epochs != 3 || st.IngestedTotal != int64(3*d*500) {
		t.Fatalf("stream stats %+v", st)
	}
	if mgr.Latest() == nil {
		t.Fatal("no latest window estimate")
	}
	// The tracker hysteresis is reachable through the facade too.
	tr, err := ldprecover.NewTargetTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe([]int{3})
	if got := tr.Observe([]int{3}); len(got) != 1 || got[0] != 3 {
		t.Fatalf("tracker stable set %v", got)
	}
}
