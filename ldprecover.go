// Package ldprecover is the public API of this repository: a Go
// implementation of LDPRecover (Sun et al., ICDE 2024), which recovers
// accurate aggregated frequencies from poisoning attacks against local
// differential privacy protocols, together with the full stack the paper
// builds on — the GRR/OUE/OLH frequency-estimation protocols, the
// Manip/MGA/adaptive/input-poisoning attacks, and the Detection and
// k-means countermeasure baselines.
//
// # Quick start
//
//	proto, _ := ldprecover.NewOUE(domainSize, epsilon)
//	// ... collect reports, aggregate ...
//	poisoned, _ := ldprecover.EstimateFrequencies(reports, proto.Params())
//	res, _ := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
//	fmt.Println(res.Frequencies) // non-negative, sums to 1
//
// When the attacker's target items are known (e.g. from
// ldprecover.ZScoreOutliers over historical estimates), pass them via
// Options.Targets to run LDPRecover*, the paper's partial-knowledge
// variant, which is strictly more accurate against targeted attacks.
//
// For high-throughput serving, ShardedAccumulator ingests reports from
// many goroutines concurrently, and BatchSimulate produces whole-population
// aggregate counts without materializing per-user reports. EpochManager
// (DESIGN.md §5) turns the same flow into a continuously-serving epoch
// stream — sealed epochs, sliding-window estimates, and an automatic
// upgrade to LDPRecover* once attacked items stabilize — which the
// `ldprecover serve` subcommand exposes over HTTP.
//
// See README.md for the quick start, package layout and how to run the
// paper's figure benchmarks; examples/ for runnable end-to-end scenarios;
// and DESIGN.md for the paper-to-package map.
package ldprecover

import (
	"time"

	"ldprecover/internal/attack"
	"ldprecover/internal/core"
	"ldprecover/internal/dataset"
	"ldprecover/internal/detect"
	"ldprecover/internal/harmony"
	"ldprecover/internal/hh"
	"ldprecover/internal/kv"
	"ldprecover/internal/ldp"
	"ldprecover/internal/metrics"
	"ldprecover/internal/persist"
	"ldprecover/internal/rng"
	"ldprecover/internal/stream"
)

// Re-exported protocol types (paper §III-B).
type (
	// Protocol is a pure LDP frequency-estimation protocol (Ψ, Φ).
	Protocol = ldp.Protocol
	// Report is one user's perturbed submission.
	Report = ldp.Report
	// Params carries a protocol's aggregation parameters (p, q, d).
	Params = ldp.Params
	// GRR is General Randomized Response.
	GRR = ldp.GRR
	// OUE is Optimized Unary Encoding.
	OUE = ldp.OUE
	// OLH is Optimized Local Hashing.
	OLH = ldp.OLH
	// SUE is Symmetric Unary Encoding (basic RAPPOR) — not part of the
	// paper's evaluation, included to demonstrate recovery generality.
	SUE = ldp.SUE
)

// Re-exported recovery types (paper §V).
type (
	// Options configures Recover; see core.Options for the fields.
	Options = core.Options
	// Result carries recovered frequencies and diagnostics.
	Result = core.Result
	// Refiner maps an estimate onto the probability simplex.
	Refiner = core.Refiner
)

// Re-exported attack types (paper §II, §V-C, §VII).
type (
	// Attack crafts malicious users' data.
	Attack = attack.Attack
	// Manip is the untargeted manipulation attack.
	Manip = attack.Manip
	// MGA is the maximal gain attack.
	MGA = attack.MGA
	// Adaptive is the paper's adaptive attack.
	Adaptive = attack.Adaptive
	// Multi composes several attackers.
	Multi = attack.Multi
	// MGAIPA is MGA under the input-poisoning model (§VII-B).
	MGAIPA = attack.MGAIPA
)

// Re-exported defense types (paper §VI-A.5, §VII-B).
type (
	// DetectionResult is the Detection baseline's output.
	DetectionResult = detect.DetectionResult
	// KMeansDefense is the subset-clustering defense.
	KMeansDefense = detect.KMeansDefense
	// KMResult is its output.
	KMResult = detect.KMResult
)

// Dataset is an item-frequency dataset.
type Dataset = dataset.Dataset

// Rand is the deterministic generator used across the library.
type Rand = rng.Rand

// DefaultEta is the paper's default recovery parameter η (§VI-A.4).
const DefaultEta = core.DefaultEta

// NewRand returns a deterministic random generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// ErrEpsilonTooLarge rejects a privacy budget too large to represent:
// the keep probability would round to exactly 1 (or the flip
// probability to 0), so the constructed mechanism would never perturb
// while claiming a finite epsilon. Matched with errors.Is.
var ErrEpsilonTooLarge = ldp.ErrEpsilonTooLarge

// NewGRR constructs General Randomized Response over a domain of size d
// with privacy budget epsilon.
func NewGRR(d int, epsilon float64) (*GRR, error) { return ldp.NewGRR(d, epsilon) }

// NewOUE constructs Optimized Unary Encoding.
func NewOUE(d int, epsilon float64) (*OUE, error) { return ldp.NewOUE(d, epsilon) }

// NewOLH constructs Optimized Local Hashing with g = ⌈e^ε+1⌉.
func NewOLH(d int, epsilon float64) (*OLH, error) { return ldp.NewOLH(d, epsilon) }

// NewSUE constructs Symmetric Unary Encoding (basic RAPPOR).
func NewSUE(d int, epsilon float64) (*SUE, error) { return ldp.NewSUE(d, epsilon) }

// NewBLH constructs Binary Local Hashing (OLH with a 2-value hash range).
func NewBLH(d int, epsilon float64) (*OLH, error) { return ldp.NewBLH(d, epsilon) }

// EstimateFrequencies aggregates reports into unbiased frequency
// estimates (Eq. 11–13).
func EstimateFrequencies(reports []Report, pr Params) ([]float64, error) {
	return ldp.EstimateFrequencies(reports, pr)
}

// Accumulator is a streaming, mergeable server-side aggregator.
type Accumulator = ldp.Accumulator

// NewAccumulator returns an empty streaming aggregator over a domain of
// size d.
func NewAccumulator(d int) (*Accumulator, error) { return ldp.NewAccumulator(d) }

// ShardedAccumulator is the concurrency-safe ingest engine: reports from
// many goroutines fan out across independently locked shards and merge on
// Snapshot, with AddCounts as the fast lane for pre-aggregated partials
// (e.g. BatchSimulate output or remote collectors' sub-totals).
type ShardedAccumulator = ldp.ShardedAccumulator

// NewShardedAccumulator returns an empty concurrent aggregator over a
// domain of size d with the given shard count (<= 0 selects GOMAXPROCS).
func NewShardedAccumulator(d, shards int) (*ShardedAccumulator, error) {
	return ldp.NewShardedAccumulator(d, shards)
}

// BatchPerturber is the batch perturbation fast path implemented by all
// built-in protocols: aggregate support counts for a whole population,
// drawn directly from their sampling distributions with no per-user
// Report allocation.
type BatchPerturber = ldp.BatchPerturber

// BatchSimulate runs the batch perturbation fast path across workers
// goroutines (<= 0 selects GOMAXPROCS) and returns the aggregated
// support counts for a population with the given per-item true counts.
// With workers == 1 the output is bit-identical to the protocol's
// sequential SimulateGenuineCounts stream.
func BatchSimulate(p Protocol, r *Rand, trueCounts []int64, workers int) ([]int64, error) {
	return ldp.BatchSimulate(p, r, trueCounts, workers)
}

// MarshalReport serializes a report to the library's wire format, so
// clients and servers built on this package can exchange perturbed data.
func MarshalReport(rep Report) ([]byte, error) { return ldp.MarshalReport(rep) }

// UnmarshalReport parses a wire-format report.
func UnmarshalReport(data []byte) (Report, error) { return ldp.UnmarshalReport(data) }

// MarshalReportBatch frames many reports into one wire batch, the unit
// the serving layer ingests per HTTP request.
func MarshalReportBatch(reps []Report) ([]byte, error) { return ldp.MarshalReportBatch(reps) }

// UnmarshalReportBatch parses a wire-format report batch.
func UnmarshalReportBatch(data []byte) ([]Report, error) { return ldp.UnmarshalReportBatch(data) }

// MaxBatchReports is the decoder's hard cap on a batch frame's report
// count; servers enforce their own smaller limits on top.
const MaxBatchReports = ldp.MaxBatchReports

// Epoch-streamed recovery (DESIGN.md §5): an EpochManager turns the
// batch aggregate → estimate → recover flow into a continuously serving
// pipeline — concurrent ingest into a live epoch, Seal() boundaries that
// never stop ingest, sliding-window estimates, and cross-epoch outlier
// tracking that upgrades recovery from LDPRecover to LDPRecover* once
// the attacked items stabilize.
type (
	// StreamConfig parameterizes an EpochManager.
	StreamConfig = stream.Config
	// EpochManager is the streaming collector.
	EpochManager = stream.EpochManager
	// Epoch is one sealed collection period.
	Epoch = stream.Epoch
	// WindowEstimate is the per-window serving output (poisoned and
	// recovered frequencies).
	WindowEstimate = stream.WindowEstimate
	// StreamStats is a point-in-time manager summary.
	StreamStats = stream.Stats
	// TargetTracker is the promote/demote hysteresis behind the
	// LDPRecover → LDPRecover* upgrade.
	TargetTracker = detect.TargetTracker
)

// NewEpochManager builds a streaming epoch manager.
func NewEpochManager(cfg StreamConfig) (*EpochManager, error) { return stream.NewEpochManager(cfg) }

// Durable serving (DESIGN.md §6): a DurableStore makes an EpochManager
// crash-safe. Ingested report batches are appended to a CRC-framed
// write-ahead log before they are aggregated, every seal atomically
// snapshots the manager's cross-epoch state (sealed-epoch ring, sliding
// window, recovered history, target-tracker hysteresis) and truncates
// the log, and OpenDurableStore reconstructs the exact pre-crash serving
// state from snapshot + WAL tail on boot — so a restart never forgets
// the historical view that drives the LDPRecover* upgrade.
type (
	// DurableStore persists one EpochManager under a data directory.
	DurableStore = persist.Store
	// DurableOptions are the store's WAL and snapshot-retention knobs.
	DurableOptions = persist.Options
	// RestoreInfo summarizes what OpenDurableStore reconstructed.
	RestoreInfo = persist.RestoreInfo
	// ManagerState is the exportable cross-epoch state of an
	// EpochManager, the unit snapshots carry.
	ManagerState = stream.ManagerState
	// TrackerState is the exportable TargetTracker hysteresis state.
	TrackerState = detect.TrackerState
)

// OpenDurableStore makes a freshly constructed EpochManager durable
// under dir: it loads the newest valid snapshot, replays the WAL tail
// through AddBatch, and leaves the log open for appending.
func OpenDurableStore(dir string, mgr *EpochManager, opts DurableOptions) (*DurableStore, error) {
	return persist.Open(dir, mgr, opts)
}

// DefaultWALSegmentBytes is the WAL's segment rotation threshold when
// DurableOptions leaves SegmentBytes zero.
const DefaultWALSegmentBytes = persist.DefaultSegmentBytes

// Tally-first ingest (DESIGN.md §8): a Collector pre-aggregates user
// reports at the edge into an exact partial tally — d support counts
// plus a user count — so the wire and the WAL carry one small frame
// where report-level ingest carries thousands, and the zero-copy lane
// folds report batches straight off their wire frames with no
// per-report decoding. Both lanes are bit-identical to report-level
// ingest: support counts are integers and addition is exact wherever
// it happens.
type (
	// Collector is the client-side pre-aggregation SDK: Add/AddBatch
	// fold reports locally (through the same fast paths the server
	// uses), Flush frames the partial tally for POST /v1/partial.
	Collector = ldp.Collector
	// PartialTally is an edge-aggregated partial tally frame's decoded
	// form: node id, advisory epoch hint, support counts, user count.
	PartialTally = ldp.PartialTally
)

// ErrStalePartial rejects a partial tally whose epoch hint predates the
// server's sealed watermark; serve answers 409 and the collector
// re-aggregates for the current epoch (partials, unlike sealed tallies,
// are not idempotent and cannot be deduplicated).
var ErrStalePartial = stream.ErrStalePartial

// NewCollector returns an empty edge collector over a domain of size d,
// identified to the server as nodeID.
func NewCollector(nodeID string, d int) (*Collector, error) { return ldp.NewCollector(nodeID, d) }

// MarshalPartial frames a partial tally for the wire; like the tally
// and WAL codecs the frame carries its own CRC-32C.
func MarshalPartial(p *PartialTally) ([]byte, error) { return ldp.MarshalPartial(p) }

// UnmarshalPartial parses and checksums a wire-format partial tally.
func UnmarshalPartial(data []byte) (*PartialTally, error) { return ldp.UnmarshalPartial(data) }

// ValidateReportBatchFrame structurally validates a report batch frame
// without decoding it, returning its report count — the zero-copy
// ingest lane's admission check. It accepts exactly the frames
// UnmarshalReportBatch accepts.
func ValidateReportBatchFrame(frame []byte) (int, error) {
	return ldp.ValidateReportBatchFrame(frame)
}

// Scale-out collection tier (DESIGN.md §7): frontend nodes ingest
// disjoint user populations, seal epochs on a shared epoch clock, and
// push CRC-framed sealed tallies to a root, whose SealedMerger runs an
// epoch barrier (dedupe by node and epoch, straggler policy) in front
// of its EpochManager — so the merged window estimates, recovered
// history, and target hysteresis are bit-identical to a single node
// having seen every report.
type (
	// Tally is one frontend's sealed per-epoch aggregate.
	Tally = ldp.Tally
	// SealedMerger is the root's epoch-barrier merge front.
	SealedMerger = stream.SealedMerger
	// MergedEpoch is one sealed epoch's partial-epoch accounting
	// (which expected nodes merged, which were missing).
	MergedEpoch = stream.MergedEpoch
	// SubmitResult describes what MergeSealed did with a tally.
	SubmitResult = stream.SubmitResult
	// SnapshotStore is the root's WAL-less per-seal durability.
	SnapshotStore = persist.SnapshotStore
)

// MarshalTally frames a sealed tally for the node-to-root wire; the
// frame carries its own CRC-32C like the WAL records it derives from.
func MarshalTally(t *Tally) ([]byte, error) { return ldp.MarshalTally(t) }

// UnmarshalTally parses and checksums a wire-format sealed tally.
func UnmarshalTally(data []byte) (*Tally, error) { return ldp.UnmarshalTally(data) }

// NewSealedMerger wraps an EpochManager with an epoch barrier over the
// expected frontend nodes.
func NewSealedMerger(mgr *EpochManager, nodes []string) (*SealedMerger, error) {
	return stream.NewSealedMerger(mgr, nodes)
}

// OpenSnapshotStore makes a root merger's manager durable under dir via
// per-seal snapshots (no WAL — frontends re-send tallies the root has
// not durably sealed). It refuses a directory holding a report-level
// WAL.
func OpenSnapshotStore(dir string, mgr *EpochManager, keep int) (*SnapshotStore, error) {
	return persist.OpenSnapshotStore(dir, mgr, keep)
}

// Elastic membership and root failover (DESIGN.md §7): frontends join
// and leave a running cluster via CRC-framed announcements that take
// effect only at epoch boundaries, the root journals every membership
// change and seal into a tiny seal-log beside its snapshots, and a
// standby node tails both to hold a warm merger it can promote when the
// root's lease goes stale — with the frontends' at-least-once re-send
// making the switch lose or double-merge nothing.
type (
	// Announce is a join/leave membership announcement frame.
	Announce = ldp.Announce
	// AnnounceKind distinguishes joins from leaves.
	AnnounceKind = ldp.AnnounceKind
	// MemberChange is one scheduled membership change at an epoch
	// boundary.
	MemberChange = stream.MemberChange
	// SealLog is the root's append-only seal/membership journal.
	SealLog = persist.SealLog
	// SealRecord is one seal-log entry.
	SealRecord = persist.SealRecord
	// Lease is the root data directory's split-brain guard.
	Lease = persist.Lease
	// LeaseInfo describes a lease file's owner and age.
	LeaseInfo = persist.LeaseInfo
	// StandbyTailer keeps a warm copy of the root's merged state.
	StandbyTailer = persist.StandbyTailer
)

// Announce kinds.
const (
	AnnounceJoin  = ldp.AnnounceJoin
	AnnounceLeave = ldp.AnnounceLeave
)

// Seal-log record kinds.
const (
	SealRecordSeal   = persist.SealRecordSeal
	SealRecordMember = persist.SealRecordMember
)

// MarshalAnnounce frames a membership announcement for the wire.
func MarshalAnnounce(a *Announce) ([]byte, error) { return ldp.MarshalAnnounce(a) }

// UnmarshalAnnounce parses and checksums a wire-format announcement.
func UnmarshalAnnounce(data []byte) (*Announce, error) { return ldp.UnmarshalAnnounce(data) }

// OpenSealLog opens (creating if absent) dir's seal-log, truncating any
// torn tail from a crash mid-append.
func OpenSealLog(dir string) (*SealLog, error) { return persist.OpenSealLog(dir) }

// ReadSealLogMembership scans dir's seal-log read-only and returns the
// last record's membership state.
func ReadSealLogMembership(dir string) (members []string, sched []MemberChange, ok bool, err error) {
	return persist.ReadSealLogMembership(dir)
}

// AcquireLease takes dir's root lease for owner, refusing while another
// owner's lease is fresher than staleAfter.
func AcquireLease(dir, owner string, staleAfter time.Duration) (*Lease, error) {
	return persist.AcquireLease(dir, owner, staleAfter)
}

// InspectLease reads dir's lease without taking it.
func InspectLease(dir string) (LeaseInfo, error) { return persist.InspectLease(dir) }

// NewStandbyTailer tails a root data directory, keeping a warm restored
// manager ready for promotion. newMgr builds an empty manager with the
// root's stream config.
func NewStandbyTailer(dir string, newMgr func() (*EpochManager, error)) (*StandbyTailer, error) {
	return persist.NewStandbyTailer(dir, newMgr)
}

// AttachSnapshotStore prepares per-seal snapshots for a manager whose
// state is already live (a promoted standby's warm manager); unlike
// OpenSnapshotStore it does not restore anything into it.
func AttachSnapshotStore(dir string, mgr *EpochManager, keep int) (*SnapshotStore, error) {
	return persist.AttachSnapshotStore(dir, mgr, keep)
}

// NewTargetTracker returns a tracker that promotes or demotes a target
// set after stableAfter consecutive identical outlier observations.
func NewTargetTracker(stableAfter int) (*TargetTracker, error) {
	return detect.NewTargetTracker(stableAfter)
}

// ConfidenceInterval returns the two-sided (1-alpha) CLT confidence
// interval for an item's estimated frequency under the protocol's
// theoretical variance.
func ConfidenceInterval(p Protocol, f float64, n int64, alpha float64) (lo, hi float64, err error) {
	return ldp.ConfidenceInterval(p, f, n, alpha)
}

// coreParams converts protocol params to the recovery core's triple.
func coreParams(pr Params) core.Params {
	return core.Params{P: pr.P, Q: pr.Q, Domain: pr.Domain}
}

// Recover runs LDPRecover on a poisoned frequency vector aggregated under
// the protocol described by pr. With Options.Targets set it runs
// LDPRecover* (partial knowledge); with Options.MaliciousOverride set it
// uses externally learnt malicious statistics (LDPRecover-KM).
func Recover(poisoned []float64, pr Params, opts Options) (*Result, error) {
	return core.Recover(poisoned, coreParams(pr), opts)
}

// RecoverWithTargets is shorthand for Recover with partial knowledge of
// the attacker-selected items.
func RecoverWithTargets(poisoned []float64, pr Params, targets []int, eta float64) (*Result, error) {
	return core.Recover(poisoned, coreParams(pr), Options{Eta: eta, Targets: targets})
}

// MaliciousSum returns the learnt summation of malicious frequencies
// (Eq. 21) for a protocol's aggregation parameters.
func MaliciousSum(pr Params) (float64, error) {
	return core.MaliciousSum(coreParams(pr))
}

// ProjectSimplex is the exact Euclidean projection onto the probability
// simplex; RefineKKT is the paper's Algorithm 1 (they compute the same
// point).
func ProjectSimplex(estimate []float64) ([]float64, error) {
	return core.ProjectSimplex(estimate)
}

// RefineKKT is Algorithm 1's iterative KKT refinement.
func RefineKKT(estimate []float64) ([]float64, error) {
	return core.RefineKKT(estimate)
}

// NewManip constructs the untargeted Manip attack.
func NewManip(subsetFraction float64, subsetSeed uint64) (*Manip, error) {
	return attack.NewManip(subsetFraction, subsetSeed)
}

// NewMGA constructs the targeted maximal gain attack.
func NewMGA(targets []int) (*MGA, error) { return attack.NewMGA(targets) }

// NewAdaptive constructs the adaptive attack from an attacker-designed
// distribution; NewRandomAdaptive draws that distribution at random.
func NewAdaptive(dist []float64) (*Adaptive, error) { return attack.NewAdaptive(dist) }

// NewRandomAdaptive draws a random attacker-designed distribution over a
// domain of size d.
func NewRandomAdaptive(r *Rand, d int) (*Adaptive, error) {
	return attack.NewRandomAdaptive(r, d)
}

// NewMGAIPA constructs MGA under input poisoning: malicious inputs are
// target items, but perturbation is honest (§VII-B).
func NewMGAIPA(targets []int, domain int) (*MGAIPA, error) {
	return attack.NewMGAIPA(targets, domain)
}

// NewMultiAdaptive builds k independent adaptive attackers (§VII-C).
func NewMultiAdaptive(r *Rand, k, domain int) (*Multi, error) {
	return attack.NewMultiAdaptive(r, k, domain)
}

// RandomTargets draws r distinct target items from a domain of size d.
func RandomTargets(rand *Rand, d, r int) ([]int, error) {
	return attack.RandomTargets(rand, d, r)
}

// Detection runs the Detection countermeasure baseline with the paper's
// any-target rule.
func Detection(reports []Report, targets []int, pr Params) (*DetectionResult, error) {
	return detect.Detection(reports, targets, pr, detect.AnyTarget)
}

// NewKMeansDefense constructs the k-means subset defense with subset
// sample rate xi.
func NewKMeansDefense(xi float64) (*KMeansDefense, error) {
	return detect.NewKMeansDefense(xi)
}

// RecoverKM integrates k-means-learnt malicious statistics into recovery
// (LDPRecover-KM, §VII-B).
func RecoverKM(poisoned []float64, km *KMResult, pr Params, eta float64) (*Result, error) {
	return detect.RecoverKM(poisoned, km, coreParams(pr), eta)
}

// ZScoreOutliers flags likely attack targets from historical frequency
// series (§V-D's oracle).
func ZScoreOutliers(history [][]float64, current []float64, k int, minZ float64) ([]int, error) {
	return detect.ZScoreOutliers(history, current, k, minZ)
}

// TopIncrease returns the k items with the largest frequency increase.
func TopIncrease(before, after []float64, k int) ([]int, error) {
	return detect.TopIncrease(before, after, k)
}

// MSE is the paper's accuracy metric (Eq. 36).
func MSE(estimate, reference []float64) (float64, error) {
	return metrics.MSE(estimate, reference)
}

// FrequencyGain is the targeted-attack metric (Eq. 37).
func FrequencyGain(estimate, genuine []float64, targets []int) (float64, error) {
	return metrics.FrequencyGain(estimate, genuine, targets)
}

// SyntheticIPUMS and SyntheticFire return the paper-scale dataset
// surrogates (see DESIGN.md §3).
func SyntheticIPUMS() *Dataset { return dataset.SyntheticIPUMS() }

// SyntheticFire returns the Fire dataset surrogate.
func SyntheticFire() *Dataset { return dataset.SyntheticFire() }

// ZipfDataset builds a Zipf(s)-shaped dataset with domain d and n users.
func ZipfDataset(name string, d int, n int64, s float64) (*Dataset, error) {
	return dataset.Zipf(name, d, n, s)
}

// PerturbAll perturbs a whole population described by per-item true
// counts, returning one report per user.
func PerturbAll(p Protocol, r *Rand, trueCounts []int64) ([]Report, error) {
	return ldp.PerturbAll(p, r, trueCounts)
}

// PerturbScratch holds the reusable arenas behind PerturbAllInto. Each
// call overwrites the reports returned by the previous call with the
// same scratch.
type PerturbScratch = ldp.PerturbScratch

// PerturbAllInto is PerturbAll writing report payloads into the
// scratch's bulk arenas, so steady-state perturbation allocates nothing
// per report. The draw stream (and therefore every report) is identical
// to PerturbAll under the same generator state.
func PerturbAllInto(p Protocol, r *Rand, trueCounts []int64, s *PerturbScratch) ([]Report, error) {
	return ldp.PerturbAllInto(p, r, trueCounts, s)
}

// SparseUnaryReport is a unary-encoding (OUE/SUE) report stored as its
// sorted support list; Perturb returns it instead of a dense bitset
// report when q is small enough that only generating the set bits wins.
type SparseUnaryReport = ldp.SparseUnaryReport

// Unbias converts raw support counts from total reports into unbiased
// frequency estimates via Eq. (11).
func Unbias(counts []int64, total int64, pr Params) ([]float64, error) {
	return ldp.Unbias(counts, total, pr)
}

// GenerateHistory synthesizes historical genuine frequency series for
// outlier-based target identification.
func GenerateHistory(d *Dataset, periods int, drift float64, r *Rand) ([][]float64, error) {
	return dataset.GenerateHistory(d, periods, drift, r)
}

// Harmony is the mean-estimation protocol of §VII-A (binary
// discretization + randomized response); HarmonyResult carries mean
// recovery outputs.
type (
	Harmony       = harmony.Mean
	HarmonyResult = harmony.RecoverResult
)

// NewHarmony constructs the Harmony mean-estimation protocol.
func NewHarmony(epsilon float64) (*Harmony, error) { return harmony.New(epsilon) }

// RecoverHarmonyMean runs LDPRecover on poisoned Harmony category
// frequencies and returns the recovered mean (§VII-A). Pass the promoted
// category (harmony indices: 0 = -1, 1 = +1) as targets when known.
func RecoverHarmonyMean(poisoned []float64, epsilon, eta float64, targets []int) (*HarmonyResult, error) {
	return harmony.RecoverMean(poisoned, epsilon, eta, targets)
}

// HarmonyMean converts the two Harmony category frequencies into a mean.
func HarmonyMean(freqs []float64) (float64, error) { return harmony.EstimateMean(freqs) }

// Key-value collection under LDP (the paper's §VIII future-work item),
// with joint frequency/mean recovery; see internal/kv for the protocol.
type (
	// KVProtocol is the KV-GRR key-value mechanism.
	KVProtocol = kv.Protocol
	// KVPair is one user's ⟨key, value⟩ datum.
	KVPair = kv.Pair
	// KVReport is a perturbed key-value submission.
	KVReport = kv.Report
	// KVAggregate is the raw server-side tally.
	KVAggregate = kv.Aggregate
	// KVEstimate holds per-key frequency and mean estimates.
	KVEstimate = kv.Estimate
	// KVRecoverOptions configures KV recovery.
	KVRecoverOptions = kv.RecoverOptions
	// KVRecovered holds recovered frequencies and means.
	KVRecovered = kv.Recovered
)

// NewKV constructs the key-value protocol over d keys with budget split
// (eps1 for keys, eps2 for values).
func NewKV(d int, eps1, eps2 float64) (*KVProtocol, error) { return kv.New(d, eps1, eps2) }

// AggregateKVReports tallies key-value reports over a domain of size d.
func AggregateKVReports(reports []KVReport, d int) (*KVAggregate, error) {
	return kv.AggregateReports(reports, d)
}

// Heavy-hitter identification (PEM) over large domains, with a poisoning
// defense hook; see internal/hh.
type (
	// HHConfig parameterizes heavy-hitter identification.
	HHConfig = hh.Config
	// HHResult carries the identified items and their estimates.
	HHResult = hh.Result
)

// IdentifyHeavyHitters runs prefix-extension heavy-hitter identification
// over the users' items (each in [0, 2^cfg.Bits)).
func IdentifyHeavyHitters(r *Rand, cfg HHConfig, items []int) (*HHResult, error) {
	return hh.Identify(r, cfg, items, nil)
}

// SuppressHHTargets returns a per-level defense for IdentifyHeavyHitters
// that deducts a suspected promotion attack's expected gain (Eq. 30
// restricted to the candidate set).
func SuppressHHTargets(bits int, suspects []int, eta float64) func(int, []int, []float64, Params, int64) []float64 {
	return hh.SuppressTargets(bits, suspects, eta)
}
