// Package examples holds the smoke tests that keep the runnable examples
// compiling and running: every example subdirectory is vetted and
// executed with a reduced population (see internal/exenv), so an API
// change that breaks an example fails `go test ./examples` instead of
// rotting silently.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ldprecover/examples/internal/exenv"
)

// exampleDirs discovers the example programs (every subdirectory except
// internal/), so newly added examples are covered automatically.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && e.Name() != "internal" {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	return dirs
}

func goTool(t *testing.T, ctx context.Context, env []string, args ...string) ([]byte, error) {
	t.Helper()
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = ".." // module root; examples are addressed as ./examples/<name>
	cmd.Env = append(os.Environ(), env...)
	return cmd.CombinedOutput()
}

// TestExamplesVet compiles and vets every example.
func TestExamplesVet(t *testing.T) {
	for _, dir := range exampleDirs(t) {
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := goTool(t, ctx, nil, "vet", "./"+filepath.Join("examples", dir))
			if err != nil {
				t.Fatalf("go vet failed: %v\n%s", err, out)
			}
		})
	}
}

// TestExamplesRun executes every example end-to-end with a reduced
// population via LDPRECOVER_EXAMPLE_SCALE, checking it exits zero and
// prints something.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs are skipped in -short mode")
	}
	for _, dir := range exampleDirs(t) {
		t.Run(dir, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			out, err := goTool(t, ctx,
				[]string{exenv.EnvVar + "=0.02"},
				"run", "./"+filepath.Join("examples", dir))
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
