// Cluster: the scale-out collection tier end to end, in process. Three
// frontend ingest nodes each collect a disjoint third of an OUE
// population, seal epochs on a shared epoch clock, and ship their
// sealed tallies — through the CRC-framed wire codec, exactly as the
// HTTP tier would — to a root whose SealedMerger merges them behind an
// epoch barrier. Mid-stream an MGA attacker ramps up inside one
// frontend's slice; because the root recovers on the merged view, the
// attack is identified and LDPRecover* engages just as on a single
// node. The demo also re-sends one frontend's tally every epoch to
// show at-least-once delivery deduping to a no-op, and runs a
// single-node reference collector over the union to verify the merged
// estimates are bit-identical.
//
// The same topology runs as real processes via
//
//	ldprecover serve -role=root -nodes fe-0,fe-1,fe-2 &
//	ldprecover serve -role=frontend -node-id fe-0 -root-addr http://... &
//
// (see README "Scale-out serving").
package main

import (
	"fmt"
	"log"
	"reflect"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		domain      = 64
		epsilon     = 1.0
		nFrontends  = 3
		epochs      = 12
		attackStart = 6
		beta        = 0.1
	)
	users := exenv.Users(30000)
	r := ldprecover.NewRand(11)

	ds, err := ldprecover.ZipfDataset("cluster", domain, int64(users), 1.1)
	if err != nil {
		log.Fatal(err)
	}
	proto, err := ldprecover.NewOUE(domain, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	targets := []int{13, 37}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		log.Fatal(err)
	}

	streamCfg := ldprecover.StreamConfig{
		Params:      proto.Params(),
		Window:      1,
		History:     epochs,
		StableAfter: 2,
		MinHistory:  2,
	}
	// The root: an epoch manager behind the tally merge barrier.
	rootMgr, err := ldprecover.NewEpochManager(streamCfg)
	if err != nil {
		log.Fatal(err)
	}
	nodeIDs := make([]string, nFrontends)
	for i := range nodeIDs {
		nodeIDs[i] = fmt.Sprintf("fe-%d", i)
	}
	merger, err := ldprecover.NewSealedMerger(rootMgr, nodeIDs)
	if err != nil {
		log.Fatal(err)
	}
	// Each frontend is an ordinary sharded accumulator; sealing its
	// epoch is a tally swap that never stops ingest.
	frontends := make([]*ldprecover.ShardedAccumulator, nFrontends)
	for i := range frontends {
		if frontends[i], err = ldprecover.NewShardedAccumulator(domain, 0); err != nil {
			log.Fatal(err)
		}
	}
	// The single-node reference: the same pipeline fed the union.
	refMgr, err := ldprecover.NewEpochManager(streamCfg)
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.Frequencies()
	fmt.Printf("%d users/epoch across %d frontends; MGA (beta=%g, targets %v) from epoch %d\n\n",
		users, nFrontends, beta, targets, attackStart)
	fmt.Println("epoch  attacked  MSE poisoned  MSE recovered  mode          targets")
	var deduped int64
	for e := 0; e < epochs; e++ {
		reports, err := ldprecover.PerturbAll(proto, r, ds.Counts)
		if err != nil {
			log.Fatal(err)
		}
		attacked := " "
		if e >= attackStart {
			attacked = "*"
			m := int64(float64(users) * beta / (1 - beta))
			malicious, err := mga.CraftReports(r, proto, m)
			if err != nil {
				log.Fatal(err)
			}
			// The attacker's users all sit behind frontend 0.
			reports = append(reports, malicious...)
		}
		// Disjoint partition: user u reports to frontend u mod 3.
		for u, rep := range reports {
			if err := frontends[u%nFrontends].Add(rep); err != nil {
				log.Fatal(err)
			}
		}
		if err := refMgr.AddBatch(reports); err != nil {
			log.Fatal(err)
		}

		// The shared epoch clock ticks: every frontend seals and pushes
		// its tally through the wire codec, at-least-once (fe-0 pushes
		// twice; the root dedupes the re-send by (node, epoch)).
		for i, fe := range frontends {
			sealed := fe.SealEpoch()
			tally := &ldprecover.Tally{
				NodeID: nodeIDs[i], Epoch: e, Counts: sealed.Counts(), Total: sealed.Total(),
			}
			sends := 1
			if i == 0 {
				sends = 2
			}
			for s := 0; s < sends; s++ {
				frame, err := ldprecover.MarshalTally(tally)
				if err != nil {
					log.Fatal(err)
				}
				decoded, err := ldprecover.UnmarshalTally(frame)
				if err != nil {
					log.Fatal(err)
				}
				res, err := merger.MergeSealed(decoded)
				if err != nil {
					log.Fatal(err)
				}
				if res.Duplicate {
					deduped++
				}
			}
		}
		est, info, err := merger.TrySeal()
		if err != nil {
			log.Fatal(err)
		}
		if est == nil || len(info.Missing) > 0 {
			log.Fatalf("epoch %d barrier incomplete: %+v", e, info)
		}
		ref, err := refMgr.Seal()
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(est, ref) {
			log.Fatalf("epoch %d: merged estimate diverged from the single-node reference", e)
		}

		mseBefore, _ := ldprecover.MSE(est.Poisoned, truth)
		mseAfter, _ := ldprecover.MSE(est.Recovered, truth)
		mode := "LDPRecover"
		if est.PartialKnowledge {
			mode = "LDPRecover*"
		}
		fmt.Printf("%5d  %8s  %12.3E  %13.3E  %-12s  %v\n",
			est.Seq, attacked, mseBefore, mseAfter, mode, est.Targets)
	}

	st := rootMgr.Stats()
	fmt.Printf("\nmerged %d reports over %d epochs from %d frontends; deduped %d re-sent tallies\n",
		st.IngestedTotal, st.Epochs, nFrontends, deduped)
	fmt.Printf("identified targets: %v — every epoch bit-identical to the single-node reference\n",
		st.Targets)
}
