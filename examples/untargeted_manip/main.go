// Untargeted attack: the Manip attack degrades the whole frequency
// distribution under GRR; LDPRecover restores it without knowing anything
// about the attack. Demonstrates the count-free, non-knowledge recovery
// path on the Fire surrogate.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const epsilon = 0.5
	r := ldprecover.NewRand(99)

	ds, err := ldprecover.SyntheticFire().Scaled(exenv.Fraction(0.05))
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Domain()
	proto, err := ldprecover.NewGRR(d, epsilon)
	if err != nil {
		log.Fatal(err)
	}

	genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		log.Fatal(err)
	}

	// Manip floods half the domain with uniform malicious mass.
	manip, err := ldprecover.NewManip(0.5, 1234)
	if err != nil {
		log.Fatal(err)
	}
	m := int64(float64(ds.N()) * 0.05 / 0.95)
	malicious, err := manip.CraftReports(r, proto, m)
	if err != nil {
		log.Fatal(err)
	}
	all := append(append([]ldprecover.Report{}, genuine...), malicious...)

	poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		log.Fatal(err)
	}
	res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.Frequencies()
	mseBefore, _ := ldprecover.MSE(poisoned, truth)
	mseAfter, _ := ldprecover.MSE(res.Frequencies, truth)
	fmt.Printf("Manip on GRR (d=%d, n=%d, m=%d)\n", d, ds.N(), m)
	fmt.Printf("MSE poisoned : %.3E\n", mseBefore)
	fmt.Printf("MSE recovered: %.3E\n", mseAfter)

	// The learnt malicious summation (Eq. 21) drove the recovery; for GRR
	// it is close to 1 because every malicious report carries one item.
	sum, _ := ldprecover.MaliciousSum(proto.Params())
	fmt.Printf("learnt malicious frequency summation: %.4f\n", sum)
}
