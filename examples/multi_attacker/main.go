// Multi-attacker: five independent adaptive attackers poison the same
// collection (§VII-C). Their mixture behaves like a single adaptive
// attacker, so LDPRecover recovers without modification.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const epsilon = 0.5
	r := ldprecover.NewRand(2024)

	ds, err := ldprecover.SyntheticIPUMS().Scaled(exenv.Fraction(0.1))
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Domain()
	proto, err := ldprecover.NewOUE(d, epsilon)
	if err != nil {
		log.Fatal(err)
	}

	// Five attackers, each with its own random target distribution,
	// splitting the malicious users evenly.
	multi, err := ldprecover.NewMultiAdaptive(r, 5, d)
	if err != nil {
		log.Fatal(err)
	}

	genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		log.Fatal(err)
	}
	for _, beta := range []float64{0.05, 0.15, 0.25} {
		m := int64(float64(ds.N()) * beta / (1 - beta))
		malicious, err := multi.CraftReports(r, proto, m)
		if err != nil {
			log.Fatal(err)
		}
		all := append(append([]ldprecover.Report{}, genuine...), malicious...)
		poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
		if err != nil {
			log.Fatal(err)
		}
		// eta must upper-bound the true malicious ratio; scale it with beta.
		eta := beta/(1-beta) + 0.1
		res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{Eta: eta})
		if err != nil {
			log.Fatal(err)
		}
		truth := ds.Frequencies()
		mseBefore, _ := ldprecover.MSE(poisoned, truth)
		mseAfter, _ := ldprecover.MSE(res.Frequencies, truth)
		fmt.Printf("beta=%.2f (m=%6d): MSE %.3E -> %.3E\n", beta, m, mseBefore, mseAfter)
	}
}
