// Heavy hitters: identify the most frequent items in a 2^12 domain with
// the prefix extension method built on the OLH oracle, then show a
// promotion attack forcing a cold item into the top-k and the target-
// suppression defense demoting it again.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		bits = 12 // domain 4096
		k    = 4
	)
	users := exenv.Users(120000)
	heavy := []int{100, 2048, 3333, 4000}
	r := ldprecover.NewRand(31)

	// 60% of users hold a heavy item, the rest are uniform noise.
	items := make([]int, users)
	for i := range items {
		if r.Float64() < 0.6 {
			items[i] = heavy[r.Intn(len(heavy))]
		} else {
			items[i] = r.Intn(1 << bits)
		}
	}

	cfg := ldprecover.HHConfig{Bits: bits, K: k, Epsilon: 2}
	res, err := ldprecover.IdentifyHeavyHitters(r, cfg, items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean top-%d: %v\n", k, res.Items)
	fmt.Printf("  estimates : ")
	for _, f := range res.Frequencies {
		fmt.Printf("%.3f ", f)
	}
	fmt.Println()

	// A promotion attack would craft prefix reports for a cold item at
	// every level (see internal/hh tests for the full adversarial run).
	// When the server suspects the promoted item — e.g. it appeared from
	// nowhere across rounds — the defense deducts the attacker's expected
	// gain during identification:
	suspect := 777
	cfg.Defense = ldprecover.SuppressHHTargets(bits, []int{suspect}, 0.1)
	res, err = ldprecover.IdentifyHeavyHitters(r, cfg, items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defended top-%d (suspect %d suppressed): %v\n", k, suspect, res.Items)
}
