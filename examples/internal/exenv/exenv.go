// Package exenv provides the shared environment knob for the runnable
// examples: LDPRECOVER_EXAMPLE_SCALE shrinks every example's population
// so the smoke tests in examples/smoke_test.go can execute them quickly,
// while a normal `go run` keeps the documented full-size parameters.
package exenv

import (
	"os"
	"strconv"
)

// EnvVar is the environment variable holding the population scale.
const EnvVar = "LDPRECOVER_EXAMPLE_SCALE"

// Scale returns the population scale factor in (0, 1]: the value of
// LDPRECOVER_EXAMPLE_SCALE when it parses to that range, 1 otherwise.
func Scale() float64 {
	s, err := strconv.ParseFloat(os.Getenv(EnvVar), 64)
	if err != nil || !(s > 0) || s > 1 {
		return 1
	}
	return s
}

// Users scales a user count, keeping at least 100 users so every example
// still has a population worth aggregating.
func Users(n int) int {
	scaled := int(float64(n) * Scale())
	if scaled < 100 {
		scaled = 100
	}
	if scaled > n {
		scaled = n
	}
	return scaled
}

// Fraction scales a dataset fraction (e.g. the 0.1 passed to
// Dataset.Scaled), keeping the result positive.
func Fraction(f float64) float64 {
	return f * Scale()
}
