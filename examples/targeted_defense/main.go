// Targeted defense: detect an MGA attack's target items from historical
// frequency estimates (the paper's outlier-detection oracle, §V-D), then
// run LDPRecover* with that partial knowledge and compare it against
// non-knowledge recovery and the Detection baseline.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const epsilon = 0.5
	r := ldprecover.NewRand(7)

	// The IPUMS surrogate at 10% scale keeps this example fast.
	full := ldprecover.SyntheticIPUMS()
	ds, err := full.Scaled(exenv.Fraction(0.1))
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Domain()

	proto, err := ldprecover.NewOLH(d, epsilon)
	if err != nil {
		log.Fatal(err)
	}

	// The server has collected clean estimates in past rounds.
	history, err := ldprecover.GenerateHistory(ds, 12, 0.03, r)
	if err != nil {
		log.Fatal(err)
	}

	// This round, an attacker promotes 10 items with MGA at beta=0.05.
	targets, err := ldprecover.RandomTargets(r, d, 10)
	if err != nil {
		log.Fatal(err)
	}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		log.Fatal(err)
	}
	genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		log.Fatal(err)
	}
	m := int64(float64(ds.N()) * 0.05 / 0.95)
	malicious, err := mga.CraftReports(r, proto, m)
	if err != nil {
		log.Fatal(err)
	}
	all := append(append([]ldprecover.Report{}, genuine...), malicious...)
	poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		log.Fatal(err)
	}

	// Identify the targets as statistical outliers against history.
	suspected, err := ldprecover.ZScoreOutliers(history, poisoned, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	hit := 0
	isTarget := map[int]bool{}
	for _, t := range targets {
		isTarget[t] = true
	}
	for _, s := range suspected {
		if isTarget[s] {
			hit++
		}
	}
	fmt.Printf("outlier detection flagged %d items, %d/%d true targets\n",
		len(suspected), hit, len(targets))

	// Compare the defenses.
	truth := ds.Frequencies()
	genuineEst, _ := ldprecover.EstimateFrequencies(genuine, proto.Params())
	show := func(label string, est []float64) {
		mse, _ := ldprecover.MSE(est, truth)
		fg, _ := ldprecover.FrequencyGain(est, genuineEst, targets)
		fmt.Printf("  %-14s MSE %.3E   FG %+.4f\n", label, mse, fg)
	}
	show("poisoned", poisoned)

	rec, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		log.Fatal(err)
	}
	show("LDPRecover", rec.Frequencies)

	recStar, err := ldprecover.RecoverWithTargets(poisoned, proto.Params(), suspected, ldprecover.DefaultEta)
	if err != nil {
		log.Fatal(err)
	}
	show("LDPRecover*", recStar.Frequencies)

	det, err := ldprecover.Detection(all, suspected, proto.Params())
	if err != nil {
		log.Fatal(err)
	}
	show("Detection", det.Frequencies)
	fmt.Printf("  (Detection removed %d of %d reports)\n", det.Removed, det.Removed+det.Kept)
}
