// Quickstart: collect frequencies under LDP, poison them with a targeted
// attack, and recover them with LDPRecover — the library's 60-second tour.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		domain  = 64  // distinct items
		epsilon = 0.5 // privacy budget
	)
	users := exenv.Users(50000)
	r := ldprecover.NewRand(42)

	// A Zipf-shaped population: item 0 most popular.
	ds, err := ldprecover.ZipfDataset("quickstart", domain, int64(users), 1.1)
	if err != nil {
		log.Fatal(err)
	}

	// Each user perturbs her item with OUE and reports it.
	proto, err := ldprecover.NewOUE(domain, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		log.Fatal(err)
	}

	// An attacker injects 5% malicious users promoting items 10..14.
	targets := []int{10, 11, 12, 13, 14}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		log.Fatal(err)
	}
	malicious, err := mga.CraftReports(r, proto, int64(users/19)) // beta ~= 0.05
	if err != nil {
		log.Fatal(err)
	}
	reports = append(reports, malicious...)

	// The server aggregates — and gets poisoned frequencies.
	poisoned, err := ldprecover.EstimateFrequencies(reports, proto.Params())
	if err != nil {
		log.Fatal(err)
	}

	// LDPRecover needs nothing but the protocol parameters.
	res, err := ldprecover.Recover(poisoned, proto.Params(), ldprecover.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// If the server can identify the promoted items (e.g. from history),
	// LDPRecover* uses them for strictly better recovery.
	resStar, err := ldprecover.RecoverWithTargets(poisoned, proto.Params(), targets, ldprecover.DefaultEta)
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.Frequencies()
	mseBefore, _ := ldprecover.MSE(poisoned, truth)
	mseAfter, _ := ldprecover.MSE(res.Frequencies, truth)
	mseStar, _ := ldprecover.MSE(resStar.Frequencies, truth)
	fmt.Printf("MSE poisoned     : %.3E\n", mseBefore)
	fmt.Printf("MSE LDPRecover   : %.3E  (%.0fx better)\n", mseAfter, mseBefore/mseAfter)
	fmt.Printf("MSE LDPRecover*  : %.3E  (%.0fx better)\n", mseStar, mseBefore/mseStar)
	fmt.Printf("target item 10: true %.4f  poisoned %.4f  recovered %.4f  recovered* %.4f\n",
		truth[10], poisoned[10], res.Frequencies[10], resStar.Frequencies[10])
}
