// Mean estimation: LDPRecover applied beyond frequencies (§VII-A). The
// Harmony protocol estimates a numeric population mean through binary
// frequency estimation; a poisoning attacker inflates the mean by sending
// crafted +1 category reports, and LDPRecover* restores it.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		epsilon  = 0.5
		trueMean = -0.35 // e.g. average sentiment score in [-1, 1]
	)
	users := exenv.Users(200000)
	r := ldprecover.NewRand(314)

	h, err := ldprecover.NewHarmony(epsilon)
	if err != nil {
		log.Fatal(err)
	}

	// Genuine users hold values centred on trueMean.
	values := make([]float64, users)
	for i := range values {
		v := trueMean + 0.4*(r.Float64()-0.5)
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		values[i] = v
	}
	var exact float64
	for _, v := range values {
		exact += v
	}
	exact /= float64(len(values))

	// Honest collection.
	reports := make([]ldprecover.Report, 0, users)
	for _, v := range values {
		rep, err := h.Perturb(r, v)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}

	// Attack: 5% malicious users all report the +1 category unperturbed,
	// dragging the estimated mean upward.
	m := users / 19
	grr2, err := ldprecover.NewGRR(2, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < m; i++ {
		rep, err := grr2.CraftSupport(r, 1)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}

	poisoned, err := ldprecover.EstimateFrequencies(reports, h.Params())
	if err != nil {
		log.Fatal(err)
	}
	poisonedMean, err := ldprecover.HarmonyMean(poisoned)
	if err != nil {
		log.Fatal(err)
	}

	// The promoted category is obvious from the attack's direction (the
	// mean jumped); recover with that partial knowledge. Use an eta close
	// to the suspected malicious ratio (see package doc for why d=2 wants
	// a tight eta).
	eta := float64(m) / float64(users)
	res, err := ldprecover.RecoverHarmonyMean(poisoned, epsilon, eta, []int{1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true mean      : %+.4f\n", exact)
	fmt.Printf("poisoned mean  : %+.4f  (attack shifted it %+.4f)\n",
		poisonedMean, poisonedMean-exact)
	fmt.Printf("recovered mean : %+.4f  (residual error %+.4f)\n",
		res.Mean, res.Mean-exact)
}
