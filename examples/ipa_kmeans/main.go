// Input poisoning + k-means: when malicious users follow the protocol
// honestly (MGA-IPA, §VII-B), Eq. 21's malicious-summation learning no
// longer applies — the malicious data's statistics match genuine data.
// The k-means subset defense clusters the reports, and LDPRecover-KM
// feeds the minority cluster's statistics into the recovery pipeline.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const epsilon = 0.5
	r := ldprecover.NewRand(5150)

	ds, err := ldprecover.SyntheticIPUMS().Scaled(exenv.Fraction(0.1))
	if err != nil {
		log.Fatal(err)
	}
	d := ds.Domain()
	proto, err := ldprecover.NewGRR(d, epsilon)
	if err != nil {
		log.Fatal(err)
	}

	targets, err := ldprecover.RandomTargets(r, d, 10)
	if err != nil {
		log.Fatal(err)
	}
	ipa, err := ldprecover.NewMGAIPA(targets, d)
	if err != nil {
		log.Fatal(err)
	}

	genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		log.Fatal(err)
	}
	m := int64(float64(ds.N()) * 0.05 / 0.95)
	malicious, err := ipa.CraftReports(r, proto, m)
	if err != nil {
		log.Fatal(err)
	}
	all := append(append([]ldprecover.Report{}, genuine...), malicious...)
	poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.Frequencies()
	mseBefore, _ := ldprecover.MSE(poisoned, truth)
	fmt.Printf("MGA-IPA on GRR: poisoned MSE %.3E (input poisoning is weak)\n", mseBefore)

	for _, xi := range []float64{0.3, 0.5, 0.7} {
		kd, err := ldprecover.NewKMeansDefense(xi)
		if err != nil {
			log.Fatal(err)
		}
		km, err := kd.Run(r, all, proto.Params())
		if err != nil {
			log.Fatal(err)
		}
		mseKM, _ := ldprecover.MSE(km.Genuine, truth)

		rec, err := ldprecover.RecoverKM(poisoned, km, proto.Params(), ldprecover.DefaultEta)
		if err != nil {
			log.Fatal(err)
		}
		mseRec, _ := ldprecover.MSE(rec.Frequencies, truth)
		fmt.Printf("xi=%.1f: k-means MSE %.3E   LDPRecover-KM MSE %.3E  (clusters %d/%d)\n",
			xi, mseKM, mseRec, km.GenuineSubsets, km.MaliciousSubsets)
	}
}
