// Streaming: the epoch-streamed recovery pipeline end to end. A
// collector ingests one population of OUE reports per epoch; halfway
// through the stream an MGA attacker ramps up its malicious users. The
// epoch manager seals each epoch without stopping ingest, estimates the
// sliding window, scores it against the clean history, and — once the
// promoted items have been flagged for a few consecutive epochs —
// upgrades itself from LDPRecover to LDPRecover* on the identified
// targets. The per-epoch table shows recovery tracking the attack.
//
// The same pipeline runs as a long-lived HTTP service via
// `ldprecover serve` (see README "Serving mode").
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		domain      = 64
		epsilon     = 1.0
		epochs      = 16
		attackStart = 8   // first attacked epoch
		beta        = 0.1 // steady-state malicious fraction
	)
	users := exenv.Users(40000)
	r := ldprecover.NewRand(7)

	ds, err := ldprecover.ZipfDataset("streaming", domain, int64(users), 1.1)
	if err != nil {
		log.Fatal(err)
	}
	proto, err := ldprecover.NewOUE(domain, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	targets := []int{9, 27, 44}
	mga, err := ldprecover.NewMGA(targets)
	if err != nil {
		log.Fatal(err)
	}

	// The epoch manager is the whole serving pipeline: concurrent-safe
	// ingest, seal boundaries, sliding-window estimates, and cross-epoch
	// target identification.
	mgr, err := ldprecover.NewEpochManager(ldprecover.StreamConfig{
		Params:      proto.Params(),
		Window:      1,
		History:     epochs,
		StableAfter: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := ds.Frequencies()
	fmt.Printf("%d users/epoch, attack (beta=%g, targets %v) begins at epoch %d\n\n",
		users, beta, targets, attackStart)
	fmt.Println("epoch  attacked  MSE poisoned  MSE recovered  mode          targets")
	for e := 0; e < epochs; e++ {
		// Genuine users report once per epoch.
		reports, err := ldprecover.PerturbAll(proto, r, ds.Counts)
		if err != nil {
			log.Fatal(err)
		}
		if err := mgr.AddBatch(reports); err != nil {
			log.Fatal(err)
		}
		// The attacker joins mid-stream and stays.
		attacked := " "
		if e >= attackStart {
			attacked = "*"
			m := int64(float64(users) * beta / (1 - beta))
			malicious, err := mga.CraftReports(r, proto, m)
			if err != nil {
				log.Fatal(err)
			}
			if err := mgr.AddBatch(malicious); err != nil {
				log.Fatal(err)
			}
		}

		est, err := mgr.Seal()
		if err != nil {
			log.Fatal(err)
		}
		mseBefore, _ := ldprecover.MSE(est.Poisoned, truth)
		mseAfter, _ := ldprecover.MSE(est.Recovered, truth)
		mode := "LDPRecover"
		if est.PartialKnowledge {
			mode = "LDPRecover*"
		}
		fmt.Printf("%5d  %8s  %12.3E  %13.3E  %-12s  %v\n",
			est.Seq, attacked, mseBefore, mseAfter, mode, est.Targets)
	}

	st := mgr.Stats()
	fmt.Printf("\ningested %d reports over %d epochs; identified targets: %v\n",
		st.IngestedTotal, st.Epochs, st.Targets)
}
