// Key-value collection: the paper's future-work direction (§VIII).
// Users report ⟨key, value⟩ pairs under LDP; a poisoning attacker
// promotes one key while dragging its mean value upward, and the joint
// recovery restores both the key's frequency and its mean.
package main

import (
	"fmt"
	"log"

	"ldprecover"
	"ldprecover/examples/internal/exenv"
)

func main() {
	const (
		domain = 20
		target = 5
	)
	users := exenv.Users(120000)
	r := ldprecover.NewRand(77)

	// App-store style population: key = app id, value = normalized
	// rating in [-1, 1]. The target app is unpopular and badly rated.
	freqs := make([]float64, domain)
	means := make([]float64, domain)
	for k := 0; k < domain; k++ {
		freqs[k] = 1 / float64(k+2)
		means[k] = 0.7 - 0.08*float64(k)
	}
	var z float64
	for _, f := range freqs {
		z += f
	}
	for k := range freqs {
		freqs[k] /= z
	}
	means[target] = -0.8 // truth: the target is disliked

	proto, err := ldprecover.NewKV(domain, 1.0, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// Honest collection.
	var reports []ldprecover.KVReport
	for k := 0; k < domain; k++ {
		cnt := int(freqs[k] * float64(users))
		for i := 0; i < cnt; i++ {
			rep, err := proto.Perturb(r, ldprecover.KVPair{Key: k, Value: means[k]})
			if err != nil {
				log.Fatal(err)
			}
			reports = append(reports, rep)
		}
	}
	n := len(reports)

	// Attack: 5% malicious users submit (target, +1) unperturbed, faking
	// popularity and a glowing rating.
	m := n / 19
	for i := 0; i < m; i++ {
		rep, err := proto.CraftReport(target, +1)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}

	agg, err := ldprecover.AggregateKVReports(reports, domain)
	if err != nil {
		log.Fatal(err)
	}
	poisoned, err := proto.Estimate(agg)
	if err != nil {
		log.Fatal(err)
	}

	rec, err := proto.Recover(agg, ldprecover.KVRecoverOptions{
		Eta:        float64(m) / float64(n),
		Targets:    []int{target},
		AttackSign: +1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target key %d (truth: frequency %.4f, mean %+.2f)\n",
		target, freqs[target], means[target])
	fmt.Printf("  poisoned : frequency %.4f, mean %+.3f\n",
		poisoned.Frequencies[target], poisoned.Means[target])
	fmt.Printf("  recovered: frequency %.4f, mean %+.3f\n",
		rec.Frequencies[target], rec.Means[target])
}
