module ldprecover

go 1.24
