GO ?= go

.PHONY: all build test race bench-smoke vet ci

all: build test

build:
	$(GO) build ./...

# Tier-1: everything must build and every test must pass. -short skips
# the end-to-end example runs; `make test-full` includes them.
test: build
	$(GO) test -short ./...

test-full: build
	$(GO) test ./...

# Race-detector suite for the concurrent aggregation engine (and the
# trial runner that drives it).
race:
	$(GO) test -race ./internal/ldp/... ./internal/experiment/...

# One iteration of every benchmark: catches bit-rot in the paper figure
# generators and the ingest benchmarks without burning CI minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

vet:
	$(GO) vet ./...

ci: build vet test race
