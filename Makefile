GO ?= go

# Per-target budget for `make fuzz` — short on purpose: CI runs it on
# every push, the committed seed corpora under testdata/fuzz/ double as
# plain regression tests, and longer exploratory runs are a local
# `FUZZTIME=10m make fuzz` away.
FUZZTIME ?= 10s

# External analysis tools are pinned in tools/tools.go (the single
# source of truth) and invoked module-free via `go run pkg@version`.
STATICCHECK_VERSION := $(shell sed -n 's/.*StaticcheckVersion = "\(.*\)".*/\1/p' tools/tools.go)
GOVULNCHECK_VERSION := $(shell sed -n 's/.*GovulncheckVersion = "\(.*\)".*/\1/p' tools/tools.go)

.PHONY: all build test race bench-smoke bench-json bench-ingest bench-merge vet lint vulncheck fuzz audit ci

all: build test

build:
	$(GO) build ./...

# Tier-1: everything must build and every test must pass. -short skips
# the end-to-end example runs; `make test-full` includes them.
test: build
	$(GO) test -short ./...

test-full: build
	$(GO) test ./...

# Race-detector suite for the concurrent aggregation engine, the
# epoch-streamed pipeline built on it, the persistence layer (WAL
# appends race seals/snapshots), the trial runner, and the HTTP serving
# layer — single-node and cluster (epoch sealing under concurrent
# ingest lives in internal/ldp and internal/stream; the tally merge
# barrier and the cluster e2e live in internal/stream and
# cmd/ldprecover).
race:
	$(GO) test -race ./internal/ldp/... ./internal/stream/... ./internal/persist/... ./internal/experiment/... ./cmd/ldprecover/...

# Native Go fuzzing over every wire surface — report frames, batch
# frames, sealed-tally frames, and WAL segment recovery. Each target
# gets a short FUZZTIME budget (go's fuzzer accepts one target per
# invocation); corrupt input must error, never panic. Seed corpora are
# committed under testdata/fuzz/ and also run in plain `make test`.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalReport$$'      -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalReportBatch$$' -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalTally$$'       -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalPartial$$'     -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzReportBatchFrame$$'     -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshalAnnounce$$'    -fuzztime $(FUZZTIME) ./internal/ldp
	$(GO) test -run '^$$' -fuzz 'FuzzWALOpen$$'              -fuzztime $(FUZZTIME) ./internal/persist

# One iteration of every benchmark: catches bit-rot in the paper figure
# generators and the ingest benchmarks without burning CI minutes.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable perf baseline: run the bench suite once and emit
# BENCH_report.json (ns/op plus the recovery-quality metrics such as
# mse-after / fg-after), the artifact CI archives per commit so future
# changes can diff against a recorded trajectory. Staged through a temp
# file (not a pipe) so a failing benchmark fails the target.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > BENCH_output.tmp
	cat BENCH_output.tmp
	$(GO) run ./cmd/benchjson -o BENCH_report.json BENCH_output.tmp
	rm -f BENCH_output.tmp

# Tally-first ingest micro-suite: re-baselines the durable ingest lanes
# (report-level decode, zero-copy frame, partial-tally) plus the raw WAL
# append at a real benchtime, folds the rows into BENCH_report.json in
# place, and gates the run: the partial-tally lane must move at least 5x
# the MB/s of the report lane, or the target (and CI) fails.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkDurableIngest|BenchmarkWALAppend' -benchtime 300ms . > BENCH_ingest.tmp
	cat BENCH_ingest.tmp
	$(GO) run ./cmd/benchjson -merge BENCH_report.json -o BENCH_report.json \
		-gate-num 'BenchmarkDurableIngest/partial-tally' \
		-gate-den 'BenchmarkDurableIngest/report-level' \
		-gate-min 5 BENCH_ingest.tmp
	rm -f BENCH_ingest.tmp

# Merge-on-arrival micro-suite: re-baselines the per-tally accept cost
# (the pre-refactor clone + seal-time fold vs the single-pass fold into
# the epoch accumulator) and the root's barrier-seal latency across
# fan-ins, folds the rows into BENCH_report.json in place, and gates the
# run: fold-on-arrival must move at least 2x the MB/s of clone+fold at
# d=65536, or the target (and CI) fails. RootSealLatency's flatness
# across nodes=4..64 is recorded for the report, eyeballed not gated —
# a ±10% band is too tight for shared CI runners to assert on.
bench-merge:
	$(GO) test -run '^$$' -bench 'BenchmarkMergeParallel' -benchtime 300ms ./internal/ldp > BENCH_merge.tmp
	$(GO) test -run '^$$' -bench 'BenchmarkRootSealLatency' -benchtime 200ms ./internal/stream >> BENCH_merge.tmp
	cat BENCH_merge.tmp
	$(GO) run ./cmd/benchjson -merge BENCH_report.json -o BENCH_report.json \
		-gate-num 'BenchmarkMergeParallel/d=65536/parallel' \
		-gate-den 'BenchmarkMergeParallel/d=65536/sequential' \
		-gate-min 2 BENCH_merge.tmp
	rm -f BENCH_merge.tmp

# Reports observed per neighboring input per audit cell — short on
# purpose, like FUZZTIME: the CI sweep certifies ~e^-0.03 of the true
# budget in seconds, and a tighter local certification is a
# `AUDIT_TRIALS=5000000 make audit` away.
AUDIT_TRIALS ?= 200000

# Empirical privacy + recovery audit (DESIGN.md §11): certify eps_emp
# for every protocol x client path x budget cell with exact
# Clopper-Pearson bounds, replay the streamed MGA grid, and fold the
# rows into BENCH_report.json next to the figure benchmarks. The gate
# lives in ldpaudit itself — it exits 1 if any cell certifies
# eps_emp > eps + slack or the recovery violation-rate bound exceeds its
# cap — so a privacy leak fails this target (and CI) before the merge
# runs.
audit:
	$(GO) run ./cmd/ldpaudit -mode all -protocol all -path all -eps 1,4 \
		-trials $(AUDIT_TRIALS) -bench > BENCH_audit.tmp
	cat BENCH_audit.tmp
	$(GO) run ./cmd/benchjson -merge BENCH_report.json -o BENCH_report.json BENCH_audit.tmp
	rm -f BENCH_audit.tmp

vet:
	$(GO) vet ./...

# The full static-analysis gate: go vet, the in-tree ldplint invariant
# suite (DESIGN.md §10), and pinned staticcheck when the module proxy
# is reachable. ldplint exits 2 on any finding, so a seeded violation
# fails this target (and CI). The binary lands in .bin/ so it can also
# be used as `go vet -vettool=.bin/ldplint`.
lint: vet
	@mkdir -p .bin
	$(GO) build -o .bin/ldplint ./cmd/ldplint
	./.bin/ldplint ./...
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		echo "staticcheck $(STATICCHECK_VERSION) ./..."; \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline toolchain); ldplint and go vet still gate"; \
	fi

# Known-vulnerability scan, pinned like staticcheck. Informational by
# design: new CVE disclosures in dependencies must not brick unrelated
# CI runs, so findings are reported but never fail the build.
vulncheck:
	@if $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./... || \
			echo "govulncheck reported findings (informational, non-blocking)"; \
	else \
		echo "govulncheck $(GOVULNCHECK_VERSION) unavailable (offline toolchain); skipping"; \
	fi

ci: build lint test race fuzz audit
