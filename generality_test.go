package ldprecover_test

import (
	"fmt"
	"math"
	"testing"

	"ldprecover"
)

// TestRecoveryGeneralityAcrossProtocols verifies the paper's claim that
// LDPRecover applies to any pure LDP protocol: the same attack and
// recovery pipeline runs over GRR, OUE, OLH, SUE and BLH, and recovery
// improves the poisoned estimate on each.
func TestRecoveryGeneralityAcrossProtocols(t *testing.T) {
	const d, eps = 24, 0.8
	ds, err := ldprecover.ZipfDataset("gen", d, 40000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	truth := ds.Frequencies()

	build := []struct {
		name string
		mk   func() (ldprecover.Protocol, error)
	}{
		{"GRR", func() (ldprecover.Protocol, error) { return ldprecover.NewGRR(d, eps) }},
		{"OUE", func() (ldprecover.Protocol, error) { return ldprecover.NewOUE(d, eps) }},
		{"OLH", func() (ldprecover.Protocol, error) { return ldprecover.NewOLH(d, eps) }},
		{"SUE", func() (ldprecover.Protocol, error) { return ldprecover.NewSUE(d, eps) }},
		{"BLH", func() (ldprecover.Protocol, error) { return ldprecover.NewBLH(d, eps) }},
	}
	for _, b := range build {
		b := b
		t.Run(b.name, func(t *testing.T) {
			proto, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			if proto.Name() != b.name {
				t.Fatalf("name %q want %q", proto.Name(), b.name)
			}
			r := ldprecover.NewRand(11)
			genuine, err := ldprecover.PerturbAll(proto, r, ds.Counts)
			if err != nil {
				t.Fatal(err)
			}
			targets, err := ldprecover.RandomTargets(r, d, 4)
			if err != nil {
				t.Fatal(err)
			}
			mga, err := ldprecover.NewMGA(targets)
			if err != nil {
				t.Fatal(err)
			}
			malicious, err := mga.CraftReports(r, proto, int64(len(genuine)/19))
			if err != nil {
				t.Fatal(err)
			}
			all := append(append([]ldprecover.Report{}, genuine...), malicious...)
			poisoned, err := ldprecover.EstimateFrequencies(all, proto.Params())
			if err != nil {
				t.Fatal(err)
			}
			// LDPRecover* with the true targets: the strongest, most
			// stable comparison across protocols.
			res, err := ldprecover.RecoverWithTargets(poisoned, proto.Params(), targets, ldprecover.DefaultEta)
			if err != nil {
				t.Fatal(err)
			}
			mseBefore, err := ldprecover.MSE(poisoned, truth)
			if err != nil {
				t.Fatal(err)
			}
			mseAfter, err := ldprecover.MSE(res.Frequencies, truth)
			if err != nil {
				t.Fatal(err)
			}
			if mseAfter >= mseBefore {
				t.Fatalf("recovery failed on %s: before %v after %v",
					b.name, mseBefore, mseAfter)
			}
			// Output is a simplex point.
			var sum float64
			for _, f := range res.Frequencies {
				if f < 0 {
					t.Fatal("negative recovered frequency")
				}
				sum += f
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("recovered sum %v", sum)
			}
		})
	}
}

// TestKVFacadeEndToEnd exercises the key-value extension through the
// public API.
func TestKVFacadeEndToEnd(t *testing.T) {
	const d, target = 10, 3
	proto, err := ldprecover.NewKV(d, 1.2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := ldprecover.NewRand(5)
	var reports []ldprecover.KVReport
	for k := 0; k < d; k++ {
		for i := 0; i < 4000; i++ {
			rep, err := proto.Perturb(r, ldprecover.KVPair{Key: k, Value: -0.5})
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, rep)
		}
	}
	n := len(reports)
	for i := 0; i < n/19; i++ {
		rep, err := proto.CraftReport(target, 1)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	agg, err := ldprecover.AggregateKVReports(reports, d)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := proto.Estimate(agg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := proto.Recover(agg, ldprecover.KVRecoverOptions{
		Eta:     float64(n/19) / float64(n),
		Targets: []int{target},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.Frequencies[target]-0.1) >= math.Abs(poisoned.Frequencies[target]-0.1) {
		t.Fatalf("kv frequency not improved: poisoned %v recovered %v",
			poisoned.Frequencies[target], rec.Frequencies[target])
	}
	if math.Abs(rec.Means[target]-(-0.5)) >= math.Abs(poisoned.Means[target]-(-0.5)) {
		t.Fatalf("kv mean not improved: poisoned %v recovered %v",
			poisoned.Means[target], rec.Means[target])
	}
}

// TestHarmonyFacade exercises the mean-estimation extension through the
// public API.
func TestHarmonyFacade(t *testing.T) {
	h, err := ldprecover.NewHarmony(0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := ldprecover.NewRand(6)
	var reports []ldprecover.Report
	for i := 0; i < 30000; i++ {
		rep, err := h.Perturb(r, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	freqs, err := ldprecover.EstimateFrequencies(reports, h.Params())
	if err != nil {
		t.Fatal(err)
	}
	mean, err := ldprecover.HarmonyMean(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.4) > 0.05 {
		t.Fatalf("harmony mean %v want 0.4", mean)
	}
}

// ExampleMaliciousSum shows the server-side learnt statistic (Eq. 21).
func ExampleMaliciousSum() {
	proto, _ := ldprecover.NewGRR(102, 0.5)
	sum, _ := ldprecover.MaliciousSum(proto.Params())
	fmt.Printf("GRR malicious frequency summation: %.3f\n", sum)
	// Output: GRR malicious frequency summation: 1.000
}

// ExampleProjectSimplex shows the refinement step in isolation.
func ExampleProjectSimplex() {
	out, _ := ldprecover.ProjectSimplex([]float64{0.9, -0.2, 0.5})
	fmt.Printf("%.2f %.2f %.2f\n", out[0], out[1], out[2])
	// Output: 0.70 0.00 0.30
}

// TestWireAndStreamingPipeline runs client-side perturbation, wire
// serialization, streaming sharded aggregation and recovery end to end
// through the facade — the deployment shape a real collector would use.
func TestWireAndStreamingPipeline(t *testing.T) {
	const d, eps = 16, 0.8
	proto, err := ldprecover.NewOLH(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	r := ldprecover.NewRand(21)
	ds, err := ldprecover.ZipfDataset("wire", d, 8000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := ldprecover.PerturbAll(proto, r, ds.Counts)
	if err != nil {
		t.Fatal(err)
	}
	// Client -> wire -> two server shards -> merge.
	shards := make([]*ldprecover.Accumulator, 2)
	for i := range shards {
		if shards[i], err = ldprecover.NewAccumulator(d); err != nil {
			t.Fatal(err)
		}
	}
	for i, rep := range reports {
		buf, err := ldprecover.MarshalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ldprecover.UnmarshalReport(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := shards[i%2].Add(back); err != nil {
			t.Fatal(err)
		}
	}
	if err := shards[0].Merge(shards[1]); err != nil {
		t.Fatal(err)
	}
	est, err := shards[0].Estimate(proto.Params())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ldprecover.Recover(est, proto.Params(), ldprecover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := ldprecover.MSE(res.Frequencies, ds.Frequencies())
	if err != nil {
		t.Fatal(err)
	}
	if mse > 5e-3 {
		t.Fatalf("pipeline MSE %v too large", mse)
	}
}
