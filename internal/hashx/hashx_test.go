package hashx

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
}

func TestHash64SeedSensitivity(t *testing.T) {
	// Consecutive seeds must behave as unrelated functions.
	collisions := 0
	for seed := uint64(0); seed < 1000; seed++ {
		if Hash64(seed, 42) == Hash64(seed+1, 42) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d seed collisions on the same input", collisions)
	}
}

func TestHash64InputSensitivity(t *testing.T) {
	collisions := 0
	for x := uint64(0); x < 10000; x++ {
		if Hash64(7, x) == Hash64(7, x+1) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d adjacent-input collisions", collisions)
	}
}

// TestAvalanche flips each input bit and requires ~32 output bits to flip
// on average (within a tolerance), the standard avalanche criterion.
func TestAvalanche(t *testing.T) {
	const trials = 2000
	var totalFlips, totalPairs float64
	for i := 0; i < trials; i++ {
		x := uint64(i) * 0x9e3779b97f4a7c15
		h := Hash64(1234, x)
		for b := 0; b < 64; b++ {
			h2 := Hash64(1234, x^(1<<uint(b)))
			totalFlips += float64(bits.OnesCount64(h ^ h2))
			totalPairs++
		}
	}
	avg := totalFlips / totalPairs
	if math.Abs(avg-32) > 1 {
		t.Fatalf("avalanche average %v bit flips, want ~32", avg)
	}
}

// TestHashToRangeUniform checks chi-square uniformity of HashToRange over
// small g for sequential inputs (the exact access pattern OLH uses:
// hashing item ids 0..d-1).
func TestHashToRangeUniform(t *testing.T) {
	for _, g := range []int{2, 3, 5, 8, 16} {
		const n = 120000
		counts := make([]float64, g)
		for x := 0; x < n; x++ {
			v := HashToRange(99, uint64(x), g)
			if v < 0 || v >= g {
				t.Fatalf("g=%d: out of range %d", g, v)
			}
			counts[v]++
		}
		exp := float64(n) / float64(g)
		var chi2 float64
		for _, c := range counts {
			d := c - exp
			chi2 += d * d / exp
		}
		// Generous: chi2 ~ g-1 dof; bound at ~6 sigma.
		limit := float64(g-1) + 6*math.Sqrt(2*float64(g-1)) + 10
		if chi2 > limit {
			t.Fatalf("g=%d: chi2=%v > %v", g, chi2, limit)
		}
	}
}

// TestPairwiseIndependence estimates P(H(x1)=H(x2)) over random seeds; for
// a uniform family it must be ~1/g. OLH's variance analysis relies on this.
func TestPairwiseIndependence(t *testing.T) {
	const g = 3
	const trials = 200000
	hits := 0
	for seed := uint64(0); seed < trials; seed++ {
		if HashToRange(seed, 10, g) == HashToRange(seed, 20, g) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-1.0/g) > 0.005 {
		t.Fatalf("collision rate %v want %v", got, 1.0/g)
	}
}

// TestPerItemUniformAcrossSeeds: for a fixed item, the hash value across
// random seeds must be uniform (this is the distribution OLH aggregation
// sees for non-matching items).
func TestPerItemUniformAcrossSeeds(t *testing.T) {
	const g = 4
	const trials = 200000
	counts := make([]float64, g)
	for seed := uint64(0); seed < trials; seed++ {
		counts[HashToRange(seed, 123, g)]++
	}
	exp := float64(trials) / g
	for i, c := range counts {
		if math.Abs(c-exp)/exp > 0.02 {
			t.Fatalf("value %d: count %v want %v", i, c, exp)
		}
	}
}

func TestHashToRangeProperty(t *testing.T) {
	f := func(seed, x uint64, graw uint8) bool {
		g := int(graw%100) + 1
		v := HashToRange(seed, x, g)
		return v >= 0 && v < g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i), uint64(i*3))
	}
	_ = sink
}

func BenchmarkHashToRange(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= HashToRange(uint64(i), uint64(i*3), 3)
	}
	_ = sink
}
