package hashx

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// The v2 (Premixed) family must satisfy the same statistical contract as
// v1: these tests mirror hashx_test.go for the two-stage pipeline.

func TestPremixedDeterministic(t *testing.T) {
	if Premix(1).Hash64(2) != Premix(1).Hash64(2) {
		t.Fatal("premixed hash not deterministic")
	}
}

func TestPremixedSeedSensitivity(t *testing.T) {
	collisions := 0
	for seed := uint64(0); seed < 1000; seed++ {
		if Premix(seed).Hash64(42) == Premix(seed+1).Hash64(42) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d seed collisions on the same input", collisions)
	}
}

func TestPremixedInputSensitivity(t *testing.T) {
	p := Premix(7)
	collisions := 0
	for x := uint64(0); x < 10000; x++ {
		if p.Hash64(x) == p.Hash64(x+1) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d adjacent-input collisions", collisions)
	}
}

// TestPremixedAvalanche: flipping one input bit must flip ~32 output bits
// on average, per-item stage included.
func TestPremixedAvalanche(t *testing.T) {
	const trials = 2000
	p := Premix(1234)
	var totalFlips, totalPairs float64
	for i := 0; i < trials; i++ {
		x := uint64(i) * 0x9e3779b97f4a7c15
		h := p.Hash64(x)
		for b := 0; b < 64; b++ {
			h2 := p.Hash64(x ^ (1 << uint(b)))
			totalFlips += float64(bits.OnesCount64(h ^ h2))
			totalPairs++
		}
	}
	avg := totalFlips / totalPairs
	if math.Abs(avg-32) > 1 {
		t.Fatalf("avalanche average %v bit flips, want ~32", avg)
	}
}

// TestPremixedSeedAvalanche: flipping one SEED bit must also avalanche,
// so that per-user seeds drawn from any source index unrelated functions.
func TestPremixedSeedAvalanche(t *testing.T) {
	const trials = 2000
	var totalFlips, totalPairs float64
	for i := 0; i < trials; i++ {
		seed := uint64(i) * 0xc4ceb9fe1a85ec53
		h := Premix(seed).Hash64(99)
		for b := 0; b < 64; b++ {
			h2 := Premix(seed ^ (1 << uint(b))).Hash64(99)
			totalFlips += float64(bits.OnesCount64(h ^ h2))
			totalPairs++
		}
	}
	avg := totalFlips / totalPairs
	if math.Abs(avg-32) > 1 {
		t.Fatalf("seed avalanche average %v bit flips, want ~32", avg)
	}
}

// TestPremixedToRangeUniform mirrors TestHashToRangeUniform: chi-square
// uniformity over small g for sequential item ids, OLH's access pattern.
func TestPremixedToRangeUniform(t *testing.T) {
	for _, g := range []int{2, 3, 5, 8, 16} {
		const n = 120000
		p := Premix(99)
		counts := make([]float64, g)
		for x := 0; x < n; x++ {
			v := p.ToRange(uint64(x), g)
			if v < 0 || v >= g {
				t.Fatalf("g=%d: out of range %d", g, v)
			}
			counts[v]++
		}
		exp := float64(n) / float64(g)
		var chi2 float64
		for _, c := range counts {
			d := c - exp
			chi2 += d * d / exp
		}
		limit := float64(g-1) + 6*math.Sqrt(2*float64(g-1)) + 10
		if chi2 > limit {
			t.Fatalf("g=%d: chi2=%v > %v", g, chi2, limit)
		}
	}
}

// TestPremixedPairwiseIndependence: P(H(x1)=H(x2)) over random seeds must
// be ~1/g, the property OLH's variance analysis needs.
func TestPremixedPairwiseIndependence(t *testing.T) {
	const g = 3
	const trials = 200000
	hits := 0
	for seed := uint64(0); seed < trials; seed++ {
		p := Premix(seed)
		if p.ToRange(10, g) == p.ToRange(20, g) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-1.0/g) > 0.005 {
		t.Fatalf("collision rate %v want %v", got, 1.0/g)
	}
}

// TestPremixedPerItemUniformAcrossSeeds: for a fixed item, the hash value
// across seeds must be uniform (what aggregation sees for non-matching
// items).
func TestPremixedPerItemUniformAcrossSeeds(t *testing.T) {
	const g = 4
	const trials = 200000
	counts := make([]float64, g)
	for seed := uint64(0); seed < trials; seed++ {
		counts[Premix(seed).ToRange(123, g)]++
	}
	exp := float64(trials) / g
	for i, c := range counts {
		if math.Abs(c-exp)/exp > 0.02 {
			t.Fatalf("value %d: count %v want %v", i, c, exp)
		}
	}
}

func TestPremixedToRangeProperty(t *testing.T) {
	f := func(seed, x uint64, graw uint8) bool {
		g := int(graw%100) + 1
		v := Premix(seed).ToRange(x, g)
		return v >= 0 && v < g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPremixedHash64(b *testing.B) {
	p := Premix(1234)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= p.Hash64(uint64(i))
	}
	_ = sink
}

// BenchmarkPremixedAmortized measures the realistic aggregation pattern:
// one premix amortized over a 128-item domain scan.
func BenchmarkPremixedAmortized(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		p := Premix(uint64(i))
		for v := uint64(0); v < 128; v++ {
			sink ^= p.ToRange(v, 3)
		}
	}
	_ = sink
}
