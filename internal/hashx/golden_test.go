package hashx

import "testing"

// Golden vectors pin both hash families bit-for-bit. OLH reports are
// (seed, value) pairs whose meaning depends on every aggregator hashing
// identically, and serialized reports outlive any one process — so a
// change to either family is a wire-format break and must fail here
// loudly (bump the family version instead of editing the vectors).

var goldenV1 = []struct{ seed, x, want uint64 }{
	{0x0, 0x0, 0x9474f0eb06d79fd8},
	{0x0, 0x1, 0x1f72637756819f47},
	{0x1, 0x0, 0xbf2f3d7baa2abe7c},
	{0x1, 0x1, 0xecc4bd356ecae20d},
	{0x2a, 0x7, 0x130ce054475a047c},
	{0xdeadbeef, 0x75bcd15, 0xf2612b017fe0ae4a},
	{0xffffffffffffffff, 0xffffffffffffffff, 0x73432408bb46c5c8},
	{0x9e3779b97f4a7c15, 0xc4ceb9fe1a85ec53, 0xceb0aa530c1192e1},
}

var goldenPremix = []struct{ seed, want uint64 }{
	{0x0, 0x0},
	{0x1, 0x5692161d100b05e5},
	{0x2a, 0xa759ea27d4727622},
	{0xdeadbeef, 0x4e062702ec929eea},
	{0xffffffffffffffff, 0xb4d055fcf2cbbd7b},
	{0x9e3779b97f4a7c15, 0xe220a8397b1dcdaf},
}

var goldenV2 = []struct{ seed, x, want uint64 }{
	{0x0, 0x0, 0x0},
	{0x0, 0x1, 0x9ca066f1a4ab2eea},
	{0x1, 0x0, 0x7f2db13df63dbd45},
	{0x1, 0x1, 0xa68a648c74ba9086},
	{0x2a, 0x7, 0xba743dfadecaf9b4},
	{0xdeadbeef, 0x75bcd15, 0x2343cfc7043cc3c0},
	{0xffffffffffffffff, 0xffffffffffffffff, 0xe9f922cb5c739a99},
	{0x9e3779b97f4a7c15, 0xc4ceb9fe1a85ec53, 0x464a3ef50ef28312},
}

func TestGoldenV1(t *testing.T) {
	for _, g := range goldenV1 {
		if got := Hash64(g.seed, g.x); got != g.want {
			t.Errorf("Hash64(%#x, %#x) = %#x, want %#x", g.seed, g.x, got, g.want)
		}
	}
}

func TestGoldenPremix(t *testing.T) {
	for _, g := range goldenPremix {
		if got := Premix(g.seed); uint64(got) != g.want {
			t.Errorf("Premix(%#x) = %#x, want %#x", g.seed, uint64(got), g.want)
		}
	}
}

func TestGoldenV2(t *testing.T) {
	for _, g := range goldenV2 {
		if got := Premix(g.seed).Hash64(g.x); got != g.want {
			t.Errorf("Premix(%#x).Hash64(%#x) = %#x, want %#x", g.seed, g.x, got, g.want)
		}
	}
}
