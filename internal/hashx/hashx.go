// Package hashx implements the seeded hash family used by the OLH
// protocol.
//
// OLH (Wang et al., USENIX Security'17) requires a family H of hash
// functions, indexed by a per-user seed, such that for each item v the hash
// value H(v) is uniform over {0, ..., g-1} and approximately independent
// across items. The paper uses xxhash; any family with those statistical
// properties is equivalent (the protocol's estimator only depends on the
// marginal support probabilities p and q=1/g). We use a keyed
// splitmix64-style finalizer: strong avalanche, two multiplies per hash,
// zero allocations — and statistically validated in the package tests.
package hashx

import "math/bits"

// Hash64 returns a 64-bit hash of x under the function indexed by seed.
// Distinct seeds index (statistically) independent functions.
func Hash64(seed, x uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Second round keyed by the seed to decorrelate the family across
	// seeds that differ in few bits.
	z ^= seed
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// HashToRange maps x to {0, ..., g-1} under the function indexed by seed
// using fixed-point range reduction (unbiased up to 2^-64).
func HashToRange(seed, x uint64, g int) int {
	hi, _ := bits.Mul64(Hash64(seed, x), uint64(g))
	return int(hi)
}
