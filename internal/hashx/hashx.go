// Package hashx implements the seeded hash family used by the OLH
// protocol.
//
// OLH (Wang et al., USENIX Security'17) requires a family H of hash
// functions, indexed by a per-user seed, such that for each item v the hash
// value H(v) is uniform over {0, ..., g-1} and approximately independent
// across items. The paper uses xxhash; any family with those statistical
// properties is equivalent (the protocol's estimator only depends on the
// marginal support probabilities p and q=1/g). Two versioned families are
// provided: Hash64/HashToRange (v1) is a keyed splitmix64-style finalizer
// evaluated from scratch per (seed, item) pair, and Premixed (v2) splits
// the work into a once-per-seed premix plus a cheap two-multiply per-item
// stage, which is what makes report-level OLH aggregation fast. Both are
// statistically validated in the package tests and pinned by golden
// vectors; OLH uses v2.
package hashx

import "math/bits"

// Hash64 returns a 64-bit hash of x under the function indexed by seed.
// Distinct seeds index (statistically) independent functions.
func Hash64(seed, x uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Second round keyed by the seed to decorrelate the family across
	// seeds that differ in few bits.
	z ^= seed
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// HashToRange maps x to {0, ..., g-1} under the function indexed by seed
// using fixed-point range reduction (unbiased up to 2^-64).
func HashToRange(seed, x uint64, g int) int {
	hi, _ := bits.Mul64(Hash64(seed, x), uint64(g))
	return int(hi)
}

// Premixed is the two-stage ("v2") hash family: the expensive seed
// finalization runs ONCE per hash function (Premix), and the per-item
// stage is a cheap two-multiply finalizer. Aggregating one OLH report
// against a domain of d items therefore costs one premix plus d cheap
// mixes, instead of d full five-multiply hashes.
//
// The family is versioned: v2 is a different function family than
// Hash64/HashToRange (v1), with the same statistical contract (uniform
// marginals, seed independence, avalanche — validated by the same test
// battery), and its outputs are pinned by golden vectors so they can
// never drift silently. Callers choose a family; OLH uses v2.
type Premixed uint64

// Premix finalizes a seed into a v2 hash function. The mix is the
// splitmix64 output function: full avalanche on the seed, so seeds
// differing in one bit index unrelated per-item functions.
func Premix(seed uint64) Premixed {
	z := (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return Premixed(z ^ (z >> 31))
}

// Hash64 returns the 64-bit v2 hash of x. Stage two is the murmur3
// fmix64 finalizer applied to x·φ + premixed: the odd-constant multiply
// decorrelates adjacent items, the premixed offset selects the function,
// and fmix64 provides avalanche. Two multiplies for the offset-and-mix
// pipeline's hot loop vs five in the v1 family.
func (p Premixed) Hash64(x uint64) uint64 {
	z := x*0x9e3779b97f4a7c15 + uint64(p)
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// ToRange maps x to {0, ..., g-1} under the premixed function using the
// same fixed-point range reduction as v1.
func (p Premixed) ToRange(x uint64, g int) int {
	hi, _ := bits.Mul64(p.Hash64(x), uint64(g))
	return int(hi)
}
