package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned by vector metrics when the inputs have
// different lengths.
var ErrLengthMismatch = errors.New("stats: vector length mismatch")

// MSE returns the mean squared error between a and b, the paper's primary
// accuracy metric (Eq. 36): (1/d) * Σ_v (a_v - b_v)^2.
func MSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, errors.New("stats: MSE of empty vectors")
	}
	var sum, comp float64
	for i := range a {
		d := a[i] - b[i]
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(a)), nil
}

// MAE returns the mean absolute error between a and b.
func MAE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	if len(a) == 0 {
		return 0, errors.New("stats: MAE of empty vectors")
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// L1 returns the 1-norm of x.
func L1(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += math.Abs(v)
	}
	return sum
}

// L2 returns the 2-norm of x.
func L2(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// LInf returns the infinity norm of x.
func LInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	var sum, comp float64
	for i := range a {
		y := a[i]*b[i] - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum, nil
}

// TotalVariation returns half the L1 distance between two frequency
// vectors, the standard distribution distance.
func TotalVariation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / 2, nil
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
