package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSumEmpty(t *testing.T) {
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
}

func TestSumCompensated(t *testing.T) {
	// 1 followed by many tiny values that naive summation loses entirely.
	xs := make([]float64, 1+1e6)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e6*1e-16
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Kahan sum %v want %v", got, want)
	}
}

func TestSumCancellation(t *testing.T) {
	xs := []float64{1e16, 1, -1e16}
	if got := Sum(xs); got != 1 {
		t.Fatalf("cancellation sum %v want 1", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance %v want 4", v)
	}
	if sv := SampleVariance(xs); !almostEq(sv, 4*8.0/7.0, 1e-12) {
		t.Fatalf("sample variance %v", sv)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Fatalf("stddev %v want 2", sd)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("variance of short input not 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Fatalf("min/max wrong: %v %v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max not infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) not NaN")
	}
	if Median(xs) != 3 {
		t.Fatal("median wrong")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestAbsCentralMoment(t *testing.T) {
	xs := []float64{-1, 1} // mean 0, E|X|^3 = 1
	if got := AbsCentralMoment(xs, 3); !almostEq(got, 1, 1e-12) {
		t.Fatalf("third abs moment %v want 1", got)
	}
	if AbsCentralMoment(nil, 3) != 0 {
		t.Fatal("empty moment not 0")
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBoundedByMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
