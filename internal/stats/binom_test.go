package stats

import (
	"math"
	"testing"
)

func TestBetaIncRegEdges(t *testing.T) {
	if v := BetaIncReg(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v want 0", v)
	}
	if v := BetaIncReg(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v want 1", v)
	}
	if !math.IsNaN(BetaIncReg(0, 1, 0.5)) || !math.IsNaN(BetaIncReg(1, -1, 0.5)) {
		t.Fatal("invalid shape parameters must yield NaN")
	}
	if !math.IsNaN(BetaIncReg(1, 1, math.NaN())) {
		t.Fatal("NaN x must yield NaN")
	}
}

// TestBetaIncRegClosedForms checks against cases with exact closed forms:
// Beta(1, b) has CDF 1-(1-x)^b, Beta(a, 1) has CDF x^a, and Beta(1, 1)
// is uniform.
func TestBetaIncRegClosedForms(t *testing.T) {
	for _, x := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		if got, want := BetaIncReg(1, 1, x), x; math.Abs(got-want) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v want %v", x, got, want)
		}
		if got, want := BetaIncReg(3, 1, x), math.Pow(x, 3); math.Abs(got-want) > 1e-12 {
			t.Fatalf("I_%v(3,1) = %v want %v", x, got, want)
		}
		if got, want := BetaIncReg(1, 4, x), 1-math.Pow(1-x, 4); math.Abs(got-want) > 1e-12 {
			t.Fatalf("I_%v(1,4) = %v want %v", x, got, want)
		}
	}
}

// TestBetaIncRegMatchesBinomialSum cross-checks the continued fraction
// against the independent identity
//
//	I_p(k, n-k+1) = P[Binomial(n, p) >= k]
//
// with the binomial tail summed directly in log space.
func TestBetaIncRegMatchesBinomialSum(t *testing.T) {
	binTail := func(n, k int64, p float64) float64 {
		var sum float64
		for i := k; i <= n; i++ {
			lg1, _ := math.Lgamma(float64(n + 1))
			lg2, _ := math.Lgamma(float64(i + 1))
			lg3, _ := math.Lgamma(float64(n - i + 1))
			sum += math.Exp(lg1 - lg2 - lg3 + float64(i)*math.Log(p) + float64(n-i)*math.Log1p(-p))
		}
		return sum
	}
	cases := []struct {
		n, k int64
		p    float64
	}{
		{50, 5, 0.1}, {50, 5, 0.3}, {100, 50, 0.5}, {200, 3, 0.01}, {80, 79, 0.95},
	}
	for _, c := range cases {
		got := BetaIncReg(float64(c.k), float64(c.n-c.k+1), c.p)
		want := binTail(c.n, c.k, c.p)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("n=%d k=%d p=%v: I=%v binomial tail=%v", c.n, c.k, c.p, got, want)
		}
	}
}

func TestBetaInvCDFRoundTrip(t *testing.T) {
	for _, ab := range [][2]float64{{1, 1}, {2, 5}, {0.5, 0.5}, {30, 70}, {1000, 5}} {
		for _, p := range []float64{1e-6, 0.025, 0.5, 0.975, 1 - 1e-6} {
			x := BetaInvCDF(p, ab[0], ab[1])
			back := BetaIncReg(ab[0], ab[1], x)
			if math.Abs(back-p) > 1e-9 {
				t.Fatalf("a=%v b=%v p=%v: inv=%v round-trips to %v", ab[0], ab[1], p, x, back)
			}
		}
	}
}

func TestClopperPearsonValidation(t *testing.T) {
	if _, _, err := ClopperPearson(1, 0, 0.95); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := ClopperPearson(-1, 10, 0.95); err == nil {
		t.Fatal("k<0 accepted")
	}
	if _, _, err := ClopperPearson(11, 10, 0.95); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, _, err := ClopperPearson(5, 10, 1); err == nil {
		t.Fatal("confidence=1 accepted")
	}
}

// TestClopperPearsonKnownBounds pins the degenerate closed forms: with
// zero successes the upper bound is 1-(alpha/2)^(1/n) (the "rule of
// three" generalization), and the interval is symmetric under
// (k, lo, hi) -> (n-k, 1-hi, 1-lo).
func TestClopperPearsonKnownBounds(t *testing.T) {
	lo, hi, err := ClopperPearson(0, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Fatalf("k=0 lower bound %v want 0", lo)
	}
	want := 1 - math.Pow(0.025, 1.0/100)
	if math.Abs(hi-want) > 1e-9 {
		t.Fatalf("k=0 upper bound %v want %v", hi, want)
	}

	lo2, hi2, err := ClopperPearson(100, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if hi2 != 1 {
		t.Fatalf("k=n upper bound %v want 1", hi2)
	}
	if math.Abs(lo2-(1-hi)) > 1e-9 || math.Abs(hi2-(1-lo)) > 1e-9 {
		t.Fatalf("interval not symmetric: k=0 (%v,%v) vs k=n (%v,%v)", lo, hi, lo2, hi2)
	}
}

// TestClopperPearsonCoversBySelfConsistency checks the defining tail
// equations: at the lower bound P[Bin(n, lo) >= k] = alpha/2 and at the
// upper bound P[Bin(n, hi) <= k] = alpha/2, evaluated through the
// beta-binomial identity with the forward BetaIncReg (a different code
// path than the bisection that produced the bounds).
func TestClopperPearsonCoversBySelfConsistency(t *testing.T) {
	const conf = 0.99
	const alpha = 1 - conf
	cases := []struct{ k, n int64 }{{5, 50}, {1, 1000}, {500, 1000}, {999, 1000}, {37, 200}}
	for _, c := range cases {
		lo, hi, err := ClopperPearson(c.k, c.n, conf)
		if err != nil {
			t.Fatal(err)
		}
		if lo < 0 || hi > 1 || lo >= hi {
			t.Fatalf("k=%d n=%d: malformed interval (%v, %v)", c.k, c.n, lo, hi)
		}
		phat := float64(c.k) / float64(c.n)
		if phat < lo || phat > hi {
			t.Fatalf("k=%d n=%d: point estimate %v outside (%v, %v)", c.k, c.n, phat, lo, hi)
		}
		// P[Bin(n, lo) >= k] = I_lo(k, n-k+1) must equal alpha/2.
		if c.k > 0 {
			tail := BetaIncReg(float64(c.k), float64(c.n-c.k+1), lo)
			if math.Abs(tail-alpha/2) > 1e-9 {
				t.Fatalf("k=%d n=%d: lower-bound tail %v want %v", c.k, c.n, tail, alpha/2)
			}
		}
		// P[Bin(n, hi) <= k] = 1 - I_hi(k+1, n-k) must equal alpha/2.
		if c.k < c.n {
			tail := 1 - BetaIncReg(float64(c.k+1), float64(c.n-c.k), hi)
			if math.Abs(tail-alpha/2) > 1e-9 {
				t.Fatalf("k=%d n=%d: upper-bound tail %v want %v", c.k, c.n, tail, alpha/2)
			}
		}
	}
}
