package stats

import (
	"fmt"
	"math"
)

// BetaIncReg computes the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1], via the standard continued-fraction
// expansion (Numerical Recipes betai/betacf) with the symmetry split at
// x = (a+1)/(a+b+2) for fast convergence on both sides.
func BetaIncReg(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function
// with Lentz's method.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// BetaInvCDF returns the p-quantile of the Beta(a, b) distribution for
// p in [0, 1], inverting BetaIncReg by bisection. Bisection converges
// unconditionally on the monotone CDF; 200 halvings exhaust float64
// resolution, so no polishing step is needed.
func BetaInvCDF(p, a, b float64) float64 {
	if a <= 0 || b <= 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if BetaIncReg(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ClopperPearson returns the exact two-sided Clopper–Pearson confidence
// interval for a binomial proportion with k successes in n trials at the
// given confidence level (e.g. 0.99). The bounds are the usual Beta
// quantiles
//
//	lo = BetaInvCDF(alpha/2;   k,   n-k+1)   (0 when k == 0)
//	hi = BetaInvCDF(1-alpha/2; k+1, n-k)     (1 when k == n)
//
// with alpha = 1 - confidence. The interval is conservative: it covers
// the true proportion with probability at least the confidence level,
// which is what makes it usable as a certified bound in the privacy
// audit tier (DESIGN.md §11).
func ClopperPearson(k, n int64, confidence float64) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("stats: Clopper-Pearson with n=%d", n)
	}
	if k < 0 || k > n {
		return 0, 0, fmt.Errorf("stats: Clopper-Pearson with k=%d outside [0,%d]", k, n)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: Clopper-Pearson confidence %v outside (0,1)", confidence)
	}
	alpha := 1 - confidence
	fk, fn := float64(k), float64(n)
	if k == 0 {
		lo = 0
	} else {
		lo = BetaInvCDF(alpha/2, fk, fn-fk+1)
	}
	if k == n {
		hi = 1
	} else {
		hi = BetaInvCDF(1-alpha/2, fk+1, fn-fk)
	}
	return lo, hi, nil
}
