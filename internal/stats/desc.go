// Package stats provides the numerical substrate for the LDPRecover
// reproduction: compensated summation, descriptive moments, vector norms
// and error metrics, the normal distribution, goodness-of-fit tests, and
// the Berry–Esseen bound used by the paper's Theorems 4–5.
//
// The LDP literature's numerical needs are thin but exacting: frequency
// vectors mix large positive and negative unbiased estimates, so naive
// summation loses digits, and the paper's statistical claims (unbiasedness,
// variance formulas, CLT approximations) need test machinery with
// controlled false-positive rates. Everything here is stdlib-only.
package stats

import (
	"math"
	"sort"
)

// Sum returns the Neumaier-compensated sum of xs. Unlike plain Kahan, the
// compensation survives when a new term exceeds the running sum, which
// matters when large positive and negative unbiased LDP estimates cancel.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			comp += (sum - t) + x
		} else {
			comp += (x - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than two
// elements), computed in two passes for stability.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var sum, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(n)
}

// SampleVariance returns the Bessel-corrected (n-1) variance.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return Variance(xs) * float64(n) / float64(n-1)
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation between order statistics; NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// AbsCentralMoment returns E[|X - mean|^k] over the sample xs, used by the
// Berry–Esseen third-moment terms g_x and g_y in Theorems 4–5.
func AbsCentralMoment(xs []float64, k float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		sum += math.Pow(math.Abs(x-m), k)
	}
	return sum / float64(len(xs))
}
