package stats

import (
	"math"
	"testing"
)

func TestNormalPDFStandard(t *testing.T) {
	want := 1 / math.Sqrt(2*math.Pi)
	if got := NormalPDF(0, 0, 1); !almostEq(got, want, 1e-12) {
		t.Fatalf("pdf(0) = %v want %v", got, want)
	}
	if got := NormalPDF(1, 0, 1); !almostEq(got, 0.24197072451914337, 1e-12) {
		t.Fatalf("pdf(1) = %v", got)
	}
	if !math.IsNaN(NormalPDF(0, 0, 0)) {
		t.Fatal("sigma=0 not NaN")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-4, 3.167124183311986e-05},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, 0, 1); !almostEq(got, c.want, 1e-10) {
			t.Fatalf("cdf(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFShiftScale(t *testing.T) {
	// N(3, 4): P(X <= 5) = Phi(1).
	if got := NormalCDF(5, 3, 2); !almostEq(got, 0.8413447460685429, 1e-10) {
		t.Fatalf("shifted cdf = %v", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-6} {
		z := NormalQuantile(p, 0, 1)
		back := NormalCDF(z, 0, 1)
		if !almostEq(back, p, 1e-9) {
			t.Fatalf("quantile round trip p=%v: z=%v back=%v", p, z, back)
		}
	}
}

func TestNormalQuantileKnown(t *testing.T) {
	if got := NormalQuantile(0.975, 0, 1); !almostEq(got, 1.959963984540054, 1e-8) {
		t.Fatalf("z_{.975} = %v", got)
	}
	if got := NormalQuantile(0.5, 10, 3); !almostEq(got, 10, 1e-9) {
		t.Fatalf("median of N(10,9) = %v", got)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0, 0, 1), -1) {
		t.Fatal("p=0 not -Inf")
	}
	if !math.IsInf(NormalQuantile(1, 0, 1), 1) {
		t.Fatal("p=1 not +Inf")
	}
	if !math.IsNaN(NormalQuantile(0.5, 0, -1)) {
		t.Fatal("negative sigma not NaN")
	}
}

func TestBerryEsseenBasics(t *testing.T) {
	// Bound must be positive and shrink as 1/sqrt(n).
	b1 := BerryEsseen(1, 1, 100)
	b2 := BerryEsseen(1, 1, 10000)
	if b1 <= 0 || b2 <= 0 {
		t.Fatalf("non-positive bounds %v %v", b1, b2)
	}
	if !almostEq(b1/b2, 10, 1e-9) {
		t.Fatalf("bound not scaling as 1/sqrt(n): ratio %v", b1/b2)
	}
	// Closed form check: 0.33554*(g + 0.415 s^3)/(s^3 sqrt(n)).
	want := 0.33554 * (2 + 0.415*8) / (8 * math.Sqrt(400))
	if got := BerryEsseen(2, 2, 400); !almostEq(got, want, 1e-12) {
		t.Fatalf("BerryEsseen = %v want %v", got, want)
	}
	if !math.IsNaN(BerryEsseen(1, 0, 10)) || !math.IsNaN(BerryEsseen(1, 1, 0)) {
		t.Fatal("degenerate inputs not NaN")
	}
}
