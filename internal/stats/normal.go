package stats

import "math"

// NormalPDF returns the density of N(mu, sigma^2) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2).
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the p-quantile of N(mu, sigma^2) for p in (0,1).
// It inverts NormalCDF with a bracketed Newton iteration — slower than a
// rational approximation but correct to ~1e-12 with no tabulated
// coefficients to mis-transcribe.
func NormalQuantile(p, mu, sigma float64) float64 {
	if sigma <= 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Standard-normal quantile by bisection on the CDF (monotone, smooth),
	// polished with safeguarded Newton steps. Plain Newton diverges in the
	// far tails where the density underflows relative to the CDF error, so
	// every step is kept inside the shrinking bracket.
	lo, hi := -40.0, 40.0 // Phi(±40) saturates double precision
	z := 0.0
	for i := 0; i < 200; i++ {
		f := 0.5*math.Erfc(-z/math.Sqrt2) - p
		if f > 0 {
			hi = z
		} else {
			lo = z
		}
		d := math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
		var next float64
		if d > 0 {
			next = z - f/d
		}
		if d == 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // Newton left the bracket: bisect
		}
		if math.Abs(next-z) < 1e-14*(1+math.Abs(next)) {
			z = next
			break
		}
		z = next
	}
	return mu + sigma*z
}

// BerryEsseen returns the paper's Theorem 4/5 bound on the sup distance
// between the true CDF of a standardized i.i.d. mean and its normal
// approximation:
//
//	0.33554 * (g + 0.415*sigma^3) / (sigma^3 * sqrt(n))
//
// where g is the absolute third central moment E[|X-mu|^3] of a single
// summand, sigma its standard deviation, and n the number of summands.
func BerryEsseen(g, sigma float64, n int64) float64 {
	if sigma <= 0 || n <= 0 {
		return math.NaN()
	}
	s3 := sigma * sigma * sigma
	return 0.33554 * (g + 0.415*s3) / (s3 * math.Sqrt(float64(n)))
}
