package stats

import (
	"errors"
	"math"
	"sort"
)

// ChiSquareStat returns the Pearson chi-square statistic for observed
// counts against expected counts. Cells with expected < minExpected are
// pooled into their neighbor to keep the asymptotic distribution valid;
// the returned dof reflects the pooled cell count minus one.
func ChiSquareStat(observed, expected []float64, minExpected float64) (stat float64, dof int, err error) {
	if len(observed) != len(expected) {
		return 0, 0, ErrLengthMismatch
	}
	if len(observed) == 0 {
		return 0, 0, errors.New("stats: chi-square on empty input")
	}
	var chi2, obsAcc, expAcc float64
	cells := 0
	flush := func() {
		if expAcc > 0 {
			d := obsAcc - expAcc
			chi2 += d * d / expAcc
			cells++
			obsAcc, expAcc = 0, 0
		}
	}
	for i := range observed {
		obsAcc += observed[i]
		expAcc += expected[i]
		if expAcc >= minExpected {
			flush()
		}
	}
	flush() // pool the trailing remainder into a final cell
	if cells < 2 {
		return 0, 0, errors.New("stats: chi-square has fewer than 2 usable cells")
	}
	return chi2, cells - 1, nil
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k
// degrees of freedom, via the regularized lower incomplete gamma function.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 || k <= 0 {
		return 0
	}
	return regIncGammaLower(float64(k)/2, x/2)
}

// regIncGammaLower computes P(a, x), the regularized lower incomplete
// gamma function, with the standard series/continued-fraction split
// (Numerical Recipes gser/gcf).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSStatistic returns the two-sided Kolmogorov–Smirnov statistic between
// the empirical CDF of the sample and the provided theoretical CDF.
func KSStatistic(sample []float64, cdf func(float64) float64) (float64, error) {
	n := len(sample)
	if n == 0 {
		return 0, errors.New("stats: KS on empty sample")
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	var d float64
	for i, x := range s {
		f := cdf(x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate critical value of the two-sided
// KS statistic at significance alpha for sample size n, using the
// asymptotic c(alpha)/sqrt(n) form.
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-0.5 * math.Log(alpha/2))
	return c / math.Sqrt(float64(n))
}
