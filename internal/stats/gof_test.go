package stats

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
)

func TestChiSquareStatPerfectFit(t *testing.T) {
	obs := []float64{10, 20, 30}
	stat, dof, err := ChiSquareStat(obs, obs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || dof != 2 {
		t.Fatalf("stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareStatKnown(t *testing.T) {
	obs := []float64{48, 52}
	exp := []float64{50, 50}
	stat, dof, err := ChiSquareStat(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(stat, 0.16, 1e-12) || dof != 1 {
		t.Fatalf("stat=%v dof=%d", stat, dof)
	}
}

func TestChiSquareStatPoolsSmallCells(t *testing.T) {
	obs := []float64{100, 1, 1, 1, 1, 1}
	exp := []float64{100, 1, 1, 1, 1, 1}
	_, dof, err := ChiSquareStat(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The five expected-1 cells pool into one (sum 5), so dof = 2-1 = 1.
	if dof != 1 {
		t.Fatalf("dof=%d want 1 after pooling", dof)
	}
}

func TestChiSquareStatErrors(t *testing.T) {
	if _, _, err := ChiSquareStat([]float64{1}, []float64{1, 2}, 5); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, _, err := ChiSquareStat(nil, nil, 5); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := ChiSquareStat([]float64{5}, []float64{5}, 5); err == nil {
		t.Fatal("single cell accepted")
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		// chi2(1): P(X <= 3.841) ~= 0.95
		{3.841458820694124, 1, 0.95},
		// chi2(2) is Exp(1/2): P(X <= x) = 1-exp(-x/2)
		{2, 2, 1 - math.Exp(-1)},
		// chi2(10): median ~ 9.342
		{9.341818, 10, 0.5},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); !almostEq(got, c.want, 1e-4) {
			t.Fatalf("ChiSquareCDF(%v,%d) = %v want %v", c.x, c.k, got, c.want)
		}
	}
	if ChiSquareCDF(-1, 3) != 0 || ChiSquareCDF(1, 0) != 0 {
		t.Fatal("degenerate CDF not 0")
	}
}

func TestChiSquareCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.1; x < 30; x += 0.5 {
		c := ChiSquareCDF(x, 5)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", x, c)
		}
		prev = c
	}
}

func TestKSStatisticUniform(t *testing.T) {
	// Sample from the RNG, test against U(0,1); must pass at alpha=0.001.
	r := rng.New(42)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d, err := KSStatistic(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCriticalValue(len(sample), 0.001); d > crit {
		t.Fatalf("uniform sample rejected: D=%v crit=%v", d, crit)
	}
}

func TestKSStatisticDetectsMismatch(t *testing.T) {
	// Uniform sample vs N(0,1) CDF must be strongly rejected.
	r := rng.New(43)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	d, err := KSStatistic(sample, func(x float64) float64 { return NormalCDF(x, 0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.2 {
		t.Fatalf("KS failed to detect wrong distribution: D=%v", d)
	}
}

func TestKSEmptySample(t *testing.T) {
	if _, err := KSStatistic(nil, func(float64) float64 { return 0 }); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestNormalSamplesPassKS(t *testing.T) {
	// End-to-end: rng.NormFloat64 against NormalCDF through the KS test.
	r := rng.New(44)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = r.NormFloat64()
	}
	d, err := KSStatistic(sample, func(x float64) float64 { return NormalCDF(x, 0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if crit := KSCriticalValue(len(sample), 0.001); d > crit {
		t.Fatalf("normal sample rejected: D=%v crit=%v", d, crit)
	}
}

func TestKSCriticalValueEdges(t *testing.T) {
	if !math.IsNaN(KSCriticalValue(0, 0.05)) {
		t.Fatal("n=0 accepted")
	}
	if !math.IsNaN(KSCriticalValue(10, 0)) {
		t.Fatal("alpha=0 accepted")
	}
	// Known value: c(0.05) ~= 1.358 => crit at n=100 ~= 0.1358.
	if got := KSCriticalValue(100, 0.05); !almostEq(got, 0.1358, 5e-3) {
		t.Fatalf("crit = %v", got)
	}
}
