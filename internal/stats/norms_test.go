package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSEBasic(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("identical MSE = %v, %v", got, err)
	}
	got, err = MSE([]float64{0, 0}, []float64{1, -1})
	if err != nil || got != 1 {
		t.Fatalf("MSE = %v want 1 (err %v)", got, err)
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{0, 0}, []float64{3, -1})
	if err != nil || got != 2 {
		t.Fatalf("MAE = %v (err %v)", got, err)
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if L1(x) != 7 {
		t.Fatalf("L1 = %v", L1(x))
	}
	if L2(x) != 5 {
		t.Fatalf("L2 = %v", L2(x))
	}
	if LInf(x) != 4 {
		t.Fatalf("LInf = %v", LInf(x))
	}
}

func TestDot(t *testing.T) {
	got, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || got != 32 {
		t.Fatalf("dot = %v (err %v)", got, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	got, err := TotalVariation(a, b)
	if err != nil || got != 0.5 {
		t.Fatalf("TV = %v (err %v)", got, err)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite vector rejected")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN accepted")
	}
	if AllFinite([]float64{math.Inf(-1)}) {
		t.Fatal("Inf accepted")
	}
	if !AllFinite(nil) {
		t.Fatal("empty vector rejected")
	}
}

func TestMSESymmetricProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		if !AllFinite(a) || !AllFinite(b) {
			return true
		}
		for i := range a {
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		m1, err1 := MSE(a, b)
		m2, err2 := MSE(b, a)
		return err1 == nil && err2 == nil && m1 == m2 && m1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestL2TriangleProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		if !AllFinite(a) || !AllFinite(b) {
			return true
		}
		for i := range a {
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		sum := make([]float64, n)
		for i := range a {
			sum[i] = a[i] + b[i]
		}
		return L2(sum) <= L2(a)+L2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
