package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := New("orig", []int64{10, 0, 5, 7})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("back", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Domain() != ds.Domain() || back.N() != ds.N() {
		t.Fatalf("round trip changed shape: %d/%d", back.Domain(), back.N())
	}
	for v := range ds.Counts {
		if back.Counts[v] != ds.Counts[v] {
			t.Fatalf("count[%d] = %d want %d", v, back.Counts[v], ds.Counts[v])
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "0,5\n1,10\n2,1\n"
	ds, err := ReadCSV("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 16 {
		t.Fatalf("n = %d", ds.N())
	}
}

func TestReadCSVOutOfOrder(t *testing.T) {
	in := "2,1\n0,5\n1,10\n"
	ds, err := ReadCSV("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Counts[0] != 5 || ds.Counts[1] != 10 || ds.Counts[2] != 1 {
		t.Fatalf("counts %v", ds.Counts)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"header only", "item,count\n"},
		{"duplicate", "0,1\n0,2\n"},
		{"gap", "0,1\n5,2\n"},
		{"bad count", "0,xyz\n"},
		{"negative count", "0,-3\n1,5\n"},
		{"wrong fields", "0,1,2\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: accepted %q", c.name, c.in)
		}
	}
}

func TestSaveLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.csv")
	ds, _ := Zipf("z", 20, 5000, 1.0)
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Domain() != ds.Domain() {
		t.Fatal("file round trip changed dataset")
	}
}

func TestLoadCSVMissing(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func FuzzReadCSV(f *testing.F) {
	f.Add("item,count\n0,5\n1,10\n")
	f.Add("0,5\n1,10\n2,1\n")
	f.Add("")
	f.Add("0,-1\n")
	f.Add("x,y\nz,w\n")
	f.Fuzz(func(t *testing.T, data string) {
		ds, err := ReadCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and invalid datasets are not
		}
		if ds.Domain() == 0 || ds.N() <= 0 {
			t.Fatalf("accepted invalid dataset: d=%d n=%d", ds.Domain(), ds.N())
		}
		for v, c := range ds.Counts {
			if c < 0 {
				t.Fatalf("accepted negative count at %d", v)
			}
		}
	})
}
