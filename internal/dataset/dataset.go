// Package dataset provides the item-frequency datasets used by the
// reproduction: the Dataset type, deterministic synthetic generators
// (including the IPUMS and Fire surrogates described in DESIGN.md §3),
// CSV persistence, and historical-series generation for the outlier-based
// target-identification substrate.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ldprecover/internal/stats"
)

// Dataset is an item-frequency dataset: Counts[v] users hold item v from a
// domain of size len(Counts). Datasets are immutable by convention; treat
// the slices returned by accessors as read-only.
type Dataset struct {
	// Name identifies the dataset in reports (e.g. "ipums-synth").
	Name string
	// Counts holds the number of users per item; Counts[v] >= 0.
	Counts []int64
}

// ErrEmptyDomain is returned when constructing a dataset with no items.
var ErrEmptyDomain = errors.New("dataset: empty domain")

// New validates counts and wraps them in a Dataset.
func New(name string, counts []int64) (*Dataset, error) {
	if len(counts) == 0 {
		return nil, ErrEmptyDomain
	}
	var n int64
	for v, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("dataset: negative count %d for item %d", c, v)
		}
		n += c
	}
	if n == 0 {
		return nil, errors.New("dataset: no users")
	}
	return &Dataset{Name: name, Counts: counts}, nil
}

// Domain returns the number of distinct items d.
func (d *Dataset) Domain() int { return len(d.Counts) }

// N returns the total number of users.
func (d *Dataset) N() int64 {
	var n int64
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// Frequencies returns the true frequency vector f_X (sums to 1).
func (d *Dataset) Frequencies() []float64 {
	n := float64(d.N())
	fs := make([]float64, len(d.Counts))
	for v, c := range d.Counts {
		fs[v] = float64(c) / n
	}
	return fs
}

// TopK returns the indices of the k most frequent items, most frequent
// first (ties broken by item id for determinism).
func (d *Dataset) TopK(k int) []int {
	idx := make([]int, len(d.Counts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if d.Counts[ia] != d.Counts[ib] {
			return d.Counts[ia] > d.Counts[ib]
		}
		return ia < ib
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Entropy returns the Shannon entropy (nats) of the frequency vector, a
// convenient skew summary for reports.
func (d *Dataset) Entropy() float64 {
	var h float64
	for _, f := range d.Frequencies() {
		if f > 0 {
			h -= f * math.Log(f)
		}
	}
	return h
}

// Scaled returns a copy with user counts scaled by factor (0 < factor),
// preserving the frequency shape via largest-remainder rounding. It is the
// hook the benchmark harness uses to shrink paper-scale workloads.
func (d *Dataset) Scaled(factor float64) (*Dataset, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("dataset: invalid scale factor %v", factor)
	}
	if factor == 1 {
		cp := append([]int64(nil), d.Counts...)
		return New(d.Name, cp)
	}
	target := int64(math.Round(float64(d.N()) * factor))
	if target < 1 {
		target = 1
	}
	return FromFrequencies(d.Name, d.Frequencies(), target)
}

// FromFrequencies builds a dataset of n users whose counts follow freqs as
// closely as integer counts allow (largest-remainder apportionment; the
// counts always sum to exactly n).
func FromFrequencies(name string, freqs []float64, n int64) (*Dataset, error) {
	if len(freqs) == 0 {
		return nil, ErrEmptyDomain
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: invalid user count %d", n)
	}
	if !stats.AllFinite(freqs) {
		return nil, errors.New("dataset: non-finite frequencies")
	}
	var total float64
	for v, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("dataset: negative frequency %g at item %d", f, v)
		}
		total += f
	}
	if total <= 0 {
		return nil, errors.New("dataset: zero-mass frequencies")
	}

	type rem struct {
		v    int
		frac float64
	}
	counts := make([]int64, len(freqs))
	rems := make([]rem, len(freqs))
	var assigned int64
	for v, f := range freqs {
		exact := f / total * float64(n)
		c := int64(math.Floor(exact))
		counts[v] = c
		assigned += c
		rems[v] = rem{v, exact - float64(c)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].v < rems[b].v
	})
	for i := int64(0); i < n-assigned; i++ {
		counts[rems[i%int64(len(rems))].v]++
	}
	return New(name, counts)
}
