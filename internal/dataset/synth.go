package dataset

import (
	"fmt"
	"math"

	"ldprecover/internal/rng"
)

// Zipf builds a deterministic Zipf(s)-shaped dataset with domain d and n
// users. Counts are exact largest-remainder apportionments of the pmf, so
// the same parameters always yield the same dataset.
func Zipf(name string, d int, n int64, s float64) (*Dataset, error) {
	pmf, err := rng.ZipfPMF(d, s)
	if err != nil {
		return nil, err
	}
	return FromFrequencies(name, pmf, n)
}

// Uniform builds a dataset where every item has (nearly) equal counts.
func Uniform(name string, d int, n int64) (*Dataset, error) {
	return Zipf(name, d, n, 0)
}

// Geometric builds a dataset whose frequencies decay geometrically with
// ratio rho in (0,1): f_k ∝ rho^k. Useful for very skewed workloads.
func Geometric(name string, d int, n int64, rho float64) (*Dataset, error) {
	if rho <= 0 || rho >= 1 || math.IsNaN(rho) {
		return nil, fmt.Errorf("dataset: geometric ratio %v outside (0,1)", rho)
	}
	freqs := make([]float64, d)
	w := 1.0
	for k := range freqs {
		freqs[k] = w
		w *= rho
	}
	return FromFrequencies(name, freqs, n)
}

// Paper-scale constants (§VI-A.1).
const (
	// IPUMSDomain and IPUMSUsers match the paper's IPUMS 2017 "city"
	// attribute: 102 items across 389,894 users.
	IPUMSDomain = 102
	IPUMSUsers  = 389894
	// FireDomain and FireUsers match the paper's SF Fire "unit ID" under
	// the Alarms call type: 490 items across 667,574 users.
	FireDomain = 490
	FireUsers  = 667574
)

// SyntheticIPUMS returns the IPUMS surrogate: identical domain size and
// user count, Zipf(1.05) shape standing in for the heavy-tailed city
// distribution (see DESIGN.md §3 for the substitution rationale).
func SyntheticIPUMS() *Dataset {
	ds, err := Zipf("ipums-synth", IPUMSDomain, IPUMSUsers, 1.05)
	if err != nil {
		panic("dataset: SyntheticIPUMS construction failed: " + err.Error())
	}
	return ds
}

// SyntheticFire returns the Fire surrogate: identical domain size and user
// count, Zipf(0.85) shape (milder skew, longer tail of rare unit IDs).
func SyntheticFire() *Dataset {
	ds, err := Zipf("fire-synth", FireDomain, FireUsers, 0.85)
	if err != nil {
		panic("dataset: SyntheticFire construction failed: " + err.Error())
	}
	return ds
}

// GenerateHistory produces periods of historical genuine frequency
// estimates for the outlier-detection substrate: each period resamples the
// dataset's users (multinomial) and adds mild multiplicative drift, which
// is what a server would have collected in past, unattacked rounds.
func GenerateHistory(d *Dataset, periods int, drift float64, r *rng.Rand) ([][]float64, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("dataset: invalid history periods %d", periods)
	}
	if drift < 0 || drift >= 1 || math.IsNaN(drift) {
		return nil, fmt.Errorf("dataset: drift %v outside [0,1)", drift)
	}
	base := d.Frequencies()
	n := d.N()
	out := make([][]float64, periods)
	for t := range out {
		weights := make([]float64, len(base))
		for v, f := range base {
			// Multiplicative drift keeps frequencies positive and the
			// relative perturbation bounded by drift.
			weights[v] = f * (1 + drift*(2*r.Float64()-1))
		}
		counts := r.Multinomial(n, weights)
		fs := make([]float64, len(counts))
		for v, c := range counts {
			fs[v] = float64(c) / float64(n)
		}
		out[t] = fs
	}
	return out, nil
}
