package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := New("x", []int64{1, -2}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := New("x", []int64{0, 0}); err == nil {
		t.Fatal("zero users accepted")
	}
	ds, err := New("x", []int64{3, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Domain() != 3 || ds.N() != 10 {
		t.Fatalf("domain %d n %d", ds.Domain(), ds.N())
	}
}

func TestFrequenciesSumToOne(t *testing.T) {
	ds, _ := New("x", []int64{1, 2, 3, 4})
	fs := ds.Frequencies()
	if s := stats.Sum(fs); math.Abs(s-1) > 1e-12 {
		t.Fatalf("frequencies sum %v", s)
	}
	if fs[3] != 0.4 {
		t.Fatalf("f[3]=%v", fs[3])
	}
}

func TestTopK(t *testing.T) {
	ds, _ := New("x", []int64{5, 9, 1, 9, 3})
	top := ds.TopK(3)
	// Ties (items 1 and 3 both have 9) break by id.
	want := []int{1, 3, 0}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v want %v", top, want)
		}
	}
	if got := ds.TopK(100); len(got) != 5 {
		t.Fatalf("TopK(100) length %d", len(got))
	}
}

func TestEntropyUniformIsLogD(t *testing.T) {
	ds, _ := Uniform("u", 64, 64000)
	if h := ds.Entropy(); math.Abs(h-math.Log(64)) > 1e-6 {
		t.Fatalf("uniform entropy %v want %v", h, math.Log(64))
	}
}

func TestFromFrequenciesExactTotal(t *testing.T) {
	freqs := []float64{0.15, 0.25, 0.6}
	ds, err := FromFrequencies("x", freqs, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 1001 {
		t.Fatalf("n = %d", ds.N())
	}
	got := ds.Frequencies()
	for i := range freqs {
		if math.Abs(got[i]-freqs[i]) > 1e-3 {
			t.Fatalf("freq[%d]=%v want %v", i, got[i], freqs[i])
		}
	}
}

func TestFromFrequenciesValidation(t *testing.T) {
	if _, err := FromFrequencies("x", nil, 10); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FromFrequencies("x", []float64{0.5}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := FromFrequencies("x", []float64{-0.1, 1.1}, 10); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if _, err := FromFrequencies("x", []float64{math.NaN()}, 10); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := FromFrequencies("x", []float64{0, 0}, 10); err == nil {
		t.Fatal("zero mass accepted")
	}
}

func TestFromFrequenciesCountConservationProperty(t *testing.T) {
	f := func(seed uint64, dRaw uint8, nRaw uint32) bool {
		r := rng.New(seed)
		d := int(dRaw%50) + 1
		n := int64(nRaw%1000000) + 1
		freqs := make([]float64, d)
		for i := range freqs {
			freqs[i] = r.Float64()
		}
		freqs[r.Intn(d)] = 1 // ensure positive mass
		ds, err := FromFrequencies("p", freqs, n)
		if err != nil {
			return false
		}
		return ds.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScaled(t *testing.T) {
	ds := SyntheticIPUMS()
	small, err := ds.Scaled(0.01)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int64(math.Round(float64(ds.N()) * 0.01))
	if small.N() != wantN {
		t.Fatalf("scaled N = %d want %d", small.N(), wantN)
	}
	if small.Domain() != ds.Domain() {
		t.Fatalf("scaled domain changed: %d", small.Domain())
	}
	// Shape preserved approximately.
	a, b := ds.Frequencies(), small.Frequencies()
	for v := range a {
		if math.Abs(a[v]-b[v]) > 5e-4 {
			t.Fatalf("scaled freq drifted at %d: %v vs %v", v, a[v], b[v])
		}
	}
	if _, err := ds.Scaled(0); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := ds.Scaled(math.Inf(1)); err == nil {
		t.Fatal("scale Inf accepted")
	}
}

func TestScaledIdentityCopies(t *testing.T) {
	ds, _ := New("x", []int64{1, 2, 3})
	cp, err := ds.Scaled(1)
	if err != nil {
		t.Fatal(err)
	}
	cp.Counts[0] = 99
	if ds.Counts[0] != 1 {
		t.Fatal("Scaled(1) aliases the original counts")
	}
}

func TestZipfShape(t *testing.T) {
	ds, err := Zipf("z", 100, 100000, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	fs := ds.Frequencies()
	for v := 1; v < len(fs); v++ {
		if fs[v] > fs[v-1]+1e-9 {
			t.Fatalf("zipf frequencies increase at %d", v)
		}
	}
	if ds.N() != 100000 {
		t.Fatalf("n = %d", ds.N())
	}
}

func TestGeometric(t *testing.T) {
	ds, err := Geometric("g", 20, 10000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fs := ds.Frequencies()
	if fs[0] < 0.45 || fs[0] > 0.55 {
		t.Fatalf("geometric head %v", fs[0])
	}
	if _, err := Geometric("g", 20, 10000, 1.5); err == nil {
		t.Fatal("rho > 1 accepted")
	}
	if _, err := Geometric("g", 20, 10000, 0); err == nil {
		t.Fatal("rho = 0 accepted")
	}
}

func TestSyntheticCorporaMatchPaperScale(t *testing.T) {
	ip := SyntheticIPUMS()
	if ip.Domain() != IPUMSDomain || ip.N() != IPUMSUsers {
		t.Fatalf("ipums surrogate %d items %d users", ip.Domain(), ip.N())
	}
	fire := SyntheticFire()
	if fire.Domain() != FireDomain || fire.N() != FireUsers {
		t.Fatalf("fire surrogate %d items %d users", fire.Domain(), fire.N())
	}
	// Deterministic: constructing twice yields identical counts.
	ip2 := SyntheticIPUMS()
	for v := range ip.Counts {
		if ip.Counts[v] != ip2.Counts[v] {
			t.Fatal("surrogate not deterministic")
		}
	}
}

func TestGenerateHistory(t *testing.T) {
	ds, _ := Zipf("z", 50, 50000, 1.0)
	r := rng.New(9)
	hist, err := GenerateHistory(ds, 12, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 12 {
		t.Fatalf("periods %d", len(hist))
	}
	base := ds.Frequencies()
	for _, fs := range hist {
		if s := stats.Sum(fs); math.Abs(s-1) > 1e-9 {
			t.Fatalf("history period sums to %v", s)
		}
		// Stays near the base distribution.
		mse, err := stats.MSE(fs, base)
		if err != nil {
			t.Fatal(err)
		}
		if mse > 1e-4 {
			t.Fatalf("history period drifted too far: MSE %v", mse)
		}
	}
}

func TestGenerateHistoryValidation(t *testing.T) {
	ds, _ := Zipf("z", 10, 1000, 1.0)
	r := rng.New(1)
	if _, err := GenerateHistory(ds, 0, 0.1, r); err == nil {
		t.Fatal("periods=0 accepted")
	}
	if _, err := GenerateHistory(ds, 5, -0.1, r); err == nil {
		t.Fatal("negative drift accepted")
	}
	if _, err := GenerateHistory(ds, 5, 1.0, r); err == nil {
		t.Fatal("drift=1 accepted")
	}
}
