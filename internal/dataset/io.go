package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as "item,count" rows with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"item", "count"}); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	for v, c := range d.Counts {
		rec := []string{strconv.Itoa(v), strconv.FormatInt(c, 10)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", v, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flush csv: %w", err)
	}
	return bw.Flush()
}

// SaveCSV writes the dataset to a file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create %s: %w", path, err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses "item,count" rows (header optional). Items must form the
// contiguous range 0..d-1 in any order; duplicates are rejected.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: parse csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, ErrEmptyDomain
	}
	// Skip a header row if the first field is not numeric.
	if _, err := strconv.Atoi(rows[0][0]); err != nil {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, ErrEmptyDomain
	}
	counts := make([]int64, len(rows))
	seen := make([]bool, len(rows))
	for i, rec := range rows {
		item, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad item %q: %w", i, rec[0], err)
		}
		if item < 0 || item >= len(rows) {
			return nil, fmt.Errorf("dataset: row %d: item %d outside [0,%d)", i, item, len(rows))
		}
		if seen[item] {
			return nil, fmt.Errorf("dataset: duplicate item %d", item)
		}
		seen[item] = true
		c, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad count %q: %w", i, rec[1], err)
		}
		counts[item] = c
	}
	return New(name, counts)
}

// LoadCSV reads a dataset from a file, naming it after the path.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadCSV(path, f)
}
