package harmony

import (
	"math"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	if _, err := New(math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestDiscretizeUnbiased(t *testing.T) {
	h, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for _, x := range []float64{-1, -0.5, 0, 0.3, 1} {
		const trials = 60000
		sum := 0.0
		for i := 0; i < trials; i++ {
			b, err := h.Discretize(r, x)
			if err != nil {
				t.Fatal(err)
			}
			if b == Pos {
				sum++
			} else {
				sum--
			}
		}
		got := sum / trials
		if math.Abs(got-x) > 0.02 {
			t.Fatalf("discretized mean of %v is %v", x, got)
		}
	}
}

func TestDiscretizeValidation(t *testing.T) {
	h, _ := New(1)
	r := rng.New(1)
	if _, err := h.Discretize(r, 1.5); err == nil {
		t.Fatal("x > 1 accepted")
	}
	if _, err := h.Discretize(r, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := h.Discretize(nil, 0); err == nil {
		t.Fatal("nil rng accepted")
	}
}

// TestMeanEstimationUnbiased runs the full Harmony pipeline and checks
// the estimated mean converges to the population mean.
func TestMeanEstimationUnbiased(t *testing.T) {
	h, _ := New(0.8)
	r := rng.New(2)
	// Population with known mean 0.24.
	values := make([]float64, 30000)
	for i := range values {
		values[i] = 0.24 + 0.5*(r.Float64()-0.5)
		if values[i] > 1 {
			values[i] = 1
		}
		if values[i] < -1 {
			values[i] = -1
		}
	}
	var trueMean float64
	for _, x := range values {
		trueMean += x
	}
	trueMean /= float64(len(values))

	reports := make([]ldp.Report, len(values))
	for i, x := range values {
		rep, err := h.Perturb(r, x)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	freqs, err := ldp.EstimateFrequencies(reports, h.Params())
	if err != nil {
		t.Fatal(err)
	}
	mean, err := EstimateMean(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-trueMean) > 0.05 {
		t.Fatalf("estimated mean %v want %v", mean, trueMean)
	}
}

func TestSimulateCountsMatchesReports(t *testing.T) {
	h, _ := New(0.8)
	r := rng.New(3)
	values := make([]float64, 5000)
	for i := range values {
		values[i] = 2*r.Float64() - 1
	}
	const trials = 60
	var fastPos, exactPos float64
	for trial := 0; trial < trials; trial++ {
		counts, err := h.SimulateCounts(r, values)
		if err != nil {
			t.Fatal(err)
		}
		if counts[Neg]+counts[Pos] != int64(len(values)) {
			t.Fatal("counts do not sum to n")
		}
		fastPos += float64(counts[Pos])
		var pos int64
		for _, x := range values {
			rep, err := h.Perturb(r, x)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Supports(Pos) {
				pos++
			}
		}
		exactPos += float64(pos)
	}
	fast := fastPos / trials
	exact := exactPos / trials
	if math.Abs(fast-exact) > 0.03*float64(len(values)) {
		t.Fatalf("fast %v exact %v", fast, exact)
	}
}

func TestSimulateCountsValidation(t *testing.T) {
	h, _ := New(1)
	r := rng.New(1)
	if _, err := h.SimulateCounts(nil, []float64{0}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := h.SimulateCounts(r, nil); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := h.SimulateCounts(r, []float64{2}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}

func TestEstimateMeanValidation(t *testing.T) {
	if _, err := EstimateMean([]float64{1}); err == nil {
		t.Fatal("wrong length accepted")
	}
	m, err := EstimateMean([]float64{0.3, 0.7})
	if err != nil || math.Abs(m-0.4) > 1e-12 {
		t.Fatalf("mean %v (err %v)", m, err)
	}
}

// TestRecoverMeanUnderAttack poisons Harmony with malicious users all
// reporting the Pos category and verifies partial-knowledge recovery
// pulls the mean back toward the truth. At d=2 the non-knowledge variant
// is a documented no-op (both categories stay positive, so the uniform
// deduction cancels in the projection), and Eq. 28's q·d allocation
// overcorrects slightly — the test pins both behaviors.
func TestRecoverMeanUnderAttack(t *testing.T) {
	h, _ := New(0.5)
	r := rng.New(4)
	const n, m = int64(50000), int64(2500)
	etaTrue := float64(m) / float64(n)
	trueMean := -0.6
	values := make([]float64, n)
	for i := range values {
		values[i] = trueMean // point mass keeps the truth exact
	}
	genCounts, err := h.SimulateCounts(r, values)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker: m crafted reports for the Pos category (inflates mean).
	combined := []int64{genCounts[Neg], genCounts[Pos] + m}
	poisoned, err := ldp.Unbias(combined, n+m, h.Params())
	if err != nil {
		t.Fatal(err)
	}
	// The attack must have moved the mean upward.
	pm, err := EstimateMean(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if pm <= trueMean+0.1 {
		t.Fatalf("attack ineffective: poisoned mean %v", pm)
	}

	// Non-knowledge recovery cannot single out a category at d=2: the
	// recovered mean stays close to the poisoned one.
	res, err := RecoverMean(poisoned, 0.5, etaTrue, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-res.PoisonedMean) > 0.05 {
		t.Fatalf("non-knowledge recovery moved the mean unexpectedly: %v vs %v",
			res.Mean, res.PoisonedMean)
	}

	// Partial knowledge of the promoted category recovers most of the
	// attack-induced shift.
	resStar, err := RecoverMean(poisoned, 0.5, etaTrue, []int{Pos})
	if err != nil {
		t.Fatal(err)
	}
	errPoisoned := math.Abs(pm - trueMean)
	errStar := math.Abs(resStar.Mean - trueMean)
	if errStar >= errPoisoned {
		t.Fatalf("partial-knowledge recovery did not improve: poisoned err %v recovered err %v",
			errPoisoned, errStar)
	}
	// Direction: the recovered mean moves back down toward the truth.
	if resStar.Mean >= pm {
		t.Fatalf("recovered mean %v did not move toward truth from %v", resStar.Mean, pm)
	}
}

func TestRecoverMeanValidation(t *testing.T) {
	if _, err := RecoverMean([]float64{0.5, 0.5}, 0, 0.1, nil); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	if _, err := RecoverMean([]float64{0.5}, 0.5, 0.1, nil); err == nil {
		t.Fatal("wrong length accepted")
	}
}
