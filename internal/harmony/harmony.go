// Package harmony implements the paper's §VII-A extension: applying
// LDPRecover to mean estimation via the Harmony protocol (Nguyên et al.,
// 2016).
//
// Harmony discretizes a numeric value x ∈ [-1, 1] into a binary category
// (+1 with probability (1+x)/2, else -1), perturbs the category with
// binary randomized response, and estimates the mean from the two
// aggregated category frequencies. Because it follows the frequency
// estimation paradigm — the domain is {-1, +1}, i.e. GRR with d=2 —
// LDPRecover applies unchanged: recover the two frequencies, then read
// the mean off the recovered simplex point.
//
// One caveat is specific to the two-category domain: non-knowledge
// recovery is a near no-op (both categories are usually positive, so the
// uniform malicious allocation cancels inside the simplex projection).
// Partial knowledge of the promoted category is what restores the mean;
// RecoverMean allocates the malicious frequencies exactly for that case,
// and η should be close to the true malicious ratio rather than the
// generous default used for large domains (overestimating η overcorrects
// the mean with nothing left to clip).
package harmony

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// Domain indices for the two categories.
const (
	// Neg is the index of the -1 category.
	Neg = 0
	// Pos is the index of the +1 category.
	Pos = 1
)

// Mean is a Harmony mean-estimation protocol instance.
type Mean struct {
	grr *ldp.GRR
}

// New constructs Harmony with privacy budget epsilon.
func New(epsilon float64) (*Mean, error) {
	grr, err := ldp.NewGRR(2, epsilon)
	if err != nil {
		return nil, err
	}
	return &Mean{grr: grr}, nil
}

// Params returns the underlying binary-GRR aggregation parameters.
func (h *Mean) Params() ldp.Params { return h.grr.Params() }

// Discretize maps x in [-1, 1] to a category index: Pos with probability
// (1+x)/2, Neg otherwise (the unbiased Harmony discretization).
func (h *Mean) Discretize(r *rng.Rand, x float64) (int, error) {
	if r == nil {
		return 0, errors.New("harmony: nil random generator")
	}
	if math.IsNaN(x) || x < -1 || x > 1 {
		return 0, fmt.Errorf("harmony: value %v outside [-1,1]", x)
	}
	if r.Bernoulli((1 + x) / 2) {
		return Pos, nil
	}
	return Neg, nil
}

// Perturb discretizes and perturbs one user's value into a report.
func (h *Mean) Perturb(r *rng.Rand, x float64) (ldp.Report, error) {
	b, err := h.Discretize(r, x)
	if err != nil {
		return nil, err
	}
	return h.grr.Perturb(r, b)
}

// SimulateCounts samples the category support counts for a whole
// population of values without materializing reports. The count of Pos
// reports is a single binomial: each user reports Pos with probability
// q + (p-q)·(1+x_i)/2, which depends on the population only through its
// mean, so Binomial(n, q + (p-q)·(1+mean)/2) is exact.
func (h *Mean) SimulateCounts(r *rng.Rand, values []float64) ([]int64, error) {
	if r == nil {
		return nil, errors.New("harmony: nil random generator")
	}
	if len(values) == 0 {
		return nil, errors.New("harmony: no values")
	}
	var sum float64
	for i, x := range values {
		if math.IsNaN(x) || x < -1 || x > 1 {
			return nil, fmt.Errorf("harmony: value %v at index %d outside [-1,1]", x, i)
		}
		sum += x
	}
	mean := sum / float64(len(values))
	pr := h.grr.Params()
	pPos := pr.Q + (pr.P-pr.Q)*(1+mean)/2
	n := int64(len(values))
	pos := r.Binomial(n, pPos)
	return []int64{n - pos, pos}, nil
}

// EstimateMean converts the two category frequencies into a mean
// estimate: mean = f(+1) - f(-1).
func EstimateMean(freqs []float64) (float64, error) {
	if len(freqs) != 2 {
		return 0, fmt.Errorf("harmony: want 2 category frequencies, got %d", len(freqs))
	}
	return freqs[Pos] - freqs[Neg], nil
}

// RecoverResult carries mean recovery outputs.
type RecoverResult struct {
	// Mean is the recovered mean in [-1, 1].
	Mean float64
	// Frequencies is the recovered category simplex point.
	Frequencies []float64
	// PoisonedMean is the mean read from the poisoned frequencies.
	PoisonedMean float64
}

// RecoverMean runs LDPRecover on poisoned Harmony category frequencies
// and returns the recovered mean. targets may name the category an
// attacker promotes (Pos or Neg) for partial-knowledge recovery.
//
// With targets given, the malicious frequencies are allocated exactly
// rather than by Eq. 28's q·d heuristic: a crafted report for category t
// contributes f̃_Y(t) = (1-q)/(p-q) and f̃_Y(other) = -q/(p-q), which is
// derivable in closed form at d=2. This is the paper's "integrate attack
// details as new constraints" paradigm (§I, §V-D) and avoids the
// overcorrection the generic allocation exhibits at tiny domains.
func RecoverMean(poisoned []float64, epsilon, eta float64, targets []int) (*RecoverResult, error) {
	h, err := New(epsilon)
	if err != nil {
		return nil, err
	}
	pr := h.Params()
	opts := core.Options{Eta: eta}
	if len(targets) > 0 {
		override := make([]float64, 2)
		nTargets := 0
		for _, t := range targets {
			if t != Neg && t != Pos {
				return nil, fmt.Errorf("harmony: target %d is not a category index", t)
			}
			override[t] = 1
			nTargets++
		}
		scale := 1 / (pr.P - pr.Q)
		for v := range override {
			// Exact single-support allocation: p(t)=1/|T| across promoted
			// categories, then Φ per Eq. 17.
			override[v] = (override[v]/float64(nTargets) - pr.Q) * scale
		}
		opts.MaliciousOverride = override
	}
	res, err := core.Recover(poisoned, core.Params{P: pr.P, Q: pr.Q, Domain: 2}, opts)
	if err != nil {
		return nil, err
	}
	mean, err := EstimateMean(res.Frequencies)
	if err != nil {
		return nil, err
	}
	pm, err := EstimateMean(poisoned)
	if err != nil {
		return nil, err
	}
	return &RecoverResult{Mean: mean, Frequencies: res.Frequencies, PoisonedMean: pm}, nil
}
