package ldp

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"ldprecover/internal/rng"
)

// fallbackReport exercises addBatch's generic path: a report type the
// fast paths do not know.
type fallbackReport struct{ v int }

func (f fallbackReport) Supports(v int) bool { return v == f.v }
func (f fallbackReport) AddSupports(counts []int64) {
	if f.v >= 0 && f.v < len(counts) {
		counts[f.v]++
	}
}

// mixedReports builds a deterministic grab-bag of every report shape:
// dense unary (value and pointer boxed), sparse unary, OLH, GRR, and the
// fallback type, interleaved so addBatch sees many run boundaries.
func mixedReports(t *testing.T, d int) []Report {
	t.Helper()
	r := rng.New(314)
	oue, err := NewOUE(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oueSparse, err := NewOUE(d, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLH(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	grr, err := NewGRR(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	for i := 0; i < 700; i++ {
		v := r.Intn(d)
		switch i % 7 {
		case 0, 1:
			rep, err := oue.Perturb(r, v)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				o := rep.(OUEReport)
				reps = append(reps, &o)
			} else {
				reps = append(reps, rep)
			}
		case 2:
			rep, err := oueSparse.Perturb(r, v)
			if err != nil {
				t.Fatal(err)
			}
			sp := rep.(SparseUnaryReport)
			if i%2 == 0 {
				reps = append(reps, &sp)
			} else {
				reps = append(reps, sp)
			}
		case 3, 4:
			rep, err := olh.Perturb(r, v)
			if err != nil {
				t.Fatal(err)
			}
			ol := rep.(OLHReport)
			if i%2 == 0 {
				reps = append(reps, &ol)
			} else {
				reps = append(reps, ol)
			}
		case 5:
			rep, err := grr.Perturb(r, v)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		default:
			reps = append(reps, fallbackReport{v: v})
		}
	}
	return reps
}

// TestAddBatchMatchesSequentialExact: the batched fast paths must be
// bit-identical to folding the same reports one at a time.
func TestAddBatchMatchesSequentialExact(t *testing.T) {
	for _, d := range []int{64, 100, 130, 200} {
		reps := mixedReports(t, d)

		seq, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reps {
			if err := seq.Add(rep); err != nil {
				t.Fatal(err)
			}
		}

		bat, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := bat.AddBatch(reps); err != nil {
			t.Fatal(err)
		}

		if seq.Total() != bat.Total() {
			t.Fatalf("d=%d: totals %d vs %d", d, seq.Total(), bat.Total())
		}
		sc, bc := seq.Counts(), bat.Counts()
		for v := range sc {
			if sc[v] != bc[v] {
				t.Fatalf("d=%d item %d: sequential %d batched %d", d, v, sc[v], bc[v])
			}
		}

		// Same through the sharded engine.
		sa, err := NewShardedAccumulator(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := sa.AddBatch(reps); err != nil {
			t.Fatal(err)
		}
		shc := sa.Counts()
		for v := range sc {
			if sc[v] != shc[v] {
				t.Fatalf("d=%d item %d: sequential %d sharded-batched %d", d, v, sc[v], shc[v])
			}
		}
	}
}

// TestAddBatchPlaneFlushBoundary pushes a long homogeneous dense run
// (several multiples of the 255-report counter capacity, plus a
// remainder) through the bit-plane path.
func TestAddBatchPlaneFlushBoundary(t *testing.T) {
	const d = 193 // tail word with 1 live bit
	oue, err := NewOUE(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(88)
	reps := make([]Report, 255*3+17)
	for i := range reps {
		rep, err := oue.Perturb(r, i%d)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	seq, _ := NewAccumulator(d)
	for _, rep := range reps {
		_ = seq.Add(rep)
	}
	bat, _ := NewAccumulator(d)
	if err := bat.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	sc, bc := seq.Counts(), bat.Counts()
	for v := range sc {
		if sc[v] != bc[v] {
			t.Fatalf("item %d: sequential %d batched %d", v, sc[v], bc[v])
		}
	}
}

// TestAddBatchOverlongReports: reports wider than the accumulator's
// domain must drop out-of-domain bits exactly like AddSupports does.
func TestAddBatchOverlongReports(t *testing.T) {
	const repBits = 192
	const d = 100
	oue, err := NewOUE(repBits, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(19)
	reps := make([]Report, 300)
	for i := range reps {
		rep, err := oue.Perturb(r, i%repBits)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	// A sparse over-long report too.
	reps = append(reps, SparseUnaryReport{N: repBits, Items: []int32{5, 99, 100, 191}})

	seq, _ := NewAccumulator(d)
	for _, rep := range reps {
		_ = seq.Add(rep)
	}
	bat, _ := NewAccumulator(d)
	if err := bat.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	sc, bc := seq.Counts(), bat.Counts()
	for v := range sc {
		if sc[v] != bc[v] {
			t.Fatalf("item %d: sequential %d batched %d", v, sc[v], bc[v])
		}
	}
}

// TestAddBatchDegenerateOLHReports: hand-built OLH reports with
// out-of-range value/g must aggregate bit-identically to the
// one-at-a-time path (the branchless fast loop assumes value ∈ [0, g)
// and must not be fed them).
func TestAddBatchDegenerateOLHReports(t *testing.T) {
	const d = 64
	olh, err := NewOLH(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	var reps []Report
	for i := 0; i < 40; i++ {
		rep, err := olh.Perturb(r, i%d)
		if err != nil {
			t.Fatal(err)
		}
		ol := rep.(OLHReport)
		switch i % 4 {
		case 0:
			ol.Value = -1 // negative: must support nothing
		case 1:
			ol.Value = ol.G + 3 // beyond g: must support nothing
		case 2:
			ol.G = 0 // degenerate range
		}
		reps = append(reps, ol)
	}
	seq, _ := NewAccumulator(d)
	for _, rep := range reps {
		_ = seq.Add(rep)
	}
	bat, _ := NewAccumulator(d)
	if err := bat.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	if seq.Total() != bat.Total() {
		t.Fatalf("totals %d vs %d", seq.Total(), bat.Total())
	}
	sc, bc := seq.Counts(), bat.Counts()
	for v := range sc {
		if sc[v] != bc[v] {
			t.Fatalf("item %d: sequential %d batched %d", v, sc[v], bc[v])
		}
	}
}

// TestSparseMarshalRoundTripCap: the encoder enforces the decoder's
// size cap, so everything written can be read back.
func TestSparseMarshalRoundTripCap(t *testing.T) {
	if _, err := MarshalReport(SparseUnaryReport{N: 1<<26 + 1, Items: []int32{0}}); err == nil {
		t.Fatal("oversized sparse report marshaled (decoder would reject it)")
	}
	buf, err := MarshalReport(SparseUnaryReport{N: 1 << 26, Items: []int32{0, 1 << 25}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalReport(buf); err != nil {
		t.Fatalf("max-size sparse report did not round-trip: %v", err)
	}
}

// TestPerturbAllIntoBitExact: with the same generator seed,
// PerturbAllInto must reproduce the exact per-user reports of calling
// Perturb user by user (compared through their wire encodings, which
// normalize value vs pointer boxing).
func TestPerturbAllIntoBitExact(t *testing.T) {
	const d = 90
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(v % 5)
	}
	protos := map[string]func() (Protocol, error){
		"GRR":        func() (Protocol, error) { return NewGRR(d, 0.5) },
		"OUE-dense":  func() (Protocol, error) { return NewOUE(d, 0.5) },
		"OUE-sparse": func() (Protocol, error) { return NewOUE(d, 4.2) },
		"SUE-sparse": func() (Protocol, error) { return NewSUE(d, 8) },
		"OLH":        func() (Protocol, error) { return NewOLH(d, 0.5) },
		"BLH":        func() (Protocol, error) { return NewBLH(d, 0.5) },
	}
	for name, mk := range protos {
		p, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1 := rng.New(2024)
		var want []Report
		for v, c := range trueCounts {
			for k := int64(0); k < c; k++ {
				rep, err := p.Perturb(r1, v)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, rep)
			}
		}
		got, err := PerturbAllInto(p, rng.New(2024), trueCounts, &PerturbScratch{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d reports want %d", name, len(got), len(want))
		}
		for i := range got {
			wb, err := MarshalReport(want[i])
			if err != nil {
				t.Fatal(err)
			}
			gb, err := MarshalReport(got[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb, gb) {
				t.Fatalf("%s: report %d diverged", name, i)
			}
		}
	}
}

// TestPerturbAllIntoSteadyStateZeroAlloc pins the tentpole property:
// with a warmed scratch, bulk perturbation plus batched ingest allocate
// nothing per report.
func TestPerturbAllIntoSteadyStateZeroAlloc(t *testing.T) {
	const d = 128
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 40
	}
	for name, mk := range map[string]func() (Protocol, error){
		"OUE-dense":  func() (Protocol, error) { return NewOUE(d, 0.5) },
		"OUE-sparse": func() (Protocol, error) { return NewOUE(d, 4.2) },
		"OLH":        func() (Protocol, error) { return NewOLH(d, 0.5) },
		"GRR":        func() (Protocol, error) { return NewGRR(d, 0.5) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		scratch := &PerturbScratch{}
		acc, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		loop := func() {
			r.Reseed(7) // same stream keeps arena sizes stable
			reps, err := PerturbAllInto(p, r, trueCounts, scratch)
			if err != nil {
				t.Fatal(err)
			}
			if err := acc.AddBatch(reps); err != nil {
				t.Fatal(err)
			}
		}
		loop() // warm the arenas (same seed keeps their sizes stable)
		if allocs := testing.AllocsPerRun(10, loop); allocs > 0 {
			t.Errorf("%s: %v allocs per steady-state round, want 0", name, allocs)
		}
	}
}

// TestShardedAddBatchFastPathsConcurrent drives the type-specialized
// batch paths from many goroutines with concurrent snapshots; run under
// -race it doubles as the item-major AddBatch race test.
func TestShardedAddBatchFastPathsConcurrent(t *testing.T) {
	const d = 130
	reps := mixedReports(t, d)
	want, err := CountSupports(reps, d)
	if err != nil {
		t.Fatal(err)
	}

	sa, err := NewShardedAccumulator(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	const rounds = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				// Uneven chunking so run boundaries differ per goroutine.
				lo := (w * 13) % len(reps)
				if err := sa.AddBatch(reps[lo:]); err != nil {
					t.Error(err)
					return
				}
				if err := sa.AddBatch(reps[:lo]); err != nil {
					t.Error(err)
					return
				}
				_ = sa.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	if got, wantTotal := sa.Total(), int64(len(reps)*workers*rounds); got != wantTotal {
		t.Fatalf("total %d want %d", got, wantTotal)
	}
	counts := sa.Counts()
	mult := int64(workers * rounds)
	for v := range counts {
		if counts[v] != want[v]*mult {
			t.Fatalf("item %d: %d want %d", v, counts[v], want[v]*mult)
		}
	}
}
