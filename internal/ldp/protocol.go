// Package ldp implements the three pure LDP frequency-estimation protocols
// the paper evaluates — GRR, OUE and OLH (§III-B) — behind a single
// Protocol interface, together with the unified aggregation of §III-C:
// support counting (Eq. 12–13), unbiased estimation (Eq. 11) and the
// protocols' theoretical variances (Eq. 4, 7, 10).
//
// Each protocol offers two simulation paths: Perturb produces real
// per-user reports (exact, used by tests, examples and report-level
// defenses), and SimulateGenuineCounts samples the aggregated support
// counts of a whole population directly from their marginal distributions
// (fast, used by the paper-scale experiment harness; see DESIGN.md §2 for
// the fidelity discussion). The count path is formalized by the
// BatchPerturber interface; BatchSimulate parallelizes it across worker
// goroutines, and ShardedAccumulator provides the matching
// concurrency-safe ingest for report streams.
package ldp

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/rng"
)

// Report is one user's perturbed submission. A report "supports" item v
// when v's encoded value could have produced it (the support set S(ṽ) of
// Eq. 13).
type Report interface {
	// Supports reports whether item v is in the report's support set.
	Supports(v int) bool
	// AddSupports increments counts[v] for every supported item v with
	// v < len(counts). It is the O(|S|) bulk form of Supports used by
	// aggregation.
	AddSupports(counts []int64)
}

// Params carries the aggregation-side description of a protocol: the
// domain size and the probabilities p, q of Eq. (11). For OLH these are
// the aggregation pair (p = e^ε/(e^ε+g-1), q = 1/g), which differs from
// its internal GRR perturbation probabilities.
type Params struct {
	// Epsilon is the privacy budget ε.
	Epsilon float64
	// Domain is the input domain size d = |D|.
	Domain int
	// P is the probability that a report supports the user's true item.
	P float64
	// Q is the probability that a report supports any other given item.
	Q float64
	// G is OLH's hash range; zero for protocols without hashing.
	G int
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.Domain < 2 {
		return fmt.Errorf("ldp: domain %d < 2", p.Domain)
	}
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("ldp: invalid epsilon %v", p.Epsilon)
	}
	if !(p.P > p.Q) || p.P <= 0 || p.P > 1 || p.Q < 0 || p.Q >= 1 {
		return fmt.Errorf("ldp: invalid probabilities p=%v q=%v", p.P, p.Q)
	}
	return nil
}

// Protocol is a pure LDP frequency-estimation protocol (Ψ, Φ).
type Protocol interface {
	// Name returns the short protocol name ("GRR", "OUE", "OLH").
	Name() string
	// Params returns the aggregation-side parameters.
	Params() Params
	// Perturb encodes and perturbs item v into a report (algorithm Ψ).
	Perturb(r *rng.Rand, v int) (Report, error)
	// CraftSupport returns an encoded value whose support set is chosen by
	// an adversary to contain item v, bypassing perturbation. This is the
	// primitive behind the paper's adaptive attack (§V-C): malicious users
	// submit attacker-crafted encoded data directly.
	CraftSupport(r *rng.Rand, v int) (Report, error)
	// SimulateGenuineCounts samples the aggregated per-item support counts
	// C(v) for a population whose true item counts are trueCounts, without
	// materializing individual reports.
	SimulateGenuineCounts(r *rng.Rand, trueCounts []int64) ([]int64, error)
	// Variance returns the theoretical variance of the estimated COUNT
	// Φ(v) for an item with true frequency f among n users (Eq. 4/7/10).
	Variance(f float64, n int64) float64
}

// checkItem validates an item id against a domain size.
func checkItem(v, d int) error {
	if v < 0 || v >= d {
		return fmt.Errorf("ldp: item %d outside domain [0,%d)", v, d)
	}
	return nil
}

// ErrNilRand is returned when a nil generator is supplied.
var ErrNilRand = errors.New("ldp: nil random generator")

// ErrEpsilonTooLarge is returned by protocol constructors when the
// requested privacy budget cannot be realized in float64: e^ε (or the
// derived hash range) overflows, or the perturbation probabilities round
// to the degenerate p = 1 / q = 0. Constructing anyway would silently
// run a *different* mechanism than the requested ε — typically one that
// never perturbs, i.e. no privacy at all — so the budget is rejected at
// construction instead.
var ErrEpsilonTooLarge = errors.New("ldp: epsilon too large to represent")

// errEpsilonTooLarge wraps ErrEpsilonTooLarge with the protocol and the
// specific degeneracy.
func errEpsilonTooLarge(name string, epsilon float64, detail string) error {
	return fmt.Errorf("ldp: %s epsilon %g unrepresentable (%s): %w", name, epsilon, detail, ErrEpsilonTooLarge)
}

// checkPerturbable rejects parameter sets whose float64 evaluation
// degenerated to a non-perturbing mechanism. It is the guard every
// constructor that derives p/q from e^ε must run before accepting ε —
// Params.Validate cannot catch this, because p = 1 with a tiny positive
// q is a perfectly consistent (just non-private) parameter set.
func checkPerturbable(name string, pr Params) error {
	if pr.P >= 1 {
		return errEpsilonTooLarge(name, pr.Epsilon, fmt.Sprintf("keep probability rounds to %v", pr.P))
	}
	if pr.Q <= 0 {
		return errEpsilonTooLarge(name, pr.Epsilon, fmt.Sprintf("flip probability rounds to %v", pr.Q))
	}
	return nil
}
