package ldp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire format for reports, so clients and servers written against this
// library can exchange perturbed data. Layout (little endian):
//
//	byte 0:   format version (currently 1)
//	byte 1:   protocol tag (GRR=1, unary=2, sparse unary=4, OLH=5)
//	payload:  tag-specific fixed-width fields
//
//	GRR:    uint32 value
//	unary:  uint32 bit count, then ceil(n/64) uint64 words
//	        (OUE and SUE, dense representation)
//	OLH:    uint64 seed, uint32 value, uint32 g
//	sparse: uint32 bit count, uint32 support count, then that many
//	        uint32 strictly-increasing set positions (OUE and SUE;
//	        smaller on the wire whenever supports < n/64)
//
// An OLH report's bytes only mean something relative to the hash family
// that produced its value, so the OLH tag encodes the family: tag 3 is
// the retired single-stage v1 family and is REJECTED on decode (decoding
// it as v2 would silently turn every estimate into noise — the true
// item's support probability collapses from p to ~1/g); tag 5 is the
// current two-stage (hashx.Premixed) family.
const (
	codecVersion = 1

	tagGRR    = 1
	tagUnary  = 2
	tagOLHV1  = 3
	tagSparse = 4
	tagOLH    = 5
)

// ErrCodec wraps all report (de)serialization failures.
var ErrCodec = errors.New("ldp: report codec")

// MarshalReport serializes a report to its wire format. Arena-backed
// reports (the pointer boxings PerturbAllInto produces) serialize
// identically to their value forms.
func MarshalReport(rep Report) ([]byte, error) {
	switch r := rep.(type) {
	case *GRRReport:
		return MarshalReport(*r)
	case *OUEReport:
		return MarshalReport(*r)
	case *OLHReport:
		return MarshalReport(*r)
	case *SparseUnaryReport:
		return MarshalReport(*r)
	}
	switch r := rep.(type) {
	case GRRReport:
		if r < 0 || int64(r) > math.MaxUint32 {
			return nil, fmt.Errorf("%w: GRR value %d out of range", ErrCodec, int(r))
		}
		buf := make([]byte, 2+4)
		buf[0], buf[1] = codecVersion, tagGRR
		binary.LittleEndian.PutUint32(buf[2:], uint32(r))
		return buf, nil
	case OUEReport:
		if r.Bits == nil {
			return nil, fmt.Errorf("%w: nil unary bitset", ErrCodec)
		}
		n := r.Bits.Len()
		words := (n + 63) / 64
		buf := make([]byte, 2+4+8*words)
		buf[0], buf[1] = codecVersion, tagUnary
		binary.LittleEndian.PutUint32(buf[2:], uint32(n))
		for w := 0; w < words; w++ {
			binary.LittleEndian.PutUint64(buf[6+8*w:], r.Bits.words[w])
		}
		return buf, nil
	case OLHReport:
		if r.G < 2 || r.Value < 0 || r.Value >= r.G {
			return nil, fmt.Errorf("%w: invalid OLH report g=%d value=%d", ErrCodec, r.G, r.Value)
		}
		buf := make([]byte, 2+8+4+4)
		buf[0], buf[1] = codecVersion, tagOLH
		binary.LittleEndian.PutUint64(buf[2:], r.Seed)
		binary.LittleEndian.PutUint32(buf[10:], uint32(r.Value))
		binary.LittleEndian.PutUint32(buf[14:], uint32(r.G))
		return buf, nil
	case SparseUnaryReport:
		// Same 1<<26 cap the decoder enforces, so anything we write can
		// be read back.
		if r.N <= 0 || r.N > 1<<26 {
			return nil, fmt.Errorf("%w: sparse unary bit count %d out of range", ErrCodec, r.N)
		}
		prev := int32(-1)
		for _, v := range r.Items {
			if v <= prev || int(v) >= r.N {
				return nil, fmt.Errorf("%w: sparse unary support %d out of order or range", ErrCodec, v)
			}
			prev = v
		}
		buf := make([]byte, 2+4+4+4*len(r.Items))
		buf[0], buf[1] = codecVersion, tagSparse
		binary.LittleEndian.PutUint32(buf[2:], uint32(r.N))
		binary.LittleEndian.PutUint32(buf[6:], uint32(len(r.Items)))
		for i, v := range r.Items {
			binary.LittleEndian.PutUint32(buf[10+4*i:], uint32(v))
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("%w: unsupported report type %T", ErrCodec, rep)
	}
}

// UnmarshalReport parses a wire-format report. It validates structure
// (version, tag, lengths, field ranges) but cannot validate domain
// membership — callers aggregate against their own domain size.
func UnmarshalReport(data []byte) (Report, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: short buffer (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, data[0])
	}
	payload := data[2:]
	switch data[1] {
	case tagGRR:
		if len(payload) != 4 {
			return nil, fmt.Errorf("%w: GRR payload %d bytes, want 4", ErrCodec, len(payload))
		}
		return GRRReport(binary.LittleEndian.Uint32(payload)), nil
	case tagUnary:
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: unary payload too short", ErrCodec)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		const maxBits = 1 << 26 // 64 Mbit cap guards against corrupt lengths
		if n <= 0 || n > maxBits {
			return nil, fmt.Errorf("%w: unary bit count %d out of range", ErrCodec, n)
		}
		words := (n + 63) / 64
		if len(payload) != 4+8*words {
			return nil, fmt.Errorf("%w: unary payload %d bytes, want %d", ErrCodec, len(payload), 4+8*words)
		}
		bits := NewBitset(n)
		for w := 0; w < words; w++ {
			bits.words[w] = binary.LittleEndian.Uint64(payload[4+8*w:])
		}
		// Reject set bits beyond the declared length (would corrupt
		// Count and aggregation).
		if tail := n % 64; tail != 0 {
			if bits.words[words-1]>>uint(tail) != 0 {
				return nil, fmt.Errorf("%w: unary report has bits beyond length %d", ErrCodec, n)
			}
		}
		return OUEReport{Bits: bits}, nil
	case tagOLHV1:
		return nil, fmt.Errorf("%w: OLH report uses the retired v1 hash family; "+
			"its hash values cannot be interpreted by the current two-stage family — re-collect the report", ErrCodec)
	case tagOLH:
		if len(payload) != 16 {
			return nil, fmt.Errorf("%w: OLH payload %d bytes, want 16", ErrCodec, len(payload))
		}
		seed := binary.LittleEndian.Uint64(payload)
		value := int(binary.LittleEndian.Uint32(payload[8:]))
		g := int(binary.LittleEndian.Uint32(payload[12:]))
		if g < 2 || value < 0 || value >= g {
			return nil, fmt.Errorf("%w: invalid OLH fields g=%d value=%d", ErrCodec, g, value)
		}
		return OLHReport{Seed: seed, Value: value, G: g}, nil
	case tagSparse:
		if len(payload) < 8 {
			return nil, fmt.Errorf("%w: sparse unary payload too short", ErrCodec)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		const maxBits = 1 << 26 // matches the dense unary cap
		if n <= 0 || n > maxBits {
			return nil, fmt.Errorf("%w: sparse unary bit count %d out of range", ErrCodec, n)
		}
		k := int(binary.LittleEndian.Uint32(payload[4:]))
		if k > n || len(payload) != 8+4*k {
			return nil, fmt.Errorf("%w: sparse unary payload %d bytes for %d supports", ErrCodec, len(payload), k)
		}
		items := make([]int32, k)
		prev := int32(-1)
		for i := range items {
			v := binary.LittleEndian.Uint32(payload[8+4*i:])
			if int64(v) >= int64(n) || int32(v) <= prev {
				return nil, fmt.Errorf("%w: sparse unary support %d out of order or range", ErrCodec, v)
			}
			items[i] = int32(v)
			prev = int32(v)
		}
		return SparseUnaryReport{N: n, Items: items}, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrCodec, data[1])
	}
}
