package ldp

import (
	"runtime"
	"sync"

	"ldprecover/internal/rng"
)

// BatchPerturber is the batch perturbation fast path: it produces the
// aggregated support counts of a whole population directly from the
// per-item true counts, drawing from the binomial/multinomial samplers in
// internal/rng instead of materializing one Report per user. All built-in
// protocols (GRR, OUE, OLH/BLH, SUE) implement it; Protocol's
// SimulateGenuineCounts is the same path under its paper-facing name.
//
// Use the batch path whenever only aggregate counts are needed (the
// experiment harness, count-level attacks, capacity planning); use
// Perturb/PerturbAll when individual reports matter (wire formats,
// report-granular defenses like Detection and k-means).
type BatchPerturber interface {
	// BatchPerturb samples the aggregated per-item support counts C(v)
	// for a population whose true item counts are trueCounts.
	BatchPerturb(r *rng.Rand, trueCounts []int64) ([]int64, error)
}

// itemIndependent is implemented by protocols whose per-item support
// counts are (marginally) independent binomials C(v) = Bin(n_v, p) +
// Bin(n-n_v, q); BatchSimulate parallelizes those across the item range.
type itemIndependent interface {
	batchPQ() (p, q float64)
}

// validateTrueCounts checks the count vector and returns the population
// size n.
func validateTrueCounts(trueCounts []int64, d int) (int64, error) {
	if len(trueCounts) != d {
		return 0, errLenMismatch(len(trueCounts), d)
	}
	var n int64
	for u, c := range trueCounts {
		if c < 0 {
			return 0, errNegCount(u, c)
		}
		n += c
	}
	return n, nil
}

// independentBinomialCounts is the sequential batch sampler shared by the
// unary-encoding and local-hashing protocols.
func independentBinomialCounts(r *rng.Rand, trueCounts []int64, d int, p, q float64) ([]int64, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	n, err := validateTrueCounts(trueCounts, d)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, d)
	for v, nv := range trueCounts {
		counts[v] = r.Binomial(nv, p) + r.Binomial(n-nv, q)
	}
	return counts, nil
}

// BatchSimulate runs the batch perturbation fast path across workers
// goroutines, each drawing from an independent substream split off r.
// workers <= 0 selects GOMAXPROCS. With workers == 1 the output is
// bit-identical to p.SimulateGenuineCounts(r, trueCounts); with more
// workers the substream layout changes, so counts differ draw-for-draw
// but are identically distributed (the property tests assert both).
//
// Item-independent protocols (OUE, SUE, OLH) parallelize over disjoint
// chunks of the item range; GRR parallelizes over source items with
// per-worker partial count vectors merged at the end. Protocols outside
// this package fall back to their own sequential batch path.
func BatchSimulate(p Protocol, r *rng.Rand, trueCounts []int64, workers int) ([]int64, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	d := p.Params().Domain
	n, err := validateTrueCounts(trueCounts, d)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d {
		workers = d
	}
	if workers == 1 {
		if bp, ok := p.(BatchPerturber); ok {
			return bp.BatchPerturb(r, trueCounts)
		}
		return p.SimulateGenuineCounts(r, trueCounts)
	}

	switch proto := p.(type) {
	case itemIndependent:
		return parallelItemCounts(proto, r, trueCounts, d, n, workers), nil
	case *GRR:
		return parallelGRRCounts(proto, r, trueCounts, d, workers), nil
	default:
		if bp, ok := p.(BatchPerturber); ok {
			return bp.BatchPerturb(r, trueCounts)
		}
		return p.SimulateGenuineCounts(r, trueCounts)
	}
}

// chunkBounds returns the w-th of workers chunks over [0, d).
func chunkBounds(d, workers, w int) (lo, hi int) {
	chunk := (d + workers - 1) / workers
	lo = w * chunk
	hi = lo + chunk
	if hi > d {
		hi = d
	}
	return lo, hi
}

// parallelItemCounts samples item-independent binomial counts over
// disjoint item chunks; workers write to non-overlapping slices of
// counts, so no locking is needed.
func parallelItemCounts(proto itemIndependent, r *rng.Rand, trueCounts []int64, d int, n int64, workers int) []int64 {
	p, q := proto.batchPQ()
	counts := make([]int64, d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(d, workers, w)
		if lo >= hi {
			break
		}
		sub := r.Split()
		wg.Add(1)
		go func(rr *rng.Rand, lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				nv := trueCounts[v]
				counts[v] = rr.Binomial(nv, p) + rr.Binomial(n-nv, q)
			}
		}(sub, lo, hi)
	}
	wg.Wait()
	return counts
}

// parallelGRRCounts samples GRR counts source-item-parallel: each worker
// simulates the users holding its chunk of source items into a private
// full-domain partial vector (kept mass plus the uniform flip spread of
// grrChunk); the partials sum into the aggregate.
func parallelGRRCounts(g *GRR, r *rng.Rand, trueCounts []int64, d, workers int) []int64 {
	partials := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(d, workers, w)
		if lo >= hi {
			break
		}
		sub := r.Split()
		partials[w] = make([]int64, d)
		wg.Add(1)
		go func(rr *rng.Rand, lo, hi int, partial []int64) {
			defer wg.Done()
			g.grrChunk(rr, trueCounts, lo, hi, partial)
		}(sub, lo, hi, partials[w])
	}
	wg.Wait()
	counts := make([]int64, d)
	for _, partial := range partials {
		for v, c := range partial {
			counts[v] += c
		}
	}
	return counts
}
