package ldp

import (
	"testing"

	"ldprecover/internal/rng"
)

func TestNewAccumulatorValidation(t *testing.T) {
	if _, err := NewAccumulator(1); err == nil {
		t.Fatal("d=1 accepted")
	}
}

func TestAccumulatorAddAndEstimate(t *testing.T) {
	acc, err := NewAccumulator(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(GRRReport(1)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(GRRReport(1)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(GRRReport(3)); err != nil {
		t.Fatal(err)
	}
	if acc.Total() != 3 {
		t.Fatalf("total %d", acc.Total())
	}
	counts := acc.Counts()
	if counts[1] != 2 || counts[3] != 1 || counts[0] != 0 {
		t.Fatalf("counts %v", counts)
	}
	if err := acc.Add(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	pr := Params{Epsilon: 1, Domain: 4, P: 0.6, Q: 0.2}
	if _, err := acc.Estimate(pr); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorEstimateEmpty(t *testing.T) {
	acc, _ := NewAccumulator(4)
	pr := Params{Epsilon: 1, Domain: 4, P: 0.6, Q: 0.2}
	if _, err := acc.Estimate(pr); err == nil {
		t.Fatal("empty accumulator estimated")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	a, _ := NewAccumulator(3)
	b, _ := NewAccumulator(3)
	_ = a.Add(GRRReport(0))
	_ = b.Add(GRRReport(2))
	_ = b.Add(GRRReport(2))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Counts()[2] != 2 {
		t.Fatalf("merged state: total %d counts %v", a.Total(), a.Counts())
	}
	// b untouched.
	if b.Total() != 2 {
		t.Fatalf("merge mutated source: %d", b.Total())
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
	c, _ := NewAccumulator(5)
	if err := a.Merge(c); err == nil {
		t.Fatal("domain mismatch accepted")
	}
}

// TestAccumulatorMatchesBatchAggregation: the streaming path and the
// batch CountSupports path must agree exactly.
func TestAccumulatorMatchesBatchAggregation(t *testing.T) {
	const d, eps = 10, 0.7
	olh, _ := NewOLH(d, eps)
	r := rng.New(3)
	trueCounts := make([]int64, d)
	for i := range trueCounts {
		trueCounts[i] = 150
	}
	reports, err := PerturbAll(olh, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := CountSupports(reports, d)
	if err != nil {
		t.Fatal(err)
	}
	// Two shards, merged.
	s1, _ := NewAccumulator(d)
	s2, _ := NewAccumulator(d)
	for i, rep := range reports {
		if i%2 == 0 {
			_ = s1.Add(rep)
		} else {
			_ = s2.Add(rep)
		}
	}
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	streamed := s1.Counts()
	for v := range batch {
		if batch[v] != streamed[v] {
			t.Fatalf("counts diverge at %d: %d vs %d", v, batch[v], streamed[v])
		}
	}
	if s1.Total() != int64(len(reports)) {
		t.Fatalf("total %d want %d", s1.Total(), len(reports))
	}
}
