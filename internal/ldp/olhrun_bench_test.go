package ldp

import (
	"testing"

	"ldprecover/internal/rng"
)

func BenchmarkAddOLHRun(b *testing.B) {
	const d = 102
	olh, _ := NewOLH(d, 0.5)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 320
	}
	reps, err := PerturbAll(olh, rng.New(3), trueCounts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _ := NewAccumulator(d)
		if err := acc.AddBatch(reps); err != nil {
			b.Fatal(err)
		}
	}
}
