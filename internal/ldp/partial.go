package ldp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
)

// PartialTally is an edge-side pre-aggregated partial: the support
// counts of a batch of users folded together *before* they cross the
// wire. It is the unit of the tally-first ingest lane (DESIGN.md §8):
// support counting is exactly additive, so a frontend-adjacent SDK can
// collapse n user reports into d counts locally and the server-side
// fold is bit-identical to having ingested every report individually —
// the same insight the cluster tier proved for sealed tallies, pushed
// one hop further toward the edge.
//
// Unlike a sealed Tally, a partial does not claim an epoch: the epoch
// clock lives on the server. EpochHint is the collector's belief, used
// only for staleness rejection and otherwise clamped into the epoch
// that is open when the frame arrives.
type PartialTally struct {
	// NodeID identifies the collector (SDK instance) that built the
	// partial — diagnostics and stats attribution, not dedupe: a partial
	// is not idempotent the way a sealed (NodeID, Epoch) tally is, so
	// the transport must not re-send one it got a 2xx for.
	NodeID string
	// EpochHint is the epoch the collector believed was open when it
	// flushed. Hints older than the receiving manager's sealed watermark
	// are rejected as stale; hints at or ahead of it are clamped into
	// the currently open epoch.
	EpochHint int
	// Counts are the pre-aggregated raw support counts (length = domain).
	Counts []int64
	// Users is the number of user reports folded into Counts.
	Users int64
}

// Validate checks the partial's structural invariants: a non-empty node
// id, a non-negative epoch hint and user count, and non-negative counts
// over a plausible domain.
func (p *PartialTally) Validate() error {
	if p.NodeID == "" {
		return fmt.Errorf("%w: partial tally without a node id", ErrCodec)
	}
	if len(p.NodeID) > maxTallyNodeID {
		return fmt.Errorf("%w: partial tally node id of %d bytes exceeds cap %d",
			ErrCodec, len(p.NodeID), maxTallyNodeID)
	}
	if p.EpochHint < 0 {
		return fmt.Errorf("%w: negative partial tally epoch hint %d", ErrCodec, p.EpochHint)
	}
	if len(p.Counts) < 2 || len(p.Counts) > maxTallyDomain {
		return fmt.Errorf("%w: partial tally domain %d outside [2, %d]",
			ErrCodec, len(p.Counts), maxTallyDomain)
	}
	if p.Users < 0 {
		return fmt.Errorf("%w: negative partial tally user count %d", ErrCodec, p.Users)
	}
	for v, c := range p.Counts {
		if c < 0 {
			return fmt.Errorf("%w: negative partial tally count %d for item %d", ErrCodec, c, v)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *PartialTally) Clone() *PartialTally {
	return &PartialTally{NodeID: p.NodeID, EpochHint: p.EpochHint,
		Counts: slices.Clone(p.Counts), Users: p.Users}
}

// Partial-tally wire format (little endian):
//
//	byte 0..1:  "LP" magic
//	byte 2:     partial format version (currently 1)
//	byte 3..4:  uint16 node id length, then that many id bytes
//	then:       uint64 epoch hint, uint64 user count, uint32 domain d,
//	            d uint64 per-item support counts
//	trailer:    uint32 CRC-32C over every preceding byte
//
// The layout deliberately mirrors the sealed-tally ("LT") frame — same
// CRC discipline, same bounds caps — differing only in magic and field
// meaning: a partial carries an epoch *hint* and a user count rather
// than a sealed epoch and report total. Like a tally, a partial crosses
// a node boundary and is WAL-appended verbatim, so the frame carries
// its own checksum.
const (
	partialVersion = 1

	partialHeaderSize = 2 + 1 + 2
)

var partialMagic = [2]byte{'L', 'P'}

// MarshalPartial frames a partial tally for the wire.
func MarshalPartial(p *PartialTally) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: marshaling a nil partial tally", ErrCodec)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	size := partialHeaderSize + len(p.NodeID) + 8 + 8 + 4 + 8*len(p.Counts) + 4
	b := make([]byte, 0, size)
	b = append(b, partialMagic[0], partialMagic[1], partialVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(p.NodeID)))
	b = append(b, p.NodeID...)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.EpochHint))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Users))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Counts)))
	for _, c := range p.Counts {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, tallyCRCTable)), nil
}

// UnmarshalPartial parses a wire-format partial tally. The CRC is
// verified before any field is trusted; every declared length is
// bounds-checked before it drives an allocation, so corrupt or hostile
// frames error out without panicking or ballooning memory.
func UnmarshalPartial(data []byte) (*PartialTally, error) {
	if len(data) < partialHeaderSize+8+8+4+4 {
		return nil, fmt.Errorf("%w: short partial tally frame (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != partialMagic[0] || data[1] != partialMagic[1] {
		return nil, fmt.Errorf("%w: bad partial tally magic %q", ErrCodec, string(data[:2]))
	}
	if data[2] != partialVersion {
		return nil, fmt.Errorf("%w: unsupported partial tally version %d", ErrCodec, data[2])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, tallyCRCTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: partial tally checksum mismatch", ErrCodec)
	}
	idLen := int(binary.LittleEndian.Uint16(data[3:]))
	if idLen == 0 || idLen > maxTallyNodeID {
		return nil, fmt.Errorf("%w: partial tally node id length %d outside [1, %d]",
			ErrCodec, idLen, maxTallyNodeID)
	}
	rest := body[partialHeaderSize:]
	if len(rest) < idLen+8+8+4 {
		return nil, fmt.Errorf("%w: partial tally frame truncated inside header", ErrCodec)
	}
	p := &PartialTally{NodeID: string(rest[:idLen])}
	rest = rest[idLen:]
	hint := binary.LittleEndian.Uint64(rest)
	users := binary.LittleEndian.Uint64(rest[8:])
	d := binary.LittleEndian.Uint32(rest[16:])
	rest = rest[20:]
	if hint > math.MaxInt64 || users > math.MaxInt64 {
		return nil, fmt.Errorf("%w: partial tally epoch hint/user count out of int64 range", ErrCodec)
	}
	p.EpochHint = int(hint)
	p.Users = int64(users)
	if d < 2 || d > maxTallyDomain {
		return nil, fmt.Errorf("%w: partial tally domain %d outside [2, %d]", ErrCodec, d, maxTallyDomain)
	}
	if len(rest) != 8*int(d) {
		return nil, fmt.Errorf("%w: partial tally frame holds %d count bytes, domain %d needs %d",
			ErrCodec, len(rest), d, 8*d)
	}
	p.Counts = make([]int64, d)
	for v := range p.Counts {
		p.Counts[v] = int64(binary.LittleEndian.Uint64(rest[8*v:]))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Collector is the edge pre-aggregation SDK: a frontend-adjacent client
// folds its users' reports into a local partial tally and ships d
// counts per flush instead of n reports. Ingest runs through the same
// type-specialized AddBatch fast paths the server uses (Harley–Seal
// bit-plane counting for dense unary, premixed item-major sweeps for
// OLH), so an edge box can absorb its population at memory speed; the
// server-side fold of the flushed partial is bit-identical to the
// server having ingested every report itself.
//
// A Collector is NOT safe for concurrent use — run one per goroutine
// and flush independently (partials merge exactly, in any grouping), or
// serialize access externally. The zero value is not usable; construct
// with NewCollector.
type Collector struct {
	nodeID string
	acc    *Accumulator
	users  int64
}

// NewCollector returns an empty collector over a domain of size d,
// identified by nodeID in the frames it flushes.
func NewCollector(nodeID string, d int) (*Collector, error) {
	if nodeID == "" || len(nodeID) > maxTallyNodeID {
		return nil, fmt.Errorf("%w: collector node id length %d outside [1, %d]",
			ErrCodec, len(nodeID), maxTallyNodeID)
	}
	acc, err := NewAccumulator(d)
	if err != nil {
		return nil, err
	}
	return &Collector{nodeID: nodeID, acc: acc}, nil
}

// Domain returns the domain size d.
func (c *Collector) Domain() int { return len(c.acc.counts) }

// Users returns the number of user reports folded in since the last
// flush or reset.
func (c *Collector) Users() int64 { return c.users }

// Add folds one user report into the pending partial.
func (c *Collector) Add(rep Report) error {
	if err := c.acc.Add(rep); err != nil {
		return err
	}
	c.users++
	return nil
}

// AddBatch folds a slice of user reports through the type-specialized
// batch fast paths; it is the preferred ingest call when reports arrive
// in chunks.
func (c *Collector) AddBatch(reps []Report) error {
	if err := c.acc.AddBatch(reps); err != nil {
		return err
	}
	c.users += int64(len(reps))
	return nil
}

// AddCounts folds pre-aggregated support counts from total users — the
// path for partials computed even further out (another process, a batch
// perturber's output).
func (c *Collector) AddCounts(counts []int64, total int64) error {
	if len(counts) != len(c.acc.counts) {
		return errLenMismatch(len(counts), len(c.acc.counts))
	}
	if total < 0 {
		return fmt.Errorf("ldp: negative report total %d", total)
	}
	for v, cnt := range counts {
		if cnt < 0 {
			return errNegCount(v, cnt)
		}
	}
	for v, cnt := range counts {
		c.acc.counts[v] += cnt
	}
	c.acc.total += total
	c.users += total
	return nil
}

// Partial snapshots the pending aggregate as a partial tally carrying
// the given epoch hint. The collector keeps its state; use Flush for
// the ship-and-reset cycle.
func (c *Collector) Partial(epochHint int) (*PartialTally, error) {
	p := &PartialTally{NodeID: c.nodeID, EpochHint: epochHint,
		Counts: slices.Clone(c.acc.counts), Users: c.users}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Flush frames the pending aggregate as a wire-format partial tally
// carrying the given epoch hint and resets the collector for the next
// batch. This is the SDK's steady-state cycle: accumulate a batch,
// Flush, POST the frame to /v1/partial.
func (c *Collector) Flush(epochHint int) ([]byte, error) {
	p, err := c.Partial(epochHint)
	if err != nil {
		return nil, err
	}
	frame, err := MarshalPartial(p)
	if err != nil {
		return nil, err
	}
	c.Reset()
	return frame, nil
}

// Reset discards the pending aggregate.
func (c *Collector) Reset() {
	for v := range c.acc.counts {
		c.acc.counts[v] = 0
	}
	c.acc.total = 0
	c.users = 0
}
