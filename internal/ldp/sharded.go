package ldp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedAccumulator is the concurrency-safe ingest engine: reports from
// many goroutines fan out across independently locked shards and merge
// into a single aggregate on Snapshot. Support counting is additive, so a
// snapshot is bit-identical to feeding the same reports through one
// sequential Accumulator, regardless of how they were distributed over
// shards — the sharded/sequential property tests rely on exactly that.
//
// Ingest paths, fastest first:
//
//   - AddCounts folds a pre-aggregated partial (e.g. a BatchPerturber's
//     output or a remote collector's sub-total) in one lock acquisition;
//   - AddBatch folds a slice of reports under one lock;
//   - Add folds a single report, choosing a shard round-robin.
//
// All methods are safe for concurrent use.
//
// Reads (Counts, Estimate, Snapshot) are served from a merged snapshot
// cached against a mutation generation: only the first read after an
// ingest pays the O(shards·d) merge; repeated reads of a quiet
// accumulator are O(d) copies. Total stays a direct O(shards) sum so
// monitors can poll it during continuous ingest. SealEpoch closes the
// current epoch — it atomically swaps every shard's tally out from under
// concurrent ingest and returns the sealed aggregate, the primitive the
// stream layer builds epochs from.
type ShardedAccumulator struct {
	domain int
	shards []accShard
	cursor atomic.Uint64

	// gen counts completed mutations (ingest, reset, seal). Bumped after
	// the shard lock is released, so a reader that observes a bump also
	// observes the mutation itself when it locks the shards.
	gen atomic.Uint64

	// snapMu guards the merged-snapshot cache. snap is immutable once
	// stored: recomputation replaces the pointer, never the contents, so
	// references handed out earlier stay valid.
	snapMu  sync.Mutex
	snap    *Accumulator
	snapGen uint64
}

// accShard pads each shard to its own cache lines so mutexes and totals
// on neighbouring shards do not false-share under heavy ingest.
type accShard struct {
	mu  sync.Mutex
	acc Accumulator
	_   [64]byte
}

// NewShardedAccumulator returns an empty sharded aggregator over a domain
// of size d. shards <= 0 selects GOMAXPROCS shards.
func NewShardedAccumulator(d, shards int) (*ShardedAccumulator, error) {
	if d < 2 {
		return nil, fmt.Errorf("ldp: accumulator domain %d < 2", d)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	sa := &ShardedAccumulator{domain: d, shards: make([]accShard, shards)}
	for i := range sa.shards {
		sa.shards[i].acc.counts = make([]int64, d)
	}
	return sa, nil
}

// Domain returns the domain size d.
func (sa *ShardedAccumulator) Domain() int { return sa.domain }

// Shards returns the shard count.
func (sa *ShardedAccumulator) Shards() int { return len(sa.shards) }

// shard returns the next ingest shard round-robin. Distribution across
// shards does not affect the aggregate, only contention.
func (sa *ShardedAccumulator) shard() *accShard {
	return &sa.shards[sa.cursor.Add(1)%uint64(len(sa.shards))]
}

// Add folds one report into the aggregate.
func (sa *ShardedAccumulator) Add(rep Report) error {
	if rep == nil {
		return errors.New("ldp: nil report")
	}
	sh := sa.shard()
	sh.mu.Lock()
	rep.AddSupports(sh.acc.counts)
	sh.acc.total++
	sh.mu.Unlock()
	sa.gen.Add(1)
	return nil
}

// AddBatch folds a slice of reports under a single lock acquisition
// through the accumulator's type-specialized batch fast paths (bit-plane
// counting for dense unary runs, premixed item-major sweeps for OLH); it
// is the preferred ingest path when reports arrive in chunks.
func (sa *ShardedAccumulator) AddBatch(reps []Report) error {
	for i, rep := range reps {
		if rep == nil {
			return fmt.Errorf("ldp: nil report at index %d", i)
		}
	}
	if len(reps) == 0 {
		return nil
	}
	sh := sa.shard()
	sh.mu.Lock()
	sh.acc.addBatch(reps)
	sh.mu.Unlock()
	sa.gen.Add(1)
	return nil
}

// AddCounts folds pre-aggregated support counts from total reports, the
// ingest path for BatchPerturber output and for partial aggregates
// computed elsewhere (another process, a remote collector).
func (sa *ShardedAccumulator) AddCounts(counts []int64, total int64) error {
	if len(counts) != sa.domain {
		return errLenMismatch(len(counts), sa.domain)
	}
	if total < 0 {
		return fmt.Errorf("ldp: negative report total %d", total)
	}
	for v, c := range counts {
		if c < 0 {
			return errNegCount(v, c)
		}
	}
	sh := sa.shard()
	sh.mu.Lock()
	for v, c := range counts {
		sh.acc.counts[v] += c
	}
	sh.acc.total += total
	sh.mu.Unlock()
	sa.gen.Add(1)
	return nil
}

// Merge folds a snapshot of another sharded accumulator into this one.
// The other accumulator is left untouched and may keep ingesting.
func (sa *ShardedAccumulator) Merge(other *ShardedAccumulator) error {
	if other == nil {
		return errors.New("ldp: nil accumulator")
	}
	if other.domain != sa.domain {
		return fmt.Errorf("ldp: merging accumulators over domains %d and %d",
			other.domain, sa.domain)
	}
	snap := other.Snapshot()
	return sa.AddCounts(snap.counts, snap.total)
}

// Mutations returns the accumulator's mutation generation: a counter
// bumped after every completed ingest, reset, or seal. Callers that
// record the generation at one point can later ask, in O(1), whether
// anything has touched the accumulator since — the stream layer's
// sealed-counts hand-off uses it to skip the O(shards·d) live merge
// when the live accumulator is provably untouched (a root or merger
// node never ingests raw reports, so it always is).
func (sa *ShardedAccumulator) Mutations() uint64 { return sa.gen.Load() }

// Total returns the number of reports folded in so far. It sums the
// per-shard totals directly — O(shards), no count merge — so monitoring
// loops can poll it during continuous ingest without paying merged()'s
// O(shards·d) recompute on every call.
func (sa *ShardedAccumulator) Total() int64 {
	var total int64
	for i := range sa.shards {
		sh := &sa.shards[i]
		sh.mu.Lock()
		total += sh.acc.total
		sh.mu.Unlock()
	}
	return total
}

// merged returns the up-to-date merged aggregate, re-merging the shards
// only when ingest has advanced since the last read. The returned
// accumulator is immutable — recomputation replaces it rather than
// mutating it — so callers may read it lock-free but must never write.
func (sa *ShardedAccumulator) merged() *Accumulator {
	sa.snapMu.Lock()
	defer sa.snapMu.Unlock()
	// Load gen before touching the shards: a mutation bumps gen only
	// after unlocking its shard, so any ingest missing from the merge
	// below has a bump we haven't seen — the next read re-merges.
	gen := sa.gen.Load()
	if sa.snap != nil && sa.snapGen == gen {
		return sa.snap
	}
	out := &Accumulator{counts: make([]int64, sa.domain)}
	for i := range sa.shards {
		sh := &sa.shards[i]
		sh.mu.Lock()
		for v, c := range sh.acc.counts {
			out.counts[v] += c
		}
		out.total += sh.acc.total
		sh.mu.Unlock()
	}
	sa.snap = out
	sa.snapGen = gen
	return out
}

// Snapshot merges all shards into a fresh sequential Accumulator owned by
// the caller. The sharded accumulator itself is unchanged and may keep
// ingesting; concurrent Adds may or may not be included, but every
// snapshot is a consistent prefix-sum of completed ingest calls per shard.
func (sa *ShardedAccumulator) Snapshot() *Accumulator {
	m := sa.merged()
	return &Accumulator{counts: append([]int64(nil), m.counts...), total: m.total}
}

// SealEpoch closes the current epoch: every shard's tally is swapped out
// for a zeroed one and the swapped tallies merge into the returned sealed
// aggregate, which no further ingest can touch. Concurrent AddBatch/Add/
// AddCounts calls are never stopped — each shard is locked only for a
// slice swap — and every ingest call lands entirely in either the sealed
// epoch or the next one: an ingest holds one shard lock for its whole
// mutation, so the seal's swap observes it completely or not at all.
// Counts are conserved exactly — the sum of sealed epochs plus the live
// tally always equals everything ingested.
func (sa *ShardedAccumulator) SealEpoch() *Accumulator {
	// Allocate replacement tallies outside the locks so each shard is
	// held only for the swap itself.
	fresh := make([][]int64, len(sa.shards))
	for i := range fresh {
		fresh[i] = make([]int64, sa.domain)
	}
	sealed := make([][]int64, len(sa.shards))
	out := &Accumulator{counts: make([]int64, sa.domain)}
	for i := range sa.shards {
		sh := &sa.shards[i]
		sh.mu.Lock()
		sealed[i] = sh.acc.counts
		sh.acc.counts = fresh[i]
		out.total += sh.acc.total
		sh.acc.total = 0
		sh.mu.Unlock()
	}
	// Merge outside the locks: the swapped slices are exclusively ours.
	for _, counts := range sealed {
		for v, c := range counts {
			out.counts[v] += c
		}
	}
	sa.gen.Add(1)
	return out
}

// Reset zeroes all shards.
func (sa *ShardedAccumulator) Reset() {
	for i := range sa.shards {
		sh := &sa.shards[i]
		sh.mu.Lock()
		for v := range sh.acc.counts {
			sh.acc.counts[v] = 0
		}
		sh.acc.total = 0
		sh.mu.Unlock()
	}
	sa.gen.Add(1)
}

// Counts returns a copy of the merged raw support counts.
func (sa *ShardedAccumulator) Counts() []int64 { return sa.merged().Counts() }

// Estimate produces unbiased frequency estimates for the current merged
// aggregate under the protocol parameters pr.
func (sa *ShardedAccumulator) Estimate(pr Params) ([]float64, error) {
	return sa.merged().Estimate(pr)
}
