package ldp

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
)

// protocols under test, constructed fresh per test.
func testProtocols(t *testing.T, d int, eps float64) []Protocol {
	t.Helper()
	grr, err := NewGRR(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLH(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	return []Protocol{grr, oue, olh}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewGRR(1, 0.5); err == nil {
		t.Fatal("GRR d=1 accepted")
	}
	if _, err := NewGRR(10, 0); err == nil {
		t.Fatal("GRR eps=0 accepted")
	}
	if _, err := NewGRR(10, math.NaN()); err == nil {
		t.Fatal("GRR eps=NaN accepted")
	}
	if _, err := NewOUE(10, -1); err == nil {
		t.Fatal("OUE negative eps accepted")
	}
	if _, err := NewOLH(10, math.Inf(1)); err == nil {
		t.Fatal("OLH eps=Inf accepted")
	}
	if _, err := NewOLHWithG(10, 0.5, 1); err == nil {
		t.Fatal("OLH g=1 accepted")
	}
}

func TestParamsMatchPaperFormulas(t *testing.T) {
	const d, eps = 102, 0.5
	expE := math.Exp(eps)

	grr, _ := NewGRR(d, eps)
	pr := grr.Params()
	if !almostEq(pr.P, expE/(float64(d)-1+expE), 1e-12) {
		t.Fatalf("GRR p = %v", pr.P)
	}
	if !almostEq(pr.Q, 1/(float64(d)-1+expE), 1e-12) {
		t.Fatalf("GRR q = %v", pr.Q)
	}
	if !almostEq(pr.P/pr.Q, expE, 1e-9) {
		t.Fatalf("GRR p/q = %v want e^eps", pr.P/pr.Q)
	}

	oue, _ := NewOUE(d, eps)
	pr = oue.Params()
	if pr.P != 0.5 || !almostEq(pr.Q, 1/(expE+1), 1e-12) {
		t.Fatalf("OUE p=%v q=%v", pr.P, pr.Q)
	}
	// OUE's per-bit mechanism satisfies eps-LDP: p(1-q)/(q(1-p)) = e^eps.
	ratio := pr.P * (1 - pr.Q) / (pr.Q * (1 - pr.P))
	if !almostEq(ratio, expE, 1e-9) {
		t.Fatalf("OUE odds ratio %v want %v", ratio, expE)
	}

	olh, _ := NewOLH(d, eps)
	pr = olh.Params()
	wantG := int(math.Ceil(expE + 1)) // = 3 for eps=0.5
	if olh.G() != wantG || wantG != 3 {
		t.Fatalf("OLH g = %d want %d", olh.G(), wantG)
	}
	if !almostEq(pr.P, expE/(expE+float64(wantG)-1), 1e-12) {
		t.Fatalf("OLH p = %v", pr.P)
	}
	if !almostEq(pr.Q, 1/float64(wantG), 1e-12) {
		t.Fatalf("OLH q = %v", pr.Q)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Epsilon: 0.5, Domain: 1, P: 0.5, Q: 0.1},
		{Epsilon: 0, Domain: 10, P: 0.5, Q: 0.1},
		{Epsilon: 0.5, Domain: 10, P: 0.1, Q: 0.5}, // p <= q
		{Epsilon: 0.5, Domain: 10, P: 1.5, Q: 0.1},
		{Epsilon: 0.5, Domain: 10, P: 0.5, Q: -0.1},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, pr)
		}
	}
}

func TestPerturbRejectsBadInput(t *testing.T) {
	r := rng.New(1)
	for _, p := range testProtocols(t, 10, 0.5) {
		if _, err := p.Perturb(r, -1); err == nil {
			t.Fatalf("%s accepted item -1", p.Name())
		}
		if _, err := p.Perturb(r, 10); err == nil {
			t.Fatalf("%s accepted item d", p.Name())
		}
		if _, err := p.Perturb(nil, 0); err == nil {
			t.Fatalf("%s accepted nil rng", p.Name())
		}
	}
}

// TestPerturbSupportProbabilities verifies the defining property of pure
// LDP protocols: a report supports the true item with probability p and
// any other given item with probability q.
func TestPerturbSupportProbabilities(t *testing.T) {
	const d, eps, trials = 20, 0.8, 60000
	r := rng.New(42)
	for _, p := range testProtocols(t, d, eps) {
		pr := p.Params()
		trueItem, otherItem := 3, 11
		supTrue, supOther := 0, 0
		for i := 0; i < trials; i++ {
			rep, err := p.Perturb(r, trueItem)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Supports(trueItem) {
				supTrue++
			}
			if rep.Supports(otherItem) {
				supOther++
			}
		}
		gotP := float64(supTrue) / trials
		gotQ := float64(supOther) / trials
		// 5-sigma binomial tolerance.
		tolP := 5 * math.Sqrt(pr.P*(1-pr.P)/trials)
		tolQ := 5 * math.Sqrt(pr.Q*(1-pr.Q)/trials)
		if math.Abs(gotP-pr.P) > tolP {
			t.Fatalf("%s: empirical p %v want %v ± %v", p.Name(), gotP, pr.P, tolP)
		}
		if math.Abs(gotQ-pr.Q) > tolQ {
			t.Fatalf("%s: empirical q %v want %v ± %v", p.Name(), gotQ, pr.Q, tolQ)
		}
	}
}

// TestGRRLDPRatio empirically verifies the eps-LDP inequality for GRR:
// outputs' probabilities under two different inputs differ by <= e^eps.
func TestGRRLDPRatio(t *testing.T) {
	const d, eps, trials = 8, 0.7, 400000
	grr, _ := NewGRR(d, eps)
	r := rng.New(7)
	countsFromA := make([]float64, d)
	countsFromB := make([]float64, d)
	for i := 0; i < trials; i++ {
		ra, err := grr.Perturb(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		countsFromA[int(ra.(GRRReport))]++
		rb, err := grr.Perturb(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		countsFromB[int(rb.(GRRReport))]++
	}
	expE := math.Exp(eps)
	for out := 0; out < d; out++ {
		pa := (countsFromA[out] + 1) / (trials + float64(d))
		pb := (countsFromB[out] + 1) / (trials + float64(d))
		ratio := pa / pb
		if ratio > expE*1.1 || ratio < 1/(expE*1.1) {
			t.Fatalf("output %d: ratio %v violates e^eps=%v", out, ratio, expE)
		}
	}
}

func TestCraftSupportAlwaysSupports(t *testing.T) {
	r := rng.New(3)
	for _, p := range testProtocols(t, 30, 0.5) {
		for v := 0; v < 30; v++ {
			rep, err := p.CraftSupport(r, v)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Supports(v) {
				t.Fatalf("%s: crafted report does not support %d", p.Name(), v)
			}
		}
		if _, err := p.CraftSupport(r, 30); err == nil {
			t.Fatalf("%s: crafted out-of-domain item", p.Name())
		}
	}
}

func TestCraftSupportMinimalForGRROUE(t *testing.T) {
	r := rng.New(4)
	grr, _ := NewGRR(10, 0.5)
	rep, _ := grr.CraftSupport(r, 5)
	for v := 0; v < 10; v++ {
		if rep.Supports(v) != (v == 5) {
			t.Fatal("GRR crafted support not singleton")
		}
	}
	oue, _ := NewOUE(10, 0.5)
	rep, _ = oue.CraftSupport(r, 5)
	for v := 0; v < 10; v++ {
		if rep.Supports(v) != (v == 5) {
			t.Fatal("OUE crafted support not singleton")
		}
	}
}

func TestOLHCraftSupportCollisionRate(t *testing.T) {
	// Non-target items must be supported at rate ~1/g.
	olh, _ := NewOLH(50, 0.5)
	r := rng.New(5)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		rep, err := olh.CraftSupport(r, 7)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Supports(23) {
			hits++
		}
	}
	got := float64(hits) / trials
	want := 1 / float64(olh.G())
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("collision rate %v want %v", got, want)
	}
}

func TestVarianceFormulas(t *testing.T) {
	const d, eps = 102, 0.5
	const n = int64(389894)
	expE := math.Exp(eps)

	grr, _ := NewGRR(d, eps)
	// Eq. 4 at f=0: n*(d-2+e^eps)/(e^eps-1)^2.
	want := float64(n) * (float64(d) - 2 + expE) / ((expE - 1) * (expE - 1))
	if got := grr.Variance(0, n); !almostEq(got, want, 1e-6*want) {
		t.Fatalf("GRR var %v want %v", got, want)
	}
	// f-dependent term increases variance.
	if grr.Variance(0.5, n) <= grr.Variance(0, n) {
		t.Fatal("GRR variance not increasing in f")
	}

	oue, _ := NewOUE(d, eps)
	want = float64(n) * 4 * expE / ((expE - 1) * (expE - 1))
	if got := oue.Variance(0.3, n); !almostEq(got, want, 1e-6*want) {
		t.Fatalf("OUE var %v want %v", got, want)
	}

	olh, _ := NewOLH(d, eps)
	if got := olh.Variance(0.3, n); !almostEq(got, want, 1e-6*want) {
		t.Fatalf("OLH var %v want %v", got, want)
	}

	// Sanity against the paper's Table I "Before-Rec" scale: frequency
	// variance = count variance / n^2; for OUE at eps=0.5, n=389894 it is
	// ~4e-5 (paper reports MSE 3.81e-5 on IPUMS).
	fvar := oue.Variance(0, n) / float64(n) / float64(n)
	if fvar < 2e-5 || fvar > 8e-5 {
		t.Fatalf("OUE frequency variance %v outside the paper's scale", fvar)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestEstimatorUnbiasedReportLevel runs the full report-level pipeline and
// checks the estimates are unbiased within CLT tolerance.
func TestEstimatorUnbiasedReportLevel(t *testing.T) {
	const d, eps = 12, 1.0
	counts := []int64{500, 400, 300, 200, 100, 90, 80, 70, 60, 50, 30, 20}
	var n int64
	for _, c := range counts {
		n += c
	}
	trueF := make([]float64, d)
	for v, c := range counts {
		trueF[v] = float64(c) / float64(n)
	}
	r := rng.New(99)
	for _, p := range testProtocols(t, d, eps) {
		const trials = 60
		sums := make([]float64, d)
		for trial := 0; trial < trials; trial++ {
			reports, err := PerturbAll(p, r, counts)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := EstimateFrequencies(reports, p.Params())
			if err != nil {
				t.Fatal(err)
			}
			for v := range fs {
				sums[v] += fs[v]
			}
		}
		for v := range sums {
			got := sums[v] / trials
			// Tolerance: 5 standard errors of the mean estimate.
			se := math.Sqrt(p.Variance(trueF[v], n)) / float64(n) / math.Sqrt(trials)
			if math.Abs(got-trueF[v]) > 5*se+1e-9 {
				t.Fatalf("%s: item %d biased: got %v want %v (se %v)",
					p.Name(), v, got, trueF[v], se)
			}
		}
	}
}

// TestFastSimulationAgreesWithReportLevel compares the mean and spread of
// the fast count-level simulator against the exact report-level pipeline.
func TestFastSimulationAgreesWithReportLevel(t *testing.T) {
	const d, eps = 10, 0.8
	counts := []int64{400, 350, 300, 250, 200, 150, 100, 80, 60, 40}
	var n int64
	for _, c := range counts {
		n += c
	}
	r := rng.New(123)
	for _, p := range testProtocols(t, d, eps) {
		const trials = 80
		fastMean := make([]float64, d)
		exactMean := make([]float64, d)
		for trial := 0; trial < trials; trial++ {
			fast, err := p.SimulateGenuineCounts(r, counts)
			if err != nil {
				t.Fatal(err)
			}
			reports, err := PerturbAll(p, r, counts)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := CountSupports(reports, d)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < d; v++ {
				fastMean[v] += float64(fast[v])
				exactMean[v] += float64(exact[v])
			}
		}
		for v := 0; v < d; v++ {
			fm := fastMean[v] / trials
			em := exactMean[v] / trials
			// Both estimate E[C(v)]; allow 6 standard errors.
			sd := math.Sqrt(float64(n) * 0.25) // loose upper bound on sd(C(v))
			tol := 6 * sd / math.Sqrt(trials)
			if math.Abs(fm-em) > tol {
				t.Fatalf("%s: item %d fast %v exact %v (tol %v)", p.Name(), v, fm, em, tol)
			}
		}
	}
}

// TestSimulateGenuineCountsConservation: GRR's support counts must sum to
// exactly n (each report supports exactly one item).
func TestSimulateGenuineCountsConservationGRR(t *testing.T) {
	grr, _ := NewGRR(25, 0.5)
	r := rng.New(6)
	counts := make([]int64, 25)
	for i := range counts {
		counts[i] = int64(100 + i)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	for trial := 0; trial < 50; trial++ {
		sim, err := grr.SimulateGenuineCounts(r, counts)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, c := range sim {
			if c < 0 {
				t.Fatal("negative support count")
			}
			total += c
		}
		if total != n {
			t.Fatalf("GRR support counts sum %d want %d", total, n)
		}
	}
}

func TestSimulateGenuineCountsValidation(t *testing.T) {
	r := rng.New(1)
	for _, p := range testProtocols(t, 10, 0.5) {
		if _, err := p.SimulateGenuineCounts(r, make([]int64, 5)); err == nil {
			t.Fatalf("%s accepted wrong-length counts", p.Name())
		}
		if _, err := p.SimulateGenuineCounts(nil, make([]int64, 10)); err == nil {
			t.Fatalf("%s accepted nil rng", p.Name())
		}
		bad := make([]int64, 10)
		bad[3] = -1
		if _, err := p.SimulateGenuineCounts(r, bad); err == nil {
			t.Fatalf("%s accepted negative count", p.Name())
		}
	}
}
