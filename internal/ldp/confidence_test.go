package ldp

import (
	"testing"

	"ldprecover/internal/rng"
)

func TestConfidenceIntervalValidation(t *testing.T) {
	oue, _ := NewOUE(10, 0.5)
	if _, _, err := ConfidenceInterval(nil, 0.1, 100, 0.05); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, _, err := ConfidenceInterval(oue, 0.1, 0, 0.05); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := ConfidenceInterval(oue, 0.1, 100, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, _, err := ConfidenceInterval(oue, 0.1, 100, 1.5); err == nil {
		t.Fatal("alpha>1 accepted")
	}
}

func TestConfidenceIntervalShrinksWithN(t *testing.T) {
	oue, _ := NewOUE(10, 0.5)
	lo1, hi1, err := ConfidenceInterval(oue, 0.1, 1000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := ConfidenceInterval(oue, 0.1, 100000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if hi1-lo1 <= hi2-lo2 {
		t.Fatalf("interval did not shrink: %v vs %v", hi1-lo1, hi2-lo2)
	}
	if lo1 >= 0.1 || hi1 <= 0.1 {
		t.Fatalf("interval [%v,%v] does not bracket the estimate", lo1, hi1)
	}
}

// TestConfidenceIntervalCoverage: empirical coverage of the 95% CI must
// be close to 95%.
func TestConfidenceIntervalCoverage(t *testing.T) {
	const d, eps = 10, 0.9
	const n = int64(5000)
	const trueF = 0.2
	oue, _ := NewOUE(d, eps)
	pr := oue.Params()
	r := rng.New(13)
	trueCounts := make([]int64, d)
	trueCounts[0] = int64(trueF * float64(n))
	trueCounts[1] = n - trueCounts[0]
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		counts, err := oue.SimulateGenuineCounts(r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		est := (float64(counts[0]) - float64(n)*pr.Q) / (float64(n) * (pr.P - pr.Q))
		lo, hi, err := ConfidenceInterval(oue, est, n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if trueF >= lo && trueF <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("95%% CI empirical coverage %v", rate)
	}
}
