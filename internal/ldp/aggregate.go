package ldp

import (
	"errors"
	"fmt"
)

func errLenMismatch(got, want int) error {
	return fmt.Errorf("ldp: count vector length %d, domain %d", got, want)
}

func errNegCount(item int, c int64) error {
	return fmt.Errorf("ldp: negative count %d for item %d", c, item)
}

func errInvalidG(g int) error {
	return fmt.Errorf("ldp: hash range g=%d < 2", g)
}

// CountSupports aggregates raw support counts C(v) (Eq. 12) from reports
// over a domain of size d, through the same type-specialized batch fast
// paths as Accumulator.AddBatch.
func CountSupports(reports []Report, d int) ([]int64, error) {
	if d < 1 {
		return nil, errors.New("ldp: non-positive domain")
	}
	for i, rep := range reports {
		if rep == nil {
			return nil, fmt.Errorf("ldp: nil report at index %d", i)
		}
	}
	acc := Accumulator{counts: make([]int64, d)}
	acc.addBatch(reports)
	return acc.counts, nil
}

// Unbias transforms raw support counts into unbiased frequency estimates
// via Eq. (11): f̃(v) = (C(v) - n·q) / (n·(p-q)). total is the number of
// reports the counts were aggregated from.
func Unbias(counts []int64, total int64, pr Params) ([]float64, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(counts) != pr.Domain {
		return nil, errLenMismatch(len(counts), pr.Domain)
	}
	if total <= 0 {
		return nil, fmt.Errorf("ldp: non-positive report total %d", total)
	}
	n := float64(total)
	denom := n * (pr.P - pr.Q)
	fs := make([]float64, len(counts))
	for v, c := range counts {
		fs[v] = (float64(c) - n*pr.Q) / denom
	}
	return fs, nil
}

// Rebias is the inverse of Unbias: it converts a frequency-estimate vector
// back into expected raw support counts. Used by tests and by defenses
// that need to move between count space and frequency space.
func Rebias(freqs []float64, total int64, pr Params) ([]float64, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(freqs) != pr.Domain {
		return nil, errLenMismatch(len(freqs), pr.Domain)
	}
	if total <= 0 {
		return nil, fmt.Errorf("ldp: non-positive report total %d", total)
	}
	n := float64(total)
	counts := make([]float64, len(freqs))
	for v, f := range freqs {
		counts[v] = f*n*(pr.P-pr.Q) + n*pr.Q
	}
	return counts, nil
}

// EstimateFrequencies runs the full server-side pipeline on report-level
// data: support counting followed by unbiasing.
func EstimateFrequencies(reports []Report, pr Params) ([]float64, error) {
	counts, err := CountSupports(reports, pr.Domain)
	if err != nil {
		return nil, err
	}
	return Unbias(counts, int64(len(reports)), pr)
}
