package ldp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"ldprecover/internal/rng"
)

func samplePartial(nodeID string, hint int, d int, seed uint64) *PartialTally {
	r := rng.New(seed)
	p := &PartialTally{NodeID: nodeID, EpochHint: hint, Counts: make([]int64, d)}
	for v := range p.Counts {
		p.Counts[v] = int64(r.Uint64() % 10_000)
	}
	p.Users = int64(r.Uint64() % 100_000)
	return p
}

func TestPartialRoundTrip(t *testing.T) {
	for _, tc := range []*PartialTally{
		samplePartial("edge-0", 0, 2, 1),
		samplePartial("a", 17, 128, 2),
		samplePartial("sdk-with-a-long-name.example.com:8347", 1<<30, 4096, 3),
		{NodeID: "zero-users", EpochHint: 5, Counts: make([]int64, 64), Users: 0},
	} {
		frame, err := MarshalPartial(tc)
		if err != nil {
			t.Fatalf("marshal %q: %v", tc.NodeID, err)
		}
		got, err := UnmarshalPartial(frame)
		if err != nil {
			t.Fatalf("unmarshal %q: %v", tc.NodeID, err)
		}
		if !reflect.DeepEqual(got, tc) {
			t.Fatalf("round trip mutated partial %q: got %+v want %+v", tc.NodeID, got, tc)
		}
	}
}

func TestPartialMarshalRejectsInvalid(t *testing.T) {
	d := 8
	ok := samplePartial("n", 0, d, 4)
	for name, mutate := range map[string]func(*PartialTally){
		"empty-node":     func(p *PartialTally) { p.NodeID = "" },
		"huge-node":      func(p *PartialTally) { p.NodeID = string(make([]byte, maxTallyNodeID+1)) },
		"negative-hint":  func(p *PartialTally) { p.EpochHint = -1 },
		"negative-users": func(p *PartialTally) { p.Users = -1 },
		"negative-count": func(p *PartialTally) { p.Counts[3] = -5 },
		"tiny-domain":    func(p *PartialTally) { p.Counts = p.Counts[:1] },
	} {
		bad := ok.Clone()
		mutate(bad)
		if _, err := MarshalPartial(bad); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: marshal error %v, want ErrCodec", name, err)
		}
	}
	if _, err := MarshalPartial(nil); !errors.Is(err, ErrCodec) {
		t.Errorf("nil partial: marshal error %v, want ErrCodec", err)
	}
}

func TestPartialUnmarshalRejectsCorruption(t *testing.T) {
	frame, err := MarshalPartial(samplePartial("edge-1", 3, 32, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Any single bit flip must fail the CRC (or a structural check), and
	// every truncation must error rather than panic.
	for i := range frame {
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		if _, err := UnmarshalPartial(bad); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
	for n := 0; n < len(frame); n++ {
		if _, err := UnmarshalPartial(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	if _, err := UnmarshalPartial(append(bytes.Clone(frame), 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}

// TestPartialTallyMagicDisjoint: an "LT" sealed-tally frame must not
// decode as a partial and vice versa — the WAL replay dispatch and the
// serve endpoints rely on the 2-byte magic to route frame kinds.
func TestPartialTallyMagicDisjoint(t *testing.T) {
	tallyFrame, err := MarshalTally(sampleTally("n", 3, 16, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPartial(tallyFrame); !errors.Is(err, ErrCodec) {
		t.Fatalf("tally frame decoded as partial: %v", err)
	}
	partialFrame, err := MarshalPartial(samplePartial("n", 3, 16, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalTally(partialFrame); !errors.Is(err, ErrCodec) {
		t.Fatalf("partial frame decoded as tally: %v", err)
	}
}

// TestCollectorPartitionProperty pins the edge pre-aggregation
// guarantee: however a report stream is partitioned across collectors,
// the flushed partials merge to exactly the sequential accumulator's
// aggregate — same counts, same user total.
func TestCollectorPartitionProperty(t *testing.T) {
	const d = 130
	reps := mixedReports(t, d)
	// mixedReports includes the unmarshalable fallback type, which is
	// fine here: collectors fold Report values, not wire frames.
	seq, err := NewAccumulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		if err := seq.Add(rep); err != nil {
			t.Fatal(err)
		}
	}

	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		k := 1 + r.Intn(6)
		cols := make([]*Collector, k)
		for i := range cols {
			c, err := NewCollector("edge", d)
			if err != nil {
				t.Fatal(err)
			}
			cols[i] = c
		}
		// Random partition, ingested in random-size chunks so both Add
		// and AddBatch paths run.
		i := 0
		for i < len(reps) {
			c := cols[r.Intn(k)]
			n := 1 + r.Intn(40)
			if i+n > len(reps) {
				n = len(reps) - i
			}
			if n == 1 && r.Intn(2) == 0 {
				if err := c.Add(reps[i]); err != nil {
					t.Fatal(err)
				}
			} else if err := c.AddBatch(reps[i : i+n]); err != nil {
				t.Fatal(err)
			}
			i += n
		}
		merged := make([]int64, d)
		var users int64
		for _, c := range cols {
			frame, err := c.Flush(7)
			if err != nil {
				t.Fatal(err)
			}
			p, err := UnmarshalPartial(frame)
			if err != nil {
				t.Fatal(err)
			}
			for v, cnt := range p.Counts {
				merged[v] += cnt
			}
			users += p.Users
			if c.Users() != 0 {
				t.Fatal("flush did not reset the collector")
			}
		}
		if users != seq.Total() {
			t.Fatalf("trial %d (k=%d): merged users %d want %d", trial, k, users, seq.Total())
		}
		if !reflect.DeepEqual(merged, seq.Counts()) {
			t.Fatalf("trial %d (k=%d): merged partials diverged from sequential", trial, k)
		}
	}
}

// TestCollectorAddCountsExact: pre-aggregated counts fold in exactly and
// show up in the next flush; invalid inputs are rejected.
func TestCollectorAddCountsExact(t *testing.T) {
	c, err := NewCollector("edge", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddCounts([]int64{1, 2, 3, 4}, 6); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCounts([]int64{10, 0, 0, 1}, 11); err != nil {
		t.Fatal(err)
	}
	p, err := c.Partial(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Counts, []int64{11, 2, 3, 5}) || p.Users != 17 || p.EpochHint != 2 {
		t.Fatalf("partial %+v", p)
	}
	if err := c.AddCounts([]int64{1, 2, 3}, 1); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if err := c.AddCounts([]int64{1, -2, 3, 0}, 1); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := c.AddCounts([]int64{1, 2, 3, 0}, -1); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestNewCollectorValidation(t *testing.T) {
	if _, err := NewCollector("", 8); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewCollector(string(make([]byte, maxTallyNodeID+1)), 8); err == nil {
		t.Fatal("oversized node id accepted")
	}
	if _, err := NewCollector("n", 1); err == nil {
		t.Fatal("domain 1 accepted")
	}
}

// FuzzUnmarshalPartial: arbitrary bytes must never panic the decoder,
// and every frame that decodes must re-encode to an equivalent partial.
func FuzzUnmarshalPartial(f *testing.F) {
	for _, seed := range []*PartialTally{
		samplePartial("edge-0", 0, 2, 1),
		samplePartial("edge-1", 12, 48, 2),
		{NodeID: "z", EpochHint: 1, Counts: make([]int64, 4), Users: 0},
	} {
		frame, err := MarshalPartial(seed)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncated
		badCRC := bytes.Clone(frame)
		badCRC[len(badCRC)-1] ^= 0xff
		f.Add(badCRC)
	}
	// Epoch hint beyond int64: patch the hint field and re-CRC so the
	// decoder reaches the range check rather than failing the checksum.
	over, err := MarshalPartial(samplePartial("edge-2", 1, 8, 3))
	if err != nil {
		f.Fatal(err)
	}
	hintOff := partialHeaderSize + len("edge-2")
	binary.LittleEndian.PutUint64(over[hintOff:], math.MaxInt64+1)
	body := over[:len(over)-4]
	binary.LittleEndian.PutUint32(over[len(over)-4:], crc32.Checksum(body, tallyCRCTable))
	f.Add(over)
	f.Add([]byte("LP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPartial(data)
		if err != nil {
			return
		}
		frame, err := MarshalPartial(p)
		if err != nil {
			t.Fatalf("decoded partial does not re-encode: %v", err)
		}
		back, err := UnmarshalPartial(frame)
		if err != nil {
			t.Fatalf("re-encoded partial does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Fatal("partial mutated across re-encode round trip")
		}
	})
}
