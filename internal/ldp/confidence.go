package ldp

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/stats"
)

// ConfidenceInterval returns the two-sided (1-alpha) confidence interval
// for an item's estimated frequency, using the protocol's theoretical
// count variance (Eq. 4/7/10) under the CLT. f is the estimated
// frequency (plugged into the f-dependent variance term), n the number of
// reports aggregated. The interval is not clipped to [0,1]: unbiased LDP
// estimates legitimately stray outside, and callers comparing against the
// interval need its true width.
func ConfidenceInterval(p Protocol, f float64, n int64, alpha float64) (lo, hi float64, err error) {
	if p == nil {
		return 0, 0, errors.New("ldp: nil protocol")
	}
	if n <= 0 {
		return 0, 0, fmt.Errorf("ldp: invalid report count %d", n)
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return 0, 0, fmt.Errorf("ldp: alpha %v outside (0,1)", alpha)
	}
	fClamped := math.Min(math.Max(f, 0), 1)
	z := stats.NormalQuantile(1-alpha/2, 0, 1)
	// Count variance -> frequency standard deviation.
	sigma := math.Sqrt(math.Max(p.Variance(fClamped, n), 0)) / float64(n)
	return f - z*sigma, f + z*sigma, nil
}
