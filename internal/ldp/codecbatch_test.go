package ldp

import (
	"encoding/binary"
	"errors"
	"testing"

	"ldprecover/internal/rng"
)

// TestReportBatchRoundTrip round-trips a mixed-protocol batch and checks
// aggregation equivalence: decoding must reproduce exactly the support
// counts of the original reports.
func TestReportBatchRoundTrip(t *testing.T) {
	const d, eps = 24, 0.7
	r := rng.New(5)
	var reps []Report
	for _, build := range []func() (Protocol, error){
		func() (Protocol, error) { return NewGRR(d, eps) },
		func() (Protocol, error) { return NewOUE(d, eps) },
		func() (Protocol, error) { return NewOLH(d, eps) },
		func() (Protocol, error) { return NewSUE(d, eps) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 8; v++ {
			rep, err := p.Perturb(r, v%d)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
		}
	}

	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReportBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reps) {
		t.Fatalf("decoded %d reports, want %d", len(got), len(reps))
	}
	want, err := CountSupports(reps, d)
	if err != nil {
		t.Fatal(err)
	}
	have, err := CountSupports(got, d)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if want[v] != have[v] {
			t.Fatalf("item %d: decoded support %d, want %d", v, have[v], want[v])
		}
	}
}

// TestReportBatchEmpty round-trips the zero-report frame.
func TestReportBatchEmpty(t *testing.T) {
	frame, err := MarshalReportBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReportBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d reports from empty batch", len(got))
	}
}

// TestReportBatchMalformed exercises the decoder's structural checks.
func TestReportBatchMalformed(t *testing.T) {
	good, err := MarshalReportBatch([]Report{GRRReport(3), GRRReport(5)})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"short":       good[:3],
		"bad magic":   append([]byte("XX"), good[2:]...),
		"bad version": append([]byte{'L', 'B', 9}, good[3:]...),
		"trailing":    append(append([]byte(nil), good...), 0xFF),
		"truncated":   good[:len(good)-3],
	}
	// Count larger than the physical frame.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[3:], 1<<20)
	cases["inflated count"] = huge
	// Count above the hard cap.
	capped := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(capped[3:], MaxBatchReports+1)
	cases["over cap"] = capped
	// Per-report length running past the frame.
	overrun := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overrun[7:], 1<<30)
	cases["report overrun"] = overrun
	// A corrupt inner report surfaces the single-report codec error.
	inner := append([]byte(nil), good...)
	inner[11+1] = 200 // unknown protocol tag in the first report
	cases["bad inner tag"] = inner

	for name, frame := range cases {
		if _, err := UnmarshalReportBatch(frame); err == nil {
			t.Errorf("%s: decoded successfully", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

// FuzzUnmarshalReportBatch: arbitrary frames must never panic the batch
// decoder, and anything it accepts must survive an aggregate-preserving
// re-encode round trip.
func FuzzUnmarshalReportBatch(f *testing.F) {
	r := rng.New(17)
	oue, err := NewOUE(16, 0.8)
	if err != nil {
		f.Fatal(err)
	}
	olh, err := NewOLH(16, 0.8)
	if err != nil {
		f.Fatal(err)
	}
	var reps []Report
	for v := 0; v < 4; v++ {
		for _, p := range []Protocol{oue, olh} {
			rep, err := p.Perturb(r, v)
			if err != nil {
				f.Fatal(err)
			}
			reps = append(reps, rep)
		}
	}
	reps = append(reps, GRRReport(3))
	for _, batch := range [][]Report{nil, reps[:1], reps} {
		frame, err := MarshalReportBatch(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("LB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := UnmarshalReportBatch(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		frame, err := MarshalReportBatch(decoded)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		back, err := UnmarshalReportBatch(frame)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if len(back) != len(decoded) {
			t.Fatalf("batch size changed across round trip: %d -> %d", len(decoded), len(back))
		}
		// The batch's aggregate — the only thing the server consumes —
		// must be unchanged.
		if len(decoded) > 0 {
			before := make([]int64, 16)
			after := make([]int64, 16)
			for i := range decoded {
				decoded[i].AddSupports(before)
				back[i].AddSupports(after)
			}
			for v := range before {
				if before[v] != after[v] {
					t.Fatalf("aggregate changed at item %d: %d -> %d", v, before[v], after[v])
				}
			}
		}
	})
}
