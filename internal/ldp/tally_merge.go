package ldp

import (
	"runtime"
	"sync"
)

// Chunk-parallel tally merging, the fold the merge tree's accept path
// runs on every arriving tally (merge-on-arrival, DESIGN.md §9). The
// counts vector splits into disjoint contiguous chunks handed to a
// small worker pool — the same shape as ShardedAccumulator's per-shard
// parallelism, minus the locks: chunks never overlap, so the folds are
// race-free by construction and the result is bit-identical to the
// sequential MergeInto whatever the worker count.
const (
	// parallelMergeMin is the domain size below which MergeParallel
	// stays sequential: under ~32K int64 adds the fold is a few
	// microseconds and goroutine handoff would dominate.
	parallelMergeMin = 1 << 15
	// parallelMergeGrain is the minimum chunk per worker, so a domain
	// just over the threshold does not shatter into sub-cache-line
	// slivers across many cores.
	parallelMergeGrain = 1 << 13
)

// MergeParallel folds this tally into acc exactly like MergeInto,
// splitting the counts vector across a worker pool when the domain and
// GOMAXPROCS make that worthwhile. On a single-core box it degrades to
// the plain sequential fold — still the accept path's win over the
// previous clone-at-accept + re-merge-at-seal scheme, which paid an
// extra O(d) copy and a second O(d) pass per tally; with more cores the
// chunks fold concurrently on top of that.
func (t *Tally) MergeParallel(acc *Tally) error {
	return t.mergeParallelInto(acc, runtime.GOMAXPROCS(0))
}

// mergeParallelInto is MergeParallel with an explicit worker count, the
// hook the sequential-identical property test uses to force real
// chunking regardless of the host's core count.
func (t *Tally) mergeParallelInto(acc *Tally, workers int) error {
	if acc == nil {
		return t.MergeInto(acc) // shared validation error
	}
	d := len(t.Counts)
	if workers > 1 && d >= parallelMergeMin {
		if max := d / parallelMergeGrain; workers > max {
			workers = max
		}
	}
	if workers <= 1 || d < parallelMergeMin {
		return t.MergeInto(acc)
	}
	if d != len(acc.Counts) || t.Epoch != acc.Epoch {
		return t.MergeInto(acc) // shared validation error
	}
	chunk := (d + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < d; lo += chunk {
		hi := lo + chunk
		if hi > d {
			hi = d
		}
		wg.Add(1)
		go func(src, dst []int64) {
			defer wg.Done()
			for v, c := range src {
				dst[v] += c
			}
		}(t.Counts[lo:hi], acc.Counts[lo:hi])
	}
	wg.Wait()
	acc.Total += t.Total
	return nil
}
