package ldp

import (
	"errors"
	"reflect"
	"testing"
)

func TestAnnounceRoundTrip(t *testing.T) {
	for _, a := range []*Announce{
		{NodeID: "fe-0", Kind: AnnounceJoin, Epoch: 0},
		{NodeID: "fe-1", Kind: AnnounceJoin, Epoch: 17},
		{NodeID: "a-node.example.com:8347", Kind: AnnounceLeave, Epoch: 1 << 40},
	} {
		frame, err := MarshalAnnounce(a)
		if err != nil {
			t.Fatalf("marshal %+v: %v", a, err)
		}
		back, err := UnmarshalAnnounce(frame)
		if err != nil {
			t.Fatalf("unmarshal %+v: %v", a, err)
		}
		if !reflect.DeepEqual(back, a) {
			t.Fatalf("round trip mutated announce: %+v -> %+v", a, back)
		}
	}
}

func TestAnnounceValidation(t *testing.T) {
	long := make([]byte, maxTallyNodeID+1)
	for i := range long {
		long[i] = 'x'
	}
	for name, a := range map[string]*Announce{
		"empty-node":     {Kind: AnnounceJoin},
		"long-node":      {NodeID: string(long), Kind: AnnounceJoin},
		"zero-kind":      {NodeID: "a"},
		"unknown-kind":   {NodeID: "a", Kind: 9},
		"negative-epoch": {NodeID: "a", Kind: AnnounceLeave, Epoch: -1},
	} {
		t.Run(name, func(t *testing.T) {
			if err := a.Validate(); !errors.Is(err, ErrCodec) {
				t.Fatalf("Validate: %v", err)
			}
			if _, err := MarshalAnnounce(a); !errors.Is(err, ErrCodec) {
				t.Fatalf("Marshal: %v", err)
			}
		})
	}
	if _, err := MarshalAnnounce(nil); !errors.Is(err, ErrCodec) {
		t.Fatalf("nil announce: %v", err)
	}
}

func TestAnnounceDecodeRejectsCorruption(t *testing.T) {
	frame, err := MarshalAnnounce(&Announce{NodeID: "fe-0", Kind: AnnounceJoin, Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     frame[:len(frame)-5],
		"magic":     append([]byte("XX"), frame[2:]...),
		"version":   append([]byte{frame[0], frame[1], 99}, frame[3:]...),
		"trailing":  append(append([]byte(nil), frame...), 0),
		"bitflip":   append([]byte{frame[0], frame[1], frame[2], frame[3] ^ 0x40}, frame[4:]...),
		"crc-flip":  append(append([]byte(nil), frame[:len(frame)-1]...), frame[len(frame)-1]^1),
		"kind-flip": func() []byte { b := append([]byte(nil), frame...); b[3] = 7; return b }(),
	}
	for name, data := range cases {
		if _, err := UnmarshalAnnounce(data); !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: decoded corrupt frame (%v)", name, err)
		}
	}
}

// FuzzUnmarshalAnnounce: arbitrary bytes must never panic the decoder,
// and every frame that decodes must re-encode to an equivalent
// announcement (the decoder accepts nothing the encoder cannot
// reproduce).
func FuzzUnmarshalAnnounce(f *testing.F) {
	for _, seed := range []*Announce{
		{NodeID: "fe-0", Kind: AnnounceJoin, Epoch: 0},
		{NodeID: "fe-join.example.com", Kind: AnnounceJoin, Epoch: 42},
		{NodeID: "z", Kind: AnnounceLeave, Epoch: 7},
	} {
		frame, err := MarshalAnnounce(seed)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("LA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := UnmarshalAnnounce(data)
		if err != nil {
			return
		}
		frame, err := MarshalAnnounce(a)
		if err != nil {
			t.Fatalf("decoded announce does not re-encode: %v", err)
		}
		back, err := UnmarshalAnnounce(frame)
		if err != nil {
			t.Fatalf("re-encoded announce does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, a) {
			t.Fatal("announce mutated across re-encode round trip")
		}
	})
}
