package ldp

import (
	"encoding/binary"
	"fmt"
)

// Batch wire format: many reports in one frame, the unit the serving
// layer ingests over HTTP. Layout (little endian):
//
//	byte 0..1:  "LB" magic
//	byte 2:     batch format version (currently 1)
//	byte 3..6:  uint32 report count
//	then per report: uint32 length, followed by that many bytes of the
//	single-report wire format (MarshalReport).
//
// The frame deliberately carries no compression or domain metadata —
// reports are already near-incompressible perturbed bits, and domain
// validation belongs to the aggregating server, exactly as in the
// single-report codec.
const (
	batchVersion = 1

	// MaxBatchReports caps a frame's declared report count so a corrupt
	// or hostile length field cannot make the decoder pre-allocate
	// gigabytes. Servers enforce their own (usually much smaller) batch
	// limits on top.
	MaxBatchReports = 1 << 22
)

var batchMagic = [2]byte{'L', 'B'}

// MarshalReportBatch frames a slice of reports for the wire. Marshaling
// is per report, so a frame may mix protocols; decoding rejects nothing a
// single-report decode would accept.
func MarshalReportBatch(reps []Report) ([]byte, error) {
	if len(reps) > MaxBatchReports {
		return nil, fmt.Errorf("%w: batch of %d reports exceeds cap %d",
			ErrCodec, len(reps), MaxBatchReports)
	}
	bufs := make([][]byte, len(reps))
	size := 7
	for i, rep := range reps {
		b, err := MarshalReport(rep)
		if err != nil {
			return nil, fmt.Errorf("batch report %d: %w", i, err)
		}
		bufs[i] = b
		size += 4 + len(b)
	}
	out := make([]byte, 0, size)
	out = append(out, batchMagic[0], batchMagic[1], batchVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(reps)))
	for _, b := range bufs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalReportBatch parses a wire-format report batch. The frame must
// be exactly one batch: trailing bytes are an error, like every other
// malformed frame.
func UnmarshalReportBatch(data []byte) ([]Report, error) {
	if len(data) < 7 {
		return nil, fmt.Errorf("%w: short batch frame (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != batchMagic[0] || data[1] != batchMagic[1] {
		return nil, fmt.Errorf("%w: bad batch magic %q", ErrCodec, string(data[:2]))
	}
	if data[2] != batchVersion {
		return nil, fmt.Errorf("%w: unsupported batch version %d", ErrCodec, data[2])
	}
	count := binary.LittleEndian.Uint32(data[3:])
	if count > MaxBatchReports {
		return nil, fmt.Errorf("%w: batch declares %d reports, cap %d",
			ErrCodec, count, MaxBatchReports)
	}
	// A report is at least 6 bytes on the wire (GRR) plus its 4-byte
	// length prefix, so the declared count also may not exceed what the
	// frame could physically hold.
	if int64(count)*10 > int64(len(data)-7) {
		return nil, fmt.Errorf("%w: batch declares %d reports in %d bytes",
			ErrCodec, count, len(data))
	}
	reps := make([]Report, 0, count)
	rest := data[7:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: batch truncated at report %d", ErrCodec, i)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: batch report %d declares %d bytes, %d remain",
				ErrCodec, i, n, len(rest))
		}
		rep, err := UnmarshalReport(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("batch report %d: %w", i, err)
		}
		reps = append(reps, rep)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCodec, len(rest))
	}
	return reps, nil
}
