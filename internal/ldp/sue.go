package ldp

import (
	"math"

	"ldprecover/internal/rng"
)

// SUE is Symmetric Unary Encoding — basic RAPPOR (Erlingsson et al.,
// CCS'14) in the pure-LDP framework of Wang et al.: one-hot encode, then
// flip each bit symmetrically with
//
//	p = e^{ε/2}/(e^{ε/2}+1)   (true bit stays 1)
//	q = 1/(e^{ε/2}+1)         (other bits become 1)
//
// SUE is not evaluated in the paper but is a pure LDP protocol under the
// same unified aggregation (Eq. 11), so LDPRecover applies unchanged —
// the package tests and the generality experiment use it to demonstrate
// exactly that.
type SUE struct {
	params  Params
	sampler unarySampler
}

// NewSUE constructs an SUE protocol over a domain of size d with privacy
// budget epsilon.
func NewSUE(d int, epsilon float64) (*SUE, error) {
	half := math.Exp(epsilon / 2)
	if math.IsInf(half, 1) {
		return nil, errEpsilonTooLarge("SUE", epsilon, "e^(eps/2) overflows float64")
	}
	pr := Params{
		Epsilon: epsilon,
		Domain:  d,
		P:       half / (half + 1),
		Q:       1 / (half + 1),
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := checkPerturbable("SUE", pr); err != nil {
		return nil, err
	}
	return &SUE{params: pr, sampler: newUnarySampler(d, pr.P, pr.Q)}, nil
}

// Name implements Protocol.
func (s *SUE) Name() string { return "SUE" }

// Params implements Protocol.
func (s *SUE) Params() Params { return s.params }

// Perturb implements Protocol: symmetric per-bit randomized response via
// the shared unary sampler (fixed-point dense path, or skip-sampled
// sparse reports when q is small).
func (s *SUE) Perturb(r *rng.Rand, v int) (Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	if err := checkItem(v, s.params.Domain); err != nil {
		return nil, err
	}
	return s.sampler.perturb(r, v, nil), nil
}

// CraftSupport implements Protocol: the clean one-hot vector of v.
func (s *SUE) CraftSupport(_ *rng.Rand, v int) (Report, error) {
	if err := checkItem(v, s.params.Domain); err != nil {
		return nil, err
	}
	bits := NewBitset(s.params.Domain)
	bits.Set(v)
	return OUEReport{Bits: bits}, nil
}

// BatchPerturb implements BatchPerturber: like OUE, bits are perturbed
// independently, so per-item counts are exactly independent binomials.
func (s *SUE) BatchPerturb(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return independentBinomialCounts(r, trueCounts, s.params.Domain, s.params.P, s.params.Q)
}

// SimulateGenuineCounts implements Protocol via the batch fast path.
func (s *SUE) SimulateGenuineCounts(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return s.BatchPerturb(r, trueCounts)
}

// batchPQ marks SUE's per-item counts as independent binomials so
// BatchSimulate can parallelize over the item range.
func (s *SUE) batchPQ() (float64, float64) { return s.params.P, s.params.Q }

// Variance implements Protocol: Wang et al.'s SUE count variance at f=0,
// n·q(1-q)/(p-q)², plus the frequency-dependent term n·f·(1-p-q)/(p-q).
func (s *SUE) Variance(f float64, n int64) float64 {
	pq := s.params.P - s.params.Q
	nn := float64(n)
	return nn*s.params.Q*(1-s.params.Q)/(pq*pq) + nn*f*(1-s.params.P-s.params.Q)/pq
}

var (
	_ Protocol       = (*SUE)(nil)
	_ BatchPerturber = (*SUE)(nil)
)
