package ldp

import (
	"bytes"
	"reflect"
	"testing"

	"ldprecover/internal/rng"
)

// wireReports builds a deterministic mix of every marshalable report
// shape — dense unary, sparse unary, OLH, GRR — interleaved so the
// frame walkers see many run boundaries.
func wireReports(t testing.TB, d, n int) []Report {
	t.Helper()
	r := rng.New(271)
	oue, err := NewOUE(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oueSparse, err := NewOUE(d, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLH(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	grr, err := NewGRR(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	for i := 0; i < n; i++ {
		v := r.Intn(d)
		var proto Protocol
		switch i % 6 {
		case 0, 1, 2:
			proto = oue
		case 3:
			proto = oueSparse
		case 4:
			proto = olh
		default:
			proto = grr
		}
		rep, err := proto.Perturb(r, v)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return reps
}

// TestAddBatchFrameMatchesDecodedExact pins the zero-copy lane's core
// guarantee: folding the wire frame in place is bit-identical to
// decoding it and folding the reports, through both the sequential and
// the sharded engines.
func TestAddBatchFrameMatchesDecodedExact(t *testing.T) {
	for _, d := range []int{64, 100, 130, 200} {
		reps := wireReports(t, d, 700)
		frame, err := MarshalReportBatch(reps)
		if err != nil {
			t.Fatal(err)
		}

		decoded, err := UnmarshalReportBatch(frame)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.AddBatch(decoded); err != nil {
			t.Fatal(err)
		}

		zc, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := zc.AddBatchFrame(frame); err != nil {
			t.Fatal(err)
		}
		if zc.Total() != ref.Total() {
			t.Fatalf("d=%d: totals %d vs %d", d, zc.Total(), ref.Total())
		}
		if !reflect.DeepEqual(zc.Counts(), ref.Counts()) {
			t.Fatalf("d=%d: zero-copy counts diverged from decoded", d)
		}

		sa, err := NewShardedAccumulator(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := sa.AddBatchFrame(frame); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa.Counts(), ref.Counts()) {
			t.Fatalf("d=%d: sharded zero-copy counts diverged", d)
		}
	}
}

// TestAddBatchFrameOverlongReports: reports wider than the accumulator's
// domain must drop out-of-domain bits exactly like the decoded path.
func TestAddBatchFrameOverlongReports(t *testing.T) {
	const repBits = 192
	const d = 100
	reps := wireReports(t, repBits, 300)
	reps = append(reps, SparseUnaryReport{N: repBits, Items: []int32{5, 99, 100, 191}})
	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewAccumulator(d)
	decoded, err := UnmarshalReportBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AddBatch(decoded); err != nil {
		t.Fatal(err)
	}
	zc, _ := NewAccumulator(d)
	if err := zc.AddBatchFrame(frame); err != nil {
		t.Fatal(err)
	}
	if zc.Total() != ref.Total() || !reflect.DeepEqual(zc.Counts(), ref.Counts()) {
		t.Fatal("zero-copy over-long fold diverged from decoded")
	}
}

// TestAddBatchFrameLongDenseRun pushes a homogeneous dense frame through
// several CSA flush boundaries plus a non-multiple-of-8 tail.
func TestAddBatchFrameLongDenseRun(t *testing.T) {
	const d = 193
	oue, err := NewOUE(d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(88)
	reps := make([]Report, 8*300+5)
	for i := range reps {
		rep, err := oue.Perturb(r, i%d)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewAccumulator(d)
	if err := ref.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	zc, _ := NewAccumulator(d)
	if err := zc.AddBatchFrame(frame); err != nil {
		t.Fatal(err)
	}
	if zc.Total() != ref.Total() || !reflect.DeepEqual(zc.Counts(), ref.Counts()) {
		t.Fatal("zero-copy dense run diverged from AddBatch")
	}
}

// TestValidateFrameMatchesDecode: the allocation-free validator must
// accept exactly the frames the decoder accepts — checked over a valid
// frame, every single-bit corruption of it, and every truncation.
func TestValidateFrameMatchesDecode(t *testing.T) {
	const d = 130
	reps := wireReports(t, d, 40)
	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	check := func(data []byte) {
		t.Helper()
		count, verr := ValidateReportBatchFrame(data)
		decoded, derr := UnmarshalReportBatch(data)
		if (verr == nil) != (derr == nil) {
			t.Fatalf("validator/decoder disagree: validate=%v decode=%v", verr, derr)
		}
		if verr == nil && count != len(decoded) {
			t.Fatalf("validator count %d, decoder count %d", count, len(decoded))
		}
	}
	check(frame)
	for i := range frame {
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		check(bad)
	}
	for n := 0; n < len(frame); n++ {
		check(frame[:n])
	}
	check(append(bytes.Clone(frame), 0))
}

// TestAddBatchFrameErrorLeavesUntouched: a frame that fails validation
// must fold nothing — validation completes before any count moves.
func TestAddBatchFrameErrorLeavesUntouched(t *testing.T) {
	const d = 64
	reps := wireReports(t, d, 50)
	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside the last report so a streaming fold would have
	// already counted everything before it.
	bad := frame[:len(frame)-1]
	acc, _ := NewAccumulator(d)
	if err := acc.AddBatchFrame(bad); err == nil {
		t.Fatal("corrupt frame folded cleanly")
	}
	if acc.Total() != 0 {
		t.Fatalf("failed fold moved the total to %d", acc.Total())
	}
	for v, c := range acc.Counts() {
		if c != 0 {
			t.Fatalf("failed fold moved count[%d] to %d", v, c)
		}
	}
	// The same accumulator still works after a rejected frame.
	if err := acc.AddBatchFrame(frame); err != nil {
		t.Fatal(err)
	}
	if acc.Total() != int64(len(reps)) {
		t.Fatalf("total %d want %d", acc.Total(), len(reps))
	}
}

// TestAddBatchFrameSteadyStateZeroAlloc pins the lane's reason to
// exist: with warmed scratch, folding a wire frame allocates nothing —
// no reports, no bitsets, no per-call state.
func TestAddBatchFrameSteadyStateZeroAlloc(t *testing.T) {
	const d = 128
	reps := wireReports(t, d, 512)
	frame, err := MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewAccumulator(d)
	if err != nil {
		t.Fatal(err)
	}
	fold := func() {
		if err := acc.AddBatchFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	fold() // warm the scratch
	if allocs := testing.AllocsPerRun(10, fold); allocs > 0 {
		t.Errorf("%v allocs per zero-copy fold, want 0", allocs)
	}
}

// FuzzReportBatchFrame drives the validator, the decoder, and the
// zero-copy fold against each other over arbitrary bytes: they must
// agree on acceptance, and on accepted frames the in-place fold must
// equal the decoded fold exactly.
func FuzzReportBatchFrame(f *testing.F) {
	seedReps := []Report{GRRReport(3), SparseUnaryReport{N: 64, Items: []int32{1, 7}},
		OLHReport{Seed: 9, Value: 1, G: 16}}
	if frame, err := MarshalReportBatch(seedReps); err == nil {
		f.Add(frame)
	}
	if frame, err := MarshalReportBatch(nil); err == nil {
		f.Add(frame)
	}
	f.Add([]byte("LB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const d = 96
		count, verr := ValidateReportBatchFrame(data)
		decoded, derr := UnmarshalReportBatch(data)
		if (verr == nil) != (derr == nil) {
			t.Fatalf("validator/decoder disagree: validate=%v decode=%v", verr, derr)
		}
		if verr != nil {
			return
		}
		if count != len(decoded) {
			t.Fatalf("validator count %d, decoder count %d", count, len(decoded))
		}
		ref, _ := NewAccumulator(d)
		if err := ref.AddBatch(decoded); err != nil {
			t.Fatal(err)
		}
		zc, _ := NewAccumulator(d)
		if err := zc.AddBatchFrame(data); err != nil {
			t.Fatalf("validated frame failed to fold: %v", err)
		}
		if zc.Total() != ref.Total() || !reflect.DeepEqual(zc.Counts(), ref.Counts()) {
			t.Fatal("zero-copy fold diverged from decoded fold")
		}
	})
}
