package ldp

import (
	"sort"

	"ldprecover/internal/rng"
)

// unarySparseQ is the regime switch for unary perturbation: below it the
// expected gap between set bits (1/q) is long enough that geometric
// skip-sampling — generating only the set bits, O(d·q) expected work —
// beats drawing d Bernoullis, and the support list is small enough that
// the sparse report representation also wins on memory and ingest. At or
// above it (e.g. OUE at the paper's ε=0.5, where q≈0.38) reports stay
// dense bitsets and perturbation uses the fixed-point per-bit path.
const unarySparseQ = 1.0 / 32

// unarySampler carries the perturbation constants the unary-encoding
// protocols (OUE, SUE) precompute once at construction: fixed-point
// Bernoulli thresholds for the dense path and the hoisted skip constant
// for the sparse path. Hot loops touch no float math and no struct
// fields beyond these.
type unarySampler struct {
	d        int
	pFix     uint64  // fixed-point threshold for the true bit
	qFix     uint64  // fixed-point threshold for every other bit
	qSkipInv float64 // rng.SkipInv(q), hoisted out of the skip loop
	sparse   bool    // q < unarySparseQ: skip-sample into a sparse report
}

func newUnarySampler(d int, p, q float64) unarySampler {
	return unarySampler{
		d:        d,
		pFix:     rng.FixedProb(p),
		qFix:     rng.FixedProb(q),
		qSkipInv: rng.SkipInv(q),
		sparse:   q < unarySparseQ,
	}
}

// perturb draws one perturbed unary report for true item v, choosing the
// representation by density regime. items, when non-nil, is a reusable
// scratch buffer for the sparse path (the returned report aliases it).
func (u unarySampler) perturb(r *rng.Rand, v int, items []int32) Report {
	if u.sparse {
		return SparseUnaryReport{N: u.d, Items: u.appendSupport(r, v, items[:0])}
	}
	bits := NewBitset(u.d)
	u.fillDense(r, v, bits)
	return OUEReport{Bits: bits}
}

// fillDense perturbs all d bits with one fixed-point compare per bit,
// splitting the loop at v so the inner loops carry no position branch.
func (u unarySampler) fillDense(r *rng.Rand, v int, bits *Bitset) {
	for i := 0; i < v; i++ {
		if r.BernoulliU64(u.qFix) {
			bits.Set(i)
		}
	}
	if r.BernoulliU64(u.pFix) {
		bits.Set(v)
	}
	for i := v + 1; i < u.d; i++ {
		if r.BernoulliU64(u.qFix) {
			bits.Set(i)
		}
	}
}

// appendSupport generates the report's support set in increasing order by
// geometric skip-sampling over the d-1 non-true positions (remapped
// around v) and merging the true bit's independent Bernoulli(p) draw at
// its ordered position. Expected cost is O(d·q) skips plus one draw.
func (u unarySampler) appendSupport(r *rng.Rand, v int, items []int32) []int32 {
	setV := r.BernoulliU64(u.pFix)
	placed := false
	// i walks the d-1 virtual positions; position j maps to item j for
	// j < v and item j+1 for j >= v, so the emitted items stay sorted.
	for i := int64(0); ; i++ {
		skip := r.GeometricSkip(u.qSkipInv)
		if skip >= int64(u.d-1)-i { // compare before adding: skip may saturate
			break
		}
		i += skip
		pos := int32(i)
		if pos >= int32(v) {
			pos++
		}
		if setV && !placed && pos > int32(v) {
			items = append(items, int32(v))
			placed = true
		}
		items = append(items, pos)
	}
	if setV && !placed {
		items = append(items, int32(v))
	}
	return items
}

// SparseUnaryReport is a unary-encoding report stored as its sorted
// support list instead of a d-bit vector. It is what OUE/SUE Perturb
// returns in the sparse regime (q < 1/32): at paper scale a 10^6-user
// population over a 10^5-item domain holds ~d·q indices per report
// instead of d bits, and aggregation walks only the set positions.
// SparseUnaryReport and OUEReport are interchangeable everywhere a
// Report is consumed (aggregation, detection, codec); the package tests
// pin that equivalence bit-exactly.
type SparseUnaryReport struct {
	// N is the domain bit-length (the d of the dense equivalent).
	N int
	// Items is the sorted support set.
	Items []int32
}

// Supports implements Report via binary search.
func (r SparseUnaryReport) Supports(v int) bool {
	if v < 0 || v >= r.N {
		return false
	}
	i := sort.Search(len(r.Items), func(i int) bool { return r.Items[i] >= int32(v) })
	return i < len(r.Items) && r.Items[i] == int32(v)
}

// AddSupports implements Report: one increment per set position.
func (r SparseUnaryReport) AddSupports(counts []int64) {
	n := int32(len(counts))
	for _, v := range r.Items {
		if v >= 0 && v < n {
			counts[v]++
		}
	}
}

// Dense materializes the equivalent OUEReport bitset.
func (r SparseUnaryReport) Dense() *Bitset {
	bits := NewBitset(r.N)
	for _, v := range r.Items {
		if v >= 0 && int(v) < r.N {
			bits.Set(int(v))
		}
	}
	return bits
}

var _ Report = SparseUnaryReport{}
