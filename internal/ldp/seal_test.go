package ldp

import (
	"sync"
	"testing"

	"ldprecover/internal/rng"
)

// TestSealEpochConservation is the seal-boundary conservation property:
// while goroutines ingest through every path (Add, AddBatch, AddCounts),
// a sealer repeatedly closes epochs. No report may be lost or double
// counted — the sealed epochs plus the final live tally must sum, item by
// item, to the sequential aggregation of everything ingested. Run with
// -race (make race), this also proves the swap itself is data-race free.
func TestSealEpochConservation(t *testing.T) {
	const d, eps = 32, 0.8
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(120 + 15*v)
	}
	proto, err := NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := PerturbAll(proto, rng.New(7), trueCounts)
	if err != nil {
		t.Fatal(err)
	}

	// The expected aggregate: one sequential pass over every report plus
	// the pre-aggregated partial fed through AddCounts.
	want, err := NewAccumulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if err := want.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	partial := make([]int64, d)
	for v := range partial {
		partial[v] = int64(3 * (v + 1))
	}
	var partialTotal int64 = 17
	const partialRounds = 5
	for i := 0; i < partialRounds; i++ {
		for v, c := range partial {
			want.counts[v] += c
		}
		want.total += partialTotal
	}

	sa, err := NewShardedAccumulator(d, 4)
	if err != nil {
		t.Fatal(err)
	}

	const ingesters = 6
	var wg sync.WaitGroup
	chunk := (len(reports) + ingesters - 1) / ingesters
	for g := 0; g < ingesters; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > len(reports) {
			hi = len(reports)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g int, part []Report) {
			defer wg.Done()
			if g%2 == 0 {
				// Small batches so ingest calls interleave with seals.
				for len(part) > 0 {
					n := 64
					if n > len(part) {
						n = len(part)
					}
					if err := sa.AddBatch(part[:n]); err != nil {
						t.Error(err)
						return
					}
					part = part[n:]
				}
				return
			}
			for _, rep := range part {
				if err := sa.Add(rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(g, reports[lo:hi])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < partialRounds; i++ {
			if err := sa.AddCounts(partial, partialTotal); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// The sealer races the ingesters: every sealed epoch is immutable the
	// moment SealEpoch returns, so summing them as they arrive is safe.
	sealedSum := make([]int64, d)
	var sealedTotal int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ep := sa.SealEpoch()
			for v, c := range ep.counts {
				sealedSum[v] += c
			}
			sealedTotal += ep.total
		}
	}()
	wg.Wait()
	<-done

	// Whatever ingest landed after the last mid-flight seal is still
	// live; one final seal closes it.
	last := sa.SealEpoch()
	for v, c := range last.counts {
		sealedSum[v] += c
	}
	sealedTotal += last.total

	if sealedTotal != want.total {
		t.Fatalf("sealed total %d, want %d", sealedTotal, want.total)
	}
	for v := range sealedSum {
		if sealedSum[v] != want.counts[v] {
			t.Fatalf("item %d: sealed sum %d, want %d", v, sealedSum[v], want.counts[v])
		}
	}
	// The live tally must be empty now — everything was sealed.
	if got := sa.Total(); got != 0 {
		t.Fatalf("live total after final seal: %d", got)
	}
	for v, c := range sa.Counts() {
		if c != 0 {
			t.Fatalf("item %d: live count %d after final seal", v, c)
		}
	}
}

// TestShardedReadCaching pins the cached read path: reads reflect every
// completed mutation, Snapshot hands out caller-owned state, and a seal
// invalidates the cache like any other mutation.
func TestShardedReadCaching(t *testing.T) {
	const d = 8
	sa, err := NewShardedAccumulator(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = int64(v + 1)
	}
	if err := sa.AddCounts(counts, 10); err != nil {
		t.Fatal(err)
	}
	first := sa.Counts()
	if sa.Total() != 10 {
		t.Fatalf("total %d", sa.Total())
	}
	// A repeated read returns equal data from the cache.
	again := sa.Counts()
	for v := range first {
		if first[v] != again[v] || first[v] != counts[v] {
			t.Fatalf("item %d: reads %d/%d, want %d", v, first[v], again[v], counts[v])
		}
	}
	// Mutating a returned snapshot must not poison the cache.
	snap := sa.Snapshot()
	snap.counts[0] += 1000
	snap.total += 1000
	if got := sa.Counts()[0]; got != counts[0] {
		t.Fatalf("cache poisoned through Snapshot: item 0 = %d", got)
	}
	if got := sa.Total(); got != 10 {
		t.Fatalf("cache poisoned through Snapshot: total = %d", got)
	}
	// Each further mutation is visible to the next read.
	if err := sa.Add(GRRReport(2)); err != nil {
		t.Fatal(err)
	}
	if got := sa.Counts()[2]; got != counts[2]+1 {
		t.Fatalf("item 2 after Add: %d, want %d", got, counts[2]+1)
	}
	if sa.Total() != 11 {
		t.Fatalf("total after Add: %d", sa.Total())
	}
	// Sealing empties the live tally and invalidates the cache; the
	// sealed epoch carries the pre-seal aggregate.
	ep := sa.SealEpoch()
	if ep.Total() != 11 {
		t.Fatalf("sealed total %d", ep.Total())
	}
	if sa.Total() != 0 {
		t.Fatalf("live total after seal: %d", sa.Total())
	}
	if err := sa.AddCounts(counts, 10); err != nil {
		t.Fatal(err)
	}
	sa.Reset()
	if sa.Total() != 0 {
		t.Fatalf("total after reset: %d", sa.Total())
	}
}
