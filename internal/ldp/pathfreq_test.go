package ldp

import (
	"fmt"
	"testing"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

// Statistical acceptance tests for the three client perturbation paths:
// itemwise Perturb, PerturbAllInto bulk, and BatchPerturb count-level.
// Every report (or count vector) from a user holding v0 is projected onto
// the four events (Supports(v0), Supports(v1)) for a fixed v1 != v0, and
// the observed event frequencies must bracket the analytical
// probabilities within exact Clopper-Pearson confidence bounds. The
// projection is the same one the audit tier distinguishes on, so these
// tests pin the sampling math the empirical-epsilon gate depends on.

const (
	pathfreqTrials = 20000
	pathfreqConf   = 0.9999
	pathfreqV0     = 3
	pathfreqV1     = 11
	pathfreqDomain = 16
)

// eventProbs holds the analytical probabilities of the four support
// events, indexed as e[0]=(1,1), e[1]=(1,0), e[2]=(0,1), e[3]=(0,0).
type eventProbs [4]float64

func eventIndex(s0, s1 bool) int {
	switch {
	case s0 && s1:
		return 0
	case s0:
		return 1
	case s1:
		return 2
	default:
		return 3
	}
}

// independentEvents is the event law when Supports(v0) and Supports(v1)
// are independent Bernoulli(p) and Bernoulli(q) — exact for the unary
// protocols itemwise and for every count-level marginal pair.
func independentEvents(p, q float64) eventProbs {
	return eventProbs{p * q, p * (1 - q), (1 - p) * q, (1 - p) * (1 - q)}
}

// grrEvents is GRR's singleton-support law: the two supports are
// mutually exclusive.
func grrEvents(p, q float64) eventProbs {
	return eventProbs{0, p, q, 1 - p - q}
}

// olhItemwiseEvents is the joint law of one OLH report from a user
// holding v0: the report supports v0 iff the GRR stage kept the true
// hash (probability p'), and supports v1 via a hash collision (1/g) or a
// flip onto v1's hash value (q' per specific value).
func olhItemwiseEvents(pPrime, qPrime float64, g int) eventProbs {
	gg := float64(g)
	e := eventProbs{
		pPrime / gg,
		pPrime * (gg - 1) / gg,
		qPrime * (gg - 1) / gg,
	}
	e[3] = 1 - e[0] - e[1] - e[2]
	return e
}

// checkEventFreqs asserts that each analytical event probability lies
// inside the Clopper-Pearson interval of its observed count. Events with
// probability exactly zero must never occur.
func checkEventFreqs(t *testing.T, label string, counts [4]int64, want eventProbs) {
	t.Helper()
	var n int64
	for _, c := range counts {
		n += c
	}
	names := [4]string{"(1,1)", "(1,0)", "(0,1)", "(0,0)"}
	for i, c := range counts {
		if want[i] == 0 {
			if c != 0 {
				t.Errorf("%s event %s: %d occurrences of a zero-probability event", label, names[i], c)
			}
			continue
		}
		lo, hi, err := stats.ClopperPearson(c, n, pathfreqConf)
		if err != nil {
			t.Fatalf("%s event %s: %v", label, names[i], err)
		}
		if want[i] < lo || want[i] > hi {
			t.Errorf("%s event %s: analytic p=%.6f outside CP[%.6f, %.6f] (observed %d/%d)",
				label, names[i], want[i], lo, hi, c, n)
		}
	}
}

// pathfreqProtocols builds the protocol suite under test at a given
// budget, pairing each with its itemwise event law.
func pathfreqProtocols(t *testing.T, eps float64) []struct {
	proto    Protocol
	itemwise eventProbs
} {
	t.Helper()
	grr, err := NewGRR(pathfreqDomain, eps)
	if err != nil {
		t.Fatal(err)
	}
	oue, err := NewOUE(pathfreqDomain, eps)
	if err != nil {
		t.Fatal(err)
	}
	sue, err := NewSUE(pathfreqDomain, eps)
	if err != nil {
		t.Fatal(err)
	}
	olh, err := NewOLH(pathfreqDomain, eps)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		proto    Protocol
		itemwise eventProbs
	}{
		{grr, grrEvents(grr.Params().P, grr.Params().Q)},
		{oue, independentEvents(oue.Params().P, oue.Params().Q)},
		{sue, independentEvents(sue.Params().P, sue.Params().Q)},
		{olh, olhItemwiseEvents(olh.Params().P, olh.PerturbQ(), olh.G())},
	}
}

// TestItemwiseEventFrequencies drives Protocol.Perturb one report at a
// time. eps=4 pushes the unary protocols into the sparse skip-sampling
// regime (OUE q = 1/(e^4+1) < 1/32), so both sampler paths are covered.
func TestItemwiseEventFrequencies(t *testing.T) {
	for _, eps := range []float64{1, 4} {
		for _, tc := range pathfreqProtocols(t, eps) {
			label := fmt.Sprintf("%s eps=%g itemwise", tc.proto.Name(), eps)
			r := rng.New(0xA5D17 ^ uint64(eps*1e3))
			var counts [4]int64
			for i := 0; i < pathfreqTrials; i++ {
				rep, err := tc.proto.Perturb(r, pathfreqV0)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				counts[eventIndex(rep.Supports(pathfreqV0), rep.Supports(pathfreqV1))]++
			}
			checkEventFreqs(t, label, counts, tc.itemwise)
		}
	}
}

// TestBulkEventFrequencies drives PerturbAllInto with a population of
// users all holding v0, reusing one scratch across budgets the way a
// steady-state pipeline does. The bulk arenas must realize the same
// event law as the itemwise path.
func TestBulkEventFrequencies(t *testing.T) {
	scratch := &PerturbScratch{}
	for _, eps := range []float64{1, 4} {
		for _, tc := range pathfreqProtocols(t, eps) {
			label := fmt.Sprintf("%s eps=%g bulk", tc.proto.Name(), eps)
			r := rng.New(0xB0C4 ^ uint64(eps*1e3))
			trueCounts := make([]int64, pathfreqDomain)
			trueCounts[pathfreqV0] = pathfreqTrials
			reports, err := PerturbAllInto(tc.proto, r, trueCounts, scratch)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			var counts [4]int64
			for _, rep := range reports {
				counts[eventIndex(rep.Supports(pathfreqV0), rep.Supports(pathfreqV1))]++
			}
			checkEventFreqs(t, label, counts, tc.itemwise)
		}
	}
}

// TestCountEventFrequencies drives BatchPerturb with a single user
// holding v0 per trial; the event is which of the two support counts is
// positive. GRR's count path is an exact single-report GRR (mutually
// exclusive supports); the unary and hashing protocols expose their
// aggregation-side marginals P and Q as independent binomials.
func TestCountEventFrequencies(t *testing.T) {
	for _, eps := range []float64{1, 4} {
		for _, tc := range pathfreqProtocols(t, eps) {
			bp, ok := tc.proto.(BatchPerturber)
			if !ok {
				t.Fatalf("%s: not a BatchPerturber", tc.proto.Name())
			}
			pr := tc.proto.Params()
			want := independentEvents(pr.P, pr.Q)
			if tc.proto.Name() == "GRR" {
				want = grrEvents(pr.P, pr.Q)
			}
			label := fmt.Sprintf("%s eps=%g count", tc.proto.Name(), eps)
			r := rng.New(0xC0117 ^ uint64(eps*1e3))
			trueCounts := make([]int64, pathfreqDomain)
			trueCounts[pathfreqV0] = 1
			var counts [4]int64
			for i := 0; i < pathfreqTrials; i++ {
				out, err := bp.BatchPerturb(r, trueCounts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				counts[eventIndex(out[pathfreqV0] > 0, out[pathfreqV1] > 0)]++
			}
			checkEventFreqs(t, label, counts, want)
		}
	}
}
