package ldp

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ldprecover/internal/rng"
)

func sampleTally(nodeID string, epoch int, d int, seed uint64) *Tally {
	r := rng.New(seed)
	t := &Tally{NodeID: nodeID, Epoch: epoch, Counts: make([]int64, d)}
	for v := range t.Counts {
		t.Counts[v] = int64(r.Uint64() % 10_000)
		t.Total += t.Counts[v]
	}
	return t
}

func TestTallyRoundTrip(t *testing.T) {
	for _, tc := range []*Tally{
		sampleTally("frontend-0", 0, 2, 1),
		sampleTally("a", 17, 128, 2),
		sampleTally("node-with-a-long-name.example.com:8347", 1<<30, 4096, 3),
		{NodeID: "empty-epoch", Epoch: 5, Counts: make([]int64, 64), Total: 0},
	} {
		frame, err := MarshalTally(tc)
		if err != nil {
			t.Fatalf("marshal %q: %v", tc.NodeID, err)
		}
		got, err := UnmarshalTally(frame)
		if err != nil {
			t.Fatalf("unmarshal %q: %v", tc.NodeID, err)
		}
		if !reflect.DeepEqual(got, tc) {
			t.Fatalf("round trip mutated tally %q: got %+v want %+v", tc.NodeID, got, tc)
		}
	}
}

func TestTallyMarshalRejectsInvalid(t *testing.T) {
	d := 8
	ok := sampleTally("n", 0, d, 4)
	for name, mutate := range map[string]func(*Tally){
		"empty-node":     func(t *Tally) { t.NodeID = "" },
		"huge-node":      func(t *Tally) { t.NodeID = string(make([]byte, maxTallyNodeID+1)) },
		"negative-epoch": func(t *Tally) { t.Epoch = -1 },
		"negative-total": func(t *Tally) { t.Total = -1 },
		"negative-count": func(t *Tally) { t.Counts[3] = -5 },
		"tiny-domain":    func(t *Tally) { t.Counts = t.Counts[:1] },
	} {
		bad := ok.Clone()
		mutate(bad)
		if _, err := MarshalTally(bad); !errors.Is(err, ErrCodec) {
			t.Errorf("%s: marshal error %v, want ErrCodec", name, err)
		}
	}
	if _, err := MarshalTally(nil); !errors.Is(err, ErrCodec) {
		t.Errorf("nil tally: marshal error %v, want ErrCodec", err)
	}
}

func TestTallyUnmarshalRejectsCorruption(t *testing.T) {
	frame, err := MarshalTally(sampleTally("frontend-1", 3, 32, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Any single bit flip must fail the CRC (or a structural check), and
	// every truncation must error rather than panic.
	for i := range frame {
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		if _, err := UnmarshalTally(bad); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
	for n := 0; n < len(frame); n++ {
		if _, err := UnmarshalTally(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// Trailing garbage changes the CRC input length.
	if _, err := UnmarshalTally(append(bytes.Clone(frame), 0)); err == nil {
		t.Fatal("trailing byte decoded cleanly")
	}
}

// TestTallyMergeExact pins the cluster-mode core guarantee: merging
// per-node tallies of a partitioned population reproduces the union's
// aggregate exactly, whatever the merge order or grouping.
func TestTallyMergeExact(t *testing.T) {
	const d = 64
	parts := []*Tally{
		sampleTally("a", 7, d, 10),
		sampleTally("b", 7, d, 11),
		sampleTally("c", 7, d, 12),
	}
	want := &Tally{NodeID: "union", Epoch: 7, Counts: make([]int64, d)}
	for _, p := range parts {
		for v, c := range p.Counts {
			want.Counts[v] += c
		}
		want.Total += p.Total
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		got := &Tally{NodeID: "union", Epoch: 7, Counts: make([]int64, d)}
		for _, i := range order {
			if err := got.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got.Counts, want.Counts) || got.Total != want.Total {
			t.Fatalf("merge order %v diverged", order)
		}
	}
	// Mismatched shapes fail loudly.
	if err := want.Merge(sampleTally("x", 7, d+1, 13)); !errors.Is(err, ErrCodec) {
		t.Fatalf("domain mismatch merge: %v", err)
	}
	if err := want.Merge(sampleTally("x", 8, d, 13)); !errors.Is(err, ErrCodec) {
		t.Fatalf("epoch mismatch merge: %v", err)
	}
	if err := want.Merge(nil); !errors.Is(err, ErrCodec) {
		t.Fatalf("nil merge: %v", err)
	}
}

// FuzzUnmarshalTally: arbitrary bytes must never panic the decoder, and
// every frame that decodes must re-encode to an equivalent tally (the
// decoder accepts nothing the encoder cannot reproduce).
func FuzzUnmarshalTally(f *testing.F) {
	for _, seed := range []*Tally{
		sampleTally("frontend-0", 0, 2, 1),
		sampleTally("frontend-1", 12, 48, 2),
		{NodeID: "z", Epoch: 1, Counts: make([]int64, 4), Total: 0},
	} {
		frame, err := MarshalTally(seed)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("LT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tally, err := UnmarshalTally(data)
		if err != nil {
			return
		}
		frame, err := MarshalTally(tally)
		if err != nil {
			t.Fatalf("decoded tally does not re-encode: %v", err)
		}
		back, err := UnmarshalTally(frame)
		if err != nil {
			t.Fatalf("re-encoded tally does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, tally) {
			t.Fatal("tally mutated across re-encode round trip")
		}
	})
}

// BenchmarkTallyMarshal measures the sealed-tally codec at serving
// domain sizes: the per-epoch wire cost of a frontend push is O(d) and
// independent of how many users reported into the tally.
func BenchmarkTallyMarshal(b *testing.B) {
	for _, d := range []int{128, 4096} {
		tally := sampleTally("frontend-0", 42, d, 99)
		frame, err := MarshalTally(tally)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("marshal/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, err := MarshalTally(tally); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("unmarshal/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			for i := 0; i < b.N; i++ {
				if _, err := UnmarshalTally(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
