package ldp

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset len=%d count=%d", b.Len(), b.Count())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(129)
	if b.Count() != 4 {
		t.Fatalf("count %d want 4", b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unset bit reads true")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
}

func TestBitsetGetOutOfRange(t *testing.T) {
	b := NewBitset(10)
	if b.Get(-1) || b.Get(10) || b.Get(1000) {
		t.Fatal("out-of-range Get returned true")
	}
}

func TestBitsetForEachSetOrder(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	b := NewBitset(70)
	b.Set(5)
	c := b.Clone()
	c.Set(6)
	if b.Get(6) {
		t.Fatal("clone aliases original")
	}
	if !c.Get(5) {
		t.Fatal("clone lost bit")
	}
}

func TestBitsetSetGetProperty(t *testing.T) {
	f := func(nRaw uint8, idxs []uint16) bool {
		n := int(nRaw)%500 + 1
		b := NewBitset(n)
		set := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw) % n
			b.Set(i)
			set[i] = true
		}
		if b.Count() != len(set) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
