package ldp

import (
	"encoding/binary"
	"fmt"

	"ldprecover/internal/hashx"
)

// Zero-copy batch ingest: AddBatchFrame folds a marshaled "LB" report
// batch straight from the wire bytes — no []Report materialization, no
// per-report boxing, no bitset allocation. The frame is structurally
// validated first (the exact checks UnmarshalReportBatch/UnmarshalReport
// perform, minus the allocations), then the same type-specialized run
// machinery AddBatch uses walks the sub-frames in place: the Harley–Seal
// CSA tree reads dense-unary words directly out of the wire buffer,
// sparse/GRR increments come straight from the little-endian fields, and
// OLH seeds premix into the shared scratch. The aggregate is
// bit-identical to UnmarshalReportBatch + AddBatch, which the
// equivalence tests pin; validation runs to completion before any count
// moves, so a bad frame leaves the accumulator untouched.

// ValidateReportBatchFrame structurally validates a wire-format report
// batch frame without decoding it, returning the report count. It
// accepts exactly the frames UnmarshalReportBatch accepts — same header
// checks, same per-report field validation — so a frame that passes here
// cannot fail a later decode or an AddBatchFrame fold. Servers call this
// on the request path to settle the 400-vs-accepted decision (and learn
// the user volume) before the frame is queued for durable ingest.
func ValidateReportBatchFrame(frame []byte) (int, error) {
	if len(frame) < 7 {
		return 0, fmt.Errorf("%w: short batch frame (%d bytes)", ErrCodec, len(frame))
	}
	if frame[0] != batchMagic[0] || frame[1] != batchMagic[1] {
		return 0, fmt.Errorf("%w: bad batch magic %q", ErrCodec, string(frame[:2]))
	}
	if frame[2] != batchVersion {
		return 0, fmt.Errorf("%w: unsupported batch version %d", ErrCodec, frame[2])
	}
	count := binary.LittleEndian.Uint32(frame[3:])
	if count > MaxBatchReports {
		return 0, fmt.Errorf("%w: batch declares %d reports, cap %d",
			ErrCodec, count, MaxBatchReports)
	}
	if int64(count)*10 > int64(len(frame)-7) {
		return 0, fmt.Errorf("%w: batch declares %d reports in %d bytes",
			ErrCodec, count, len(frame))
	}
	rest := frame[7:]
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return 0, fmt.Errorf("%w: batch truncated at report %d", ErrCodec, i)
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return 0, fmt.Errorf("%w: batch report %d declares %d bytes, %d remain",
				ErrCodec, i, n, len(rest))
		}
		if err := validateReportFrame(rest[:n]); err != nil {
			return 0, fmt.Errorf("batch report %d: %w", i, err)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes after batch", ErrCodec, len(rest))
	}
	return int(count), nil
}

// validateReportFrame checks one single-report wire frame exactly as
// UnmarshalReport would, allocating nothing.
func validateReportFrame(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("%w: short buffer (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != codecVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCodec, data[0])
	}
	payload := data[2:]
	switch data[1] {
	case tagGRR:
		if len(payload) != 4 {
			return fmt.Errorf("%w: GRR payload %d bytes, want 4", ErrCodec, len(payload))
		}
	case tagUnary:
		if len(payload) < 4 {
			return fmt.Errorf("%w: unary payload too short", ErrCodec)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		const maxBits = 1 << 26
		if n <= 0 || n > maxBits {
			return fmt.Errorf("%w: unary bit count %d out of range", ErrCodec, n)
		}
		words := (n + 63) / 64
		if len(payload) != 4+8*words {
			return fmt.Errorf("%w: unary payload %d bytes, want %d", ErrCodec, len(payload), 4+8*words)
		}
		if tail := n % 64; tail != 0 {
			if binary.LittleEndian.Uint64(payload[4+8*(words-1):])>>uint(tail) != 0 {
				return fmt.Errorf("%w: unary report has bits beyond length %d", ErrCodec, n)
			}
		}
	case tagOLHV1:
		return fmt.Errorf("%w: OLH report uses the retired v1 hash family; "+
			"its hash values cannot be interpreted by the current two-stage family — re-collect the report", ErrCodec)
	case tagOLH:
		if len(payload) != 16 {
			return fmt.Errorf("%w: OLH payload %d bytes, want 16", ErrCodec, len(payload))
		}
		value := int(binary.LittleEndian.Uint32(payload[8:]))
		g := int(binary.LittleEndian.Uint32(payload[12:]))
		if g < 2 || value < 0 || value >= g {
			return fmt.Errorf("%w: invalid OLH fields g=%d value=%d", ErrCodec, g, value)
		}
	case tagSparse:
		if len(payload) < 8 {
			return fmt.Errorf("%w: sparse unary payload too short", ErrCodec)
		}
		n := int(binary.LittleEndian.Uint32(payload))
		const maxBits = 1 << 26
		if n <= 0 || n > maxBits {
			return fmt.Errorf("%w: sparse unary bit count %d out of range", ErrCodec, n)
		}
		k := int(binary.LittleEndian.Uint32(payload[4:]))
		if k > n || len(payload) != 8+4*k {
			return fmt.Errorf("%w: sparse unary payload %d bytes for %d supports", ErrCodec, len(payload), k)
		}
		prev := int32(-1)
		for i := 0; i < k; i++ {
			v := binary.LittleEndian.Uint32(payload[8+4*i:])
			if int64(v) >= int64(n) || int32(v) <= prev {
				return fmt.Errorf("%w: sparse unary support %d out of order or range", ErrCodec, v)
			}
			prev = int32(v)
		}
	default:
		return fmt.Errorf("%w: unknown tag %d", ErrCodec, data[1])
	}
	return nil
}

// AddBatchFrame folds a wire-format report batch frame into the
// aggregate without decoding it into reports. Bit-identical to
// UnmarshalReportBatch followed by AddBatch; on error nothing is folded.
func (a *Accumulator) AddBatchFrame(frame []byte) error {
	count, err := ValidateReportBatchFrame(frame)
	if err != nil {
		return err
	}
	// Slice the validated frame into per-report sub-frames so the run
	// walkers below can group by type; the header slice is reused across
	// calls and cleared afterwards (it must not pin the wire buffer).
	frames := a.scratch.frames[:0]
	rest := frame[7:]
	for i := 0; i < count; i++ {
		n := binary.LittleEndian.Uint32(rest)
		frames = append(frames, rest[4:4+n])
		rest = rest[4+n:]
	}
	a.scratch.frames = frames
	a.addFrames(frames)
	clear(frames)
	return nil
}

// addFrames folds validated single-report sub-frames through the
// type-specialized run walkers, mirroring addBatch's dispatch.
func (a *Accumulator) addFrames(frames [][]byte) {
	i := 0
	for i < len(frames) {
		switch frames[i][1] {
		case tagUnary:
			n := int(binary.LittleEndian.Uint32(frames[i][2:]))
			i = a.addDenseFrameRun(frames, i, (n+63)/64)
		case tagSparse:
			i = a.addSparseFrameRun(frames, i)
		case tagOLH:
			i = a.addOLHFrameRun(frames, i)
		default: // tagGRR — validation admits no other tag
			i = a.addGRRFrameRun(frames, i)
		}
	}
}

// denseFrameWords returns the little-endian word region and word count
// of a dense unary sub-frame, or ok=false for any other tag.
func denseFrameWords(f []byte) (words []byte, n int, ok bool) {
	if f[1] != tagUnary {
		return nil, 0, false
	}
	bitLen := int(binary.LittleEndian.Uint32(f[2:]))
	return f[6:], (bitLen + 63) / 64, true
}

// addDenseFrameRun is addDenseRun reading report words directly out of
// the wire buffer: the same Harley–Seal CSA tree and binary counter
// planes, with binary.LittleEndian.Uint64 loads (a single MOV on
// little-endian hardware) in place of bitset word indexing.
func (a *Accumulator) addDenseFrameRun(frames [][]byte, start, words int) int {
	need := words * (planeLevels + 3)
	if cap(a.scratch.planes) < need {
		a.scratch.planes = make([]uint64, need)
	}
	buf := a.scratch.planes[:need]
	planes := buf[:words*planeLevels]
	ones := buf[words*planeLevels : words*(planeLevels+1)]
	twos := buf[words*(planeLevels+1) : words*(planeLevels+2)]
	fours := buf[words*(planeLevels+2) : words*(planeLevels+3)]

	flush := func() {
		for wi := 0; wi < words; wi++ {
			if w := ones[wi]; w != 0 {
				ones[wi] = 0
				rippleInto(planes, wi, w, 0)
			}
			if w := twos[wi]; w != 0 {
				twos[wi] = 0
				rippleInto(planes, wi, w, 1)
			}
			if w := fours[wi]; w != 0 {
				fours[wi] = 0
				rippleInto(planes, wi, w, 2)
			}
		}
		a.flushPlanes(planes, words)
	}

	i := start
	groups := 0
	var ws [8][]byte
	for i < len(frames) {
		if i+8 <= len(frames) {
			ok := true
			for k := 0; k < 8; k++ {
				region, n, isDense := denseFrameWords(frames[i+k])
				if !isDense || n != words {
					ok = false
					break
				}
				ws[k] = region
			}
			if ok {
				for wi := 0; wi < words; wi++ {
					off := 8 * wi
					o, tw, f := ones[wi], twos[wi], fours[wi]
					var c1, c2, c3, c4, d1, d2, e uint64
					o, c1 = csa(o, binary.LittleEndian.Uint64(ws[0][off:]), binary.LittleEndian.Uint64(ws[1][off:]))
					o, c2 = csa(o, binary.LittleEndian.Uint64(ws[2][off:]), binary.LittleEndian.Uint64(ws[3][off:]))
					tw, d1 = csa(tw, c1, c2)
					o, c3 = csa(o, binary.LittleEndian.Uint64(ws[4][off:]), binary.LittleEndian.Uint64(ws[5][off:]))
					o, c4 = csa(o, binary.LittleEndian.Uint64(ws[6][off:]), binary.LittleEndian.Uint64(ws[7][off:]))
					tw, d2 = csa(tw, c3, c4)
					f, e = csa(f, d1, d2)
					ones[wi], twos[wi], fours[wi] = o, tw, f
					if e != 0 {
						rippleInto(planes, wi, e, 3)
					}
				}
				i += 8
				if groups++; groups == denseCSAGroups {
					flush()
					groups = 0
				}
				continue
			}
		}
		region, n, ok := denseFrameWords(frames[i])
		if !ok || n != words {
			break
		}
		for wi := 0; wi < words; wi++ {
			if w := binary.LittleEndian.Uint64(region[8*wi:]); w != 0 {
				rippleInto(planes, wi, w, 0)
			}
		}
		i++
	}
	flush()
	a.total += int64(i - start)
	return i
}

// addSparseFrameRun folds the run of sparse unary sub-frames starting at
// start: one bounds-checked increment per encoded set position.
func (a *Accumulator) addSparseFrameRun(frames [][]byte, start int) int {
	counts := a.counts
	n := uint32(len(counts))
	i := start
	for ; i < len(frames); i++ {
		f := frames[i]
		if f[1] != tagSparse {
			break
		}
		k := int(binary.LittleEndian.Uint32(f[6:]))
		for j := 0; j < k; j++ {
			if v := binary.LittleEndian.Uint32(f[10+4*j:]); v < n {
				counts[v]++
			}
		}
		a.total++
	}
	return i
}

// addOLHFrameRun folds the run of OLH sub-frames starting at start:
// premix every wire seed once into the shared scratch, then the same
// item-major block sweep as the report-slice path.
func (a *Accumulator) addOLHFrameRun(frames [][]byte, start int) int {
	run := a.scratch.olh[:0]
	i := start
	for ; i < len(frames); i++ {
		f := frames[i]
		if f[1] != tagOLH {
			break
		}
		run = append(run, premixedOLH{
			pre:   hashx.Premix(binary.LittleEndian.Uint64(f[2:])),
			value: int(binary.LittleEndian.Uint32(f[10:])),
			g:     int(binary.LittleEndian.Uint32(f[14:])),
		})
	}
	a.scratch.olh = run
	a.sweepOLH(run)
	return i
}

// addGRRFrameRun folds the run of GRR sub-frames starting at start.
func (a *Accumulator) addGRRFrameRun(frames [][]byte, start int) int {
	counts := a.counts
	n := len(counts)
	i := start
	for ; i < len(frames); i++ {
		f := frames[i]
		if f[1] != tagGRR {
			break
		}
		if v := int(binary.LittleEndian.Uint32(f[2:])); v < n {
			counts[v]++
		}
		a.total++
	}
	return i
}

// AddBatchFrame folds a wire-format report batch frame under a single
// shard lock — the concurrency-safe zero-copy ingest path. Bit-identical
// to UnmarshalReportBatch + AddBatch; on error nothing is folded.
func (sa *ShardedAccumulator) AddBatchFrame(frame []byte) error {
	sh := sa.shard()
	sh.mu.Lock()
	err := sh.acc.AddBatchFrame(frame)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	sa.gen.Add(1)
	return nil
}
