package ldp

import (
	"fmt"
	"reflect"
	"testing"

	"ldprecover/internal/rng"
)

// mergeTestTally builds a deterministic tally over domain d.
func mergeTestTally(node string, epoch int, d int, seed uint64) *Tally {
	r := rng.New(seed)
	counts := make([]int64, d)
	var total int64
	for v := range counts {
		counts[v] = int64(r.Uint64() % 500)
		total += counts[v]
	}
	return &Tally{NodeID: node, Epoch: epoch, Counts: counts, Total: total}
}

// TestMergeParallelMatchesSequential pins the core property of the
// chunked fold: for any domain size (odd, power-of-two, straddling the
// parallel threshold) and any worker count, mergeParallelInto produces
// exactly the bits MergeInto does.
func TestMergeParallelMatchesSequential(t *testing.T) {
	for _, d := range []int{2, 17, 1 << 10, parallelMergeMin - 1, parallelMergeMin, parallelMergeMin + 3, 1 << 16} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			src := mergeTestTally("child", 7, d, uint64(d)*31+uint64(workers))
			accSeq := mergeTestTally("acc", 7, d, 0xfeed)
			accPar := accSeq.Clone()
			if err := src.MergeInto(accSeq); err != nil {
				t.Fatalf("d=%d workers=%d: MergeInto: %v", d, workers, err)
			}
			if err := src.mergeParallelInto(accPar, workers); err != nil {
				t.Fatalf("d=%d workers=%d: mergeParallelInto: %v", d, workers, err)
			}
			if !reflect.DeepEqual(accSeq, accPar) {
				t.Fatalf("d=%d workers=%d: parallel merge diverged from sequential", d, workers)
			}
		}
	}
}

// TestMergeParallelRepeatedFolds stacks several parallel folds into one
// accumulator — the merge-on-arrival usage — against a single-pass
// sequential union.
func TestMergeParallelRepeatedFolds(t *testing.T) {
	const d, nodes = 1<<16 + 5, 6
	accSeq := mergeTestTally("acc", 3, d, 1)
	accPar := accSeq.Clone()
	for i := 0; i < nodes; i++ {
		src := mergeTestTally(fmt.Sprintf("node-%d", i), 3, d, uint64(100+i))
		if err := src.MergeInto(accSeq); err != nil {
			t.Fatal(err)
		}
		if err := src.mergeParallelInto(accPar, 4); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(accSeq, accPar) {
		t.Fatal("stacked parallel folds diverged from sequential")
	}
}

// TestMergeIntoRejects pins the validation surface shared by MergeInto,
// MergeParallel, and the delegating Merge.
func TestMergeIntoRejects(t *testing.T) {
	src := mergeTestTally("child", 2, 16, 9)
	if err := src.MergeInto(nil); err == nil {
		t.Fatal("MergeInto(nil) accepted")
	}
	if err := src.MergeParallel(nil); err == nil {
		t.Fatal("MergeParallel(nil) accepted")
	}
	wrongDomain := mergeTestTally("acc", 2, 32, 9)
	if err := src.MergeInto(wrongDomain); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if err := src.mergeParallelInto(wrongDomain, 4); err == nil {
		t.Fatal("parallel domain mismatch accepted")
	}
	wrongEpoch := mergeTestTally("acc", 3, 16, 9)
	if err := src.MergeInto(wrongEpoch); err == nil {
		t.Fatal("epoch mismatch accepted")
	}
	if err := src.mergeParallelInto(wrongEpoch, 4); err == nil {
		t.Fatal("parallel epoch mismatch accepted")
	}
	ok := mergeTestTally("acc", 2, 16, 10)
	if err := src.Merge(ok); err != nil {
		t.Fatalf("Merge after delegation broke: %v", err)
	}
}

// TestShardedMutations pins the O(1) dirty check the sealed-counts
// hand-off relies on: the generation advances on every mutation kind
// and holds still across reads.
func TestShardedMutations(t *testing.T) {
	sa, err := NewShardedAccumulator(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	g0 := sa.Mutations()
	if err := sa.AddCounts([]int64{1, 0, 0, 0, 0, 0, 0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	g1 := sa.Mutations()
	if g1 == g0 {
		t.Fatal("AddCounts did not advance the mutation generation")
	}
	_ = sa.Counts()
	_ = sa.Total()
	if sa.Mutations() != g1 {
		t.Fatal("reads advanced the mutation generation")
	}
	_ = sa.SealEpoch()
	g2 := sa.Mutations()
	if g2 == g1 {
		t.Fatal("SealEpoch did not advance the mutation generation")
	}
	sa.Reset()
	if sa.Mutations() == g2 {
		t.Fatal("Reset did not advance the mutation generation")
	}
}

// BenchmarkMergeParallel compares the two per-tally accept costs the
// merge-on-arrival refactor trades between, at the domain sizes the
// bench-merge gate tracks:
//
//   - sequential: the pre-refactor accept path — a defensive clone
//     retained at accept plus the sequential seal-time fold, the O(2d)
//     copy+add every accepted tally used to pay;
//   - parallel: MergeParallel folding the arriving tally straight into
//     the epoch accumulator — one pass, no retained clone, chunked
//     across cores when GOMAXPROCS allows.
//
// On a single-core host the ≥2x win is the eliminated clone and second
// pass; with more cores the chunk-parallel fold stacks on top.
func BenchmarkMergeParallel(b *testing.B) {
	for _, d := range []int{1 << 12, 1 << 16, 1 << 20} {
		src := mergeTestTally("child", 0, d, 0xabcd)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			b.Run("sequential", func(b *testing.B) {
				acc := mergeTestTally("acc", 0, d, 0)
				b.SetBytes(int64(8 * d))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					retained := src.Clone()
					if err := retained.MergeInto(acc); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("parallel", func(b *testing.B) {
				acc := mergeTestTally("acc", 0, d, 0)
				b.SetBytes(int64(8 * d))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := src.MergeParallel(acc); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
