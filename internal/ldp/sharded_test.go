package ldp

import (
	"runtime"
	"sync"
	"testing"

	"ldprecover/internal/rng"
)

func TestShardedAccumulatorValidation(t *testing.T) {
	if _, err := NewShardedAccumulator(1, 4); err == nil {
		t.Fatal("d=1 accepted")
	}
	sa, err := NewShardedAccumulator(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Shards() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default shards %d want GOMAXPROCS %d", sa.Shards(), runtime.GOMAXPROCS(0))
	}
	if sa.Domain() != 8 {
		t.Fatalf("domain %d", sa.Domain())
	}
	if err := sa.Add(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	if err := sa.AddBatch([]Report{GRRReport(1), nil}); err == nil {
		t.Fatal("batch with nil report accepted")
	}
	if err := sa.AddCounts(make([]int64, 5), 1); err == nil {
		t.Fatal("wrong-length counts accepted")
	}
	if err := sa.AddCounts(make([]int64, 8), -1); err == nil {
		t.Fatal("negative total accepted")
	}
	negCounts := make([]int64, 8)
	negCounts[2] = -5
	if err := sa.AddCounts(negCounts, 10); err == nil {
		t.Fatal("negative per-item count accepted")
	}
	if err := sa.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
	other, _ := NewShardedAccumulator(9, 2)
	if err := sa.Merge(other); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	// A failed AddBatch must not partially ingest.
	if sa.Total() != 0 {
		t.Fatalf("failed ingest mutated state: total %d", sa.Total())
	}
}

// shardedTestProtocols returns the full protocol roster, including the
// generality protocols SUE and BLH.
func shardedTestProtocols(t *testing.T, d int, eps float64) []Protocol {
	t.Helper()
	ps := testProtocols(t, d, eps)
	sue, err := NewSUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	blh, err := NewBLH(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	return append(ps, sue, blh)
}

// TestShardedMatchesSequentialExactly is the sharded-vs-sequential
// equivalence property: for a fixed seed, concurrently ingesting the same
// reports through a ShardedAccumulator yields exactly the sequential
// Accumulator's counts, for every protocol and any shard count.
func TestShardedMatchesSequentialExactly(t *testing.T) {
	const d, eps = 16, 0.8
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(40 + 10*v)
	}
	for _, p := range shardedTestProtocols(t, d, eps) {
		reports, err := PerturbAll(p, rng.New(11), trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewAccumulator(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reports {
			if err := seq.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
		for _, shards := range []int{1, 3, 8} {
			sa, err := NewShardedAccumulator(d, shards)
			if err != nil {
				t.Fatal(err)
			}
			// Concurrent ingest: disjoint chunks via AddBatch, remainder
			// one-by-one via Add.
			const goroutines = 7
			var wg sync.WaitGroup
			chunk := len(reports) / goroutines
			for g := 0; g < goroutines; g++ {
				lo := g * chunk
				hi := lo + chunk
				wg.Add(1)
				go func(part []Report, oneByOne bool) {
					defer wg.Done()
					if oneByOne {
						for _, rep := range part {
							if err := sa.Add(rep); err != nil {
								t.Error(err)
								return
							}
						}
						return
					}
					if err := sa.AddBatch(part); err != nil {
						t.Error(err)
					}
				}(reports[lo:hi], g%2 == 0)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sa.AddBatch(reports[goroutines*chunk:]); err != nil {
					t.Error(err)
				}
			}()
			wg.Wait()
			snap := sa.Snapshot()
			if snap.Total() != seq.Total() || sa.Total() != seq.Total() {
				t.Fatalf("%s shards=%d: total %d want %d", p.Name(), shards, snap.Total(), seq.Total())
			}
			want := seq.Counts()
			got := snap.Counts()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s shards=%d: counts diverge at %d: %d vs %d",
						p.Name(), shards, v, got[v], want[v])
				}
			}
		}
	}
}

// TestShardedAddCountsAndMerge folds batch-perturbed partials and a
// second sharded accumulator, checking totals and estimates line up.
func TestShardedAddCountsAndMerge(t *testing.T) {
	const d, eps = 12, 0.6
	oue, err := NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	var n int64
	for v := range trueCounts {
		trueCounts[v] = int64(100 + v)
		n += trueCounts[v]
	}
	r := rng.New(21)
	counts, err := oue.BatchPerturb(r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := NewShardedAccumulator(d, 4)
	if err := sa.AddCounts(counts, n); err != nil {
		t.Fatal(err)
	}
	other, _ := NewShardedAccumulator(d, 2)
	counts2, err := oue.BatchPerturb(r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AddCounts(counts2, n); err != nil {
		t.Fatal(err)
	}
	if err := sa.Merge(other); err != nil {
		t.Fatal(err)
	}
	if sa.Total() != 2*n {
		t.Fatalf("total %d want %d", sa.Total(), 2*n)
	}
	// other untouched by Merge.
	if other.Total() != n {
		t.Fatalf("merge mutated source: %d", other.Total())
	}
	if _, err := sa.Estimate(oue.Params()); err != nil {
		t.Fatal(err)
	}
	merged := sa.Counts()
	for v := range merged {
		if merged[v] != counts[v]+counts2[v] {
			t.Fatalf("merged counts diverge at %d", v)
		}
	}
	sa.Reset()
	if sa.Total() != 0 {
		t.Fatalf("reset left total %d", sa.Total())
	}
}

// TestShardedConcurrentStress hammers Add, AddBatch, AddCounts, Merge,
// Snapshot and Total from many goroutines at once; run under -race it is
// the engine's data-race certificate, and the final snapshot must account
// for every ingested report exactly.
func TestShardedConcurrentStress(t *testing.T) {
	const (
		d          = 32
		goroutines = 16
		perG       = 2000
	)
	sa, err := NewShardedAccumulator(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 1)
			switch g % 4 {
			case 0: // single-report ingest
				for i := 0; i < perG; i++ {
					if err := sa.Add(GRRReport(r.Intn(d))); err != nil {
						t.Error(err)
						return
					}
				}
			case 1: // batched ingest
				batch := make([]Report, perG)
				for i := range batch {
					batch[i] = GRRReport(r.Intn(d))
				}
				if err := sa.AddBatch(batch); err != nil {
					t.Error(err)
				}
			case 2: // pre-aggregated partials, then a Merge
				counts := make([]int64, d)
				for i := 0; i < perG; i++ {
					counts[r.Intn(d)]++
				}
				other, err := NewShardedAccumulator(d, 2)
				if err != nil {
					t.Error(err)
					return
				}
				if err := other.AddCounts(counts, perG); err != nil {
					t.Error(err)
					return
				}
				if err := sa.Merge(other); err != nil {
					t.Error(err)
				}
			default: // concurrent readers
				for i := 0; i < 50; i++ {
					snap := sa.Snapshot()
					var sum int64
					for _, c := range snap.Counts() {
						sum += c
					}
					if sum != snap.Total() {
						t.Errorf("inconsistent snapshot: counts sum %d total %d", sum, snap.Total())
						return
					}
					_ = sa.Total()
				}
			}
		}(g)
	}
	wg.Wait()
	wantTotal := int64(goroutines / 4 * 3 * perG)
	snap := sa.Snapshot()
	if snap.Total() != wantTotal {
		t.Fatalf("final total %d want %d", snap.Total(), wantTotal)
	}
	var sum int64
	for _, c := range snap.Counts() {
		sum += c
	}
	if sum != wantTotal {
		t.Fatalf("final counts sum %d want %d", sum, wantTotal)
	}
}
