package ldp

import (
	"math"

	"ldprecover/internal/rng"
)

// GRR is General Randomized Response (Kairouz et al.; paper §III-B,
// Eq. 2–4): the user reports her true item with probability
// p = e^ε/(d-1+e^ε) and each specific other item with probability
// q = 1/(d-1+e^ε).
type GRR struct {
	params Params
	// pFix is the fixed-point keep threshold, hoisted to construction so
	// the per-report hot path is one uint64 compare.
	pFix uint64
}

// NewGRR constructs a GRR protocol over a domain of size d with privacy
// budget epsilon.
func NewGRR(d int, epsilon float64) (*GRR, error) {
	expE := math.Exp(epsilon)
	if math.IsInf(expE, 1) {
		return nil, errEpsilonTooLarge("GRR", epsilon, "e^eps overflows float64")
	}
	pr := Params{
		Epsilon: epsilon,
		Domain:  d,
		P:       expE / (float64(d) - 1 + expE),
		Q:       1 / (float64(d) - 1 + expE),
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := checkPerturbable("GRR", pr); err != nil {
		return nil, err
	}
	return &GRR{params: pr, pFix: rng.FixedProb(pr.P)}, nil
}

// Name implements Protocol.
func (g *GRR) Name() string { return "GRR" }

// Params implements Protocol.
func (g *GRR) Params() Params { return g.params }

// GRRReport is a GRR submission: the reported item itself. Its support
// set is the singleton {value}.
type GRRReport int

// Supports implements Report.
func (r GRRReport) Supports(v int) bool { return int(r) == v }

// AddSupports implements Report.
func (r GRRReport) AddSupports(counts []int64) {
	if int(r) >= 0 && int(r) < len(counts) {
		counts[r]++
	}
}

// Perturb implements Protocol (Eq. 2).
func (g *GRR) Perturb(r *rng.Rand, v int) (Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	if err := checkItem(v, g.params.Domain); err != nil {
		return nil, err
	}
	return g.perturbGRR(r, v), nil
}

// perturbGRR is Perturb's unboxed core, shared with PerturbAllInto.
// Inputs are assumed validated.
func (g *GRR) perturbGRR(r *rng.Rand, v int) GRRReport {
	if r.BernoulliU64(g.pFix) {
		return GRRReport(v)
	}
	// Uniform over the d-1 other items.
	other := r.Intn(g.params.Domain - 1)
	if other >= v {
		other++
	}
	return GRRReport(other)
}

// CraftSupport implements Protocol: for GRR the attacker simply submits
// the item itself.
func (g *GRR) CraftSupport(_ *rng.Rand, v int) (Report, error) {
	if err := checkItem(v, g.params.Domain); err != nil {
		return nil, err
	}
	return GRRReport(v), nil
}

// BatchPerturb implements BatchPerturber. For GRR the support count of
// item v is (kept reports of v) + (flips from other items landing on v):
// the kept part is Binomial(n_v, p) and each item's flipped mass spreads
// uniformly over the d-1 other items (exact multinomial).
func (g *GRR) BatchPerturb(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	d := g.params.Domain
	if _, err := validateTrueCounts(trueCounts, d); err != nil {
		return nil, err
	}
	counts := make([]int64, d)
	g.grrChunk(r, trueCounts, 0, d, counts)
	return counts, nil
}

// grrChunk simulates the users holding source items [lo, hi) into counts,
// which must span the full domain (flips land anywhere). Inputs are
// assumed validated.
func (g *GRR) grrChunk(r *rng.Rand, trueCounts []int64, lo, hi int, counts []int64) {
	// Uniform distribution over d-1 cells, reused across items.
	uniform := make([]float64, g.params.Domain-1)
	for i := range uniform {
		uniform[i] = 1
	}
	for u := lo; u < hi; u++ {
		nu := trueCounts[u]
		if nu == 0 {
			continue
		}
		kept := r.Binomial(nu, g.params.P)
		counts[u] += kept
		flips := nu - kept
		if flips == 0 {
			continue
		}
		spread := r.Multinomial(flips, uniform)
		// spread[i] maps to item i for i<u and item i+1 for i>=u.
		for i, c := range spread {
			if c == 0 {
				continue
			}
			t := i
			if t >= u {
				t++
			}
			counts[t] += c
		}
	}
}

// SimulateGenuineCounts implements Protocol via the batch fast path.
func (g *GRR) SimulateGenuineCounts(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return g.BatchPerturb(r, trueCounts)
}

// Variance implements Protocol (Eq. 4).
func (g *GRR) Variance(f float64, n int64) float64 {
	expE := math.Exp(g.params.Epsilon)
	d := float64(g.params.Domain)
	nn := float64(n)
	return nn*(d-2+expE)/((expE-1)*(expE-1)) + nn*f*(d-2)/(expE-1)
}

var (
	_ Protocol       = (*GRR)(nil)
	_ BatchPerturber = (*GRR)(nil)
)
