package ldp

import (
	"fmt"
	"math/bits"

	"ldprecover/internal/hashx"
)

// Batched ingest: AddBatch splits a report slice into runs of the same
// concrete type and folds each run through a type-specialized, item-major
// fast path. All scratch lives on the accumulator and is reused across
// batches, so steady-state ingest allocates nothing per report:
//
//   - dense unary runs aggregate via bit-plane ("positional popcount")
//     counters: a Harley–Seal adder tree folds reports into planeLevels
//     binary counter planes, which flush into the count vector at most
//     once per ~64k reports — a handful of word-level ALU ops per
//     report instead of one count increment per set bit;
//   - sparse unary runs increment counts directly from the index lists;
//   - OLH runs premix every seed once, then sweep the domain in
//     item-major blocks so the hot count window stays cache-resident at
//     large d while each item costs only the cheap per-item hash stage;
//   - GRR runs are single increments without the interface dispatch;
//   - anything else falls back to Report.AddSupports.
//
// The result is bit-identical to folding the same reports one at a time
// through Add (support counting is additive), which the equivalence tests
// pin exactly.

// batchScratch is the accumulator-owned reusable state for AddBatch.
type batchScratch struct {
	// planes holds planeLevels binary counter planes per report word
	// (plane l bit b set ⇔ the pending count for bit b has 2^l in its
	// binary expansion), followed by the carry-save ones/twos/fours
	// planes.
	planes []uint64
	// olh holds the premixed descriptors of the current OLH run.
	olh []premixedOLH
	// frames holds the per-report sub-frame slices of the batch frame
	// AddBatchFrame is walking. Entries are cleared after every fold so
	// the scratch never pins a caller's (possibly pooled) wire buffer.
	frames [][]byte
}

// premixedOLH is one OLH report with its seed premix hoisted.
type premixedOLH struct {
	pre   hashx.Premixed
	value int
	g     int
}

// planeLevels is the binary counter depth of the dense-unary planes:
// 16 levels count up to 65535 pending reports per bit, so the expensive
// plane→count expansion runs ~once per 64k reports instead of per 255.
const planeLevels = 16

// olhBlockItems is the item-major block width for OLH runs: 4096 int64
// counts = 32 KiB, sized to keep the hot count window in L1.
const olhBlockItems = 4096

// asDense extracts the bitset of a dense unary report in either boxing.
func asDense(rep Report) (*Bitset, bool) {
	switch r := rep.(type) {
	case OUEReport:
		return r.Bits, true
	case *OUEReport:
		return r.Bits, true
	}
	return nil, false
}

// asSparse extracts a sparse unary report in either boxing.
func asSparse(rep Report) (SparseUnaryReport, bool) {
	switch r := rep.(type) {
	case SparseUnaryReport:
		return r, true
	case *SparseUnaryReport:
		return *r, true
	}
	return SparseUnaryReport{}, false
}

// asOLH extracts an OLH report in either boxing.
func asOLH(rep Report) (OLHReport, bool) {
	switch r := rep.(type) {
	case OLHReport:
		return r, true
	case *OLHReport:
		return *r, true
	}
	return OLHReport{}, false
}

// asGRR extracts a GRR report in either boxing.
func asGRR(rep Report) (int, bool) {
	switch r := rep.(type) {
	case GRRReport:
		return int(r), true
	case *GRRReport:
		return int(*r), true
	}
	return 0, false
}

// AddBatch folds a slice of reports through the type-specialized fast
// paths above. It is the preferred ingest call when reports arrive in
// chunks; the aggregate is bit-identical to adding them one at a time.
func (a *Accumulator) AddBatch(reps []Report) error {
	for i, rep := range reps {
		if rep == nil {
			return fmt.Errorf("ldp: nil report at index %d", i)
		}
	}
	a.addBatch(reps)
	return nil
}

// addBatch is AddBatch without the nil scan; reports must be non-nil.
func (a *Accumulator) addBatch(reps []Report) {
	i := 0
	for i < len(reps) {
		rep := reps[i]
		if b, ok := asDense(rep); ok {
			i = a.addDenseRun(reps, i, len(b.words))
			continue
		}
		if _, ok := asSparse(rep); ok {
			i = a.addSparseRun(reps, i)
			continue
		}
		if _, ok := asOLH(rep); ok {
			i = a.addOLHRun(reps, i)
			continue
		}
		if _, ok := asGRR(rep); ok {
			i = a.addGRRRun(reps, i)
			continue
		}
		rep.AddSupports(a.counts)
		a.total++
		i++
	}
}

// csa is a carry-save full adder: it folds a and b into the running
// weight-w plane l, returning the new plane and the weight-2w carry.
func csa(l, a, b uint64) (lOut, carry uint64) {
	t := a ^ b
	return l ^ t, (a & b) | (l & t)
}

// rippleInto adds the weight-2^level word w into the binary counter
// planes of word column wi. The flush policy bounds per-bit pending
// counts below 2^planeLevels, so the carry always dies in range.
func rippleInto(planes []uint64, wi int, w uint64, level int) {
	for l := level; l < planeLevels && w != 0; l++ {
		pl := &planes[wi*planeLevels+l]
		t := *pl & w
		*pl ^= w
		w = t
	}
}

// denseCSAGroups is how many 8-report CSA groups accumulate before a
// flush: 8000 groups contribute at most 64000 per bit, leaving room for
// the carry-save residue (≤7) and the ≤7-report tail inside the 65535
// counter capacity.
const denseCSAGroups = 8000

// addDenseRun consumes the run of dense unary reports with the given
// word count starting at start and returns the index past the run.
//
// The core is a Harley–Seal carry-save adder tree: 8 reports at a time,
// per word column, seven full adders fold the 8 input words into running
// ones/twos/fours planes and one weight-8 carry — about five ALU ops per
// report word, with no per-bit work at all. Weight-8 carries ripple into
// the shared binary counter planes, which expand into the count vector
// only on flush (at most once per ~64k reports per bit).
func (a *Accumulator) addDenseRun(reps []Report, start, words int) int {
	// Scratch layout: planeLevels counter planes, then the
	// ones/twos/fours carry-save planes, per word column. All zero
	// between runs.
	need := words * (planeLevels + 3)
	if cap(a.scratch.planes) < need {
		a.scratch.planes = make([]uint64, need)
	}
	buf := a.scratch.planes[:need]
	planes := buf[:words*planeLevels]
	ones := buf[words*planeLevels : words*(planeLevels+1)]
	twos := buf[words*(planeLevels+1) : words*(planeLevels+2)]
	fours := buf[words*(planeLevels+2) : words*(planeLevels+3)]

	flush := func() {
		for wi := 0; wi < words; wi++ {
			if w := ones[wi]; w != 0 {
				ones[wi] = 0
				rippleInto(planes, wi, w, 0)
			}
			if w := twos[wi]; w != 0 {
				twos[wi] = 0
				rippleInto(planes, wi, w, 1)
			}
			if w := fours[wi]; w != 0 {
				fours[wi] = 0
				rippleInto(planes, wi, w, 2)
			}
		}
		a.flushPlanes(planes, words)
	}

	i := start
	groups := 0
	var ws [8][]uint64
	for i < len(reps) {
		// Gather the next 8 matching dense reports for the CSA tree.
		if i+8 <= len(reps) {
			ok := true
			for k := 0; k < 8; k++ {
				b, isDense := asDense(reps[i+k])
				if !isDense || len(b.words) != words {
					ok = false
					break
				}
				ws[k] = b.words
			}
			if ok {
				for wi := 0; wi < words; wi++ {
					o, tw, f := ones[wi], twos[wi], fours[wi]
					var c1, c2, c3, c4, d1, d2, e uint64
					o, c1 = csa(o, ws[0][wi], ws[1][wi])
					o, c2 = csa(o, ws[2][wi], ws[3][wi])
					tw, d1 = csa(tw, c1, c2)
					o, c3 = csa(o, ws[4][wi], ws[5][wi])
					o, c4 = csa(o, ws[6][wi], ws[7][wi])
					tw, d2 = csa(tw, c3, c4)
					f, e = csa(f, d1, d2)
					ones[wi], twos[wi], fours[wi] = o, tw, f
					if e != 0 {
						rippleInto(planes, wi, e, 3)
					}
				}
				i += 8
				if groups++; groups == denseCSAGroups {
					flush()
					groups = 0
				}
				continue
			}
		}
		// Tail: fewer than 8 matching reports left in the run — at most
		// 7 singles ripple directly into the counter planes.
		b, ok := asDense(reps[i])
		if !ok || len(b.words) != words {
			break
		}
		for wi, w := range b.words {
			if w != 0 {
				rippleInto(planes, wi, w, 0)
			}
		}
		i++
	}
	flush()
	a.total += int64(i - start)
	return i
}

// flushPlanes expands the binary counter planes into the count vector
// and zeroes them. Bits beyond the accumulator's domain are dropped,
// matching AddSupports' contract for over-long reports.
func (a *Accumulator) flushPlanes(planes []uint64, words int) {
	counts := a.counts
	full := len(counts) >= words*64
	for wi := 0; wi < words; wi++ {
		base := wi << 6
		for l := 0; l < planeLevels; l++ {
			w := planes[wi*planeLevels+l]
			if w == 0 {
				continue
			}
			planes[wi*planeLevels+l] = 0
			add := int64(1) << uint(l)
			if full {
				for w != 0 {
					counts[base+bits.TrailingZeros64(w)] += add
					w &= w - 1
				}
			} else {
				for w != 0 {
					if idx := base + bits.TrailingZeros64(w); idx < len(counts) {
						counts[idx] += add
					}
					w &= w - 1
				}
			}
		}
	}
}

// addSparseRun consumes the run of sparse unary reports starting at
// start: one bounds-checked increment per set position.
func (a *Accumulator) addSparseRun(reps []Report, start int) int {
	counts := a.counts
	n := uint32(len(counts))
	i := start
	for ; i < len(reps); i++ {
		sp, ok := asSparse(reps[i])
		if !ok {
			break
		}
		for _, v := range sp.Items {
			if uint32(v) < n { // negative wraps above n
				counts[v]++
			}
		}
		a.total++
	}
	return i
}

// addOLHRun consumes the run of OLH reports starting at start: premix
// every seed once into scratch, then sweep the domain in item-major
// blocks so large count vectors are walked block-by-block with all
// reports instead of report-by-report over all items.
func (a *Accumulator) addOLHRun(reps []Report, start int) int {
	run := a.scratch.olh[:0]
	i := start
	for ; i < len(reps); i++ {
		ol, ok := asOLH(reps[i])
		if !ok {
			break
		}
		if ol.G < 2 || ol.Value < 0 || ol.Value >= ol.G {
			// Degenerate hand-built report: the branchless compare below
			// assumes value ∈ [0, g), so route it through the generic
			// AddSupports (bit-identical to the one-at-a-time path).
			if i == start {
				reps[i].AddSupports(a.counts)
				a.total++
				i++
			}
			break
		}
		run = append(run, premixedOLH{pre: hashx.Premix(ol.Seed), value: ol.Value, g: ol.G})
	}
	a.scratch.olh = run
	a.sweepOLH(run)
	return i
}

// sweepOLH folds a premixed OLH run into the count vector in item-major
// blocks so large count vectors are walked block-by-block with all
// reports instead of report-by-report over all items. Shared by the
// report-slice and wire-frame ingest paths.
func (a *Accumulator) sweepOLH(run []premixedOLH) {
	counts := a.counts
	for lo := 0; lo < len(counts); lo += olhBlockItems {
		hi := lo + olhBlockItems
		if hi > len(counts) {
			hi = len(counts)
		}
		for ei := range run {
			e := &run[ei]
			value, g := uint64(e.value), uint64(e.g)
			// Inlined hashx.Premixed stage two with the item multiply
			// strength-reduced: consecutive items advance x·φ by one
			// addition. Bit-equal to pre.ToRange(v, g) — the batch-vs-
			// sequential equivalence tests pin this against hashx.
			zx := uint64(e.pre) + uint64(lo)*0x9e3779b97f4a7c15
			v := lo
			// Two independent hash chains per step keep the multiplier
			// busy; branchless matches (a ~1/g-taken branch would
			// mispredict constantly and stall both chains).
			for ; v+2 <= hi; v += 2 {
				z0 := zx
				z1 := zx + 0x9e3779b97f4a7c15
				zx = z1 + 0x9e3779b97f4a7c15
				z0 = (z0 ^ (z0 >> 33)) * 0xff51afd7ed558ccd
				z1 = (z1 ^ (z1 >> 33)) * 0xff51afd7ed558ccd
				z0 = (z0 ^ (z0 >> 33)) * 0xc4ceb9fe1a85ec53
				z1 = (z1 ^ (z1 >> 33)) * 0xc4ceb9fe1a85ec53
				z0 ^= z0 >> 33
				z1 ^= z1 >> 33
				b0, _ := bits.Mul64(z0, g)
				b1, _ := bits.Mul64(z1, g)
				counts[v] += int64(((b0 ^ value) - 1) >> 63)
				counts[v+1] += int64(((b1 ^ value) - 1) >> 63)
			}
			for ; v < hi; v++ {
				z := zx
				zx += 0x9e3779b97f4a7c15
				z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
				z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
				z ^= z >> 33
				bucket, _ := bits.Mul64(z, g)
				counts[v] += int64(((bucket ^ value) - 1) >> 63)
			}
		}
	}
	a.total += int64(len(run))
}

// addGRRRun consumes the run of GRR reports starting at start.
func (a *Accumulator) addGRRRun(reps []Report, start int) int {
	counts := a.counts
	n := len(counts)
	i := start
	for ; i < len(reps); i++ {
		v, ok := asGRR(reps[i])
		if !ok {
			break
		}
		if v >= 0 && v < n {
			counts[v]++
		}
		a.total++
	}
	return i
}
