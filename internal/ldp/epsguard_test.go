package ldp

import (
	"errors"
	"math"
	"testing"
)

// TestNewOLHEpsilonOverflow: a budget whose hash range ⌈e^ε+1⌉ overflows
// must be rejected with the named error, never pushed through the
// implementation-dependent float->int conversion (pre-fix: a garbage
// negative g on amd64, a silently huge hash range on arm64).
func TestNewOLHEpsilonOverflow(t *testing.T) {
	for _, eps := range []float64{25, 50, 710, math.Inf(1)} {
		_, err := NewOLH(16, eps)
		if err == nil {
			t.Fatalf("eps=%g: constructed", eps)
		}
		if !errors.Is(err, ErrEpsilonTooLarge) {
			t.Fatalf("eps=%g: error %v is not ErrEpsilonTooLarge", eps, err)
		}
	}
	if _, err := NewOLH(16, math.NaN()); err == nil || errors.Is(err, ErrEpsilonTooLarge) {
		t.Fatalf("NaN epsilon: got %v, want a plain invalid-epsilon error", err)
	}
	// The largest representable default hash range still constructs.
	if _, err := NewOLH(16, 21); err != nil {
		t.Fatalf("eps=21: %v", err)
	}
}

// TestNewOLHWithGDegenerateP: even with a small explicit g, a huge ε
// rounds the internal keep probability to exactly 1 — the sampler would
// never perturb while claiming a finite budget.
func TestNewOLHWithGDegenerateP(t *testing.T) {
	_, err := NewOLHWithG(16, 60, 16)
	if !errors.Is(err, ErrEpsilonTooLarge) {
		t.Fatalf("got %v, want ErrEpsilonTooLarge", err)
	}
	if _, err := NewOLHWithG(16, 2, maxHashRange+1); err == nil {
		t.Fatal("g above maxHashRange accepted")
	}
}

// TestNewGRREpsilonDegenerate: at d=16, e^40 swallows d-1 in float64 and
// p rounds to exactly 1 (the fixed-point threshold saturates to
// certainty): GRR would report the truth always. Pre-fix this
// constructed silently.
func TestNewGRREpsilonDegenerate(t *testing.T) {
	for _, eps := range []float64{40, 710} {
		_, err := NewGRR(16, eps)
		if !errors.Is(err, ErrEpsilonTooLarge) {
			t.Fatalf("eps=%g: got %v, want ErrEpsilonTooLarge", eps, err)
		}
	}
	// Large-but-representable budgets still construct.
	if _, err := NewGRR(16, 30); err != nil {
		t.Fatalf("eps=30: %v", err)
	}
}

// TestNewOUEEpsilonDegenerate: e^710 = +Inf makes q exactly 0 — OUE
// would never set a non-true bit, so a report reveals its input outright.
func TestNewOUEEpsilonDegenerate(t *testing.T) {
	_, err := NewOUE(16, 710)
	if !errors.Is(err, ErrEpsilonTooLarge) {
		t.Fatalf("got %v, want ErrEpsilonTooLarge", err)
	}
	if _, err := NewOUE(16, 20); err != nil {
		t.Fatalf("eps=20: %v", err)
	}
}

// TestNewSUEEpsilonDegenerate: e^{ε/2} beyond 2^53 rounds SUE's p to 1.
func TestNewSUEEpsilonDegenerate(t *testing.T) {
	for _, eps := range []float64{160, 1419} {
		_, err := NewSUE(16, eps)
		if !errors.Is(err, ErrEpsilonTooLarge) {
			t.Fatalf("eps=%g: got %v, want ErrEpsilonTooLarge", eps, err)
		}
	}
	if _, err := NewSUE(16, 40); err != nil {
		t.Fatalf("eps=40: %v", err)
	}
}

// TestNewBLHEpsilonDegenerate: BLH shares OLH's construction, so the
// guard must fire through it as well.
func TestNewBLHEpsilonDegenerate(t *testing.T) {
	_, err := NewBLH(16, 60)
	if !errors.Is(err, ErrEpsilonTooLarge) {
		t.Fatalf("got %v, want ErrEpsilonTooLarge", err)
	}
}
