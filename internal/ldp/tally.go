package ldp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
)

// Tally is one frontend node's sealed per-epoch aggregate: the raw
// support counts and report total that node collected during one epoch
// of the shared epoch clock. Tallies are the unit the scale-out
// collection tier ships from frontend ingest nodes to the root merger
// (DESIGN.md §7): support counting is exactly additive, so merging the
// tallies of disjoint user populations loses nothing — the merged counts
// are bit-identical to a single collector having seen every report.
type Tally struct {
	// NodeID identifies the frontend that sealed this tally. The root
	// dedupes by (NodeID, Epoch), which is what makes at-least-once
	// delivery (retries, crash-restart re-sends) safe.
	NodeID string
	// Epoch is the shared epoch clock index this tally covers. Frontends
	// seal on the same clock, so equal indices across nodes describe the
	// same collection period.
	Epoch int
	// Counts are the sealed raw support counts (length = domain).
	Counts []int64
	// Total is the number of reports sealed into the tally.
	Total int64
}

// Validate checks the tally's structural invariants: a non-empty node
// id, a non-negative epoch and total, and non-negative counts over a
// plausible domain.
func (t *Tally) Validate() error {
	if t.NodeID == "" {
		return fmt.Errorf("%w: tally without a node id", ErrCodec)
	}
	if len(t.NodeID) > maxTallyNodeID {
		return fmt.Errorf("%w: tally node id of %d bytes exceeds cap %d",
			ErrCodec, len(t.NodeID), maxTallyNodeID)
	}
	if t.Epoch < 0 {
		return fmt.Errorf("%w: negative tally epoch %d", ErrCodec, t.Epoch)
	}
	if len(t.Counts) < 2 || len(t.Counts) > maxTallyDomain {
		return fmt.Errorf("%w: tally domain %d outside [2, %d]",
			ErrCodec, len(t.Counts), maxTallyDomain)
	}
	if t.Total < 0 {
		return fmt.Errorf("%w: negative tally total %d", ErrCodec, t.Total)
	}
	for v, c := range t.Counts {
		if c < 0 {
			return fmt.Errorf("%w: negative tally count %d for item %d", ErrCodec, c, v)
		}
	}
	return nil
}

// Merge folds another node's tally for the same epoch into this one.
// The merge is exact — int64 addition of per-item counts and totals —
// which is the whole cluster-mode guarantee: order and grouping of
// merges cannot change the result. The node id is not merged; the
// caller owns the identity of the combined aggregate.
func (t *Tally) Merge(other *Tally) error {
	if other == nil {
		return fmt.Errorf("%w: merging a nil tally", ErrCodec)
	}
	return other.MergeInto(t)
}

// MergeInto folds this tally into acc — the direction the merge tree's
// accept path uses: the incoming tally is the receiver, the per-epoch
// accumulated tally the argument, and the incoming counts are never
// retained. The fold is exact int64 addition, so any grouping of
// MergeInto/Merge calls over the same tallies produces the same bits.
func (t *Tally) MergeInto(acc *Tally) error {
	if acc == nil {
		return fmt.Errorf("%w: merging into a nil tally", ErrCodec)
	}
	if len(t.Counts) != len(acc.Counts) {
		return fmt.Errorf("%w: merging tallies over domains %d and %d",
			ErrCodec, len(t.Counts), len(acc.Counts))
	}
	if t.Epoch != acc.Epoch {
		return fmt.Errorf("%w: merging tallies for epochs %d and %d",
			ErrCodec, t.Epoch, acc.Epoch)
	}
	for v, c := range t.Counts {
		acc.Counts[v] += c
	}
	acc.Total += t.Total
	return nil
}

// Clone returns a deep copy.
func (t *Tally) Clone() *Tally {
	return &Tally{NodeID: t.NodeID, Epoch: t.Epoch, Counts: slices.Clone(t.Counts), Total: t.Total}
}

// Sealed-tally wire format (little endian):
//
//	byte 0..1:  "LT" magic
//	byte 2:     tally format version (currently 1)
//	byte 3..4:  uint16 node id length, then that many id bytes
//	then:       uint64 epoch, uint64 report total, uint32 domain d,
//	            d uint64 per-item support counts
//	trailer:    uint32 CRC-32C over every preceding byte
//
// Unlike report frames (which travel inside HTTP bodies the server
// already length-checks), a tally crosses a node boundary where a
// partially written or bit-flipped frame would silently corrupt the
// merged view for an entire epoch, so the frame carries its own
// checksum like the WAL records it is derived from.
const (
	tallyVersion = 1

	// maxTallyDomain caps the declared domain so a corrupt frame cannot
	// drive a gigabyte allocation before the CRC check runs; it matches
	// the unary report codec's bit cap.
	maxTallyDomain = 1 << 26
	// maxTallyNodeID bounds the node id, which is operator-chosen
	// configuration, not data.
	maxTallyNodeID = 256

	tallyHeaderSize = 2 + 1 + 2
)

var tallyMagic = [2]byte{'L', 'T'}

// tallyCRCTable is the Castagnoli polynomial, the same the WAL uses.
var tallyCRCTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalTally frames a sealed tally for the wire.
func MarshalTally(t *Tally) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: marshaling a nil tally", ErrCodec)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	size := tallyHeaderSize + len(t.NodeID) + 8 + 8 + 4 + 8*len(t.Counts) + 4
	b := make([]byte, 0, size)
	b = append(b, tallyMagic[0], tallyMagic[1], tallyVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(t.NodeID)))
	b = append(b, t.NodeID...)
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Epoch))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.Total))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.Counts)))
	for _, c := range t.Counts {
		b = binary.LittleEndian.AppendUint64(b, uint64(c))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, tallyCRCTable)), nil
}

// UnmarshalTally parses a wire-format sealed tally. The CRC is verified
// before any field is trusted; every declared length is bounds-checked
// before it drives an allocation, so corrupt or hostile frames error
// out without panicking or ballooning memory.
func UnmarshalTally(data []byte) (*Tally, error) {
	if len(data) < tallyHeaderSize+8+8+4+4 {
		return nil, fmt.Errorf("%w: short tally frame (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != tallyMagic[0] || data[1] != tallyMagic[1] {
		return nil, fmt.Errorf("%w: bad tally magic %q", ErrCodec, string(data[:2]))
	}
	if data[2] != tallyVersion {
		return nil, fmt.Errorf("%w: unsupported tally version %d", ErrCodec, data[2])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, tallyCRCTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: tally checksum mismatch", ErrCodec)
	}
	idLen := int(binary.LittleEndian.Uint16(data[3:]))
	if idLen == 0 || idLen > maxTallyNodeID {
		return nil, fmt.Errorf("%w: tally node id length %d outside [1, %d]",
			ErrCodec, idLen, maxTallyNodeID)
	}
	rest := body[tallyHeaderSize:]
	if len(rest) < idLen+8+8+4 {
		return nil, fmt.Errorf("%w: tally frame truncated inside header", ErrCodec)
	}
	t := &Tally{NodeID: string(rest[:idLen])}
	rest = rest[idLen:]
	epoch := binary.LittleEndian.Uint64(rest)
	total := binary.LittleEndian.Uint64(rest[8:])
	d := binary.LittleEndian.Uint32(rest[16:])
	rest = rest[20:]
	if epoch > math.MaxInt64 || total > math.MaxInt64 {
		return nil, fmt.Errorf("%w: tally epoch/total out of int64 range", ErrCodec)
	}
	t.Epoch = int(epoch)
	t.Total = int64(total)
	if d < 2 || d > maxTallyDomain {
		return nil, fmt.Errorf("%w: tally domain %d outside [2, %d]", ErrCodec, d, maxTallyDomain)
	}
	if len(rest) != 8*int(d) {
		return nil, fmt.Errorf("%w: tally frame holds %d count bytes, domain %d needs %d",
			ErrCodec, len(rest), d, 8*d)
	}
	t.Counts = make([]int64, d)
	for v := range t.Counts {
		t.Counts[v] = int64(binary.LittleEndian.Uint64(rest[8*v:]))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
