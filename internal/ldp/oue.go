package ldp

import (
	"math"
	"math/bits"

	"ldprecover/internal/rng"
)

// OUE is Optimized Unary Encoding (Wang et al.; paper §III-B, Eq. 5–7):
// the item is one-hot encoded into d bits, the true bit survives with
// probability p = 1/2 and every other bit is set with probability
// q = 1/(e^ε+1).
type OUE struct {
	params  Params
	sampler unarySampler
}

// NewOUE constructs an OUE protocol over a domain of size d with privacy
// budget epsilon.
func NewOUE(d int, epsilon float64) (*OUE, error) {
	pr := Params{
		Epsilon: epsilon,
		Domain:  d,
		P:       0.5,
		Q:       1 / (math.Exp(epsilon) + 1),
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := checkPerturbable("OUE", pr); err != nil {
		return nil, err
	}
	return &OUE{params: pr, sampler: newUnarySampler(d, pr.P, pr.Q)}, nil
}

// Name implements Protocol.
func (o *OUE) Name() string { return "OUE" }

// Params implements Protocol.
func (o *OUE) Params() Params { return o.params }

// OUEReport is a perturbed d-bit unary encoding; its support set is the
// set of positions holding a 1.
type OUEReport struct {
	Bits *Bitset
}

// Supports implements Report.
func (r OUEReport) Supports(v int) bool { return r.Bits.Get(v) }

// AddSupports implements Report: a closure-free word walk peeling set
// bits with TrailingZeros64. The common full-domain case (counts covers
// every word) runs with the per-bit bound check hoisted out entirely.
func (r OUEReport) AddSupports(counts []int64) {
	words := r.Bits.words
	if len(counts) >= len(words)*64 {
		for wi, w := range words {
			base := wi << 6
			for w != 0 {
				counts[base+bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
		return
	}
	for wi, w := range words {
		base := wi << 6
		for w != 0 {
			if i := base + bits.TrailingZeros64(w); i < len(counts) {
				counts[i]++
			}
			w &= w - 1
		}
	}
}

// Perturb implements Protocol (Eq. 5): one fixed-point compare per bit in
// the dense regime, geometric skip-sampling of the set bits (returning a
// SparseUnaryReport) when q is small.
func (o *OUE) Perturb(r *rng.Rand, v int) (Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	if err := checkItem(v, o.params.Domain); err != nil {
		return nil, err
	}
	return o.sampler.perturb(r, v, nil), nil
}

// CraftSupport implements Protocol: the attacker submits the clean one-hot
// vector of v (supports exactly {v}).
func (o *OUE) CraftSupport(_ *rng.Rand, v int) (Report, error) {
	if err := checkItem(v, o.params.Domain); err != nil {
		return nil, err
	}
	bits := NewBitset(o.params.Domain)
	bits.Set(v)
	return OUEReport{Bits: bits}, nil
}

// BatchPerturb implements BatchPerturber. OUE perturbs every bit
// independently, so the support counts are exactly independent across
// items: C(v) = Binomial(n_v, p) + Binomial(n-n_v, q).
func (o *OUE) BatchPerturb(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return independentBinomialCounts(r, trueCounts, o.params.Domain, o.params.P, o.params.Q)
}

// SimulateGenuineCounts implements Protocol via the batch fast path.
func (o *OUE) SimulateGenuineCounts(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return o.BatchPerturb(r, trueCounts)
}

// batchPQ marks OUE's per-item counts as independent binomials so
// BatchSimulate can parallelize over the item range.
func (o *OUE) batchPQ() (float64, float64) { return o.params.P, o.params.Q }

// Variance implements Protocol (Eq. 7).
func (o *OUE) Variance(_ float64, n int64) float64 {
	expE := math.Exp(o.params.Epsilon)
	return float64(n) * 4 * expE / ((expE - 1) * (expE - 1))
}

var (
	_ Protocol       = (*OUE)(nil)
	_ BatchPerturber = (*OUE)(nil)
)
