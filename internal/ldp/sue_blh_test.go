package ldp

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestSUEParams(t *testing.T) {
	const d, eps = 50, 0.5
	s, err := NewSUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	half := math.Exp(eps / 2)
	pr := s.Params()
	if !almostEq(pr.P, half/(half+1), 1e-12) || !almostEq(pr.Q, 1/(half+1), 1e-12) {
		t.Fatalf("SUE p=%v q=%v", pr.P, pr.Q)
	}
	// Symmetric RR per bit: p/(1-p) = e^{eps/2} and p+q = 1.
	if !almostEq(pr.P+pr.Q, 1, 1e-12) {
		t.Fatalf("SUE p+q = %v", pr.P+pr.Q)
	}
	if s.Name() != "SUE" {
		t.Fatalf("name %q", s.Name())
	}
	if _, err := NewSUE(1, 0.5); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := NewSUE(10, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestBLHParams(t *testing.T) {
	const d, eps = 50, 0.5
	b, err := NewBLH(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	expE := math.Exp(eps)
	pr := b.Params()
	if !almostEq(pr.P, expE/(expE+1), 1e-12) || pr.Q != 0.5 {
		t.Fatalf("BLH p=%v q=%v", pr.P, pr.Q)
	}
	if b.Name() != "BLH" || b.G() != 2 {
		t.Fatalf("name %q g %d", b.Name(), b.G())
	}
	// Plain OLH must still be named OLH.
	o, _ := NewOLH(d, eps)
	if o.Name() != "OLH" {
		t.Fatalf("OLH name %q", o.Name())
	}
}

// TestSUEBLHSupportProbabilities checks the defining pure-LDP property
// for the two extra protocols.
func TestSUEBLHSupportProbabilities(t *testing.T) {
	const d, eps, trials = 20, 0.8, 60000
	r := rng.New(7)
	sue, _ := NewSUE(d, eps)
	blh, _ := NewBLH(d, eps)
	for _, p := range []Protocol{sue, blh} {
		pr := p.Params()
		supTrue, supOther := 0, 0
		for i := 0; i < trials; i++ {
			rep, err := p.Perturb(r, 3)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Supports(3) {
				supTrue++
			}
			if rep.Supports(11) {
				supOther++
			}
		}
		gotP := float64(supTrue) / trials
		gotQ := float64(supOther) / trials
		if math.Abs(gotP-pr.P) > 5*math.Sqrt(pr.P*(1-pr.P)/trials) {
			t.Fatalf("%s: empirical p %v want %v", p.Name(), gotP, pr.P)
		}
		if math.Abs(gotQ-pr.Q) > 5*math.Sqrt(pr.Q*(1-pr.Q)/trials) {
			t.Fatalf("%s: empirical q %v want %v", p.Name(), gotQ, pr.Q)
		}
	}
}

// TestSUEBLHUnbiasedEstimates runs both extra protocols through the full
// pipeline and checks unbiasedness.
func TestSUEBLHUnbiasedEstimates(t *testing.T) {
	const d, eps = 10, 1.0
	trueCounts := []int64{3000, 2000, 1500, 1000, 800, 600, 400, 300, 250, 150}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	r := rng.New(8)
	sue, _ := NewSUE(d, eps)
	blh, _ := NewBLH(d, eps)
	for _, p := range []Protocol{sue, blh} {
		reports, err := PerturbAll(p, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := EstimateFrequencies(reports, p.Params())
		if err != nil {
			t.Fatal(err)
		}
		for v, c := range trueCounts {
			want := float64(c) / float64(n)
			sd := math.Sqrt(p.Variance(want, n)) / float64(n)
			if math.Abs(fs[v]-want) > 6*sd {
				t.Fatalf("%s item %d: estimate %v want %v ± %v", p.Name(), v, fs[v], want, 6*sd)
			}
		}
	}
}

// TestSUEBLHFastSimAgrees compares fast and exact paths for the extra
// protocols.
func TestSUEBLHFastSimAgrees(t *testing.T) {
	const d, eps = 8, 0.8
	trueCounts := []int64{500, 400, 300, 200, 150, 100, 80, 70}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	r := rng.New(9)
	sue, _ := NewSUE(d, eps)
	blh, _ := NewBLH(d, eps)
	for _, p := range []Protocol{sue, blh} {
		const trials = 60
		fastMean := make([]float64, d)
		exactMean := make([]float64, d)
		for trial := 0; trial < trials; trial++ {
			fast, err := p.SimulateGenuineCounts(r, trueCounts)
			if err != nil {
				t.Fatal(err)
			}
			reports, err := PerturbAll(p, r, trueCounts)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := CountSupports(reports, d)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < d; v++ {
				fastMean[v] += float64(fast[v])
				exactMean[v] += float64(exact[v])
			}
		}
		for v := 0; v < d; v++ {
			fm := fastMean[v] / trials
			em := exactMean[v] / trials
			tol := 6 * math.Sqrt(float64(n)*0.25) / math.Sqrt(trials)
			if math.Abs(fm-em) > tol {
				t.Fatalf("%s item %d: fast %v exact %v", p.Name(), v, fm, em)
			}
		}
	}
}

// TestSUEVarianceEmpirical checks the SUE variance formula.
func TestSUEVarianceEmpirical(t *testing.T) {
	const d, eps = 10, 0.9
	sue, _ := NewSUE(d, eps)
	trueCounts := make([]int64, d)
	trueCounts[0] = 2000
	const n = int64(2000)
	r := rng.New(10)
	const trials = 400
	est := make([]float64, trials)
	pr := sue.Params()
	for i := range est {
		counts, err := sue.SimulateGenuineCounts(r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		est[i] = (float64(counts[5]) - float64(n)*pr.Q) / (pr.P - pr.Q)
	}
	want := sue.Variance(0, n)
	got := stats.SampleVariance(est)
	if got < want*0.7 || got > want*1.4 {
		t.Fatalf("SUE empirical variance %v want %v", got, want)
	}
}

// TestSUECraftSupportSingleton verifies the adaptive-attack primitive.
func TestSUECraftSupportSingleton(t *testing.T) {
	sue, _ := NewSUE(10, 0.5)
	rep, err := sue.CraftSupport(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if rep.Supports(v) != (v == 4) {
			t.Fatal("SUE crafted support not singleton")
		}
	}
	if _, err := sue.CraftSupport(nil, 10); err == nil {
		t.Fatal("out-of-domain accepted")
	}
}
