package ldp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// AnnounceKind distinguishes the two membership announcements.
type AnnounceKind uint8

const (
	// AnnounceJoin asks the root to expect this node's tallies from an
	// epoch boundary on.
	AnnounceJoin AnnounceKind = 1
	// AnnounceLeave tells the root this node stops contributing at an
	// epoch boundary (its final partial epoch, if any, is already on the
	// wire).
	AnnounceLeave AnnounceKind = 2
)

func (k AnnounceKind) String() string {
	switch k {
	case AnnounceJoin:
		return "join"
	case AnnounceLeave:
		return "leave"
	}
	return fmt.Sprintf("announce(%d)", uint8(k))
}

// Announce is a cluster membership announcement: a frontend joining or
// leaving a running cluster. It travels in the same codec family as
// Tally — CRC-framed, bounds-checked before allocation — because it
// crosses the same node boundary and a corrupted membership change
// would desynchronize the epoch barrier for every node.
//
// Membership changes always take effect at an epoch boundary, never
// mid-barrier: the root answers with the effective epoch it assigned,
// which may be later than the requested one (the current barrier epoch
// already has tallies waiting, or the node has deliveries in flight
// past the requested boundary).
type Announce struct {
	// NodeID identifies the frontend, under the same rules as
	// Tally.NodeID.
	NodeID string
	// Kind is join or leave.
	Kind AnnounceKind
	// Epoch is the requested effective boundary. For a join it is the
	// first epoch the node wants to contribute (0 = "the next
	// boundary"); for a leave it is the first epoch the node will no
	// longer contribute (its last sealed epoch + 1). The root clamps it
	// forward, never backward.
	Epoch int
}

// Validate checks the announcement's structural invariants.
func (a *Announce) Validate() error {
	if a.NodeID == "" {
		return fmt.Errorf("%w: announce without a node id", ErrCodec)
	}
	if len(a.NodeID) > maxTallyNodeID {
		return fmt.Errorf("%w: announce node id of %d bytes exceeds cap %d",
			ErrCodec, len(a.NodeID), maxTallyNodeID)
	}
	if a.Kind != AnnounceJoin && a.Kind != AnnounceLeave {
		return fmt.Errorf("%w: unknown announce kind %d", ErrCodec, a.Kind)
	}
	if a.Epoch < 0 {
		return fmt.Errorf("%w: negative announce epoch %d", ErrCodec, a.Epoch)
	}
	return nil
}

// Membership-announce wire format (little endian):
//
//	byte 0..1:  "LA" magic
//	byte 2:     announce format version (currently 1)
//	byte 3:     kind (1 = join, 2 = leave)
//	byte 4..5:  uint16 node id length, then that many id bytes
//	then:       uint64 requested effective epoch
//	trailer:    uint32 CRC-32C over every preceding byte
const (
	announceVersion    = 1
	announceHeaderSize = 2 + 1 + 1 + 2
)

var announceMagic = [2]byte{'L', 'A'}

// MarshalAnnounce frames a membership announcement for the wire.
func MarshalAnnounce(a *Announce) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("%w: marshaling a nil announce", ErrCodec)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, announceHeaderSize+len(a.NodeID)+8+4)
	b = append(b, announceMagic[0], announceMagic[1], announceVersion, byte(a.Kind))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(a.NodeID)))
	b = append(b, a.NodeID...)
	b = binary.LittleEndian.AppendUint64(b, uint64(a.Epoch))
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, tallyCRCTable)), nil
}

// UnmarshalAnnounce parses a wire-format membership announcement. Like
// the tally decoder, the CRC is verified before any field is trusted
// and every declared length is bounds-checked before it drives an
// allocation.
func UnmarshalAnnounce(data []byte) (*Announce, error) {
	if len(data) < announceHeaderSize+8+4 {
		return nil, fmt.Errorf("%w: short announce frame (%d bytes)", ErrCodec, len(data))
	}
	if data[0] != announceMagic[0] || data[1] != announceMagic[1] {
		return nil, fmt.Errorf("%w: bad announce magic %q", ErrCodec, string(data[:2]))
	}
	if data[2] != announceVersion {
		return nil, fmt.Errorf("%w: unsupported announce version %d", ErrCodec, data[2])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, tallyCRCTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: announce checksum mismatch", ErrCodec)
	}
	a := &Announce{Kind: AnnounceKind(data[3])}
	idLen := int(binary.LittleEndian.Uint16(data[4:]))
	if idLen == 0 || idLen > maxTallyNodeID {
		return nil, fmt.Errorf("%w: announce node id length %d outside [1, %d]",
			ErrCodec, idLen, maxTallyNodeID)
	}
	rest := body[announceHeaderSize:]
	if len(rest) != idLen+8 {
		return nil, fmt.Errorf("%w: announce frame holds %d body bytes, id length %d needs %d",
			ErrCodec, len(rest), idLen, idLen+8)
	}
	a.NodeID = string(rest[:idLen])
	epoch := binary.LittleEndian.Uint64(rest[idLen:])
	if epoch > math.MaxInt64 {
		return nil, fmt.Errorf("%w: announce epoch out of int64 range", ErrCodec)
	}
	a.Epoch = int(epoch)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
