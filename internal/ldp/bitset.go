package ldp

import "math/bits"

// Bitset is a fixed-capacity bit vector used by OUE reports. The zero
// value is unusable; construct with NewBitset.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset holding n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to 1. Out-of-range indices are a caller bug and panic
// via the slice bounds check.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear sets bit i to 0.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports whether bit i is 1.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEachSet calls fn for every set bit index in increasing order.
func (b *Bitset) ForEachSet(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi<<6 + tz)
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}
