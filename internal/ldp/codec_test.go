package ldp

import (
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
)

func TestCodecRoundTripGRR(t *testing.T) {
	in := GRRReport(42)
	buf, err := MarshalReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(GRRReport); got != in {
		t.Fatalf("round trip %v -> %v", in, got)
	}
}

func TestCodecRoundTripUnary(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130, 490} {
		bits := NewBitset(n)
		bits.Set(0)
		if n > 5 {
			bits.Set(5)
		}
		bits.Set(n - 1)
		in := OUEReport{Bits: bits}
		buf, err := MarshalReport(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := UnmarshalReport(buf)
		if err != nil {
			t.Fatal(err)
		}
		got := out.(OUEReport)
		if got.Bits.Len() != n || got.Bits.Count() != bits.Count() {
			t.Fatalf("n=%d: round trip lost bits", n)
		}
		for v := 0; v < n; v++ {
			if got.Bits.Get(v) != bits.Get(v) {
				t.Fatalf("n=%d: bit %d mismatch", n, v)
			}
		}
	}
}

func TestCodecRoundTripOLH(t *testing.T) {
	in := OLHReport{Seed: 0xdeadbeefcafef00d, Value: 2, G: 3}
	buf, err := MarshalReport(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(OLHReport); got != in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestCodecMarshalValidation(t *testing.T) {
	if _, err := MarshalReport(GRRReport(-1)); err == nil {
		t.Fatal("negative GRR accepted")
	}
	if _, err := MarshalReport(OUEReport{}); err == nil {
		t.Fatal("nil bitset accepted")
	}
	if _, err := MarshalReport(OLHReport{Seed: 1, Value: 5, G: 3}); err == nil {
		t.Fatal("value >= g accepted")
	}
	if _, err := MarshalReport(nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestCodecUnmarshalValidation(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},                       // short
		{9, tagGRR, 0, 0, 0, 0},   // bad version
		{1, 99, 0, 0, 0, 0},       // unknown tag
		{1, tagGRR, 0, 0},         // short GRR payload
		{1, tagUnary, 0, 0},       // short unary payload
		{1, tagUnary, 0, 0, 0, 0}, // zero bit count
		{1, tagOLH, 0, 0, 0},      // short OLH payload
	}
	for i, buf := range cases {
		if _, err := UnmarshalReport(buf); err == nil {
			t.Fatalf("case %d: corrupt buffer accepted", i)
		}
	}
	// Unary with stray bits beyond the declared length.
	bits := NewBitset(65)
	bits.Set(64)
	good, err := MarshalReport(OUEReport{Bits: bits})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] |= 0x80 // set a bit past position 64
	if _, err := UnmarshalReport(bad); err == nil {
		t.Fatal("stray high bits accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		r := rng.New(seed)
		var in Report
		switch pick % 3 {
		case 0:
			in = GRRReport(r.Intn(1 << 20))
		case 1:
			n := r.Intn(300) + 1
			bits := NewBitset(n)
			for i := 0; i < n; i++ {
				if r.Bernoulli(0.3) {
					bits.Set(i)
				}
			}
			in = OUEReport{Bits: bits}
		default:
			g := r.Intn(14) + 2
			in = OLHReport{Seed: r.Uint64(), Value: r.Intn(g), G: g}
		}
		buf, err := MarshalReport(in)
		if err != nil {
			return false
		}
		out, err := UnmarshalReport(buf)
		if err != nil {
			return false
		}
		// Supports must agree over a generous probe range.
		for v := 0; v < 64; v++ {
			if in.Supports(v) != out.Supports(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecThroughAggregation shuttles a whole population across the
// wire and checks the estimates are unchanged.
func TestCodecThroughAggregation(t *testing.T) {
	const d, eps = 12, 0.8
	oue, _ := NewOUE(d, eps)
	r := rng.New(9)
	counts := make([]int64, d)
	for i := range counts {
		counts[i] = 200
	}
	reports, err := PerturbAll(oue, r, counts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EstimateFrequencies(reports, oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]Report, len(reports))
	for i, rep := range reports {
		buf, err := MarshalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		wire[i], err = UnmarshalReport(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	viaWire, err := EstimateFrequencies(wire, oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct {
		if direct[v] != viaWire[v] {
			t.Fatalf("estimates diverged at %d: %v vs %v", v, direct[v], viaWire[v])
		}
	}
}

func FuzzUnmarshalReport(f *testing.F) {
	// Seed with valid encodings of each type plus junk.
	grr, _ := MarshalReport(GRRReport(7))
	f.Add(grr)
	bits := NewBitset(70)
	bits.Set(3)
	unary, _ := MarshalReport(OUEReport{Bits: bits})
	f.Add(unary)
	olh, _ := MarshalReport(OLHReport{Seed: 99, Value: 1, G: 3})
	f.Add(olh)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := UnmarshalReport(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted reports must be internally consistent.
		buf, err := MarshalReport(rep)
		if err != nil {
			t.Fatalf("re-marshal of accepted report failed: %v", err)
		}
		back, err := UnmarshalReport(buf)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		for v := 0; v < 16; v++ {
			if rep.Supports(v) != back.Supports(v) {
				t.Fatal("support set changed across round trip")
			}
		}
	})
}
