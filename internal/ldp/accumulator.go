package ldp

import (
	"errors"
	"fmt"
)

// Accumulator is a streaming server-side aggregator: reports arrive one
// at a time (e.g. off the wire via UnmarshalReport), support counts
// accumulate incrementally, and partial aggregates from different shards
// merge. It is NOT safe for concurrent use: shard per goroutine and
// Merge, or use ShardedAccumulator, which does exactly that behind a
// concurrency-safe API.
type Accumulator struct {
	counts []int64
	total  int64
	// scratch is the reusable state behind AddBatch's type-specialized
	// fast paths (bit-plane counters, premixed OLH descriptors); it is
	// lazily grown and never shared across accumulators.
	scratch batchScratch
}

// NewAccumulator returns an empty accumulator over a domain of size d.
func NewAccumulator(d int) (*Accumulator, error) {
	if d < 2 {
		return nil, fmt.Errorf("ldp: accumulator domain %d < 2", d)
	}
	return &Accumulator{counts: make([]int64, d)}, nil
}

// Add folds one report into the aggregate.
func (a *Accumulator) Add(rep Report) error {
	if rep == nil {
		return errors.New("ldp: nil report")
	}
	rep.AddSupports(a.counts)
	a.total++
	return nil
}

// Merge folds another accumulator's state into this one. The other
// accumulator is left untouched.
func (a *Accumulator) Merge(other *Accumulator) error {
	if other == nil {
		return errors.New("ldp: nil accumulator")
	}
	if len(other.counts) != len(a.counts) {
		return fmt.Errorf("ldp: merging accumulators over domains %d and %d",
			len(other.counts), len(a.counts))
	}
	for v, c := range other.counts {
		a.counts[v] += c
	}
	a.total += other.total
	return nil
}

// Total returns the number of reports folded in.
func (a *Accumulator) Total() int64 { return a.total }

// Counts returns a copy of the raw support counts.
func (a *Accumulator) Counts() []int64 {
	return append([]int64(nil), a.counts...)
}

// Estimate produces the unbiased frequency estimates for the current
// aggregate under the protocol parameters pr.
func (a *Accumulator) Estimate(pr Params) ([]float64, error) {
	if a.total == 0 {
		return nil, errors.New("ldp: estimating from an empty accumulator")
	}
	return Unbias(a.counts, a.total, pr)
}
