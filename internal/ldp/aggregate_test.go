package ldp

import (
	"math"
	"testing"
	"testing/quick"

	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestCountSupportsGRR(t *testing.T) {
	reports := []Report{GRRReport(0), GRRReport(1), GRRReport(1), GRRReport(3)}
	counts, err := CountSupports(reports, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 0, 1}
	for v := range want {
		if counts[v] != want[v] {
			t.Fatalf("counts %v want %v", counts, want)
		}
	}
}

func TestCountSupportsErrors(t *testing.T) {
	if _, err := CountSupports([]Report{nil}, 4); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := CountSupports(nil, 0); err == nil {
		t.Fatal("zero domain accepted")
	}
}

func TestUnbiasRebiasRoundTrip(t *testing.T) {
	pr := Params{Epsilon: 0.5, Domain: 5, P: 0.6, Q: 0.2}
	counts := []int64{100, 200, 50, 0, 650}
	fs, err := Unbias(counts, 1000, pr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Rebias(fs, 1000, pr)
	if err != nil {
		t.Fatal(err)
	}
	for v := range counts {
		if math.Abs(back[v]-float64(counts[v])) > 1e-9 {
			t.Fatalf("round trip count[%d] = %v want %d", v, back[v], counts[v])
		}
	}
}

func TestUnbiasRoundTripProperty(t *testing.T) {
	pr := Params{Epsilon: 1, Domain: 8, P: 0.5, Q: 0.25}
	f := func(raw [8]uint16, totRaw uint16) bool {
		total := int64(totRaw) + 1
		counts := make([]int64, 8)
		for i, v := range raw {
			counts[i] = int64(v)
		}
		fs, err := Unbias(counts, total, pr)
		if err != nil {
			return false
		}
		back, err := Rebias(fs, total, pr)
		if err != nil {
			return false
		}
		for v := range counts {
			if math.Abs(back[v]-float64(counts[v])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnbiasValidation(t *testing.T) {
	pr := Params{Epsilon: 0.5, Domain: 3, P: 0.6, Q: 0.2}
	if _, err := Unbias([]int64{1, 2}, 10, pr); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Unbias([]int64{1, 2, 3}, 0, pr); err == nil {
		t.Fatal("zero total accepted")
	}
	bad := pr
	bad.P = 0.1 // p < q
	if _, err := Unbias([]int64{1, 2, 3}, 10, bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestUnbiasedSumGRR: for GRR (every report supports exactly one item)
// the unbiased frequency estimates always sum to exactly 1:
// sum_v (C(v) - nq)/(n(p-q)) = (n - nqd)/(n(p-q)) and q = (1-p)/(d-1).
func TestUnbiasedSumGRR(t *testing.T) {
	grr, _ := NewGRR(15, 0.7)
	r := rng.New(11)
	counts := make([]int64, 15)
	for i := range counts {
		counts[i] = int64(50 * (i + 1))
	}
	sim, err := grr.SimulateGenuineCounts(r, counts)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	fs, err := Unbias(sim, n, grr.Params())
	if err != nil {
		t.Fatal(err)
	}
	if s := stats.Sum(fs); math.Abs(s-1) > 1e-9 {
		t.Fatalf("GRR estimates sum to %v", s)
	}
}

func TestEstimateFrequenciesPipeline(t *testing.T) {
	const d, eps = 8, 1.2
	oue, _ := NewOUE(d, eps)
	r := rng.New(21)
	trueCounts := []int64{4000, 2000, 1000, 500, 250, 125, 75, 50}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	reports, err := PerturbAll(oue, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(reports)) != n {
		t.Fatalf("reports %d want %d", len(reports), n)
	}
	fs, err := EstimateFrequencies(reports, oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range trueCounts {
		want := float64(c) / float64(n)
		sd := math.Sqrt(oue.Variance(want, n)) / float64(n)
		if math.Abs(fs[v]-want) > 6*sd {
			t.Fatalf("item %d: estimate %v want %v ± %v", v, fs[v], want, 6*sd)
		}
	}
}

func TestPerturbAllValidation(t *testing.T) {
	grr, _ := NewGRR(5, 0.5)
	r := rng.New(1)
	if _, err := PerturbAll(grr, nil, make([]int64, 5)); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := PerturbAll(grr, r, make([]int64, 3)); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := PerturbAll(grr, r, []int64{1, -1, 0, 0, 0}); err == nil {
		t.Fatal("negative count accepted")
	}
}

// TestEmpiricalVarianceMatchesFormula estimates the variance of the
// count estimator over repeated trials and compares with Protocol.Variance.
func TestEmpiricalVarianceMatchesFormula(t *testing.T) {
	const d, eps = 10, 0.9
	trueCounts := make([]int64, d)
	trueCounts[0] = 200 // sparse: most items have zero frequency
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	n += 0
	// Fill remaining users on item 1 to get a realistic n.
	trueCounts[1] = 1800
	n = 2000
	r := rng.New(31)
	for _, p := range testProtocols(t, d, eps) {
		const trials = 400
		est := make([]float64, trials)
		item := 5 // zero-frequency item: Eq. 4/7/10 at f=0
		for trial := 0; trial < trials; trial++ {
			counts, err := p.SimulateGenuineCounts(r, trueCounts)
			if err != nil {
				t.Fatal(err)
			}
			pr := p.Params()
			est[trial] = (float64(counts[item]) - float64(n)*pr.Q) / (pr.P - pr.Q)
		}
		want := p.Variance(0, n)
		got := stats.SampleVariance(est)
		if got < want*0.7 || got > want*1.4 {
			t.Fatalf("%s: empirical count variance %v want %v", p.Name(), got, want)
		}
	}
}
