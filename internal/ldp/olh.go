package ldp

import (
	"fmt"
	"math"

	"ldprecover/internal/hashx"
	"ldprecover/internal/rng"
)

// OLH is Optimized Local Hashing (Wang et al.; paper §III-B, Eq. 8–10):
// each user draws a hash function H (here: a seed into the hashx family),
// hashes her item into {0,...,g-1} with g = ⌈e^ε+1⌉, perturbs the hash
// value with GRR over the g-sized domain, and reports (H, value).
//
// Aggregation-side probabilities are p = e^ε/(e^ε+g-1) and q = 1/g; the
// internal GRR perturbation uses q_perturb = 1/(e^ε+g-1), exposed via
// PerturbQ for tests.
type OLH struct {
	params   Params
	perturbQ float64
	// perturbPFix is the fixed-point threshold for the internal GRR keep
	// probability p' = e^ε/(e^ε+g-1) (numerically equal to params.P),
	// hoisted to construction so Perturb's hot path does no exp/float
	// work per report.
	perturbPFix uint64
	name        string
}

// maxHashRange bounds OLH's hash range g. Beyond 2^31 the range no
// longer describes a plausible report alphabet — it is the signature of
// an overflowed e^ε — and the float->int conversion of such a g is
// implementation-dependent (garbage-negative on amd64, saturated-huge on
// arm64), so the budget is rejected before any conversion happens.
const maxHashRange = 1 << 31

// NewOLH constructs an OLH protocol over a domain of size d with privacy
// budget epsilon, using the paper's default hash range g = ⌈e^ε+1⌉.
// Budgets whose hash range overflows maxHashRange are rejected with
// ErrEpsilonTooLarge rather than converted to a platform-dependent
// garbage range.
func NewOLH(d int, epsilon float64) (*OLH, error) {
	if math.IsNaN(epsilon) {
		return nil, fmt.Errorf("ldp: invalid epsilon %v", epsilon)
	}
	ge := math.Ceil(math.Exp(epsilon) + 1)
	if !(ge <= maxHashRange) {
		return nil, errEpsilonTooLarge("OLH", epsilon,
			fmt.Sprintf("hash range ceil(e^eps+1) = %g exceeds %d", ge, int64(maxHashRange)))
	}
	return NewOLHWithG(d, epsilon, int(ge))
}

// NewOLHWithG constructs OLH with an explicit hash range 2 <= g <=
// maxHashRange.
func NewOLHWithG(d int, epsilon float64, g int) (*OLH, error) {
	expE := math.Exp(epsilon)
	pr := Params{
		Epsilon: epsilon,
		Domain:  d,
		P:       expE / (expE + float64(g) - 1),
		Q:       1 / float64(g),
		G:       g,
	}
	if g < 2 || g > maxHashRange {
		return nil, errInvalidG(g)
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if err := checkPerturbable("OLH", pr); err != nil {
		return nil, err
	}
	return &OLH{
		params:      pr,
		perturbQ:    1 / (expE + float64(g) - 1),
		perturbPFix: rng.FixedProb(pr.P),
		name:        "OLH",
	}, nil
}

// NewBLH constructs Binary Local Hashing (Bassily–Smith style as framed
// by Wang et al.): OLH with a 2-value hash range, giving p = e^ε/(e^ε+1)
// and q = 1/2. Like SUE it is not in the paper's evaluation but is pure
// LDP, so recovery applies unchanged.
func NewBLH(d int, epsilon float64) (*OLH, error) {
	o, err := NewOLHWithG(d, epsilon, 2)
	if err != nil {
		return nil, err
	}
	o.name = "BLH"
	return o, nil
}

// Name implements Protocol.
func (o *OLH) Name() string { return o.name }

// Params implements Protocol.
func (o *OLH) Params() Params { return o.params }

// G returns the hash range.
func (o *OLH) G() int { return o.params.G }

// PerturbQ returns the internal GRR perturbation probability
// 1/(e^ε+g-1) for a specific non-true hash value.
func (o *OLH) PerturbQ() float64 { return o.perturbQ }

// Hash returns the hash of item v under the function indexed by seed,
// in {0,...,g-1}. Exposed so targeted attacks (MGA) can search for seeds
// that collide target items, exactly as the original attack does. Callers
// hashing many items under one seed should premix once with Hasher.
func (o *OLH) Hash(seed uint64, v int) int {
	return hashx.Premix(seed).ToRange(uint64(v), o.params.G)
}

// Hasher premixes seed into its hash function once, so multi-item scans
// (aggregation, MGA's seed search) pay the seed finalization a single
// time and the cheap per-item stage thereafter.
func (o *OLH) Hasher(seed uint64) hashx.Premixed {
	return hashx.Premix(seed)
}

// OLHReport is a (hash function, perturbed value) pair; it supports every
// item hashing to Value under Seed.
type OLHReport struct {
	Seed  uint64
	Value int
	G     int
}

// Supports implements Report.
func (r OLHReport) Supports(v int) bool {
	return hashx.Premix(r.Seed).ToRange(uint64(v), r.G) == r.Value
}

// AddSupports implements Report: the seed premix is hoisted out of the
// item scan, so one report costs one premix plus d cheap per-item mixes
// instead of d full hashes.
func (r OLHReport) AddSupports(counts []int64) {
	pre := hashx.Premix(r.Seed)
	for v := range counts {
		if pre.ToRange(uint64(v), r.G) == r.Value {
			counts[v]++
		}
	}
}

// Perturb implements Protocol (Eq. 8): hash, then GRR over the hash range.
func (o *OLH) Perturb(r *rng.Rand, v int) (Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	if err := checkItem(v, o.params.Domain); err != nil {
		return nil, err
	}
	return o.perturbOLH(r, v), nil
}

// perturbOLH is Perturb's unboxed core, shared with PerturbAllInto so
// bulk perturbation can write into a report arena without a per-report
// interface allocation. Inputs are assumed validated.
func (o *OLH) perturbOLH(r *rng.Rand, v int) OLHReport {
	seed := r.Uint64()
	h := o.Hash(seed, v)
	g := o.params.G
	value := h
	// GRR over {0,...,g-1} with p' = e^ε/(e^ε+g-1), precomputed at
	// construction as a fixed-point threshold.
	if !r.BernoulliU64(o.perturbPFix) {
		value = r.Intn(g - 1)
		if value >= h {
			value++
		}
	}
	return OLHReport{Seed: seed, Value: value, G: g}
}

// CraftSupport implements Protocol: the attacker picks a fresh hash seed
// and reports v's unperturbed hash value, guaranteeing v is supported.
// (Other items collide with probability ~1/g; that is inherent to OLH's
// encoding and matches how the attacks in the paper operate.)
func (o *OLH) CraftSupport(r *rng.Rand, v int) (Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	if err := checkItem(v, o.params.Domain); err != nil {
		return nil, err
	}
	seed := r.Uint64()
	return OLHReport{Seed: seed, Value: o.Hash(seed, v), G: o.params.G}, nil
}

// BatchPerturb implements BatchPerturber. Marginally, item v is
// supported by its own users' reports with probability
// p' = e^ε/(e^ε+g-1) and by any other user's report with probability 1/g
// (fresh uniform hash), so C(v) = Binomial(n_v, p') + Binomial(n-n_v, 1/g).
// Cross-item correlations (two items colliding under the same user's
// hash) are O(1/g²) and ignored; the report-level path is exact.
func (o *OLH) BatchPerturb(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return independentBinomialCounts(r, trueCounts, o.params.Domain, o.params.P, o.params.Q)
}

// SimulateGenuineCounts implements Protocol via the batch fast path.
func (o *OLH) SimulateGenuineCounts(r *rng.Rand, trueCounts []int64) ([]int64, error) {
	return o.BatchPerturb(r, trueCounts)
}

// batchPQ marks OLH's per-item marginal counts as independent binomials
// so BatchSimulate can parallelize over the item range.
func (o *OLH) batchPQ() (float64, float64) { return o.params.P, o.params.Q }

// Variance implements Protocol (Eq. 10).
func (o *OLH) Variance(_ float64, n int64) float64 {
	expE := math.Exp(o.params.Epsilon)
	return float64(n) * 4 * expE / ((expE - 1) * (expE - 1))
}

var (
	_ Protocol       = (*OLH)(nil)
	_ BatchPerturber = (*OLH)(nil)
)
