package ldp

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
)

// TestBatchPerturbMatchesSimulateGenuineCounts: BatchPerturb is the same
// sampler as Protocol.SimulateGenuineCounts — identical seeds must give
// identical counts, for every protocol.
func TestBatchPerturbMatchesSimulateGenuineCounts(t *testing.T) {
	const d, eps = 14, 0.7
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(30 * (v + 1))
	}
	for _, p := range shardedTestProtocols(t, d, eps) {
		bp, ok := p.(BatchPerturber)
		if !ok {
			t.Fatalf("%s does not implement BatchPerturber", p.Name())
		}
		got, err := bp.BatchPerturb(rng.New(5), trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.SimulateGenuineCounts(rng.New(5), trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: BatchPerturb diverges at %d: %d vs %d", p.Name(), v, got[v], want[v])
			}
		}
	}
}

// TestBatchSimulateSingleWorkerIsSequential: with workers=1 the parallel
// driver must be bit-identical to the sequential batch path.
func TestBatchSimulateSingleWorkerIsSequential(t *testing.T) {
	const d, eps = 14, 0.7
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(25 * (v + 2))
	}
	for _, p := range shardedTestProtocols(t, d, eps) {
		got, err := BatchSimulate(p, rng.New(9), trueCounts, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.SimulateGenuineCounts(rng.New(9), trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: workers=1 diverges at %d: %d vs %d", p.Name(), v, got[v], want[v])
			}
		}
	}
}

func TestBatchSimulateValidation(t *testing.T) {
	for _, p := range testProtocols(t, 10, 0.5) {
		if _, err := BatchSimulate(p, nil, make([]int64, 10), 2); err == nil {
			t.Fatalf("%s accepted nil rng", p.Name())
		}
		if _, err := BatchSimulate(p, rng.New(1), make([]int64, 4), 2); err == nil {
			t.Fatalf("%s accepted wrong-length counts", p.Name())
		}
		bad := make([]int64, 10)
		bad[7] = -3
		if _, err := BatchSimulate(p, rng.New(1), bad, 2); err == nil {
			t.Fatalf("%s accepted negative count", p.Name())
		}
	}
}

// TestBatchSimulateDeterministicPerWorkerCount: fixed seed and worker
// count give reproducible output even though sampling runs on multiple
// goroutines (each chunk owns a substream split off deterministically).
func TestBatchSimulateDeterministicPerWorkerCount(t *testing.T) {
	const d, eps = 64, 0.5
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(100 + 3*v)
	}
	for _, p := range shardedTestProtocols(t, d, eps) {
		for _, workers := range []int{2, 4, 7} {
			a, err := BatchSimulate(p, rng.New(77), trueCounts, workers)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BatchSimulate(p, rng.New(77), trueCounts, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("%s workers=%d not deterministic at item %d", p.Name(), workers, v)
				}
			}
		}
	}
}

// TestParallelGRRConservation: GRR support counts sum to exactly n on the
// parallel path too (each simulated report supports exactly one item).
func TestParallelGRRConservation(t *testing.T) {
	grr, err := NewGRR(40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, 40)
	var n int64
	for v := range trueCounts {
		trueCounts[v] = int64(50 + 7*v)
		n += trueCounts[v]
	}
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		sim, err := BatchSimulate(grr, r, trueCounts, 4)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, c := range sim {
			if c < 0 {
				t.Fatal("negative support count")
			}
			total += c
		}
		if total != n {
			t.Fatalf("trial %d: counts sum %d want %d", trial, total, n)
		}
	}
}

// TestBatchMatchesReportLevelDistribution is the batch-vs-report-level
// property: over repeated trials, the parallel batch path and the exact
// PerturbAll+CountSupports pipeline must agree on every item's mean
// support count within CLT confidence bounds, and on its variance within
// an F-test-style ratio bound.
func TestBatchMatchesReportLevelDistribution(t *testing.T) {
	const (
		d, eps = 10, 0.8
		trials = 120
	)
	trueCounts := []int64{400, 350, 300, 250, 200, 150, 100, 80, 60, 40}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	r := rng.New(2024)
	for _, p := range shardedTestProtocols(t, d, eps) {
		batchSum := make([]float64, d)
		batchSq := make([]float64, d)
		exactSum := make([]float64, d)
		exactSq := make([]float64, d)
		for trial := 0; trial < trials; trial++ {
			batch, err := BatchSimulate(p, r, trueCounts, 4)
			if err != nil {
				t.Fatal(err)
			}
			reports, err := PerturbAll(p, r, trueCounts)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := CountSupports(reports, d)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < d; v++ {
				b, e := float64(batch[v]), float64(exact[v])
				batchSum[v] += b
				batchSq[v] += b * b
				exactSum[v] += e
				exactSq[v] += e * e
			}
		}
		pr := p.Params()
		for v := 0; v < d; v++ {
			bMean := batchSum[v] / trials
			eMean := exactSum[v] / trials
			// Theoretical sd of C(v) from the marginal binomials.
			nv := float64(trueCounts[v])
			varC := nv*pr.P*(1-pr.P) + (float64(n)-nv)*pr.Q*(1-pr.Q)
			se := math.Sqrt(2 * varC / trials) // sd of a difference of means
			if math.Abs(bMean-eMean) > 6*se {
				t.Fatalf("%s: item %d mean diverges: batch %v exact %v (se %v)",
					p.Name(), v, bMean, eMean, se)
			}
			bVar := batchSq[v]/trials - bMean*bMean
			eVar := exactSq[v]/trials - eMean*eMean
			if eVar <= 0 || bVar <= 0 {
				t.Fatalf("%s: item %d degenerate variance: batch %v exact %v",
					p.Name(), v, bVar, eVar)
			}
			// With 120 trials the variance ratio concentrates near 1; a
			// factor-3 band is ~10 sigma, so a failure means a real bug.
			if ratio := bVar / eVar; ratio > 3 || ratio < 1.0/3 {
				t.Fatalf("%s: item %d variance ratio %v (batch %v exact %v)",
					p.Name(), v, ratio, bVar, eVar)
			}
		}
	}
}

// TestBatchSimulateFeedsShardedAccumulator: the intended pairing — batch
// partials from population shards folded through AddCounts — yields
// unbiased estimates of the true frequencies.
func TestBatchSimulateFeedsShardedAccumulator(t *testing.T) {
	const d, eps = 8, 1.0
	oue, err := NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := []int64{4000, 3000, 2000, 1000, 800, 600, 400, 200}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	trueF := make([]float64, d)
	for v, c := range trueCounts {
		trueF[v] = float64(c) / float64(n)
	}
	sa, err := NewShardedAccumulator(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(404)
	counts, err := BatchSimulate(oue, r, trueCounts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.AddCounts(counts, n); err != nil {
		t.Fatal(err)
	}
	est, err := sa.Estimate(oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	for v := range est {
		se := math.Sqrt(oue.Variance(trueF[v], n)) / float64(n)
		if math.Abs(est[v]-trueF[v]) > 6*se {
			t.Fatalf("item %d: estimate %v true %v (se %v)", v, est[v], trueF[v], se)
		}
	}
}
