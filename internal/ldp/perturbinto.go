package ldp

import (
	"ldprecover/internal/rng"
)

// PerturbScratch holds the reusable buffers behind PerturbAllInto. One
// scratch serves one pipeline: every call invalidates the reports
// returned by the previous call with the same scratch (their backing
// arenas are overwritten), which is exactly the steady-state loop —
// perturb, ingest, repeat — where the whole population round-trips with
// zero per-report allocations.
type PerturbScratch struct {
	reports []Report
	olh     []OLHReport
	grr     []GRRReport
	sparse  []SparseUnaryReport
	items   []int32
	offs    []int
	bitsets []Bitset
	words   []uint64
}

// growReports returns s.reports resized to n, reusing capacity.
func (s *PerturbScratch) growReports(n int) []Report {
	if cap(s.reports) < n {
		s.reports = make([]Report, n)
	}
	s.reports = s.reports[:n]
	return s.reports
}

// PerturbAll perturbs a whole population described by per-item true
// counts, returning one report per user (report-level exact simulation).
// Report order is deterministic given the generator state: users are
// processed item by item. It is PerturbAllInto with a private scratch,
// so the returned reports own their arenas.
func PerturbAll(p Protocol, r *rng.Rand, trueCounts []int64) ([]Report, error) {
	return PerturbAllInto(p, r, trueCounts, nil)
}

// PerturbAllInto is PerturbAll writing into the scratch's arenas: report
// payloads (bitset words, sparse support lists, OLH and GRR bodies) live
// in bulk buffers that are reused call over call, and the interface
// slice boxes pointers into those arenas (or one-pointer structs), so
// steady-state perturbation allocates nothing per report. A nil scratch
// behaves like PerturbAll. The draw stream is identical to calling
// p.Perturb once per user in the same order, and the equivalence tests
// pin that bit-exactly.
func PerturbAllInto(p Protocol, r *rng.Rand, trueCounts []int64, s *PerturbScratch) ([]Report, error) {
	if r == nil {
		return nil, ErrNilRand
	}
	d := p.Params().Domain
	n, err := validateTrueCounts(trueCounts, d)
	if err != nil {
		return nil, err
	}
	if s == nil {
		s = &PerturbScratch{}
	}
	reports := s.growReports(int(n))
	switch proto := p.(type) {
	case *OUE:
		perturbUnaryAllInto(proto.sampler, r, trueCounts, s, reports)
	case *SUE:
		perturbUnaryAllInto(proto.sampler, r, trueCounts, s, reports)
	case *OLH:
		if cap(s.olh) < len(reports) {
			s.olh = make([]OLHReport, len(reports))
		}
		s.olh = s.olh[:len(reports)]
		idx := 0
		for v, c := range trueCounts {
			for k := int64(0); k < c; k++ {
				s.olh[idx] = proto.perturbOLH(r, v)
				reports[idx] = &s.olh[idx]
				idx++
			}
		}
	case *GRR:
		if cap(s.grr) < len(reports) {
			s.grr = make([]GRRReport, len(reports))
		}
		s.grr = s.grr[:len(reports)]
		idx := 0
		for v, c := range trueCounts {
			for k := int64(0); k < c; k++ {
				s.grr[idx] = proto.perturbGRR(r, v)
				reports[idx] = &s.grr[idx]
				idx++
			}
		}
	default:
		idx := 0
		for v, c := range trueCounts {
			for k := int64(0); k < c; k++ {
				rep, err := p.Perturb(r, v)
				if err != nil {
					return nil, err
				}
				reports[idx] = rep
				idx++
			}
		}
	}
	return reports, nil
}

// perturbUnaryAllInto bulk-perturbs a unary-encoding population. Sparse
// regime: all support lists share one index arena, sliced up after
// generation (growth during generation would invalidate live
// subslices). Dense regime: all bitsets share one word arena.
func perturbUnaryAllInto(u unarySampler, r *rng.Rand, trueCounts []int64, s *PerturbScratch, reports []Report) {
	n := len(reports)
	if u.sparse {
		if cap(s.offs) < n+1 {
			s.offs = make([]int, n+1)
		}
		s.offs = s.offs[:n+1]
		s.items = s.items[:0]
		idx := 0
		for v, c := range trueCounts {
			for k := int64(0); k < c; k++ {
				s.offs[idx] = len(s.items)
				s.items = u.appendSupport(r, v, s.items)
				idx++
			}
		}
		s.offs[n] = len(s.items)
		if cap(s.sparse) < n {
			s.sparse = make([]SparseUnaryReport, n)
		}
		s.sparse = s.sparse[:n]
		for i := 0; i < n; i++ {
			lo, hi := s.offs[i], s.offs[i+1]
			s.sparse[i] = SparseUnaryReport{N: u.d, Items: s.items[lo:hi:hi]}
			reports[i] = &s.sparse[i]
		}
		return
	}
	words := (u.d + 63) / 64
	if cap(s.words) < n*words {
		s.words = make([]uint64, n*words)
	}
	s.words = s.words[:n*words]
	clear(s.words)
	if cap(s.bitsets) < n {
		s.bitsets = make([]Bitset, n)
	}
	s.bitsets = s.bitsets[:n]
	idx := 0
	for v, c := range trueCounts {
		for k := int64(0); k < c; k++ {
			bs := &s.bitsets[idx]
			*bs = Bitset{words: s.words[idx*words : (idx+1)*words : (idx+1)*words], n: u.d}
			u.fillDense(r, v, bs)
			// OUEReport is a one-pointer struct: boxing it into the
			// interface stores the pointer directly, no allocation.
			reports[idx] = OUEReport{Bits: bs}
			idx++
		}
	}
}
