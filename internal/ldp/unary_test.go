package ldp

import (
	"math"
	"testing"

	"ldprecover/internal/rng"
)

// TestUnarySamplerRegimeSelection pins the density-regime switch: the
// paper's default ε=0.5 stays dense, large-ε OUE goes sparse.
func TestUnarySamplerRegimeSelection(t *testing.T) {
	dense, err := NewOUE(128, 0.5) // q ≈ 0.378
	if err != nil {
		t.Fatal(err)
	}
	if dense.sampler.sparse {
		t.Fatal("ε=0.5 OUE must use the dense representation")
	}
	sparse, err := NewOUE(128, 4.2) // q ≈ 0.0148 < 1/32
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.sampler.sparse {
		t.Fatal("ε=4.2 OUE must use the sparse representation")
	}
	rep, err := sparse.Perturb(rng.New(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.(SparseUnaryReport); !ok {
		t.Fatalf("sparse-regime Perturb returned %T, want SparseUnaryReport", rep)
	}
	repD, err := dense.Perturb(rng.New(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := repD.(OUEReport); !ok {
		t.Fatalf("dense-regime Perturb returned %T, want OUEReport", repD)
	}
}

// TestSparseDenseBitExactSameStream is the sparse-vs-dense equivalence
// pin: driving the sampler with the same RNG stream, the sparse report
// and its densely materialized counterpart must be bit-identical — same
// support set item for item, same aggregation counts, same codec bytes
// after densification. This is what makes SparseUnaryReport and
// OUEReport interchangeable everywhere a Report flows.
func TestSparseDenseBitExactSameStream(t *testing.T) {
	const d = 997 // odd, not a multiple of 64, exercises tail words
	o, err := NewOUE(d, 4.2)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := rng.New(42), rng.New(42)
	countsSparse := make([]int64, d)
	countsDense := make([]int64, d)
	for trial := 0; trial < 300; trial++ {
		v := (trial * 131) % d
		rep, err := o.Perturb(r1, v)
		if err != nil {
			t.Fatal(err)
		}
		sp := rep.(SparseUnaryReport)
		// Same stream, dense materialization.
		items := o.sampler.appendSupport(r2, v, nil)
		dense := OUEReport{Bits: SparseUnaryReport{N: d, Items: items}.Dense()}

		if got, want := len(sp.Items), dense.Bits.Count(); got != want {
			t.Fatalf("trial %d: sparse %d supports, dense %d", trial, got, want)
		}
		prev := int32(-1)
		for _, it := range sp.Items {
			if it <= prev {
				t.Fatalf("trial %d: unsorted sparse items", trial)
			}
			prev = it
			if !dense.Supports(int(it)) {
				t.Fatalf("trial %d: dense missing item %d", trial, it)
			}
		}
		for u := 0; u < d; u++ {
			if sp.Supports(u) != dense.Supports(u) {
				t.Fatalf("trial %d: Supports(%d) disagrees", trial, u)
			}
		}
		sp.AddSupports(countsSparse)
		dense.AddSupports(countsDense)
	}
	for v := range countsSparse {
		if countsSparse[v] != countsDense[v] {
			t.Fatalf("aggregation diverged at item %d: %d vs %d", v, countsSparse[v], countsDense[v])
		}
	}
}

// TestSparseDenseSamplersAgreeInDistribution forces BOTH sampling paths
// on the same parameters and checks per-position support frequencies
// against each other and the analytic p/q (5-sigma bounds).
func TestSparseDenseSamplersAgreeInDistribution(t *testing.T) {
	const d = 64
	const v = 17
	const trials = 40000
	s := newUnarySampler(d, 0.5, 0.02)
	r := rng.New(9)
	sparseCounts := make([]int64, d)
	denseCounts := make([]int64, d)
	for i := 0; i < trials; i++ {
		SparseUnaryReport{N: d, Items: s.appendSupport(r, v, nil)}.AddSupports(sparseCounts)
		bits := NewBitset(d)
		s.fillDense(r, v, bits)
		OUEReport{Bits: bits}.AddSupports(denseCounts)
	}
	check := func(name string, counts []int64) {
		t.Helper()
		for u := 0; u < d; u++ {
			want := 0.02
			if u == v {
				want = 0.5
			}
			got := float64(counts[u]) / trials
			tol := 5 * math.Sqrt(want*(1-want)/trials)
			if math.Abs(got-want) > tol {
				t.Fatalf("%s: position %d frequency %v want %v ± %v", name, u, got, want, tol)
			}
		}
	}
	check("sparse", sparseCounts)
	check("dense", denseCounts)
}

// TestSparseReportCodecRoundTrip: sparse reports survive the wire
// type-preservingly, and re-encode to identical bytes.
func TestSparseReportCodecRoundTrip(t *testing.T) {
	o, err := NewSUE(300, 8) // SUE q = 1/(e^4+1) ≈ 0.018 → sparse
	if err != nil {
		t.Fatal(err)
	}
	if !o.sampler.sparse {
		t.Fatal("expected sparse regime")
	}
	r := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		rep, err := o.Perturb(r, trial%300)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := MarshalReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalReport(buf)
		if err != nil {
			t.Fatal(err)
		}
		sp, ok := back.(SparseUnaryReport)
		if !ok {
			t.Fatalf("round trip returned %T", back)
		}
		orig := rep.(SparseUnaryReport)
		if sp.N != orig.N || len(sp.Items) != len(orig.Items) {
			t.Fatal("round trip changed shape")
		}
		for i := range sp.Items {
			if sp.Items[i] != orig.Items[i] {
				t.Fatal("round trip changed items")
			}
		}
		buf2, err := MarshalReport(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatal("re-encoding not byte-identical")
		}
	}
}

func TestSparseReportCodecRejectsMalformed(t *testing.T) {
	// Unsorted items must not marshal.
	if _, err := MarshalReport(SparseUnaryReport{N: 10, Items: []int32{3, 1}}); err == nil {
		t.Fatal("unsorted sparse report marshaled")
	}
	// Out-of-range items must not marshal.
	if _, err := MarshalReport(SparseUnaryReport{N: 10, Items: []int32{3, 12}}); err == nil {
		t.Fatal("out-of-range sparse report marshaled")
	}
	good, err := MarshalReport(SparseUnaryReport{N: 10, Items: []int32{1, 3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the support count.
	bad := append([]byte(nil), good...)
	bad[6] = 99
	if _, err := UnmarshalReport(bad); err == nil {
		t.Fatal("corrupt support count accepted")
	}
	// Swap two items so they are out of order.
	bad = append([]byte(nil), good...)
	bad[10], bad[14] = bad[14], bad[10]
	if _, err := UnmarshalReport(bad); err == nil {
		t.Fatal("unsorted payload accepted")
	}
}

// TestCodecRejectsLegacyOLHFamily: wire tag 3 carried hash values from
// the retired v1 family; decoding them under the current two-stage
// family would silently destroy every estimate, so the codec must
// refuse them loudly.
func TestCodecRejectsLegacyOLHFamily(t *testing.T) {
	legacy := []byte{
		1, 3, // version 1, legacy OLH tag
		0, 0, 0, 0, 0, 0, 0, 42, // seed
		1, 0, 0, 0, // value
		3, 0, 0, 0, // g
	}
	if _, err := UnmarshalReport(legacy); err == nil {
		t.Fatal("legacy v1-family OLH report decoded without error")
	}
	// Current OLH reports round-trip under the v2 tag.
	rep := OLHReport{Seed: 42, Value: 1, G: 3}
	buf, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if buf[1] != 5 {
		t.Fatalf("OLH marshaled with tag %d, want 5 (v2 family)", buf[1])
	}
	back, err := UnmarshalReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.(OLHReport) != rep {
		t.Fatalf("round trip changed report: %+v", back)
	}
}

// TestSparseSupportsOutOfRange mirrors the dense report's contract.
func TestSparseSupportsOutOfRange(t *testing.T) {
	sp := SparseUnaryReport{N: 8, Items: []int32{2, 5}}
	if sp.Supports(-1) || sp.Supports(8) || sp.Supports(3) {
		t.Fatal("unexpected support")
	}
	if !sp.Supports(2) || !sp.Supports(5) {
		t.Fatal("missing support")
	}
	counts := make([]int64, 4) // shorter than N: item 5 must be dropped
	sp.AddSupports(counts)
	if counts[2] != 1 || counts[0] != 0 || counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("AddSupports with short counts wrong: %v", counts)
	}
}
