package stream

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// TestSealCountsMatchesAddCountsSeal pins the O(1) hand-off's contract:
// sealing a pre-merged vector through SealCounts produces exactly the
// epochs and estimates of folding it through the live accumulator and
// sealing — including when the live epoch is dirty and must be folded
// in on top.
func TestSealCountsMatchesAddCountsSeal(t *testing.T) {
	const d = 64
	cfg := mergerConfig(d)
	ref, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(0x5ea1)
	for e := 0; e < 6; e++ {
		counts := make([]int64, d)
		var total int64
		for v := range counts {
			counts[v] = int64(r.Uint64() % 300)
			total += counts[v]
		}
		var live []int64
		var liveTotal int64
		if e%2 == 1 {
			// Odd epochs also carry direct live ingest, so the hand-off
			// must detect the dirty live accumulator and fold it in.
			live = make([]int64, d)
			for v := range live {
				live[v] = int64(r.Uint64() % 50)
				liveTotal += live[v]
			}
			if err := ref.AddCounts(live, liveTotal); err != nil {
				t.Fatal(err)
			}
			if err := hand.AddCounts(live, liveTotal); err != nil {
				t.Fatal(err)
			}
		}
		if err := ref.AddCounts(counts, total); err != nil {
			t.Fatal(err)
		}
		refEst, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		handEst, err := hand.SealCounts(append([]int64(nil), counts...), total)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refEst, handEst) {
			t.Fatalf("epoch %d: SealCounts estimate diverged from AddCounts+Seal", e)
		}
	}
	if !reflect.DeepEqual(ref.Epochs(), hand.Epochs()) {
		t.Fatal("retained epochs diverged between SealCounts and AddCounts+Seal")
	}
}

// TestSealCountsRejects pins the hand-off's validation surface.
func TestSealCountsRejects(t *testing.T) {
	m, err := NewEpochManager(mergerConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SealCounts(make([]int64, 8), 0); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if _, err := m.SealCounts(make([]int64, 16), -1); err == nil {
		t.Fatal("negative total accepted")
	}
}

// TestMergeSealedAcceptAllocFree is the allocation regression test for
// the accept path: after an epoch's first tally has set up the
// accumulator and the pre-sized accounting map, accepting further
// tallies — the steady state under high fan-in — allocates nothing.
// The old path retained per-node state per tally; merge-on-arrival
// folds and forgets.
func TestMergeSealedAcceptAllocFree(t *testing.T) {
	const d, members, runs = 64, 80, 64
	nodes := make([]string, members)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("fe-%02d", i)
	}
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSealedMerger(mgr, nodes)
	if err != nil {
		t.Fatal(err)
	}
	tallies := make([]*ldp.Tally, members)
	for i, n := range nodes {
		tallies[i] = nodeTally(n, 0, d, uint64(i), 0)
	}
	next := 0
	avg := testing.AllocsPerRun(runs, func() {
		// One fresh (node, epoch-0) accept per run; the warm-up call
		// pays the epoch's setup. The barrier never completes (members
		// > runs+1), so every call exercises the steady accept path.
		if _, err := sm.MergeSealed(tallies[next]); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if avg != 0 {
		t.Fatalf("accept path allocates %.1f objects per tally, want 0", avg)
	}
}

// TestMergedEpochNodeTotals pins the accounting that replaces retained
// tallies: each sealed epoch records every merged node's report total,
// and the published copy cannot alias the merger's state.
func TestMergedEpochNodeTotals(t *testing.T) {
	const d = 32
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSealedMerger(mgr, []string{"fe-0", "fe-1"})
	if err != nil {
		t.Fatal(err)
	}
	a := nodeTally("fe-0", 0, d, 1, 0)
	b := nodeTally("fe-1", 0, d, 2, 0)
	for _, tl := range []*ldp.Tally{a, b} {
		if _, err := sm.MergeSealed(tl); err != nil {
			t.Fatal(err)
		}
	}
	_, info, err := sm.TrySeal()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("complete barrier did not seal")
	}
	want := map[string]int64{"fe-0": a.Total, "fe-1": b.Total}
	if !reflect.DeepEqual(info.NodeTotals, want) {
		t.Fatalf("NodeTotals = %v, want %v", info.NodeTotals, want)
	}
	if info.Total != a.Total+b.Total {
		t.Fatalf("Total = %d, want %d", info.Total, a.Total+b.Total)
	}
	info.NodeTotals["fe-0"] = -1
	if got := sm.Merged(); got[len(got)-1].NodeTotals["fe-0"] != a.Total {
		t.Fatal("published NodeTotals aliases the merger's retained accounting")
	}
}

// BenchmarkRootSealLatency measures the cost of sealing a complete
// barrier as fan-in grows. Every node count splits the same fixed
// union aggregate, so each seal merges and estimates identical bits —
// what varies is only how many tallies delivered them. With
// merge-on-arrival the per-tally fold is paid at accept time and the
// seal is an O(1) vector hand-off plus the node-count-independent
// window/estimate work, so the latency should stay flat from 4 to 64
// children — the property that lets one root (or any interior merger)
// take arbitrary fan-in without stretching the epoch clock.
func BenchmarkRootSealLatency(b *testing.B) {
	const d = 1 << 16
	union := nodeTally("union", 0, d, 0xca11, 0)
	for _, nodes := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			ids := make([]string, nodes)
			for i := range ids {
				ids[i] = fmt.Sprintf("fe-%02d", i)
			}
			cfg := Config{Params: mergeTestParams(d), Window: 2, History: 4, TargetK: -1}
			mgr, err := NewEpochManager(cfg)
			if err != nil {
				b.Fatal(err)
			}
			sm, err := NewSealedMerger(mgr, ids)
			if err != nil {
				b.Fatal(err)
			}
			// Deal the union round-robin: part j gets count/nodes per item
			// plus one of the first count%nodes remainders, like the
			// experiment harness's splitCounts — the parts sum back to the
			// union exactly, whatever the fan-in.
			tallies := make([]*ldp.Tally, nodes)
			for i, n := range ids {
				tallies[i] = &ldp.Tally{NodeID: n, Epoch: 0, Counts: make([]int64, d)}
			}
			for v, c := range union.Counts {
				base, rem := c/int64(nodes), c%int64(nodes)
				for j := range tallies {
					tallies[j].Counts[v] = base
					if int64(j) < rem {
						tallies[j].Counts[v]++
					}
				}
			}
			base, rem := union.Total/int64(nodes), union.Total%int64(nodes)
			for j := range tallies {
				tallies[j].Total = base
				if int64(j) < rem {
					tallies[j].Total++
				}
			}
			b.SetBytes(int64(8 * d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				epoch := sm.SealedThrough()
				for _, tl := range tallies {
					tl.Epoch = epoch
					if _, err := sm.MergeSealed(tl); err != nil {
						b.Fatal(err)
					}
				}
				// Pay the previous estimate's GC debt outside the timed
				// section: the seal is measured, the collector's schedule
				// is not.
				runtime.GC()
				b.StartTimer()
				est, info, err := sm.TrySeal()
				if err != nil {
					b.Fatal(err)
				}
				if est == nil || info == nil {
					b.Fatal("complete barrier did not seal")
				}
			}
		})
	}
}
