// Package stream turns the one-shot batch pipeline (aggregate → estimate
// → recover) into an epoch-based streaming service. An EpochManager owns
// a live ShardedAccumulator that any number of goroutines feed; Seal()
// closes the current epoch without stopping ingest (ldp.SealEpoch swaps
// the shard tallies out from under concurrent AddBatch calls), appends it
// to a bounded ring of sealed epochs, merges the sliding window
// incrementally, and runs LDPRecover over the window estimate.
//
// Target identification is continuous: each sealed window's poisoned
// estimate is scored against the rolling history of *recovered* estimates
// (detect.ZScoreOutliers — the paper §V-D oracle driven by real history),
// and once the flagged set has been stable for StableAfter consecutive
// epochs (detect.TargetTracker) recovery upgrades itself from LDPRecover
// to LDPRecover*, the paper's strictly more accurate partial-knowledge
// variant. Scoring against recovered rather than raw history keeps the
// baseline clean under a sustained attack: the attack never becomes the
// "normal" the next epoch is compared to.
package stream

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"ldprecover/internal/core"
	"ldprecover/internal/detect"
	"ldprecover/internal/ldp"
)

// Config parameterizes an EpochManager.
type Config struct {
	// Params are the protocol's aggregation parameters (p, q, d); every
	// ingested report must come from this protocol.
	Params ldp.Params
	// Shards is the live accumulator's shard count; <= 0 selects
	// GOMAXPROCS.
	Shards int
	// Window is the number of sealed epochs merged into each serving
	// estimate. Zero means 1 (estimate each epoch alone).
	Window int
	// History is how many sealed epochs the ring retains and how many
	// recovered estimates the outlier history may grow to. Zero means
	// max(Window, 8); it must be at least Window.
	History int
	// Eta is LDPRecover's assumed malicious-to-genuine ratio η; zero
	// means core.DefaultEta.
	Eta float64
	// TargetK caps how many outlier items one epoch may flag; zero means
	// 10 (the paper's default target count). Negative disables automatic
	// target identification entirely (recovery stays non-knowledge).
	TargetK int
	// MinZ is the z-score threshold for flagging an item; zero means 3.
	MinZ float64
	// StableAfter is how many consecutive epochs must flag the identical
	// set before LDPRecover* engages (and how many quiet epochs demote it
	// again); zero means 3.
	StableAfter int
	// MinHistory is how many baseline epochs must accumulate before
	// outlier scoring starts: the z-score's sample deviation is noise
	// below a handful of periods. Zero means min(5, History); it must be
	// at least 2 (ZScoreOutliers' own floor) and at most History.
	MinHistory int
}

// Defaults for the zero Config fields.
const (
	DefaultHistoryMin  = 8
	DefaultTargetK     = 10
	DefaultMinZ        = 3.0
	DefaultStableAfter = 3
	DefaultMinHistory  = 5
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 1
	}
	if c.History == 0 {
		c.History = c.Window
		if c.History < DefaultHistoryMin {
			c.History = DefaultHistoryMin
		}
	}
	if c.Eta == 0 {
		c.Eta = core.DefaultEta
	}
	if c.TargetK == 0 {
		c.TargetK = DefaultTargetK
		if c.TargetK > c.Params.Domain {
			c.TargetK = c.Params.Domain
		}
	}
	if c.MinZ == 0 {
		c.MinZ = DefaultMinZ
	}
	if c.StableAfter == 0 {
		c.StableAfter = DefaultStableAfter
	}
	if c.MinHistory == 0 {
		c.MinHistory = DefaultMinHistory
		if c.MinHistory > c.History {
			c.MinHistory = c.History
		}
	}
	return c
}

// validate rejects malformed configurations (after defaulting).
func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Window < 1 {
		return fmt.Errorf("stream: window %d < 1", c.Window)
	}
	if c.History < c.Window {
		return fmt.Errorf("stream: history %d < window %d", c.History, c.Window)
	}
	if c.Eta < 0 {
		return fmt.Errorf("stream: negative eta %v", c.Eta)
	}
	if c.MinZ < 0 {
		return fmt.Errorf("stream: negative z threshold %v", c.MinZ)
	}
	if c.TargetK > c.Params.Domain {
		return fmt.Errorf("stream: target cap %d exceeds domain %d", c.TargetK, c.Params.Domain)
	}
	if c.TargetK > 0 {
		if c.MinHistory < 2 {
			return fmt.Errorf("stream: minimum history %d < 2 (ZScoreOutliers needs 2 periods; "+
				"set TargetK < 0 to disable target identification)", c.MinHistory)
		}
		if c.MinHistory > c.History {
			return fmt.Errorf("stream: minimum history %d exceeds retained history %d", c.MinHistory, c.History)
		}
	}
	return nil
}

// Epoch is one sealed collection period: the raw support counts and the
// report total that landed between two Seal calls. Epochs are immutable.
type Epoch struct {
	// Seq numbers epochs from 0 in seal order.
	Seq int
	// Counts are the sealed raw support counts (length = domain).
	Counts []int64
	// Total is the number of reports sealed into the epoch.
	Total int64
}

// WindowEstimate is the serving output for one sealed window: the
// poisoned (as-aggregated) and recovered frequency estimates over the
// sliding window ending at epoch Seq.
type WindowEstimate struct {
	// Seq is the newest epoch in the window.
	Seq int
	// Epochs is how many sealed epochs the window merges (ramps up from
	// 1 until the configured window is full).
	Epochs int
	// Total is the number of reports in the window.
	Total int64
	// Poisoned is the unbiased estimate of the window aggregate, before
	// recovery (Eq. 11). Nil when the window holds no reports.
	Poisoned []float64
	// Recovered is LDPRecover's output on Poisoned (LDPRecover* once
	// targets have stabilized). Nil when the window holds no reports.
	Recovered []float64
	// Targets is the stable target set recovery used; nil means
	// non-knowledge recovery.
	Targets []int
	// PartialKnowledge records whether LDPRecover* ran.
	PartialKnowledge bool
}

// Stats is a point-in-time summary of a manager, cheap enough to serve
// from a health endpoint.
type Stats struct {
	// Domain is the configured domain size.
	Domain int
	// Epochs is how many epochs have been sealed.
	Epochs int
	// LiveTotal is the report count in the current (unsealed) epoch.
	LiveTotal int64
	// WindowTotal is the report count across the current window.
	WindowTotal int64
	// IngestedTotal is every report ever ingested (sealed + live).
	IngestedTotal int64
	// Targets is the current stable target set (nil before LDPRecover*
	// engages).
	Targets []int
}

// EpochManager is the streaming collector: a live accumulator for the
// open epoch, a ring of sealed epochs, an incrementally maintained
// sliding window, and the recovery/target state that upgrades the stream
// from LDPRecover to LDPRecover*. Ingest methods (Add, AddBatch,
// AddCounts) are safe for any number of concurrent goroutines and are
// never blocked by Seal; Seal and the read methods are safe to call
// concurrently with ingest and with each other.
type EpochManager struct {
	cfg Config

	live *ldp.ShardedAccumulator

	mu        sync.Mutex
	ring      []Epoch // sealed epochs, oldest first, len <= cfg.History
	seq       int     // next epoch's sequence number
	winCounts []int64 // incremental sum over the window's epochs
	winTotal  int64
	winEpochs int         // epochs currently merged into winCounts
	history   [][]float64 // rolling recovered estimates, oldest first
	tracker   *detect.TargetTracker
	sealed    int64 // reports in sealed epochs (for IngestedTotal)
	latest    *WindowEstimate

	// liveGen is the live accumulator's mutation generation as of the
	// last seal — the O(1) dirty check behind SealCounts' hand-off. It
	// is tracked conservatively (see Seal): a mismatch may mean "maybe
	// dirty", but equality always means the live epoch is empty.
	liveGen uint64
}

// NewEpochManager builds a streaming manager from the configuration.
func NewEpochManager(cfg Config) (*EpochManager, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	live, err := ldp.NewShardedAccumulator(cfg.Params.Domain, cfg.Shards)
	if err != nil {
		return nil, err
	}
	tracker, err := detect.NewTargetTracker(cfg.StableAfter)
	if err != nil {
		return nil, err
	}
	return &EpochManager{
		cfg:       cfg,
		live:      live,
		winCounts: make([]int64, cfg.Params.Domain),
		tracker:   tracker,
	}, nil
}

// Config returns the defaulted configuration the manager runs with.
func (m *EpochManager) Config() Config { return m.cfg }

// Domain returns the domain size d.
func (m *EpochManager) Domain() int { return m.cfg.Params.Domain }

// Add folds one report into the open epoch.
func (m *EpochManager) Add(rep ldp.Report) error { return m.live.Add(rep) }

// AddBatch folds a batch of reports into the open epoch through the
// accumulator's type-specialized fast paths.
func (m *EpochManager) AddBatch(reps []ldp.Report) error { return m.live.AddBatch(reps) }

// AddCounts folds a pre-aggregated partial (e.g. a remote collector's
// sub-total) into the open epoch.
func (m *EpochManager) AddCounts(counts []int64, total int64) error {
	return m.live.AddCounts(counts, total)
}

// AddBatchFrame folds a wire-format report batch frame into the open
// epoch without decoding it — the zero-copy ingest lane. Bit-identical
// to UnmarshalReportBatch + AddBatch.
func (m *EpochManager) AddBatchFrame(frame []byte) error {
	return m.live.AddBatchFrame(frame)
}

// SealedWatermark returns the next epoch's sequence number — the
// sealed watermark partial-tally epoch hints are checked against.
func (m *EpochManager) SealedWatermark() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Seal closes the open epoch and returns the new window estimate. Ingest
// is never stopped: reports racing the seal land entirely in the sealed
// epoch or the next one. The sealed epoch joins the ring (evicting beyond
// History), the sliding window advances incrementally (add the newest
// epoch, subtract the one that left), recovery runs on the window
// estimate, and the recovered estimate extends the outlier history that
// drives target identification.
func (m *EpochManager) Seal() (*WindowEstimate, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts, total := m.sealLiveLocked()
	return m.sealLocked(counts, total)
}

// SealCounts closes the open epoch with a pre-merged aggregate, taking
// ownership of counts — the merge tree's O(1) hand-off: a root or
// merger node accumulates arriving tallies on its own (merge-on-
// arrival) and seals the finished vector directly, instead of paying
// AddCounts' O(d) re-fold into the live accumulator plus SealEpoch's
// O(shards·d) re-merge back out. The live accumulator is still honored:
// if anything has been ingested since the last seal (never, on a node
// that only merges tallies — an O(1) generation check), the live epoch
// is sealed and folded in, so SealCounts is bit-identical to
// AddCounts + Seal in every case.
func (m *EpochManager) SealCounts(counts []int64, total int64) (*WindowEstimate, error) {
	if len(counts) != m.cfg.Params.Domain {
		return nil, fmt.Errorf("stream: sealing %d counts over domain %d",
			len(counts), m.cfg.Params.Domain)
	}
	if total < 0 {
		return nil, fmt.Errorf("stream: sealing a negative report total %d", total)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.live.Mutations() != m.liveGen {
		liveCounts, liveTotal := m.sealLiveLocked()
		for v, c := range liveCounts {
			counts[v] += c
		}
		total += liveTotal
	}
	return m.sealLocked(counts, total)
}

// sealLiveLocked swaps the live epoch out of the accumulator and
// re-records its mutation generation. The capture is conservative: gen
// is read before the swap and the seal's own bump added, so ingest
// racing the seal can only make a later generation check read "maybe
// dirty" (a harmless empty fold), never "clean" while live data exists.
// Callers hold m.mu.
func (m *EpochManager) sealLiveLocked() ([]int64, int64) {
	preGen := m.live.Mutations()
	sealed := m.live.SealEpoch()
	m.liveGen = preGen + 1
	return sealed.Counts(), sealed.Total()
}

// sealLocked appends the closed epoch to the ring, advances the window,
// and runs estimation — the shared tail of Seal and SealCounts. It
// takes ownership of counts. Callers hold m.mu.
func (m *EpochManager) sealLocked(counts []int64, total int64) (*WindowEstimate, error) {
	// Sealing under m.mu never blocks ingest (ingest takes only the
	// accumulator's shard locks) and keeps Stats consistent: the sealed
	// epoch moves from the live tally into m.sealed atomically with
	// respect to any m.mu reader.
	ep := Epoch{Seq: m.seq, Counts: counts, Total: total}
	m.seq++
	m.sealed += ep.Total
	m.ring = append(m.ring, ep)

	// Advance the sliding window: O(d) per boundary regardless of how
	// many epochs it spans. This runs before ring eviction so the epoch
	// leaving the window is still addressable even when History == Window.
	for v, c := range ep.Counts {
		m.winCounts[v] += c
	}
	m.winTotal += ep.Total
	m.winEpochs++
	if m.winEpochs > m.cfg.Window {
		out := m.ring[len(m.ring)-1-m.cfg.Window]
		for v, c := range out.Counts {
			m.winCounts[v] -= c
		}
		m.winTotal -= out.Total
		m.winEpochs--
	}

	if len(m.ring) > m.cfg.History {
		// Evict beyond the retention ring; the evicted epoch has left the
		// window above (History >= Window).
		m.ring = m.ring[1:]
	}

	est, err := m.estimateLocked(m.winCounts, m.winTotal, ep.Seq, m.winEpochs, true)
	if err != nil {
		return nil, err
	}
	m.latest = est
	return est, nil
}

// estimateLocked estimates and recovers one window aggregate. When
// advance is set the estimate also drives target identification and
// extends the recovered history (the Seal path); ad-hoc window queries
// leave the detection state untouched. Callers hold m.mu.
func (m *EpochManager) estimateLocked(counts []int64, total int64, seq, epochs int, advance bool) (*WindowEstimate, error) {
	est := &WindowEstimate{Seq: seq, Epochs: epochs, Total: total}
	if total == 0 {
		// An empty window estimates nothing; a quiet epoch still counts
		// toward demoting a stale target set. Either way the estimate
		// reports the stable set recovery would have used.
		if advance {
			m.tracker.Observe(nil)
		}
		est.Targets = slices.Clone(m.tracker.Stable())
		return est, nil
	}
	poisoned, err := ldp.Unbias(counts, total, m.cfg.Params)
	if err != nil {
		return nil, err
	}
	est.Poisoned = poisoned

	targets := m.tracker.Stable()
	var flagged []int
	if advance && m.cfg.TargetK > 0 {
		// Score the fresh poisoned estimate against the baseline history;
		// one observation per sealed epoch. Below MinHistory periods the
		// sample deviation is noise, so scoring waits. The deviation is
		// floored at the protocol's theoretical estimator noise at this
		// window's report count (Var ≈ q(1-q)/(n(p-q)²), Eq. 4/7's
		// f-independent term): the recovered history of a tail item the
		// simplex refinement clips to zero is degenerate, and without the
		// floor its ordinary LDP noise would out-score every real target.
		if len(m.history) >= m.cfg.MinHistory {
			pq := m.cfg.Params.P - m.cfg.Params.Q
			minSD := math.Sqrt(m.cfg.Params.Q*(1-m.cfg.Params.Q)/float64(total)) / pq
			flagged, err = detect.ZScoreOutliersMinSD(m.history, poisoned, m.cfg.TargetK, m.cfg.MinZ, minSD)
			if err != nil {
				return nil, err
			}
		}
		targets = m.tracker.Observe(flagged)
	}
	// The tracker's slices are shared internal state (see detect's
	// sharing contract); the estimate is published to JSON encoders that
	// run concurrently with the next promotion, so it gets its own copy.
	est.Targets = slices.Clone(targets)

	prCore := core.Params{P: m.cfg.Params.P, Q: m.cfg.Params.Q, Domain: m.cfg.Params.Domain}
	rec, err := core.Recover(poisoned, prCore, core.Options{Eta: m.cfg.Eta, Targets: targets})
	if err != nil {
		return nil, err
	}
	est.Recovered = rec.Frequencies
	est.PartialKnowledge = rec.PartialKnowledge

	// The baseline history must stay clean: an attacked epoch whose
	// spikes survive recovery would inflate the targets' history
	// deviation and blind the z-score to the ongoing attack. Epochs with
	// nothing flagged extend the baseline directly; flagged epochs extend
	// it only once LDPRecover* is deducting the targets (its recovered
	// estimate is the cleaned one). Flagged-but-not-yet-stable epochs —
	// the transition — are left out entirely.
	if advance && (len(flagged) == 0 || est.PartialKnowledge) {
		m.history = append(m.history, rec.Frequencies)
		if len(m.history) > m.cfg.History {
			m.history = m.history[1:]
		}
	}
	return est, nil
}

// AdvanceEpochTo fast-forwards the epoch clock so the next sealed epoch
// carries index at least seq; it never moves backwards and touches no
// data. A cluster frontend calls it with the root's sealed watermark
// before sealing, so a node that missed epochs — an outage past the
// straggler timeout, an in-memory restart resetting the counter —
// rejoins the shared clock at the current period instead of re-issuing
// stale indices the root would dedupe forever. The skipped indices
// simply have no epoch from this node, which is the truth.
func (m *EpochManager) AdvanceEpochTo(seq int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq > m.seq {
		m.seq = seq
	}
}

// Latest returns the estimate of the most recently sealed window, nil
// before the first Seal.
func (m *EpochManager) Latest() *WindowEstimate {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest
}

// EstimateWindow merges the newest k sealed epochs from the ring on
// demand and runs recovery on the result with the current stable targets.
// It answers ad-hoc window queries (e.g. "the last 2 epochs" while the
// serving window is 6) without advancing detection state. k is clamped to
// the epochs actually retained; zero epochs sealed is an error.
func (m *EpochManager) EstimateWindow(k int) (*WindowEstimate, error) {
	if k < 1 {
		return nil, fmt.Errorf("stream: window of %d epochs", k)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ring) == 0 {
		return nil, errors.New("stream: no sealed epochs yet")
	}
	if k > len(m.ring) {
		k = len(m.ring)
	}
	counts := make([]int64, m.cfg.Params.Domain)
	var total int64
	for _, ep := range m.ring[len(m.ring)-k:] {
		for v, c := range ep.Counts {
			counts[v] += c
		}
		total += ep.Total
	}
	return m.estimateLocked(counts, total, m.ring[len(m.ring)-1].Seq, k, false)
}

// Epochs returns the sealed epochs currently retained, oldest first. The
// epochs are immutable; the slice is the caller's.
func (m *EpochManager) Epochs() []Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Epoch(nil), m.ring...)
}

// Stats summarizes the manager for monitoring endpoints.
func (m *EpochManager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Seal moves an epoch from the live tally into m.sealed entirely
	// under m.mu, so reading both here can neither double-count a report
	// nor drop a mid-seal epoch.
	live := m.live.Total()
	return Stats{
		Domain:        m.cfg.Params.Domain,
		Epochs:        m.seq,
		LiveTotal:     live,
		WindowTotal:   m.winTotal,
		IngestedTotal: m.sealed + live,
		Targets:       slices.Clone(m.tracker.Stable()),
	}
}
