package stream

import (
	"reflect"
	"sync"
	"testing"

	"ldprecover/internal/attack"
	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func testConfig(t *testing.T, d int, eps float64) (Config, ldp.Protocol) {
	t.Helper()
	proto, err := ldp.NewOUE(d, eps)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Params: proto.Params()}, proto
}

func TestConfigValidation(t *testing.T) {
	cfg, _ := testConfig(t, 16, 0.5)

	bad := cfg
	bad.Params.Domain = 1
	if _, err := NewEpochManager(bad); err == nil {
		t.Fatal("domain 1 accepted")
	}
	bad = cfg
	bad.History = 2
	bad.Window = 5
	if _, err := NewEpochManager(bad); err == nil {
		t.Fatal("history < window accepted")
	}
	bad = cfg
	bad.Eta = -0.1
	if _, err := NewEpochManager(bad); err == nil {
		t.Fatal("negative eta accepted")
	}
	bad = cfg
	bad.TargetK = 99
	if _, err := NewEpochManager(bad); err == nil {
		t.Fatal("target cap beyond domain accepted")
	}

	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Config()
	if got.Window != 1 || got.History != DefaultHistoryMin || got.Eta != core.DefaultEta ||
		got.TargetK != DefaultTargetK || got.MinZ != DefaultMinZ || got.StableAfter != DefaultStableAfter {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if m.Latest() != nil {
		t.Fatal("latest estimate before first seal")
	}
	if _, err := m.EstimateWindow(1); err == nil {
		t.Fatal("window estimate before first seal")
	}
	if _, err := m.EstimateWindow(0); err == nil {
		t.Fatal("zero-epoch window accepted")
	}
}

// TestStreamMatchesBatchPipeline is the acceptance equivalence: feeding
// reports through epochs whose window spans them all must reproduce the
// batch pipeline (EstimateFrequencies + core.Recover on everything) bit
// for bit.
func TestStreamMatchesBatchPipeline(t *testing.T) {
	const d, eps, epochs = 20, 0.6, 3
	cfg, proto := testConfig(t, d, eps)
	cfg.Window = epochs
	cfg.TargetK = -1 // pure LDPRecover; targets tested separately
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = int64(80 + 7*v)
	}
	r := rng.New(3)
	mga, err := attack.NewMGA([]int{2, 11})
	if err != nil {
		t.Fatal(err)
	}

	var all []ldp.Report
	var last *WindowEstimate
	for e := 0; e < epochs; e++ {
		genuine, err := ldp.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		malicious, err := mga.CraftReports(r, proto, 40)
		if err != nil {
			t.Fatal(err)
		}
		reps := append(genuine, malicious...)
		all = append(all, reps...)
		if err := m.AddBatch(reps); err != nil {
			t.Fatal(err)
		}
		if last, err = m.Seal(); err != nil {
			t.Fatal(err)
		}
		if last.Seq != e || last.Epochs != e+1 {
			t.Fatalf("epoch %d: estimate seq=%d epochs=%d", e, last.Seq, last.Epochs)
		}
	}

	wantPoisoned, err := ldp.EstimateFrequencies(all, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	prCore := core.Params{P: cfg.Params.P, Q: cfg.Params.Q, Domain: d}
	wantRec, err := core.Recover(wantPoisoned, prCore, core.Options{Eta: m.Config().Eta})
	if err != nil {
		t.Fatal(err)
	}

	if last.Total != int64(len(all)) {
		t.Fatalf("window total %d, want %d", last.Total, len(all))
	}
	if !reflect.DeepEqual(last.Poisoned, wantPoisoned) {
		t.Fatal("windowed poisoned estimate differs from batch pipeline")
	}
	if !reflect.DeepEqual(last.Recovered, wantRec.Frequencies) {
		t.Fatal("windowed recovered estimate differs from batch pipeline")
	}
	if last.PartialKnowledge {
		t.Fatal("partial knowledge with detection disabled")
	}
	if got := m.Latest(); !reflect.DeepEqual(got, last) {
		t.Fatal("Latest() differs from the Seal return")
	}

	// The on-demand ring merge over all retained epochs agrees too.
	onDemand, err := m.EstimateWindow(epochs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDemand.Poisoned, wantPoisoned) {
		t.Fatal("EstimateWindow differs from batch pipeline")
	}
	// Clamped beyond retention.
	clamped, err := m.EstimateWindow(1000)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Epochs != epochs {
		t.Fatalf("clamped window spans %d epochs, want %d", clamped.Epochs, epochs)
	}
}

// TestSlidingWindowEviction pins the incremental window maintenance:
// with Window=2 the estimate at epoch e must equal the direct aggregate
// of epochs e-1..e only, including when History == Window so the ring
// evicts at every seal.
func TestSlidingWindowEviction(t *testing.T) {
	const d = 8
	cfg, _ := testConfig(t, d, 0.8)
	cfg.Window = 2
	cfg.History = 2
	cfg.TargetK = -1
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Epoch e ingests a distinct pre-aggregated partial so window sums
	// are recognizable.
	perEpoch := func(e int) ([]int64, int64) {
		counts := make([]int64, d)
		var total int64 = 1000
		for v := range counts {
			counts[v] = int64(100*(e+1) + v)
		}
		return counts, total
	}
	for e := 0; e < 5; e++ {
		counts, total := perEpoch(e)
		if err := m.AddCounts(counts, total); err != nil {
			t.Fatal(err)
		}
		est, err := m.Seal()
		if err != nil {
			t.Fatal(err)
		}
		wantEpochs := 2
		if e == 0 {
			wantEpochs = 1
		}
		if est.Epochs != wantEpochs {
			t.Fatalf("epoch %d: window spans %d, want %d", e, est.Epochs, wantEpochs)
		}
		// Direct aggregate of the window's epochs.
		wantCounts := make([]int64, d)
		var wantTotal int64
		for _, we := range []int{e - 1, e} {
			if we < 0 {
				continue
			}
			c, tot := perEpoch(we)
			for v := range wantCounts {
				wantCounts[v] += c[v]
			}
			wantTotal += tot
		}
		if est.Total != wantTotal {
			t.Fatalf("epoch %d: window total %d, want %d", e, est.Total, wantTotal)
		}
		wantPoisoned, err := ldp.Unbias(wantCounts, wantTotal, cfg.Params)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(est.Poisoned, wantPoisoned) {
			t.Fatalf("epoch %d: window estimate diverged from direct aggregate", e)
		}
	}
	if got := len(m.Epochs()); got != 2 {
		t.Fatalf("ring retains %d epochs, want 2", got)
	}
	st := m.Stats()
	if st.Epochs != 5 || st.LiveTotal != 0 || st.WindowTotal != 2000 || st.IngestedTotal != 5000 {
		t.Fatalf("stats %+v", st)
	}
}

// TestStreamUpgradesToPartialKnowledge drives the self-upgrade loop: a
// clean stream establishes history, an MGA attacker appears mid-stream,
// the cross-epoch z-score flags the promoted items, and after StableAfter
// agreeing epochs recovery switches to LDPRecover* with exactly those
// targets.
func TestStreamUpgradesToPartialKnowledge(t *testing.T) {
	const d, eps = 32, 1.0
	cfg, proto := testConfig(t, d, eps)
	cfg.Window = 1
	cfg.History = 12
	cfg.StableAfter = 2
	cfg.TargetK = 4
	targets := []int{5, 21}

	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 400
	}
	r := rng.New(9)
	mga, err := attack.NewMGA(targets)
	if err != nil {
		t.Fatal(err)
	}

	const quiet, attacked = 6, 6
	engaged := -1
	for e := 0; e < quiet+attacked; e++ {
		counts, err := ldp.BatchSimulate(proto, r, trueCounts, 1)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for _, c := range trueCounts {
			n += c
		}
		if err := m.AddCounts(counts, n); err != nil {
			t.Fatal(err)
		}
		if e >= quiet {
			mal, err := mga.CraftCounts(r, proto, n/10)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.AddCounts(mal, n/10); err != nil {
				t.Fatal(err)
			}
		}
		est, err := m.Seal()
		if err != nil {
			t.Fatal(err)
		}
		if e < quiet {
			if est.PartialKnowledge {
				t.Fatalf("epoch %d: partial knowledge before any attack", e)
			}
		} else if est.PartialKnowledge && engaged < 0 {
			engaged = e
			got := append([]int(nil), est.Targets...)
			if !reflect.DeepEqual(got, targets) {
				t.Fatalf("epoch %d: stable targets %v, want %v", e, got, targets)
			}
		}
	}
	if engaged < 0 {
		t.Fatal("LDPRecover* never engaged")
	}
	// Promotion needs StableAfter consecutive flagged epochs after the
	// attack starts, so it cannot precede quiet+StableAfter-1.
	if engaged < quiet+cfg.StableAfter-1 {
		t.Fatalf("engaged at epoch %d, before %d consecutive observations were possible",
			engaged, cfg.StableAfter)
	}
	if st := m.Stats(); !reflect.DeepEqual(st.Targets, targets) {
		t.Fatalf("stats targets %v, want %v", st.Targets, targets)
	}
}

// TestEmptyEpochs seals windows with no reports: no estimates, no
// recovery, and quiet epochs still count toward target demotion.
func TestEmptyEpochs(t *testing.T) {
	cfg, _ := testConfig(t, 8, 0.5)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if est.Poisoned != nil || est.Recovered != nil || est.Total != 0 {
		t.Fatalf("empty epoch produced estimates: %+v", est)
	}
	// An empty on-demand window is fine too.
	if _, err := m.EstimateWindow(1); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIngestAndSeal hammers ingest from several goroutines
// while sealing continuously; run under -race by make race. Conservation
// across all sealed epochs plus the live remainder is exact.
func TestConcurrentIngestAndSeal(t *testing.T) {
	const d = 16
	cfg, proto := testConfig(t, d, 0.5)
	cfg.Window = 4
	cfg.History = 8
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 200
	}
	const ingesters = 4
	var wg sync.WaitGroup
	var wantTotal int64
	reportsPer := make([][]ldp.Report, ingesters)
	for g := 0; g < ingesters; g++ {
		reps, err := ldp.PerturbAll(proto, rng.New(uint64(g)+1), trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		reportsPer[g] = reps
		wantTotal += int64(len(reps))
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(reps []ldp.Report) {
			defer wg.Done()
			for len(reps) > 0 {
				n := 128
				if n > len(reps) {
					n = len(reps)
				}
				if err := m.AddBatch(reps[:n]); err != nil {
					t.Error(err)
					return
				}
				reps = reps[n:]
			}
		}(reportsPer[g])
	}
	var sealedTotal int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			est, err := m.Seal()
			if err != nil {
				t.Error(err)
				return
			}
			_ = est
		}
	}()
	wg.Wait()
	<-done
	final, err := m.Seal()
	if err != nil {
		t.Fatal(err)
	}
	_ = final
	st := m.Stats()
	for _, ep := range m.Epochs() {
		sealedTotal += ep.Total
	}
	// The ring may have evicted early epochs, so check the running total
	// instead: everything ingested was sealed.
	if st.IngestedTotal != wantTotal || st.LiveTotal != 0 {
		t.Fatalf("ingested %d live %d, want %d ingested and 0 live", st.IngestedTotal, st.LiveTotal, wantTotal)
	}
	if sealedTotal > wantTotal {
		t.Fatalf("retained epochs hold %d reports, more than the %d ingested", sealedTotal, wantTotal)
	}
}
