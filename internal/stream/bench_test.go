package stream

import (
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// benchManager builds a window-4 manager over a 128-item OUE domain with
// one pre-simulated epoch's worth of aggregate counts to replay.
func benchManager(b *testing.B, users int64) (*EpochManager, []int64, int64) {
	b.Helper()
	const d, eps = 128, 0.5
	proto, err := ldp.NewOUE(d, eps)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewEpochManager(Config{Params: proto.Params(), Window: 4, History: 16})
	if err != nil {
		b.Fatal(err)
	}
	trueCounts := make([]int64, d)
	per := users / int64(d)
	for v := range trueCounts {
		trueCounts[v] = per
	}
	counts, err := ldp.BatchSimulate(proto, rng.New(21), trueCounts, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m, counts, per * int64(d)
}

// BenchmarkStreamSealEpoch is the steady-state epoch boundary: fold one
// epoch's pre-aggregated counts (2^20 users), seal, slide the window,
// estimate and recover. This is the per-epoch serving cost on top of raw
// ingest.
func BenchmarkStreamSealEpoch(b *testing.B) {
	m, counts, total := benchManager(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AddCounts(counts, total); err != nil {
			b.Fatal(err)
		}
		est, err := m.Seal()
		if err != nil {
			b.Fatal(err)
		}
		if est.Total == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkStreamEstimateWindow is the on-demand ring merge: answer an
// ad-hoc "last 2 epochs" query against a sealed ring without advancing
// any stream state.
func BenchmarkStreamEstimateWindow(b *testing.B) {
	m, counts, total := benchManager(b, 1<<20)
	for e := 0; e < 8; e++ {
		if err := m.AddCounts(counts, total); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Seal(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := m.EstimateWindow(2)
		if err != nil {
			b.Fatal(err)
		}
		if est.Epochs != 2 {
			b.Fatal("short window")
		}
	}
}
