package stream

import (
	"errors"
	"reflect"
	"testing"

	"ldprecover/internal/ldp"
)

func partialOf(hint int, counts []int64, users int64) *ldp.PartialTally {
	return &ldp.PartialTally{NodeID: "edge", EpochHint: hint, Counts: counts, Users: users}
}

// TestAddPartialEquivalentToAddCounts: a partial with a current hint
// folds exactly like the same counts through AddCounts.
func TestAddPartialEquivalentToAddCounts(t *testing.T) {
	cfg, _ := testConfig(t, 8, 0.5)
	a, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{4, 0, 9, 1, 0, 0, 3, 2}
	if err := a.AddPartial(partialOf(0, counts, 19)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCounts(counts, 19); err != nil {
		t.Fatal(err)
	}
	ea, err := a.Seal()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("partial fold diverged from AddCounts: %+v vs %+v", ea, eb)
	}
	if a.Epochs()[0].Total != 19 {
		t.Fatalf("sealed total %d want 19", a.Epochs()[0].Total)
	}
}

// TestAddPartialStaleRejected: a hint behind the sealed watermark fails
// with ErrStalePartial and folds nothing.
func TestAddPartialStaleRejected(t *testing.T) {
	cfg, _ := testConfig(t, 4, 0.5)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddCounts([]int64{1, 0, 0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	// Watermark is now 1; a hint of 0 aggregated for the sealed epoch.
	err = m.AddPartial(partialOf(0, []int64{5, 5, 5, 5}, 20))
	if !errors.Is(err, ErrStalePartial) {
		t.Fatalf("stale partial: %v, want ErrStalePartial", err)
	}
	if st := m.Stats(); st.LiveTotal != 0 {
		t.Fatalf("stale partial folded %d live reports", st.LiveTotal)
	}
	// A current hint is accepted again.
	if err := m.AddPartial(partialOf(1, []int64{1, 1, 0, 0}, 2)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.LiveTotal != 2 {
		t.Fatalf("live total %d want 2", st.LiveTotal)
	}
}

// TestAddPartialAheadClampsToOpenEpoch: a hint ahead of the watermark
// (the collector's clock runs hot) folds into the currently open epoch.
func TestAddPartialAheadClampsToOpenEpoch(t *testing.T) {
	cfg, _ := testConfig(t, 4, 0.5)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPartial(partialOf(1000, []int64{2, 0, 1, 0}, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	eps := m.Epochs()
	if len(eps) != 1 || eps[0].Seq != 0 || eps[0].Total != 3 {
		t.Fatalf("epochs %+v: far-future hint did not clamp into epoch 0", eps)
	}
	if !reflect.DeepEqual(eps[0].Counts, []int64{2, 0, 1, 0}) {
		t.Fatalf("epoch counts %v", eps[0].Counts)
	}
}

// TestAddPartialValidation: nil partials and domain mismatches error.
func TestAddPartialValidation(t *testing.T) {
	cfg, _ := testConfig(t, 4, 0.5)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPartial(nil); err == nil {
		t.Fatal("nil partial accepted")
	}
	if err := m.AddPartial(partialOf(0, []int64{1, 2, 3}, 6)); err == nil {
		t.Fatal("domain-mismatched partial accepted")
	}
	if err := m.AddPartial(partialOf(0, []int64{1, -2, 3, 0}, 2)); err == nil {
		t.Fatal("negative-count partial accepted")
	}
}
