package stream

import (
	"fmt"

	"ldprecover/internal/detect"
)

// ManagerState is an exportable deep copy of everything an EpochManager
// accumulates across seals: the sealed-epoch ring, the incrementally
// maintained sliding window, the recovered-baseline history that drives
// target identification, the TargetTracker hysteresis, and the sequence
// counters. It is the unit the persistence layer snapshots at each seal
// and restores on boot, so a restarted server keeps the historical view
// LDPRecover* depends on (paper §V-D identifies targets from past
// estimates) instead of silently downgrading to LDPRecover.
//
// The live (unsealed) accumulator is deliberately not part of the state:
// its reports are reconstructed by replaying the write-ahead log tail
// through AddBatch, which is exact because support counting is additive.
// Configuration (window, thresholds, protocol parameters) is not state
// either — it comes from NewEpochManager on both sides of a restart.
type ManagerState struct {
	// Seq is the next epoch's sequence number (== epochs sealed so far).
	Seq int
	// Sealed is the total report count across all sealed epochs ever.
	Sealed int64
	// Ring holds the retained sealed epochs, oldest first.
	Ring []Epoch
	// WinCounts/WinTotal/WinEpochs are the sliding window's incremental
	// aggregate over the newest WinEpochs epochs of the ring.
	WinCounts []int64
	WinTotal  int64
	WinEpochs int
	// History is the rolling recovered-estimate baseline, oldest first.
	History [][]float64
	// Tracker is the target-identification hysteresis state.
	Tracker detect.TrackerState
}

// SnapshotState exports a deep copy of the manager's cross-epoch state.
// It is safe to call concurrently with ingest and seals; the copy is a
// consistent point-in-time view (taken under the same lock Seal holds).
func (m *EpochManager) SnapshotState() ManagerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := ManagerState{
		Seq:       m.seq,
		Sealed:    m.sealed,
		Ring:      make([]Epoch, len(m.ring)),
		WinCounts: append([]int64(nil), m.winCounts...),
		WinTotal:  m.winTotal,
		WinEpochs: m.winEpochs,
		Tracker:   m.tracker.State(),
	}
	for i, ep := range m.ring {
		st.Ring[i] = Epoch{Seq: ep.Seq, Total: ep.Total,
			Counts: append([]int64(nil), ep.Counts...)}
	}
	if m.history != nil {
		st.History = make([][]float64, len(m.history))
		for i, h := range m.history {
			st.History[i] = append([]float64(nil), h...)
		}
	}
	return st
}

// RestoreState replaces the manager's cross-epoch state with a deep copy
// of st. It may only be called on a freshly constructed manager (nothing
// sealed, nothing ingested): restore is a boot-time operation, not a
// rollback. The caller then replays any write-ahead-log tail through
// AddBatch to rebuild the live epoch, after which window estimates are
// bit-identical to the uninterrupted run — Latest() is recomputed here
// from the restored window and tracker state, which reproduces the
// pre-restart estimate float for float because recovery is
// deterministic.
func (m *EpochManager) RestoreState(st ManagerState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seq != 0 || m.sealed != 0 || m.live.Total() != 0 {
		return fmt.Errorf("stream: restoring into a manager that already holds state (%d epochs, %d live reports)",
			m.seq, m.live.Total())
	}
	d := m.cfg.Params.Domain
	if len(st.WinCounts) != d {
		return fmt.Errorf("stream: restored window counts have domain %d, manager has %d",
			len(st.WinCounts), d)
	}
	if st.Seq < len(st.Ring) {
		return fmt.Errorf("stream: restored seq %d below ring size %d", st.Seq, len(st.Ring))
	}
	if len(st.Ring) > m.cfg.History {
		return fmt.Errorf("stream: restored ring holds %d epochs, retention is %d",
			len(st.Ring), m.cfg.History)
	}
	if st.WinEpochs < 0 || st.WinEpochs > len(st.Ring) || st.WinEpochs > m.cfg.Window {
		return fmt.Errorf("stream: restored window spans %d epochs (ring %d, window %d)",
			st.WinEpochs, len(st.Ring), m.cfg.Window)
	}
	if st.WinTotal < 0 || st.Sealed < 0 {
		return fmt.Errorf("stream: negative restored totals (window %d, sealed %d)",
			st.WinTotal, st.Sealed)
	}
	if len(st.History) > m.cfg.History {
		return fmt.Errorf("stream: restored history holds %d periods, retention is %d",
			len(st.History), m.cfg.History)
	}
	for i, ep := range st.Ring {
		if len(ep.Counts) != d {
			return fmt.Errorf("stream: restored epoch %d has domain %d, manager has %d",
				ep.Seq, len(ep.Counts), d)
		}
		if ep.Total < 0 {
			return fmt.Errorf("stream: restored epoch %d has negative total %d", ep.Seq, ep.Total)
		}
		if i > 0 && ep.Seq <= st.Ring[i-1].Seq {
			return fmt.Errorf("stream: restored ring out of order at epoch %d", ep.Seq)
		}
	}
	for i, h := range st.History {
		if len(h) != d {
			return fmt.Errorf("stream: restored history period %d has domain %d, manager has %d",
				i, len(h), d)
		}
	}
	if st.Tracker.Streak < 0 {
		return fmt.Errorf("stream: negative restored tracker streak %d", st.Tracker.Streak)
	}

	m.seq = st.Seq
	m.sealed = st.Sealed
	m.ring = make([]Epoch, len(st.Ring))
	for i, ep := range st.Ring {
		m.ring[i] = Epoch{Seq: ep.Seq, Total: ep.Total,
			Counts: append([]int64(nil), ep.Counts...)}
	}
	copy(m.winCounts, st.WinCounts)
	m.winTotal = st.WinTotal
	m.winEpochs = st.WinEpochs
	m.history = nil
	for _, h := range st.History {
		m.history = append(m.history, append([]float64(nil), h...))
	}
	if err := m.tracker.SetState(st.Tracker); err != nil {
		return err
	}

	// Rebuild the serving estimate for the restored window. advance=false
	// recomputes exactly what the pre-restart Seal published: the tracker
	// already holds its post-observation state, so Stable() is the target
	// set that seal used, and Unbias/Recover are deterministic.
	m.latest = nil
	if m.seq > 0 {
		est, err := m.estimateLocked(m.winCounts, m.winTotal, m.seq-1, m.winEpochs, false)
		if err != nil {
			return err
		}
		m.latest = est
	}
	return nil
}
