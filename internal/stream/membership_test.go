package stream

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// TestSealedMergerJoinLeaveBoundaries pins the boundary rules: a join
// lands on the current barrier epoch only while that barrier is empty,
// otherwise on the next one; a leave clamps forward past the barrier
// and past anything the node already delivered; both are idempotent;
// the last member cannot leave; strangers cannot leave.
func TestSealedMergerJoinLeaveBoundaries(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}

	// Quiet barrier: a join is effective immediately.
	if eff, err := merger.Join("c"); err != nil || eff != 0 {
		t.Fatalf("join on empty barrier: eff=%d err=%v", eff, err)
	}
	if got := merger.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("members after join: %v", got)
	}
	// Re-announcing is idempotent.
	if eff, err := merger.Join("c"); err != nil || eff != 0 {
		t.Fatalf("repeated join: eff=%d err=%v", eff, err)
	}

	// The barrier starts filling: a new join waits for the boundary.
	if _, err := merger.MergeSealed(nodeTally("a", 0, d, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if eff, err := merger.Join("late"); err != nil || eff != 1 {
		t.Fatalf("mid-barrier join: eff=%d err=%v", eff, err)
	}
	if got := merger.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("mid-barrier join mutated the current barrier: %v", got)
	}
	// ...and its tally for the barrier epoch is rejected: not a member yet.
	if _, err := merger.MergeSealed(nodeTally("late", 0, d, 2, 0)); err == nil {
		t.Fatal("pre-membership tally accepted")
	}
	// But its tally for the effective epoch waits at the barrier fine.
	if res, err := merger.MergeSealed(nodeTally("late", 1, d, 3, 0)); err != nil || res.Ready {
		t.Fatalf("tally for join epoch: res=%+v err=%v", res, err)
	}

	// A leave while the node's tally is pending clamps past the delivery:
	// a has delivered epoch 0, so leaving "from 0" still seals epoch 0
	// with a's data.
	eff, ready, err := merger.Leave("a", 0)
	if err != nil || eff != 1 || ready {
		t.Fatalf("leave with pending delivery: eff=%d ready=%v err=%v", eff, ready, err)
	}
	// Repeating the leave is idempotent.
	if eff, _, err := merger.Leave("a", 0); err != nil || eff != 1 {
		t.Fatalf("repeated leave: eff=%d err=%v", eff, err)
	}
	// A stranger cannot leave.
	if _, _, err := merger.Leave("ghost", 0); err == nil {
		t.Fatal("stranger leave accepted")
	}

	// Close the barrier: b and c complete epoch 0 (a already delivered).
	for _, n := range []string{"b", "c"} {
		if _, err := merger.MergeSealed(nodeTally(n, 0, d, 4, 0)); err != nil {
			t.Fatal(err)
		}
	}
	est, info, err := merger.TrySeal()
	if err != nil || est == nil {
		t.Fatalf("sealing epoch 0: est=%v err=%v", est, err)
	}
	if !reflect.DeepEqual(info.Nodes, []string{"a", "b", "c"}) || len(info.Missing) != 0 {
		t.Fatalf("departing node's final epoch accounting: %+v", info)
	}
	// The boundary passed: a is out, late is in.
	if got := merger.Nodes(); !reflect.DeepEqual(got, []string{"b", "c", "late"}) {
		t.Fatalf("members after boundary: %v", got)
	}
	// a's re-sent epoch-0 tally (at-least-once tail) dedupes harmlessly...
	if res, err := merger.MergeSealed(nodeTally("a", 0, d, 1, 0)); err != nil || !res.Duplicate {
		t.Fatalf("ex-member re-send: res=%+v err=%v", res, err)
	}
	// ...but a fresh tally from the ex-member is rejected.
	if _, err := merger.MergeSealed(nodeTally("a", 1, d, 5, 0)); err == nil {
		t.Fatal("post-departure tally accepted")
	}

	// The last members cannot all leave.
	if _, _, err := merger.Leave("b", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := merger.Leave("c", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := merger.Leave("late", 1); err == nil {
		t.Fatal("removed the last cluster member")
	}

	// A scheduled join cancelled by a leave never becomes a member.
	if _, err := merger.MergeSealed(nodeTally("late", 1, d, 6, 0)); err != nil {
		t.Fatal(err)
	}
	if eff, err := merger.Join("flaky"); err != nil || eff != 2 {
		t.Fatalf("scheduling flaky: eff=%d err=%v", eff, err)
	}
	if _, _, err := merger.Leave("flaky", 0); err != nil {
		t.Fatalf("cancelling a scheduled join: %v", err)
	}
	if est, _, err := merger.TrySeal(); err != nil || est == nil {
		t.Fatalf("sealing epoch 1: est=%v err=%v", est, err)
	}
	if got := merger.Nodes(); !reflect.DeepEqual(got, []string{"late"}) {
		t.Fatalf("members after cancelled join: %v", got)
	}
}

// TestSealedMergerLeaveCompletesBarrier: when the departing node is the
// one straggler the barrier was waiting for, the leave itself reports
// the barrier ready so the root can seal without a timeout.
func TestSealedMergerLeaveCompletesBarrier(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	tally := nodeTally("a", 0, d, 1, 0)
	if res, err := merger.MergeSealed(tally); err != nil || res.Ready {
		t.Fatalf("submit a: res=%+v err=%v", res, err)
	}
	eff, ready, err := merger.Leave("b", 0)
	if err != nil || eff != 0 || !ready {
		t.Fatalf("leave of the last straggler: eff=%d ready=%v err=%v", eff, ready, err)
	}
	est, info, err := merger.TrySeal()
	if err != nil || est == nil {
		t.Fatalf("seal after leave: est=%v err=%v", est, err)
	}
	if est.Total != tally.Total || !reflect.DeepEqual(info.Nodes, []string{"a"}) || len(info.Missing) != 0 {
		t.Fatalf("accounting after leave-completed barrier: est=%+v info=%+v", est, info)
	}
}

// TestSealedMergerMembershipExportRestore: Membership/SetMembership
// round-trip the member set and the pending schedule, SetMembership
// refuses a mid-barrier rewrite, and a merger rebuilt from the exported
// state behaves identically.
func TestSealedMergerMembershipExportRestore(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merger.MergeSealed(nodeTally("a", 0, d, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if eff, err := merger.Join("c"); err != nil || eff != 1 {
		t.Fatalf("join: eff=%d err=%v", eff, err)
	}
	members, sched := merger.Membership()
	if !reflect.DeepEqual(members, []string{"a", "b"}) {
		t.Fatalf("exported members: %v", members)
	}
	if !reflect.DeepEqual(sched, []MemberChange{{Epoch: 1, Node: "c", Join: true}}) {
		t.Fatalf("exported schedule: %+v", sched)
	}
	// Mutating the exports must not reach the merger.
	members[0] = "zz"
	sched[0].Node = "zz"
	if got := merger.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("export aliased internal members: %v", got)
	}

	// Restore is refused while tallies are pending.
	if err := merger.SetMembership([]string{"a", "b"}, nil); err == nil {
		t.Fatal("mid-barrier membership restore accepted")
	}

	// A promoted root rebuilds from the exported state and expects the
	// same nodes at the same boundaries.
	members, sched = merger.Membership()
	mgr2, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewSealedMerger(mgr2, []string{"placeholder"})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SetMembership(members, sched); err != nil {
		t.Fatal(err)
	}
	if got := restored.Nodes(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("restored members: %v", got)
	}
	// Epoch 0 replays under the old membership, epoch 1 expects c too.
	for _, n := range []string{"a", "b"} {
		if _, err := restored.MergeSealed(nodeTally(n, 0, d, 1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if est, _, err := restored.TrySeal(); err != nil || est == nil {
		t.Fatalf("restored seal: est=%v err=%v", est, err)
	}
	if got := restored.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("restored members after boundary: %v", got)
	}

	// Restore validation: empty final membership and junk entries.
	if err := restored.SetMembership(nil, nil); err == nil {
		t.Fatal("empty membership restore accepted")
	}
	if err := restored.SetMembership([]string{"a"}, []MemberChange{{Epoch: -1, Node: "x", Join: true}}); err == nil {
		t.Fatal("negative schedule epoch accepted")
	}
	if err := restored.SetMembership([]string{"a"}, []MemberChange{{Epoch: 5, Node: "", Join: true}}); err == nil {
		t.Fatal("empty schedule node accepted")
	}
	if err := restored.SetMembership([]string{"a"}, []MemberChange{{Epoch: 0, Node: "a", Join: false}}); err == nil {
		t.Fatal("schedule emptying the barrier membership accepted")
	}
}

// TestSealedMergerAccessorAliasing is the satellite audit mirroring the
// PR 4 tracker-slice fix: every accessor that publishes merge state —
// PendingNodes, Merged, Nodes, Membership, and the MergedEpoch returned
// by seals — hands out copies, so callers mutating them (or membership
// churn mutating the originals) cannot corrupt each other. Run under
// -race in CI.
func TestSealedMergerAccessorAliasing(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := merger.MergeSealed(nodeTally(n, 0, d, 1, 0)); err != nil {
			t.Fatal(err)
		}
	}

	// PendingNodes: the returned map is the caller's.
	pn := merger.PendingNodes()
	pn["a"] = false
	pn["zz"] = true
	if got := merger.PendingNodes(); !reflect.DeepEqual(got, map[string]bool{"a": true, "b": true, "c": false}) {
		t.Fatalf("PendingNodes aliased caller mutation: %v", got)
	}

	// The seal's returned accounting must not alias retained state.
	_, info, err := merger.SealPartial()
	if err != nil {
		t.Fatal(err)
	}
	info.Nodes[0] = "corrupt"
	info.Missing[0] = "corrupt"
	kept := merger.Merged()
	if !reflect.DeepEqual(kept[0].Nodes, []string{"a", "b"}) || !reflect.DeepEqual(kept[0].Missing, []string{"c"}) {
		t.Fatalf("seal result aliased retained accounting: %+v", kept[0])
	}

	// Merged: mutating one snapshot must not leak into the next.
	kept[0].Nodes[0] = "corrupt"
	kept[0].Missing[0] = "corrupt"
	again := merger.Merged()
	if !reflect.DeepEqual(again[0].Nodes, []string{"a", "b"}) || !reflect.DeepEqual(again[0].Missing, []string{"c"}) {
		t.Fatalf("Merged aliased caller mutation: %+v", again[0])
	}

	// Nodes under membership churn: a snapshot taken before a join/leave
	// keeps its value.
	before := merger.Nodes()
	if _, err := merger.Join("d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := merger.Leave("c", 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, []string{"a", "b", "c"}) {
		t.Fatalf("Nodes snapshot mutated by membership churn: %v", before)
	}
}

// TestSealedMergerChurnPropertyConvergence is the property-style
// membership test: a cluster under a random schedule of joins, leaves,
// and per-epoch crashes (stragglers force-sealed away) produces, epoch
// for epoch, estimates bit-identical to a single-node manager fed the
// union of exactly the tallies that were delivered. Random re-sends of
// old tallies — including from departed nodes — ride along and must
// dedupe to no-ops. Several seeds, so schedules differ across runs of
// the suite without losing reproducibility.
func TestSealedMergerChurnPropertyConvergence(t *testing.T) {
	for _, seed := range []uint64{1, 2026, 0xfeedbeef} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { churnConvergence(t, seed) })
	}
}

func churnConvergence(t *testing.T, seed uint64) {
	const d, epochs = 32, 40
	pool := []string{"fe-0", "fe-1", "fe-2", "fe-3", "fe-4", "fe-5"}
	r := rng.New(seed)

	single, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	rootMgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(rootMgr, pool[:3])
	if err != nil {
		t.Fatal(err)
	}

	active := map[string]bool{"fe-0": true, "fe-1": true, "fe-2": true}
	joinAt := map[string]int{} // scheduled joins: node -> effective epoch
	var delivered []*ldp.Tally

	pick := func(want bool) string {
		var cand []string
		for _, n := range pool {
			if _, scheduled := joinAt[n]; active[n] == want && !scheduled {
				cand = append(cand, n)
			}
		}
		if len(cand) == 0 {
			return ""
		}
		return cand[r.Uint64()%uint64(len(cand))]
	}

	for e := 0; e < epochs; e++ {
		for n, at := range joinAt {
			if at <= e {
				active[n] = true
				delete(joinAt, n)
			}
		}
		// Pre-barrier membership ops: the barrier is empty, so they are
		// effective this epoch.
		if r.Uint64()%4 == 0 {
			if n := pick(false); n != "" {
				eff, err := merger.Join(n)
				if err != nil || eff != e {
					t.Fatalf("epoch %d: join %s eff=%d err=%v", e, n, eff, err)
				}
				active[n] = true
			}
		}
		if r.Uint64()%4 == 0 && len(active) > 1 {
			if n := pick(true); n != "" {
				eff, _, err := merger.Leave(n, e)
				if err != nil || eff != e {
					t.Fatalf("epoch %d: leave %s eff=%d err=%v", e, n, eff, err)
				}
				delete(active, n)
			}
		}
		members := make([]string, 0, len(active))
		for n := range active {
			members = append(members, n)
		}
		sort.Strings(members)
		if got := merger.Nodes(); !reflect.DeepEqual(got, members) {
			t.Fatalf("epoch %d: merger members %v, schedule says %v", e, got, members)
		}

		var spike int64
		if e >= epochs/2 {
			spike = 4000 // engage the LDPRecover* hysteresis path
		}
		union := &ldp.Tally{NodeID: "union", Epoch: e, Counts: make([]int64, d)}
		submitted := 0
		for i, n := range members {
			if r.Uint64()%5 == 0 && submitted < len(members)-1 {
				continue // n crashed this epoch: no delivery, straggler policy applies
			}
			tally := nodeTally(n, e, d, nodeSeed(n), spike)
			if err := union.Merge(tally); err != nil {
				t.Fatal(err)
			}
			if res, err := merger.MergeSealed(tally); err != nil || res.Duplicate {
				t.Fatalf("epoch %d node %s: res=%+v err=%v", e, n, res, err)
			}
			delivered = append(delivered, tally)
			submitted++
			// A mid-barrier join is deferred to the next boundary.
			if i == 0 && r.Uint64()%6 == 0 {
				if n := pick(false); n != "" {
					eff, err := merger.Join(n)
					if err != nil || eff != e+1 {
						t.Fatalf("epoch %d: mid-barrier join %s eff=%d err=%v", e, n, eff, err)
					}
					joinAt[n] = eff
				}
			}
		}
		// An at-least-once re-send of something old changes nothing.
		if len(delivered) > 0 && r.Uint64()%3 == 0 {
			old := delivered[r.Uint64()%uint64(len(delivered))]
			if old.Epoch < e {
				if res, err := merger.MergeSealed(old.Clone()); err != nil || !res.Duplicate {
					t.Fatalf("epoch %d: re-send of %s/%d res=%+v err=%v", e, old.NodeID, old.Epoch, res, err)
				}
			}
		}

		if err := single.AddCounts(union.Counts, union.Total); err != nil {
			t.Fatal(err)
		}
		want, err := single.Seal()
		if err != nil {
			t.Fatal(err)
		}
		var got *WindowEstimate
		var info *MergedEpoch
		if submitted == len(members) {
			got, info, err = merger.TrySeal()
		} else {
			got, info, err = merger.SealPartial()
		}
		if err != nil || got == nil {
			t.Fatalf("epoch %d seal: est=%v err=%v", e, got, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: churned cluster diverged from single node\ngot  %+v\nwant %+v", e, got, want)
		}
		if info.Epoch != e || len(info.Nodes)+len(info.Missing) != len(members) {
			t.Fatalf("epoch %d accounting: %+v (members %v)", e, info, members)
		}
	}
	if latest := single.Latest(); !latest.PartialKnowledge {
		t.Fatal("churn scenario never engaged LDPRecover*; equivalence is vacuous")
	}
	if merger.SealedThrough() != epochs {
		t.Fatalf("sealed through %d, want %d", merger.SealedThrough(), epochs)
	}
}

// nodeSeed derives a stable per-node tally seed from the node id, so a
// node's reports do not depend on when it joined.
func nodeSeed(node string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	return h | 1
}

// TestSealedMergerPromotionDedupeIdempotence is the stream-level half
// of the failover guarantee: rebuild a merger from a snapshot of the
// old root's manager state plus its exported membership (what the
// standby tails), replay every tally the frontends would re-send, and
// nothing double-merges — the continuation is bit-identical to a root
// that never died.
func TestSealedMergerPromotionDedupeIdempotence(t *testing.T) {
	const d, preEpochs, postEpochs = 32, 6, 4
	nodes := []string{"fe-0", "fe-1"}

	single, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	mgrA, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	rootA, err := NewSealedMerger(mgrA, nodes)
	if err != nil {
		t.Fatal(err)
	}

	var sent []*ldp.Tally
	runEpoch := func(m *SealedMerger, e int) *WindowEstimate {
		t.Helper()
		union := &ldp.Tally{NodeID: "union", Epoch: e, Counts: make([]int64, d)}
		for _, n := range m.Nodes() {
			tally := nodeTally(n, e, d, nodeSeed(n), 0)
			if err := union.Merge(tally); err != nil {
				t.Fatal(err)
			}
			if _, err := m.MergeSealed(tally); err != nil {
				t.Fatal(err)
			}
			sent = append(sent, tally)
		}
		if err := single.AddCounts(union.Counts, union.Total); err != nil {
			t.Fatal(err)
		}
		want, err := single.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := m.TrySeal()
		if err != nil || got == nil {
			t.Fatalf("epoch %d seal: est=%v err=%v", e, got, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d diverged from single node", e)
		}
		return got
	}
	for e := 0; e < preEpochs; e++ {
		runEpoch(rootA, e)
	}
	// A joins/leaves schedule in flight at the crash must survive it.
	if eff, err := rootA.Join("fe-2"); err != nil || eff != preEpochs {
		t.Fatalf("join: eff=%d err=%v", eff, err)
	}

	// The root dies. The standby holds the last per-seal snapshot of the
	// manager plus the exported membership.
	state := mgrA.SnapshotState()
	members, sched := rootA.Membership()

	mgrB, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := mgrB.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	rootB, err := NewSealedMerger(mgrB, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := rootB.SetMembership(members, sched); err != nil {
		t.Fatal(err)
	}
	if rootB.SealedThrough() != preEpochs {
		t.Fatalf("promoted watermark %d, want %d", rootB.SealedThrough(), preEpochs)
	}
	// fe-2's scheduled join applied at promotion (its epoch is due).
	if got := rootB.Nodes(); !reflect.DeepEqual(got, []string{"fe-0", "fe-1", "fe-2"}) {
		t.Fatalf("promoted members: %v", got)
	}

	// Frontends re-send their whole retained ring at failover; every
	// already-merged tally must dedupe to a no-op.
	for _, tally := range sent {
		res, err := rootB.MergeSealed(tally.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Duplicate {
			t.Fatalf("tally %s/%d double-merged across promotion", tally.NodeID, tally.Epoch)
		}
	}
	// And the cluster continues bit-identically under the new root.
	for e := preEpochs; e < preEpochs+postEpochs; e++ {
		runEpoch(rootB, e)
	}
}
