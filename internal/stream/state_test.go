package stream

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// spikeConfig is a small stream whose target identification can be
// driven deterministically with AddCounts.
func spikeConfig(t *testing.T, d int) (Config, ldp.Protocol) {
	t.Helper()
	proto, err := ldp.NewOUE(d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Params: proto.Params(), Window: 2, History: 10,
		StableAfter: 2, MinHistory: 3, TargetK: 3,
	}, proto
}

// sealEpoch simulates one epoch's counts (optionally spiking item
// `spike` hard enough for the z-score) and seals.
func sealEpoch(t *testing.T, m *EpochManager, proto ldp.Protocol, r *rng.Rand, spike int) *WindowEstimate {
	t.Helper()
	d := m.Domain()
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 500
	}
	if spike >= 0 {
		trueCounts[spike] += 2500
	}
	counts, err := ldp.BatchSimulate(proto, r, trueCounts, 1)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, c := range trueCounts {
		n += c
	}
	if err := m.AddCounts(counts, n); err != nil {
		t.Fatal(err)
	}
	est, err := m.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestSnapshotRestoreRoundTrip drives a manager to the middle of a
// promotion streak, snapshots it, restores into a fresh manager, and
// runs both in lockstep: every subsequent estimate — including the epoch
// at which LDPRecover* engages — must be bit-identical, which is exactly
// the property the persistence layer's boot path depends on.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const d = 12
	cfg, proto := spikeConfig(t, d)
	a, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical epoch inputs need identical generator streams, so drive
	// each manager from its own deterministic rng.
	ra, rb := rng.New(42), rng.New(42)

	// Quiet history, then one attacked epoch: streak == 1, not promoted.
	for e := 0; e < 4; e++ {
		sealEpoch(t, a, proto, ra, -1)
	}
	est := sealEpoch(t, a, proto, ra, 5)
	if est.PartialKnowledge {
		t.Fatal("promoted after a single observation")
	}

	st := a.SnapshotState()
	// The exported state is a deep copy: mutating it must not reach the
	// manager.
	st.WinCounts[0] += 999
	st2 := a.SnapshotState()
	if st2.WinCounts[0] == st.WinCounts[0] {
		t.Fatal("SnapshotState shares winCounts with the manager")
	}
	st.WinCounts[0] -= 999

	b, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// Replay b's rng to a's position: both managers drew 5 epochs.
	for e := 0; e < 5; e++ {
		spike := -1
		if e == 4 {
			spike = 5
		}
		trueCounts := make([]int64, d)
		for v := range trueCounts {
			trueCounts[v] = 500
		}
		if spike >= 0 {
			trueCounts[spike] += 2500
		}
		if _, err := ldp.BatchSimulate(proto, rb, trueCounts, 1); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(b.Latest(), a.Latest()) {
		t.Fatal("restored Latest() differs")
	}
	if !reflect.DeepEqual(b.Epochs(), a.Epochs()) {
		t.Fatal("restored ring differs")
	}
	if !reflect.DeepEqual(b.Stats(), a.Stats()) {
		t.Fatalf("restored stats differ: %+v vs %+v", b.Stats(), a.Stats())
	}

	// Lockstep from here: the second attacked epoch promotes, later ones
	// stay promoted, and everything matches float for float.
	engaged := -1
	for e := 5; e < 9; e++ {
		ea := sealEpoch(t, a, proto, ra, 5)
		eb := sealEpoch(t, b, proto, rb, 5)
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("epoch %d diverged after restore:\n a %+v\n b %+v", e, ea, eb)
		}
		if ea.PartialKnowledge && engaged < 0 {
			engaged = e
		}
	}
	if engaged != 5 {
		t.Fatalf("LDPRecover* engaged at epoch %d, want 5 (streak resumed mid-hysteresis)", engaged)
	}
}

// TestRestoreValidation rejects states that cannot belong to the
// manager's configuration, and restores only into a fresh manager.
func TestRestoreValidation(t *testing.T) {
	cfg, proto := spikeConfig(t, 8)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	sealEpoch(t, m, proto, r, -1)
	good := m.SnapshotState()

	used, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sealEpoch(t, used, proto, rng.New(2), -1)
	if err := used.RestoreState(good); err == nil {
		t.Fatal("restored into a manager with sealed epochs")
	}
	live, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.AddCounts(make([]int64, 8), 1); err != nil {
		t.Fatal(err)
	}
	if err := live.RestoreState(good); err == nil {
		t.Fatal("restored into a manager with live reports")
	}

	fresh := func() *EpochManager {
		t.Helper()
		fm, err := NewEpochManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}
	for name, mangle := range map[string]func(st *ManagerState){
		"wrong-domain-window": func(st *ManagerState) { st.WinCounts = st.WinCounts[:4] },
		"wrong-domain-epoch":  func(st *ManagerState) { st.Ring[0].Counts = st.Ring[0].Counts[:4] },
		"wrong-domain-history": func(st *ManagerState) {
			st.History = [][]float64{make([]float64, 4)}
		},
		"seq-below-ring":    func(st *ManagerState) { st.Seq = 0 },
		"ring-beyond-hist":  func(st *ManagerState) { st.Ring = make([]Epoch, cfg.History+1) },
		"window-beyond-cfg": func(st *ManagerState) { st.WinEpochs = 5 },
		"window-above-ring": func(st *ManagerState) { st.WinEpochs = 2 },
		"negative-total":    func(st *ManagerState) { st.WinTotal = -1 },
		"negative-epoch":    func(st *ManagerState) { st.Ring[0].Total = -1 },
		"negative-streak":   func(st *ManagerState) { st.Tracker.Streak = -1 },
		"ring-out-of-order": func(st *ManagerState) {
			st.Ring = append(st.Ring, st.Ring[0])
			st.Seq = 3
		},
	} {
		fm := fresh()
		st := m.SnapshotState()
		mangle(&st)
		if err := fm.RestoreState(st); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// And the untouched state restores fine, twice over (deep copy in).
	fm := fresh()
	if err := fm.RestoreState(good); err != nil {
		t.Fatal(err)
	}
	good.WinCounts[0] += 7
	if fm.SnapshotState().WinCounts[0] == good.WinCounts[0] {
		t.Fatal("RestoreState shares slices with its argument")
	}
}

// TestRestoreEmptyAndColdStates covers the degenerate snapshots: a
// brand-new manager's state, and one whose newest window was empty.
func TestRestoreEmptyAndColdStates(t *testing.T) {
	cfg, _ := spikeConfig(t, 8)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := m.SnapshotState()
	m2, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.RestoreState(cold); err != nil {
		t.Fatal(err)
	}
	if m2.Latest() != nil {
		t.Fatal("cold restore invented a Latest()")
	}

	// Seal two report-free epochs (the whole window is empty), then
	// restore that state: Latest() must come back as the empty-window
	// estimate — Total 0, no frequencies — not nil.
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	m3, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.RestoreState(m.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	if m3.Latest() == nil || m3.Latest().Total != 0 {
		t.Fatalf("empty-window restore Latest: %+v", m3.Latest())
	}
	if !reflect.DeepEqual(m3.Latest(), m.Latest()) {
		t.Fatalf("empty-window restore: %+v vs %+v", m3.Latest(), m.Latest())
	}
}

// TestTargetSlicesAreCopies pins the aliasing fix: the target slices a
// WindowEstimate or Stats hands out are the caller's to keep (or even
// mutate) — they must not be wired into the tracker's internal state.
func TestTargetSlicesAreCopies(t *testing.T) {
	cfg, proto := spikeConfig(t, 12)
	cfg.StableAfter = 1 // promote on first observation
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	for e := 0; e < 3; e++ {
		sealEpoch(t, m, proto, r, -1)
	}
	est := sealEpoch(t, m, proto, r, 4)
	if !est.PartialKnowledge || len(est.Targets) == 0 {
		t.Fatalf("spike not promoted: %+v", est)
	}
	st := m.Stats()
	if &st.Targets[0] == &est.Targets[0] {
		t.Fatal("Stats and WindowEstimate share a targets array")
	}
	// Vandalize both published slices; the tracker must not notice.
	est.Targets[0] = -99
	st.Targets[0] = -77
	if got := m.Stats().Targets; !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("mutating published targets corrupted the tracker: %v", got)
	}
}

// TestTargetPublishRace hammers promotion/demotion cycles while readers
// JSON-encode the published estimates and stats — the exact consumer
// pattern the serve layer runs concurrently with seals. Run under -race
// by make race; before the stream layer copied target slices this was a
// write-after-publish race on the tracker's internal array.
func TestTargetPublishRace(t *testing.T) {
	cfg, proto := spikeConfig(t, 12)
	cfg.StableAfter = 1
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for e := 0; e < 3; e++ {
		sealEpoch(t, m, proto, r, -1)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	// One consumer mutates what it was handed (each published estimate
	// has a single hostile owner — mutating it must not reach into the
	// tracker the sealer is reading); the other only JSON-encodes its
	// own Stats copies, the serve layer's actual pattern.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if est := m.Latest(); est != nil {
				for i := range est.Targets {
					est.Targets[i] = -est.Targets[i]
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := json.Marshal(m.Stats().Targets); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Alternate spiked and quiet epochs: with StableAfter == 1 every
	// other seal promotes or demotes, rewriting the tracker's stable set
	// while the readers encode.
	for e := 0; e < 40; e++ {
		spike := -1
		if e%2 == 0 {
			spike = 4 + e%3
		}
		sealEpoch(t, m, proto, r, spike)
	}
	close(done)
	wg.Wait()
}

// TestEstimateWindowEdgeCases locks in the behaviors the persistence
// restore path depends on: clamping beyond retention, all-empty windows,
// and — critically — ad-hoc queries leaving detection state untouched.
func TestEstimateWindowEdgeCases(t *testing.T) {
	cfg, proto := spikeConfig(t, 12)
	m, err := NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	for e := 0; e < 4; e++ {
		sealEpoch(t, m, proto, r, -1)
	}
	sealEpoch(t, m, proto, r, 5) // flagged once: streak mid-hysteresis

	// k beyond the retained epochs clamps to the ring.
	est, err := m.EstimateWindow(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if est.Epochs != 5 {
		t.Fatalf("clamped window spans %d epochs, want 5", est.Epochs)
	}

	// Ad-hoc queries are side-effect free: the full cross-epoch state —
	// tracker streak, history, window sums — is byte-identical after any
	// number of them, so a snapshot taken before and after matches.
	before := m.SnapshotState()
	for k := 1; k <= 6; k++ {
		if _, err := m.EstimateWindow(k); err != nil {
			t.Fatal(err)
		}
	}
	if after := m.SnapshotState(); !reflect.DeepEqual(before, after) {
		t.Fatal("EstimateWindow perturbed detection state")
	}
	// And they do not advance Latest either.
	if got := m.Latest(); got.Seq != 4 {
		t.Fatalf("Latest moved to seq %d", got.Seq)
	}

	// A window whose epochs are all empty: seal two report-free epochs,
	// then ask for exactly those two.
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(); err != nil {
		t.Fatal(err)
	}
	empty, err := m.EstimateWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Total != 0 || empty.Poisoned != nil || empty.Recovered != nil {
		t.Fatalf("empty window produced estimates: %+v", empty)
	}
	if empty.Epochs != 2 || empty.Seq != 6 {
		t.Fatalf("empty window shape: %+v", empty)
	}
}
