package stream

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"ldprecover/internal/ldp"
)

// SealedMerger is the root side of the scale-out collection tier
// (DESIGN.md §7): frontend nodes ingest disjoint user populations, seal
// epochs on a shared epoch clock, and push their sealed per-epoch
// tallies here. The merger runs an epoch barrier in front of an
// EpochManager — epoch e seals into the manager only after every
// expected node's tally for e has arrived (or a straggler policy forces
// it) — so window estimates, recovered history, and target-tracker
// hysteresis all run on the merged view, exactly as if one collector
// had seen every report.
//
// Delivery is at-least-once: frontends retry pushes until the root's
// sealed watermark passes the tally's epoch, and the merger dedupes by
// (NodeID, Epoch), so a re-sent tally — a retried request, a frontend
// crash-restart re-pushing its ring — changes nothing. Because tally
// merging is exact int64 addition and epochs seal strictly in clock
// order, the merged pipeline is bit-identical to the single-node one on
// the union of reports; the cluster equivalence e2e pins that.
//
// All methods are safe for concurrent use.
type SealedMerger struct {
	mgr      *EpochManager
	expected []string // sorted unique frontend node ids

	mu      sync.Mutex
	next    int                   // next epoch index to seal (the barrier)
	pending map[int]*pendingEpoch // future/current epochs accumulating tallies
	merged  []MergedEpoch         // accounting for sealed epochs, oldest first
	dupes   int64                 // deduped submissions ever
}

// pendingEpoch accumulates one epoch's tallies ahead of its barrier.
type pendingEpoch struct {
	counts []int64
	total  int64
	nodes  map[string]bool
}

// MergedEpoch is the partial-epoch accounting for one sealed epoch:
// which expected nodes made it into the merge before the barrier
// closed, and which were still missing (straggler timeout or forced
// seal). A complete epoch has an empty Missing.
type MergedEpoch struct {
	// Epoch is the shared clock index.
	Epoch int
	// Nodes are the frontends whose tallies merged, sorted.
	Nodes []string
	// Missing are the expected frontends absent at seal time, sorted.
	Missing []string
	// Total is the merged report count.
	Total int64
	// Duplicates counts deduped submissions observed for this epoch,
	// including late re-sends arriving after the seal.
	Duplicates int
}

// SubmitResult describes what MergeSealed did with a tally.
type SubmitResult struct {
	// Duplicate is set when the tally was already merged — the same
	// (node, epoch) seen before the barrier, or the epoch already sealed
	// — and the submission changed nothing.
	Duplicate bool
	// Ready is set when the next-to-seal epoch now holds every expected
	// node's tally: the barrier is complete and TrySeal will seal it.
	Ready bool
	// SealedThrough is the number of epochs sealed so far; frontends
	// prune their unacked tallies against this watermark.
	SealedThrough int
}

// maxEpochLead bounds how far past the barrier a pending tally may
// reach, so a misconfigured or hostile frontend cannot grow the pending
// map without bound. A healthy cluster's frontends sit at most one
// epoch ahead of the root; crash-restart re-sends reach back, not
// forward.
const maxEpochLead = 1 << 10

// NewSealedMerger wraps mgr with an epoch barrier over the expected
// frontend nodes. The barrier resumes at the manager's sealed-epoch
// count, so a root restored from a snapshot continues where it left
// off.
func NewSealedMerger(mgr *EpochManager, nodes []string) (*SealedMerger, error) {
	if mgr == nil {
		return nil, fmt.Errorf("stream: merger without an epoch manager")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("stream: merger without expected nodes")
	}
	expected := slices.Clone(nodes)
	sort.Strings(expected)
	for i, n := range expected {
		if n == "" {
			return nil, fmt.Errorf("stream: empty node id in merger config")
		}
		if i > 0 && expected[i-1] == n {
			return nil, fmt.Errorf("stream: duplicate node id %q in merger config", n)
		}
	}
	return &SealedMerger{
		mgr:      mgr,
		expected: expected,
		next:     mgr.Stats().Epochs,
		pending:  make(map[int]*pendingEpoch),
	}, nil
}

// Manager returns the epoch manager the merger seals into.
func (sm *SealedMerger) Manager() *EpochManager { return sm.mgr }

// Nodes returns the expected frontend node ids, sorted.
func (sm *SealedMerger) Nodes() []string { return slices.Clone(sm.expected) }

// MergeSealed is the root's ingest path: it folds one frontend's sealed
// tally into the pending epoch it belongs to. Duplicates — by (node,
// epoch), or for an epoch already sealed — are no-ops reported in the
// result, never errors, because at-least-once delivery makes them part
// of normal operation. Unknown nodes, domain mismatches, and epochs
// absurdly far past the barrier are errors.
func (sm *SealedMerger) MergeSealed(t *ldp.Tally) (SubmitResult, error) {
	if t == nil {
		return SubmitResult{}, fmt.Errorf("stream: merging a nil tally")
	}
	if err := t.Validate(); err != nil {
		return SubmitResult{}, err
	}
	if d := sm.mgr.Domain(); len(t.Counts) != d {
		return SubmitResult{}, fmt.Errorf("stream: tally from %q has domain %d, root serves %d",
			t.NodeID, len(t.Counts), d)
	}
	if _, ok := slices.BinarySearch(sm.expected, t.NodeID); !ok {
		return SubmitResult{}, fmt.Errorf("stream: tally from unexpected node %q", t.NodeID)
	}

	sm.mu.Lock()
	defer sm.mu.Unlock()
	res := SubmitResult{SealedThrough: sm.next}
	if t.Epoch < sm.next {
		// The epoch sealed without (or with) this tally; either way the
		// barrier has moved on and the re-send changes nothing.
		sm.noteDuplicateLocked(t.Epoch)
		res.Duplicate = true
		return res, nil
	}
	if t.Epoch > sm.next && sm.next == 0 && len(sm.pending) == 0 && sm.mgr.Stats().Epochs == 0 {
		// A virgin root facing a cluster whose clock is already running —
		// an in-memory root restarted, or a root whose state was lost —
		// adopts the frontends' epoch base instead of forcing its way
		// through (or, past maxEpochLead, rejecting) every skipped epoch.
		// Frontends push oldest-first, so the first arrival is the
		// earliest tally still deliverable; anything older another node
		// re-sends is stale either way, because the state that could
		// have merged it is gone.
		sm.next = t.Epoch
		res.SealedThrough = sm.next
	}
	if t.Epoch >= sm.next+maxEpochLead {
		return res, fmt.Errorf("stream: tally from %q for epoch %d is %d epochs past the merge barrier %d",
			t.NodeID, t.Epoch, t.Epoch-sm.next, sm.next)
	}
	pe := sm.pending[t.Epoch]
	if pe == nil {
		pe = &pendingEpoch{counts: make([]int64, len(t.Counts)), nodes: make(map[string]bool, len(sm.expected))}
		sm.pending[t.Epoch] = pe
	}
	if pe.nodes[t.NodeID] {
		sm.dupes++
		res.Duplicate = true
		return res, nil
	}
	pe.nodes[t.NodeID] = true
	for v, c := range t.Counts {
		pe.counts[v] += c
	}
	pe.total += t.Total
	res.Ready = sm.barrierCompleteLocked()
	return res, nil
}

// noteDuplicateLocked counts a dedupe, attributing it to the sealed
// epoch's accounting when that epoch is still retained.
func (sm *SealedMerger) noteDuplicateLocked(epoch int) {
	sm.dupes++
	for i := range sm.merged {
		if sm.merged[i].Epoch == epoch {
			sm.merged[i].Duplicates++
			return
		}
	}
}

// barrierCompleteLocked reports whether the next-to-seal epoch holds
// every expected node's tally.
func (sm *SealedMerger) barrierCompleteLocked() bool {
	pe := sm.pending[sm.next]
	return pe != nil && len(pe.nodes) == len(sm.expected)
}

// TrySeal seals the next epoch into the manager iff its barrier is
// complete, returning the new window estimate and the epoch's merge
// accounting; (nil, nil, nil) means the barrier is still open. Callers
// loop — sealing epoch e may reveal that e+1's barrier was already
// complete.
func (sm *SealedMerger) TrySeal() (*WindowEstimate, *MergedEpoch, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if !sm.barrierCompleteLocked() {
		return nil, nil, nil
	}
	return sm.sealNextLocked()
}

// SealPartial force-closes the next epoch's barrier with whatever
// tallies have arrived — the straggler-timeout policy, and the root's
// answer to an explicit seal request. Sealing with no tallies at all is
// legal and produces an empty epoch, exactly as a quiet single-node
// epoch would. The accounting records which nodes were merged and which
// were missing.
func (sm *SealedMerger) SealPartial() (*WindowEstimate, *MergedEpoch, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.sealNextLocked()
}

// sealNextLocked folds the pending epoch at the barrier into the
// manager and seals it. Callers hold sm.mu.
func (sm *SealedMerger) sealNextLocked() (*WindowEstimate, *MergedEpoch, error) {
	info := MergedEpoch{Epoch: sm.next}
	if pe := sm.pending[sm.next]; pe != nil {
		if err := sm.mgr.AddCounts(pe.counts, pe.total); err != nil {
			return nil, nil, err
		}
		info.Total = pe.total
		for n := range pe.nodes {
			info.Nodes = append(info.Nodes, n)
		}
		sort.Strings(info.Nodes)
		delete(sm.pending, sm.next)
	}
	for _, n := range sm.expected {
		if !slices.Contains(info.Nodes, n) {
			info.Missing = append(info.Missing, n)
		}
	}
	est, err := sm.mgr.Seal()
	if err != nil {
		return nil, nil, err
	}
	sm.next++
	sm.merged = append(sm.merged, info)
	if keep := sm.mgr.Config().History; len(sm.merged) > keep {
		sm.merged = sm.merged[len(sm.merged)-keep:]
	}
	return est, &info, nil
}

// BarrierPending reports whether any tallies are waiting at or past
// the barrier — what a root consults to decide whether a straggler
// timer should be armed.
func (sm *SealedMerger) BarrierPending() bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.pending) > 0
}

// SealedThrough returns how many epochs have sealed — the watermark
// frontends prune their unacked tallies against.
func (sm *SealedMerger) SealedThrough() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.next
}

// PendingNodes returns which expected nodes have (true) and have not
// (false) delivered their tally for the epoch at the barrier.
func (sm *SealedMerger) PendingNodes() map[string]bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make(map[string]bool, len(sm.expected))
	pe := sm.pending[sm.next]
	for _, n := range sm.expected {
		out[n] = pe != nil && pe.nodes[n]
	}
	return out
}

// Merged returns the retained per-epoch merge accounting, oldest first.
func (sm *SealedMerger) Merged() []MergedEpoch {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]MergedEpoch, len(sm.merged))
	for i, m := range sm.merged {
		out[i] = MergedEpoch{Epoch: m.Epoch, Total: m.Total, Duplicates: m.Duplicates,
			Nodes: slices.Clone(m.Nodes), Missing: slices.Clone(m.Missing)}
	}
	return out
}

// Duplicates returns how many submissions have ever been deduped.
func (sm *SealedMerger) Duplicates() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.dupes
}
