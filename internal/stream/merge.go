package stream

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"

	"ldprecover/internal/ldp"
)

// SealedMerger is the root side of the scale-out collection tier
// (DESIGN.md §7): frontend nodes ingest disjoint user populations, seal
// epochs on a shared epoch clock, and push their sealed per-epoch
// tallies here. The merger runs an epoch barrier in front of an
// EpochManager — epoch e seals into the manager only after every
// expected node's tally for e has arrived (or a straggler policy forces
// it) — so window estimates, recovered history, and target-tracker
// hysteresis all run on the merged view, exactly as if one collector
// had seen every report.
//
// Delivery is at-least-once: frontends retry pushes until the root's
// sealed watermark passes the tally's epoch, and the merger dedupes by
// (NodeID, Epoch), so a re-sent tally — a retried request, a frontend
// crash-restart re-pushing its ring — changes nothing. Because tally
// merging is exact int64 addition and epochs seal strictly in clock
// order, the merged pipeline is bit-identical to the single-node one on
// the union of reports; the cluster equivalence e2e pins that.
//
// Membership is elastic: Join and Leave change the expected node set at
// epoch boundaries, never mid-barrier — once the barrier epoch has
// started accumulating tallies its completeness criterion is fixed, and
// a change lands at the next boundary instead. The schedule of pending
// changes is part of the merger's exportable state (Membership /
// SetMembership) so a root restart or a standby promotion resumes with
// the same barrier expectations.
//
// All methods are safe for concurrent use.
type SealedMerger struct {
	mgr *EpochManager

	mu       sync.Mutex
	expected []string              // sorted unique member ids for the barrier epoch
	sched    []MemberChange        // future membership changes, epoch ascending
	next     int                   // next epoch index to seal (the barrier)
	pending  map[int]*pendingEpoch // future/current epochs accumulating tallies
	merged   []MergedEpoch         // accounting for sealed epochs, oldest first
	dupes    int64                 // deduped submissions ever
}

// pendingEpoch accumulates one epoch's tallies ahead of its barrier.
// Arriving tallies fold straight into acc (merge-on-arrival): nothing
// of a tally is retained beyond its contribution to the accumulated
// counts and its (node, report-total) accounting entry, so accepting a
// tally allocates nothing after the epoch's first and sealing is a
// hand-off, not a re-merge.
type pendingEpoch struct {
	acc   *ldp.Tally
	nodes map[string]int64 // node id → that tally's report total
}

// MemberChange is one scheduled membership change: from epoch Epoch on,
// Node is (Join) or is no longer (not Join) an expected member of the
// epoch barrier.
type MemberChange struct {
	// Epoch is the first epoch the change applies to.
	Epoch int
	// Node is the frontend node id.
	Node string
	// Join is true for a join, false for a leave.
	Join bool
}

// MergedEpoch is the partial-epoch accounting for one sealed epoch:
// which expected nodes made it into the merge before the barrier
// closed, and which were still missing (straggler timeout or forced
// seal). A complete epoch has an empty Missing.
type MergedEpoch struct {
	// Epoch is the shared clock index.
	Epoch int
	// Nodes are the frontends whose tallies merged, sorted. A departing
	// node's final epoch may list it here even though the membership
	// change already removed it from the expected set.
	Nodes []string
	// Missing are the expected frontends absent at seal time, sorted.
	Missing []string
	// NodeTotals maps each merged node to the report total its tally
	// carried — the per-child accounting that survives merge-on-arrival
	// (the counts themselves fold away immediately).
	NodeTotals map[string]int64
	// Total is the merged report count.
	Total int64
	// Duplicates counts deduped submissions observed for this epoch,
	// including late re-sends arriving after the seal.
	Duplicates int
}

// clone deep-copies the accounting so published values cannot alias the
// merger's retained state (the detect tracker-slice lesson: accessors
// publish copies, never internal slices).
func (m MergedEpoch) clone() MergedEpoch {
	m.Nodes = slices.Clone(m.Nodes)
	m.Missing = slices.Clone(m.Missing)
	m.NodeTotals = maps.Clone(m.NodeTotals)
	return m
}

// SubmitResult describes what MergeSealed did with a tally.
type SubmitResult struct {
	// Duplicate is set when the tally was already merged — the same
	// (node, epoch) seen before the barrier, or the epoch already sealed
	// — and the submission changed nothing.
	Duplicate bool
	// Ready is set when the next-to-seal epoch now holds every expected
	// node's tally: the barrier is complete and TrySeal will seal it.
	Ready bool
	// SealedThrough is the number of epochs sealed so far; frontends
	// prune their unacked tallies against this watermark.
	SealedThrough int
}

// maxEpochLead bounds how far past the barrier a pending tally may
// reach, so a misconfigured or hostile frontend cannot grow the pending
// map without bound. A healthy cluster's frontends sit at most one
// epoch ahead of the root; crash-restart re-sends reach back, not
// forward.
const maxEpochLead = 1 << 10

// NewSealedMerger wraps mgr with an epoch barrier over the expected
// frontend nodes. The barrier resumes at the manager's sealed-epoch
// count, so a root restored from a snapshot continues where it left
// off.
func NewSealedMerger(mgr *EpochManager, nodes []string) (*SealedMerger, error) {
	if mgr == nil {
		return nil, fmt.Errorf("stream: merger without an epoch manager")
	}
	expected, err := normalizeMembers(nodes)
	if err != nil {
		return nil, err
	}
	return &SealedMerger{
		mgr:      mgr,
		expected: expected,
		next:     mgr.Stats().Epochs,
		pending:  make(map[int]*pendingEpoch),
	}, nil
}

// normalizeMembers sorts, validates, and copies a member set.
func normalizeMembers(nodes []string) ([]string, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("stream: merger without expected nodes")
	}
	expected := slices.Clone(nodes)
	sort.Strings(expected)
	for i, n := range expected {
		if n == "" {
			return nil, fmt.Errorf("stream: empty node id in merger config")
		}
		if i > 0 && expected[i-1] == n {
			return nil, fmt.Errorf("stream: duplicate node id %q in merger config", n)
		}
	}
	return expected, nil
}

// Manager returns the epoch manager the merger seals into.
func (sm *SealedMerger) Manager() *EpochManager { return sm.mgr }

// Nodes returns the expected member ids for the current barrier epoch,
// sorted. The slice is the caller's.
func (sm *SealedMerger) Nodes() []string {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return slices.Clone(sm.expected)
}

// Membership exports the current member set and the schedule of pending
// changes — the state a root restart or standby promotion needs to
// resume the barrier with the same expectations. Both slices are
// copies.
func (sm *SealedMerger) Membership() (members []string, sched []MemberChange) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return slices.Clone(sm.expected), slices.Clone(sm.sched)
}

// SetMembership replaces the member set and pending-change schedule,
// the restore half of Membership. It may only be called while no
// tallies are pending: membership restore is a boot/promotion-time
// operation, not a mid-barrier rewrite. Scheduled changes already due
// at the barrier are applied immediately.
func (sm *SealedMerger) SetMembership(members []string, sched []MemberChange) error {
	expected, err := normalizeMembers(members)
	if err != nil {
		return err
	}
	for _, ev := range sched {
		if ev.Node == "" {
			return fmt.Errorf("stream: scheduled membership change without a node id")
		}
		if ev.Epoch < 0 {
			return fmt.Errorf("stream: scheduled membership change at negative epoch %d", ev.Epoch)
		}
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.pending) != 0 {
		return fmt.Errorf("stream: restoring membership with %d epochs of tallies pending", len(sm.pending))
	}
	sm.expected = expected
	sm.sched = slices.Clone(sched)
	sort.SliceStable(sm.sched, func(i, j int) bool { return sm.sched[i].Epoch < sm.sched[j].Epoch })
	sm.applyScheduleLocked()
	if len(sm.expected) == 0 {
		return fmt.Errorf("stream: restored membership is empty at the barrier epoch %d", sm.next)
	}
	return nil
}

// memberAtLocked reports whether node is an expected member for epoch:
// the current set, with every scheduled change through that epoch
// applied. Callers hold sm.mu.
func (sm *SealedMerger) memberAtLocked(node string, epoch int) bool {
	_, member := slices.BinarySearch(sm.expected, node)
	for _, ev := range sm.sched {
		if ev.Epoch > epoch {
			break
		}
		if ev.Node == node {
			member = ev.Join
		}
	}
	return member
}

// memberFinallyLocked reports whether node is a member once the whole
// schedule has applied. Callers hold sm.mu.
func (sm *SealedMerger) memberFinallyLocked(node string) bool {
	_, member := slices.BinarySearch(sm.expected, node)
	for _, ev := range sm.sched {
		if ev.Node == node {
			member = ev.Join
		}
	}
	return member
}

// finalMemberCountLocked counts the membership once the whole schedule
// has applied. Callers hold sm.mu.
func (sm *SealedMerger) finalMemberCountLocked() int {
	final := make(map[string]bool, len(sm.expected))
	for _, n := range sm.expected {
		final[n] = true
	}
	for _, ev := range sm.sched {
		if ev.Join {
			final[ev.Node] = true
		} else {
			delete(final, ev.Node)
		}
	}
	return len(final)
}

// scheduleLocked inserts a membership change keeping the schedule
// epoch-ascending (stable within an epoch: later decisions win).
// Callers hold sm.mu.
func (sm *SealedMerger) scheduleLocked(ev MemberChange) {
	i := sort.Search(len(sm.sched), func(i int) bool { return sm.sched[i].Epoch > ev.Epoch })
	sm.sched = slices.Insert(sm.sched, i, ev)
}

// applyScheduleLocked folds every scheduled change due at the barrier
// into the expected set. Callers hold sm.mu.
func (sm *SealedMerger) applyScheduleLocked() {
	for len(sm.sched) > 0 && sm.sched[0].Epoch <= sm.next {
		ev := sm.sched[0]
		sm.sched = sm.sched[1:]
		i, ok := slices.BinarySearch(sm.expected, ev.Node)
		switch {
		case ev.Join && !ok:
			sm.expected = slices.Insert(sm.expected, i, ev.Node)
		case !ev.Join && ok:
			sm.expected = slices.Delete(sm.expected, i, i+1)
		}
	}
}

// Join admits a node into the cluster, effective at an epoch boundary:
// the current barrier epoch if its barrier has not started filling, the
// next one otherwise — never mid-barrier. It returns the first epoch
// the node is expected to contribute; the joining frontend fast-forwards
// its epoch clock there. Re-announcing an existing or already-scheduled
// member is idempotent and returns the standing effective epoch.
func (sm *SealedMerger) Join(node string) (int, error) {
	if node == "" {
		return 0, fmt.Errorf("stream: join without a node id")
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.memberFinallyLocked(node) {
		// Already in (or scheduled in): report when that takes effect.
		effective := sm.next
		for _, ev := range sm.sched {
			if ev.Node == node && ev.Join && ev.Epoch > effective {
				effective = ev.Epoch
			}
		}
		return effective, nil
	}
	effective := sm.next
	if pe := sm.pending[sm.next]; pe != nil && len(pe.nodes) > 0 {
		// The barrier epoch is already filling; its completeness
		// criterion is fixed. The join lands at the next boundary.
		effective = sm.next + 1
	}
	if effective == sm.next {
		i, ok := slices.BinarySearch(sm.expected, node)
		if !ok {
			sm.expected = slices.Insert(sm.expected, i, node)
		}
	} else {
		sm.scheduleLocked(MemberChange{Epoch: effective, Node: node, Join: true})
	}
	return effective, nil
}

// Leave retires a node from the cluster: from the effective epoch on,
// the barrier no longer waits for it. from is the first epoch the node
// will not contribute (its last sealed epoch + 1); the merger clamps it
// forward past the barrier and past any epoch the node has already
// delivered a pending tally for, so a departing node's final partial
// epoch still seals with its data and the ordinary merged/missing
// accounting. ready reports whether the removal completed the current
// barrier (the departing node was the last straggler) — the caller
// should then drive TrySeal. Removing the last member is refused, and
// a leave for a node that was never a member is an error; repeating a
// leave is idempotent.
func (sm *SealedMerger) Leave(node string, from int) (effective int, ready bool, err error) {
	if node == "" {
		return 0, false, fmt.Errorf("stream: leave without a node id")
	}
	if from < 0 {
		return 0, false, fmt.Errorf("stream: leave effective at negative epoch %d", from)
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if !sm.memberFinallyLocked(node) {
		_, current := slices.BinarySearch(sm.expected, node)
		if !current {
			// Never a member (or already fully left): idempotent when a
			// leave is on record, an error for a stranger.
			for _, ev := range sm.sched {
				if ev.Node == node && !ev.Join {
					return ev.Epoch, false, nil
				}
			}
			return 0, false, fmt.Errorf("stream: leave from %q, which is not a cluster member", node)
		}
	}
	effective = max(from, sm.next)
	// Never retire epochs the node has already contributed to: a tally
	// sitting at (or past) the barrier merges under the old membership.
	for e, pe := range sm.pending {
		if _, has := pe.nodes[node]; has && e >= effective {
			effective = e + 1
		}
	}
	if sm.finalMemberCountLocked() <= 1 {
		return 0, false, fmt.Errorf("stream: cannot remove %q, the last cluster member", node)
	}
	// A pending join at or after the effective epoch is void now.
	sm.sched = slices.DeleteFunc(sm.sched, func(ev MemberChange) bool {
		return ev.Node == node && ev.Epoch >= effective
	})
	if effective == sm.next {
		i, ok := slices.BinarySearch(sm.expected, node)
		if ok {
			sm.expected = slices.Delete(sm.expected, i, i+1)
		}
		return effective, sm.barrierCompleteLocked(), nil
	}
	sm.scheduleLocked(MemberChange{Epoch: effective, Node: node, Join: false})
	return effective, false, nil
}

// MergeSealed is the root's ingest path: it folds one frontend's sealed
// tally into the pending epoch it belongs to. Duplicates — by (node,
// epoch), or for an epoch already sealed — are no-ops reported in the
// result, never errors, because at-least-once delivery makes them part
// of normal operation (including a former member's re-sends for epochs
// that sealed before it left). Tallies from nodes that are not members
// for the tally's epoch, domain mismatches, and epochs absurdly far
// past the barrier are errors.
func (sm *SealedMerger) MergeSealed(t *ldp.Tally) (SubmitResult, error) {
	if t == nil {
		return SubmitResult{}, fmt.Errorf("stream: merging a nil tally")
	}
	if err := t.Validate(); err != nil {
		return SubmitResult{}, err
	}
	if d := sm.mgr.Domain(); len(t.Counts) != d {
		return SubmitResult{}, fmt.Errorf("stream: tally from %q has domain %d, root serves %d",
			t.NodeID, len(t.Counts), d)
	}

	sm.mu.Lock()
	defer sm.mu.Unlock()
	res := SubmitResult{SealedThrough: sm.next}
	if t.Epoch < sm.next {
		// The epoch sealed without (or with) this tally; either way the
		// barrier has moved on and the re-send changes nothing. This
		// holds for former members too — their retained-ring re-sends
		// must stay harmless after they leave.
		sm.noteDuplicateLocked(t.Epoch)
		res.Duplicate = true
		return res, nil
	}
	if t.Epoch > sm.next && sm.next == 0 && len(sm.pending) == 0 && sm.mgr.Stats().Epochs == 0 {
		// A virgin root facing a cluster whose clock is already running —
		// an in-memory root restarted, or a root whose state was lost —
		// adopts the frontends' epoch base instead of forcing its way
		// through (or, past maxEpochLead, rejecting) every skipped epoch.
		// Frontends push oldest-first, so the first arrival is the
		// earliest tally still deliverable; anything older another node
		// re-sends is stale either way, because the state that could
		// have merged it is gone.
		sm.next = t.Epoch
		res.SealedThrough = sm.next
	}
	if t.Epoch >= sm.next+maxEpochLead {
		return res, fmt.Errorf("stream: tally from %q for epoch %d is %d epochs past the merge barrier %d",
			t.NodeID, t.Epoch, t.Epoch-sm.next, sm.next)
	}
	if !sm.memberAtLocked(t.NodeID, t.Epoch) {
		return res, fmt.Errorf("stream: tally from %q, which is not a cluster member at epoch %d",
			t.NodeID, t.Epoch)
	}
	pe := sm.pending[t.Epoch]
	if pe == nil {
		pe = &pendingEpoch{
			acc:   &ldp.Tally{Epoch: t.Epoch, Counts: make([]int64, len(t.Counts))},
			nodes: make(map[string]int64, len(sm.expected)+1),
		}
		sm.pending[t.Epoch] = pe
	}
	if _, seen := pe.nodes[t.NodeID]; seen {
		sm.dupes++
		res.Duplicate = true
		return res, nil
	}
	// Merge-on-arrival: fold the tally into the epoch's accumulator now
	// (chunk-parallel above the domain threshold) and keep only its
	// accounting entry — the seal becomes a hand-off instead of a
	// re-merge, and nothing else of the tally is retained.
	if err := t.MergeParallel(pe.acc); err != nil {
		return res, err
	}
	pe.nodes[t.NodeID] = t.Total
	res.Ready = sm.barrierCompleteLocked()
	return res, nil
}

// noteDuplicateLocked counts a dedupe, attributing it to the sealed
// epoch's accounting when that epoch is still retained.
func (sm *SealedMerger) noteDuplicateLocked(epoch int) {
	sm.dupes++
	for i := range sm.merged {
		if sm.merged[i].Epoch == epoch {
			sm.merged[i].Duplicates++
			return
		}
	}
}

// barrierCompleteLocked reports whether the next-to-seal epoch holds a
// tally from every expected member. Tallies from departing nodes whose
// removal already applied are extra, not blocking.
func (sm *SealedMerger) barrierCompleteLocked() bool {
	pe := sm.pending[sm.next]
	if pe == nil {
		return false
	}
	for _, n := range sm.expected {
		if _, has := pe.nodes[n]; !has {
			return false
		}
	}
	return true
}

// TrySeal seals the next epoch into the manager iff its barrier is
// complete, returning the new window estimate and the epoch's merge
// accounting; (nil, nil, nil) means the barrier is still open. Callers
// loop — sealing epoch e may reveal that e+1's barrier was already
// complete.
func (sm *SealedMerger) TrySeal() (*WindowEstimate, *MergedEpoch, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if !sm.barrierCompleteLocked() {
		return nil, nil, nil
	}
	return sm.sealNextLocked()
}

// SealPartial force-closes the next epoch's barrier with whatever
// tallies have arrived — the straggler-timeout policy, and the root's
// answer to an explicit seal request. Sealing with no tallies at all is
// legal and produces an empty epoch, exactly as a quiet single-node
// epoch would. The accounting records which nodes were merged and which
// were missing.
func (sm *SealedMerger) SealPartial() (*WindowEstimate, *MergedEpoch, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.sealNextLocked()
}

// sealNextLocked folds the pending epoch at the barrier into the
// manager and seals it, then advances the barrier and applies any
// membership change scheduled for the new epoch. Callers hold sm.mu.
// The returned accounting is a copy that cannot alias later mutation of
// the retained state.
func (sm *SealedMerger) sealNextLocked() (*WindowEstimate, *MergedEpoch, error) {
	info := MergedEpoch{Epoch: sm.next}
	var est *WindowEstimate
	var err error
	if pe := sm.pending[sm.next]; pe != nil {
		info.Total = pe.acc.Total
		info.NodeTotals = make(map[string]int64, len(pe.nodes))
		for n, ut := range pe.nodes {
			info.Nodes = append(info.Nodes, n)
			info.NodeTotals[n] = ut
		}
		sort.Strings(info.Nodes)
		delete(sm.pending, sm.next)
		// The tallies already merged on arrival; hand the finished
		// vector to the manager in O(1) instead of re-folding it
		// through the live accumulator.
		est, err = sm.mgr.SealCounts(pe.acc.Counts, pe.acc.Total)
	} else {
		est, err = sm.mgr.Seal()
	}
	if err != nil {
		return nil, nil, err
	}
	for _, n := range sm.expected {
		if !slices.Contains(info.Nodes, n) {
			info.Missing = append(info.Missing, n)
		}
	}
	sm.next++
	sm.applyScheduleLocked()
	sm.merged = append(sm.merged, info.clone())
	if keep := sm.mgr.Config().History; len(sm.merged) > keep {
		sm.merged = sm.merged[len(sm.merged)-keep:]
	}
	return est, &info, nil
}

// BarrierPending reports whether any tallies are waiting at or past
// the barrier — what a root consults to decide whether a straggler
// timer should be armed.
func (sm *SealedMerger) BarrierPending() bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return len(sm.pending) > 0
}

// SealedThrough returns how many epochs have sealed — the watermark
// frontends prune their unacked tallies against.
func (sm *SealedMerger) SealedThrough() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.next
}

// PendingNodes returns which expected nodes have (true) and have not
// (false) delivered their tally for the epoch at the barrier. The map
// is the caller's.
func (sm *SealedMerger) PendingNodes() map[string]bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make(map[string]bool, len(sm.expected))
	pe := sm.pending[sm.next]
	for _, n := range sm.expected {
		var has bool
		if pe != nil {
			_, has = pe.nodes[n]
		}
		out[n] = has
	}
	return out
}

// Merged returns the retained per-epoch merge accounting, oldest first.
// Every entry is a copy that cannot alias later mutation.
func (sm *SealedMerger) Merged() []MergedEpoch {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]MergedEpoch, len(sm.merged))
	for i, m := range sm.merged {
		out[i] = m.clone()
	}
	return out
}

// Duplicates returns how many submissions have ever been deduped.
func (sm *SealedMerger) Duplicates() int64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.dupes
}
