package stream

import (
	"errors"
	"fmt"

	"ldprecover/internal/ldp"
)

// ErrStalePartial rejects a partial tally whose epoch hint predates the
// manager's sealed watermark: the epoch the collector aggregated for is
// already sealed, so folding the partial into the open epoch would
// shift user mass across an epoch boundary the collector did not
// intend. Serve maps it to 409, mirroring the sealed-tally dedupe
// taxonomy (a stale *tally* is a duplicate no-op because tallies are
// idempotent by (node, epoch); a stale *partial* is not idempotent, so
// it must be rejected loudly and the collector re-aggregates for the
// current epoch).
var ErrStalePartial = errors.New("stream: partial tally epoch hint behind sealed watermark")

// AddPartial folds an edge-aggregated partial tally into the open
// epoch. The epoch hint is advisory, clamped by the server's clock: a
// hint at or ahead of the sealed watermark folds into the currently
// open epoch (the collector cannot know exactly when the server seals;
// counts are additive so the fold is exact wherever it lands), while a
// hint behind the watermark fails with ErrStalePartial and folds
// nothing. The staleness check and the fold are atomic with respect to
// Seal, so a partial never lands in an epoch sealed before its check.
func (m *EpochManager) AddPartial(p *ldp.PartialTally) error {
	if p == nil {
		return errors.New("stream: nil partial tally")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.EpochHint < m.seq {
		return fmt.Errorf("%w: hint %d, watermark %d", ErrStalePartial, p.EpochHint, m.seq)
	}
	// Folding under m.mu (Seal's lock) pins the epoch the check decided
	// on; the shard-lock nesting matches Seal's own m.mu → shard order.
	return m.live.AddCounts(p.Counts, p.Users)
}
