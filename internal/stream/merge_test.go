package stream

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// mergeTestParams returns OUE-shaped aggregation parameters for tests.
func mergeTestParams(d int) ldp.Params {
	return ldp.Params{Epsilon: 0.7, P: 0.5, Q: 1.0 / (1.0 + 2.0), Domain: d}
}

// nodeTally builds node's deterministic tally for one epoch; spike adds
// extra mass on a fixed target set (a poisoning epoch).
func nodeTally(node string, epoch, d int, seed uint64, spike int64) *ldp.Tally {
	r := rng.New(seed ^ uint64(epoch)*0x9e3779b97f4a7c15)
	t := &ldp.Tally{NodeID: node, Epoch: epoch, Counts: make([]int64, d)}
	for v := range t.Counts {
		t.Counts[v] = int64(r.Uint64() % 500)
	}
	t.Counts[3] += spike
	t.Counts[11] += spike
	// A tally's total is the reports behind it, not the support sum; for
	// unary-style protocols supports exceed reports. Any consistent
	// choice works for the equivalence property.
	t.Total = 1000 + int64(r.Uint64()%100) + spike/2
	return t
}

func mergerConfig(d int) Config {
	return Config{
		Params:      mergeTestParams(d),
		Window:      2,
		History:     8,
		TargetK:     2,
		MinZ:        2,
		StableAfter: 2,
		MinHistory:  2,
	}
}

// TestSealedMergerBitIdenticalToSingleNode is the stream-level half of
// the cluster guarantee: a merger fed per-node tallies of a partitioned
// population produces, epoch for epoch, exactly the estimates of a
// single manager fed the union — including the recovered history, the
// target-tracker hysteresis, and the LDPRecover* upgrade it drives.
func TestSealedMergerBitIdenticalToSingleNode(t *testing.T) {
	const d, epochs = 32, 10
	nodes := []string{"fe-0", "fe-1", "fe-2"}

	single, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	rootMgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(rootMgr, nodes)
	if err != nil {
		t.Fatal(err)
	}

	for e := 0; e < epochs; e++ {
		var spike int64
		if e >= 5 {
			spike = 4000 // sustained targeted attack from epoch 5 on
		}
		union := &ldp.Tally{NodeID: "union", Epoch: e, Counts: make([]int64, d)}
		for i, n := range nodes {
			tally := nodeTally(n, e, d, uint64(i+1)*7919, spike)
			if err := union.Merge(tally); err != nil {
				t.Fatal(err)
			}
			res, err := merger.MergeSealed(tally)
			if err != nil {
				t.Fatal(err)
			}
			if res.Duplicate {
				t.Fatalf("epoch %d node %s flagged duplicate", e, n)
			}
			if ready := i == len(nodes)-1; res.Ready != ready {
				t.Fatalf("epoch %d after node %s: ready=%v want %v", e, n, res.Ready, ready)
			}
		}
		if err := single.AddCounts(union.Counts, union.Total); err != nil {
			t.Fatal(err)
		}
		want, err := single.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got, info, err := merger.TrySeal()
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("epoch %d: barrier complete but TrySeal returned nothing", e)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d: merged estimate diverged from single node\ngot  %+v\nwant %+v", e, got, want)
		}
		if len(info.Missing) != 0 || len(info.Nodes) != len(nodes) || info.Epoch != e {
			t.Fatalf("epoch %d accounting: %+v", e, info)
		}
	}
	// The attack must have engaged LDPRecover* on both sides (otherwise
	// the equivalence above never exercised the hysteresis path).
	if latest := single.Latest(); !latest.PartialKnowledge {
		t.Fatal("scenario never engaged LDPRecover*; equivalence check is vacuous")
	}
	if st := merger.SealedThrough(); st != epochs {
		t.Fatalf("sealed through %d epochs, want %d", st, epochs)
	}
}

// TestSealedMergerStragglerAccounting: a seal forced past a straggler
// reports exactly which nodes merged and which were missing, and the
// straggler's late tally for the sealed epoch dedupes to a no-op.
func TestSealedMergerStragglerAccounting(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"fe-0", "fe-1", "fe-2"})
	if err != nil {
		t.Fatal(err)
	}
	t0 := nodeTally("fe-0", 0, d, 1, 0)
	t2 := nodeTally("fe-2", 0, d, 3, 0)
	for _, tally := range []*ldp.Tally{t0, t2} {
		if res, err := merger.MergeSealed(tally); err != nil || res.Duplicate || res.Ready {
			t.Fatalf("submit %s: res=%+v err=%v", tally.NodeID, res, err)
		}
	}
	if est, info, err := merger.TrySeal(); est != nil || info != nil || err != nil {
		t.Fatalf("TrySeal with an open barrier: est=%v info=%v err=%v", est, info, err)
	}
	// fe-1 timed out: force the seal.
	est, info, err := merger.SealPartial()
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != t0.Total+t2.Total {
		t.Fatalf("partial seal total %d, want %d", est.Total, t0.Total+t2.Total)
	}
	if !reflect.DeepEqual(info.Nodes, []string{"fe-0", "fe-2"}) {
		t.Fatalf("merged nodes %v", info.Nodes)
	}
	if !reflect.DeepEqual(info.Missing, []string{"fe-1"}) {
		t.Fatalf("missing nodes %v", info.Missing)
	}
	// The straggler arrives late: deduped, nothing changes.
	late := nodeTally("fe-1", 0, d, 2, 0)
	res, err := merger.MergeSealed(late)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.SealedThrough != 1 {
		t.Fatalf("late tally: %+v", res)
	}
	if got := mgr.Stats().IngestedTotal; got != t0.Total+t2.Total {
		t.Fatalf("late tally changed the merged state: total %d", got)
	}
	merged := merger.Merged()
	if len(merged) != 1 || merged[0].Duplicates != 1 {
		t.Fatalf("accounting after late tally: %+v", merged)
	}
	// An empty forced seal (no tallies at all) is a legal quiet epoch.
	est, info, err = merger.SealPartial()
	if err != nil {
		t.Fatal(err)
	}
	if est.Total != t0.Total+t2.Total { // window of 2 still holds epoch 0
		t.Fatalf("empty seal window total %d", est.Total)
	}
	if len(info.Nodes) != 0 || len(info.Missing) != 3 {
		t.Fatalf("empty seal accounting: %+v", info)
	}
}

// TestSealedMergerOutOfOrderEpochs: on a root with established state,
// tallies for future epochs wait at the barrier; sealing cascades once
// the gap fills. (A *virgin* root instead adopts the first tally's
// epoch as its barrier base — TestSealedMergerAdoptsRunningClock.)
func TestSealedMergerOutOfOrderEpochs(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the clock: epoch 0 merges and seals normally.
	for _, tally := range []*ldp.Tally{nodeTally("a", 0, d, 8, 0), nodeTally("b", 0, d, 9, 0)} {
		if _, err := merger.MergeSealed(tally); err != nil {
			t.Fatal(err)
		}
	}
	if est, _, err := merger.TrySeal(); err != nil || est == nil {
		t.Fatalf("sealing epoch 0: est=%v err=%v", est, err)
	}
	// Both nodes' epoch-2 tallies arrive before epoch 1 is complete.
	for _, tally := range []*ldp.Tally{
		nodeTally("a", 2, d, 10, 0), nodeTally("b", 2, d, 11, 0), nodeTally("a", 1, d, 12, 0),
	} {
		res, err := merger.MergeSealed(tally)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ready {
			t.Fatalf("barrier for epoch 1 reported ready after %s/%d", tally.NodeID, tally.Epoch)
		}
	}
	res, err := merger.MergeSealed(nodeTally("b", 1, d, 13, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ready {
		t.Fatal("epoch 1 barrier did not complete")
	}
	for want := 1; want < 3; want++ {
		est, info, err := merger.TrySeal()
		if err != nil {
			t.Fatal(err)
		}
		if est == nil || info.Epoch != want || len(info.Missing) != 0 {
			t.Fatalf("cascade seal %d: est=%v info=%+v", want, est, info)
		}
	}
	if est, info, err := merger.TrySeal(); est != nil || info != nil || err != nil {
		t.Fatalf("seal past the cascade: %v %v %v", est, info, err)
	}
	// A tally absurdly far ahead is rejected, naming the barrier.
	if _, err := merger.MergeSealed(nodeTally("a", 3+maxEpochLead, d, 14, 0)); err == nil {
		t.Fatal("far-future tally accepted")
	}
}

// TestSealedMergerRejects covers the error paths: unknown node, domain
// mismatch, nil and invalid tallies, bad configs.
func TestSealedMergerRejects(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merger.MergeSealed(nodeTally("rogue", 0, d, 1, 0)); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := merger.MergeSealed(nodeTally("a", 0, d+1, 1, 0)); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if _, err := merger.MergeSealed(nil); err == nil {
		t.Fatal("nil tally accepted")
	}
	bad := nodeTally("a", 0, d, 1, 0)
	bad.Counts[0] = -1
	if _, err := merger.MergeSealed(bad); err == nil {
		t.Fatal("negative counts accepted")
	}
	if _, err := NewSealedMerger(mgr, nil); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewSealedMerger(mgr, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate node ids accepted")
	}
	if _, err := NewSealedMerger(mgr, []string{""}); err == nil {
		t.Fatal("empty node id accepted")
	}
	if _, err := NewSealedMerger(nil, []string{"a"}); err == nil {
		t.Fatal("nil manager accepted")
	}
}

// TestSealedMergerDuplicateIdempotenceRace hammers the merger with the
// same tallies from many goroutines: exactly one submission per (node,
// epoch) may merge, everything else must dedupe, and the merged state
// must equal a clean single submission — run under -race in CI.
func TestSealedMergerDuplicateIdempotenceRace(t *testing.T) {
	const d, workers, resends = 16, 8, 10
	nodes := []string{"fe-0", "fe-1", "fe-2"}
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, nodes)
	if err != nil {
		t.Fatal(err)
	}
	tallies := make([]*ldp.Tally, len(nodes))
	var wantTotal int64
	for i, n := range nodes {
		tallies[i] = nodeTally(n, 0, d, uint64(i+1), 0)
		wantTotal += tallies[i].Total
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	mergedCount := make(map[string]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < resends; r++ {
				for _, tally := range tallies {
					res, err := merger.MergeSealed(tally.Clone())
					if err != nil {
						t.Error(err)
						return
					}
					if !res.Duplicate {
						mu.Lock()
						mergedCount[tally.NodeID]++
						mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	for n, c := range mergedCount {
		if c != 1 {
			t.Fatalf("node %s merged %d times", n, c)
		}
	}
	est, info, err := merger.TrySeal()
	if err != nil {
		t.Fatal(err)
	}
	if est == nil || est.Total != wantTotal {
		t.Fatalf("merged total %+v, want %d", est, wantTotal)
	}
	if len(info.Missing) != 0 {
		t.Fatalf("missing nodes after full dedupe: %v", info.Missing)
	}
	if dupes := merger.Duplicates(); dupes != int64(workers*resends*len(nodes)-len(nodes)) {
		t.Fatalf("dedupe count %d, want %d", dupes, workers*resends*len(nodes)-len(nodes))
	}
}

// BenchmarkRootMerge measures one merged epoch at the root — submitting
// every frontend's tally and sealing through the barrier. The cost is
// independent of how many users reported (tallies are fixed-size count
// vectors) and scales only with d × nodes, which is what makes the
// two-tier design absorb arbitrarily large populations.
func BenchmarkRootMerge(b *testing.B) {
	for _, d := range []int{128, 4096} {
		for _, nNodes := range []int{3, 9} {
			b.Run(fmt.Sprintf("d=%d/nodes=%d", d, nNodes), func(b *testing.B) {
				nodes := make([]string, nNodes)
				for i := range nodes {
					nodes[i] = fmt.Sprintf("fe-%d", i)
				}
				mgr, err := NewEpochManager(Config{
					Params: mergeTestParams(d), Window: 1, History: 4, TargetK: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				merger, err := NewSealedMerger(mgr, nodes)
				if err != nil {
					b.Fatal(err)
				}
				proto := make([]*ldp.Tally, nNodes)
				for i, n := range nodes {
					// A billion-user tally costs the same as a thousand-user
					// one: the wire and merge units are counts, not reports.
					proto[i] = nodeTally(n, 0, d, uint64(i+1), 0)
					proto[i].Total += 1 << 30
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, p := range proto {
						tally := &ldp.Tally{NodeID: p.NodeID, Epoch: i, Counts: p.Counts, Total: p.Total}
						if _, err := merger.MergeSealed(tally); err != nil {
							b.Fatal(err)
						}
					}
					if est, _, err := merger.TrySeal(); err != nil || est == nil {
						b.Fatalf("seal %d: est=%v err=%v", i, est, err)
					}
				}
			})
		}
	}
}

// TestSealedMergerAdoptsRunningClock: a virgin root (state lost, or
// in-memory restart) joining a cluster whose epoch clock is already
// running adopts the first tally's epoch as its barrier base instead of
// grinding or rejecting its way through every skipped epoch — and a
// non-virgin root still rejects absurd epoch leads.
func TestSealedMergerAdoptsRunningClock(t *testing.T) {
	const d = 16
	mgr, err := NewEpochManager(mergerConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	merger, err := NewSealedMerger(mgr, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// The cluster has been sealing for a long time; a's oldest retained
	// tally is epoch 5000 (past maxEpochLead from base 0).
	res, err := merger.MergeSealed(nodeTally("a", 5000, d, 1, 0))
	if err != nil {
		t.Fatalf("virgin root rejected the running clock: %v", err)
	}
	if res.Duplicate || res.SealedThrough != 5000 {
		t.Fatalf("adoption result: %+v", res)
	}
	if res, err = merger.MergeSealed(nodeTally("b", 5000, d, 2, 0)); err != nil || !res.Ready {
		t.Fatalf("barrier after adoption: res=%+v err=%v", res, err)
	}
	est, info, err := merger.TrySeal()
	if err != nil || est == nil || info.Epoch != 5000 || len(info.Missing) != 0 {
		t.Fatalf("seal at adopted base: est=%v info=%+v err=%v", est, info, err)
	}
	// An older tally from b that the lost state could have merged is
	// stale now — deduped, not an error.
	if res, err = merger.MergeSealed(nodeTally("b", 4999, d, 3, 0)); err != nil || !res.Duplicate {
		t.Fatalf("pre-adoption tally: res=%+v err=%v", res, err)
	}
	// The barrier has state now: a fresh absurd lead is still an error.
	if _, err := merger.MergeSealed(nodeTally("a", 5001+maxEpochLead, d, 4, 0)); err == nil {
		t.Fatal("non-virgin root accepted an absurd epoch lead")
	}
}
