package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ldprecover/internal/stream"
)

// SnapshotStore is the root merger's durability: per-seal snapshots of
// the merged EpochManager state, with no write-ahead log. A root does
// not need one — its inputs are frontends' sealed tallies, delivered
// at-least-once and retried until the root's *persisted* sealed
// watermark passes them, so a root crash loses only the pending
// (unsealed) epoch's tallies, which the frontends re-send on their next
// push cycle. What must survive is the cross-epoch merged view (sealed
// ring, recovered history, target-tracker hysteresis), and that is
// exactly what the snapshot carries.
//
// The report-level WAL is a different contract: its records are report
// batch frames replayed through AddBatch. A directory holding one
// belongs to a frontend or single-node server; opening it as a root
// store is refused, because replaying report frames into a
// tally-merging root (or logging tally frames into a report WAL) would
// silently corrupt the merged state.
type SnapshotStore struct {
	mgr  *stream.EpochManager
	dir  string
	keep int

	mu       sync.Mutex
	closed   bool
	restored RestoreInfo
}

// OpenSnapshotStore makes a root's merged state durable under dir: it
// restores the newest valid snapshot into the freshly constructed
// manager and prepares per-seal snapshot writes. keep <= 0 selects
// DefaultKeepSnapshots. dir must not hold a report-level WAL.
func OpenSnapshotStore(dir string, mgr *stream.EpochManager, keep int) (*SnapshotStore, error) {
	s, err := newSnapshotStore(dir, mgr, keep)
	if err != nil {
		return nil, err
	}
	_, state, found, err := LoadLatestSnapshot(filepath.Join(dir, "snap"))
	if err != nil {
		return nil, err
	}
	if found {
		if err := mgr.RestoreState(state); err != nil {
			return nil, fmt.Errorf("persist: restoring root snapshot: %w", err)
		}
		s.restored.SnapshotSeq = state.Seq
	}
	return s, nil
}

// AttachSnapshotStore prepares per-seal snapshot writes for a manager
// whose state is already live — a promoted standby's warm manager,
// restored by the tailer from the very snapshots this store will keep
// writing. Unlike OpenSnapshotStore it restores nothing; the
// report-WAL refusal still applies.
func AttachSnapshotStore(dir string, mgr *stream.EpochManager, keep int) (*SnapshotStore, error) {
	return newSnapshotStore(dir, mgr, keep)
}

// newSnapshotStore validates the directory (no report WAL), creates the
// snapshot subdirectory, and builds the store without restoring.
func newSnapshotStore(dir string, mgr *stream.EpochManager, keep int) (*SnapshotStore, error) {
	if mgr == nil {
		return nil, errors.New("persist: nil epoch manager")
	}
	if keep <= 0 {
		keep = DefaultKeepSnapshots
	}
	walDir := filepath.Join(dir, "wal")
	if segs, err := listSegments(walDir); err == nil && len(segs) > 0 {
		return nil, fmt.Errorf("persist: %s holds a report-level WAL (%d segments); "+
			"a root merges sealed tallies and cannot replay report batch frames — "+
			"point the root at a fresh directory or run this one as a frontend", dir, len(segs))
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "snap"), 0o755); err != nil {
		return nil, err
	}
	return &SnapshotStore{mgr: mgr, dir: dir, keep: keep}, nil
}

// Restored reports what Open reconstructed.
func (s *SnapshotStore) Restored() RestoreInfo { return s.restored }

// Manager returns the manager this store persists.
func (s *SnapshotStore) Manager() *stream.EpochManager { return s.mgr }

// Persist atomically snapshots the manager's current cross-epoch state
// and prunes old generations. The root calls it after every merged
// seal, *before* advertising the new sealed watermark to frontends —
// the watermark is what releases their re-send retention, so it must
// never run ahead of what a restart would restore.
func (s *SnapshotStore) Persist() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: snapshot store is closed")
	}
	snapDir := filepath.Join(s.dir, "snap")
	if _, err := WriteSnapshot(snapDir, 0, s.mgr.SnapshotState()); err != nil {
		return err
	}
	return pruneSnapshots(snapDir, s.keep)
}

// Close rejects further persists. There is nothing to flush — every
// Persist is already durable when it returns.
func (s *SnapshotStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
