package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ldprecover/internal/stream"
)

// StandbyTailer keeps a warm copy of the root's merged state by tailing
// its per-seal snapshots and seal-log in the shared data directory. The
// standby never writes — it polls, and whenever a newer snapshot
// appears it rebuilds a fresh EpochManager from it (RestoreState is a
// boot-time operation, so each generation gets a new manager rather
// than mutating the served one). On promotion the current manager plus
// the seal-log membership are everything a SealedMerger needs to resume
// the barrier exactly where the dead root left it; anything newer than
// the last snapshot was never acknowledged to frontends, so their
// at-least-once re-send replays it.
type StandbyTailer struct {
	dir    string
	newMgr func() (*stream.EpochManager, error)

	mu       sync.Mutex
	mgr      *stream.EpochManager // warm state; nil until a snapshot lands
	snapSeq  int
	hasState bool
}

// NewStandbyTailer tails the root data directory dir. newMgr constructs
// an empty manager with the root's stream config; it is invoked once
// per restored snapshot generation.
func NewStandbyTailer(dir string, newMgr func() (*stream.EpochManager, error)) (*StandbyTailer, error) {
	if newMgr == nil {
		return nil, fmt.Errorf("persist: standby tailer without a manager factory")
	}
	return &StandbyTailer{dir: dir, newMgr: newMgr}, nil
}

// Poll checks for a newer snapshot and, if one decodes clean, restores
// it into a fresh manager. advanced reports whether the warm state
// moved. A directory with no snapshot yet is not an error — the root
// simply has not sealed anything.
func (t *StandbyTailer) Poll() (advanced bool, err error) {
	_, state, found, err := LoadLatestSnapshot(filepath.Join(t.dir, "snap"))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil // the root has not created its snapshot dir yet
	}
	if err != nil || !found {
		return false, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hasState && state.Seq <= t.snapSeq {
		return false, nil
	}
	mgr, err := t.newMgr()
	if err != nil {
		return false, err
	}
	if err := mgr.RestoreState(state); err != nil {
		return false, fmt.Errorf("persist: standby restoring snapshot seq %d: %w", state.Seq, err)
	}
	t.mgr, t.snapSeq, t.hasState = mgr, state.Seq, true
	return true, nil
}

// Manager returns the warm manager restored from the newest snapshot,
// or nil when none has landed yet. The manager is replaced, never
// mutated, on later polls — a caller may serve reads from it until it
// asks again.
func (t *StandbyTailer) Manager() *stream.EpochManager {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mgr
}

// SnapshotSeq returns the seal count of the restored snapshot and
// whether any snapshot has been restored.
func (t *StandbyTailer) SnapshotSeq() (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapSeq, t.hasState
}

// Membership reads the seal-log's last membership state, falling back
// to fallback (the standby's -nodes config) when the log is absent or
// empty — a cluster that never changed membership may have no log.
func (t *StandbyTailer) Membership(fallback []string) (members []string, sched []stream.MemberChange, err error) {
	members, sched, ok, err := ReadSealLogMembership(t.dir)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return append([]string(nil), fallback...), nil, nil
	}
	return members, sched, nil
}

// Promote builds the promoted root's merger: the warm manager (or a
// fresh empty one when the dead root never sealed) wrapped in a
// SealedMerger resuming at the snapshot's watermark, expecting the
// seal-log's membership. The caller acquires the lease first.
func (t *StandbyTailer) Promote(fallback []string) (*stream.SealedMerger, error) {
	if _, err := t.Poll(); err != nil {
		return nil, err
	}
	members, sched, err := t.Membership(fallback)
	if err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("persist: promoting with no membership on record and no fallback nodes")
	}
	t.mu.Lock()
	mgr := t.mgr
	t.mu.Unlock()
	if mgr == nil {
		m, err := t.newMgr()
		if err != nil {
			return nil, err
		}
		mgr = m
	}
	merger, err := stream.NewSealedMerger(mgr, members)
	if err != nil {
		return nil, err
	}
	if err := merger.SetMembership(members, sched); err != nil {
		return nil, err
	}
	return merger, nil
}
