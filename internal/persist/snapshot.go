package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ldprecover/internal/detect"
	"ldprecover/internal/stream"
)

// Snapshot wire format (little endian):
//
//	"LDPS" magic, uint16 version,
//	uint64 WAL position (last LSN whose record the state reflects),
//	the ManagerState fields in declaration order — ints as uint64,
//	floats as IEEE-754 bits, slices as uint32 length + elements —
//	and a trailing uint32 CRC-32C over everything before it.
//
// Floats are stored as raw bits because the whole point of the snapshot
// is bit-identical serving after a restart; a decimal round trip would
// be exact too (Go guarantees it) but bits make the intent unmissable.
// Snapshots are written to snap-<seq>.snap via temp file + rename, so a
// crash mid-write leaves the previous snapshot untouched and the loader
// simply picks the newest file that decodes and checksums clean.
const (
	snapVersion = 1

	snapPrefix = "snap-"
	snapSuffix = ".snap"

	// snapMaxLen bounds any single length field so a corrupt header
	// cannot drive a huge allocation before the CRC check runs.
	snapMaxLen = 1 << 28
)

var snapMagic = [4]byte{'L', 'D', 'P', 'S'}

// encodeSnapshot serializes a manager state and its WAL position.
func encodeSnapshot(walSeq uint64, st stream.ManagerState) []byte {
	b := make([]byte, 0, snapshotSize(st))
	b = append(b, snapMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, walSeq)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Seq))
	b = binary.LittleEndian.AppendUint64(b, uint64(st.Sealed))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.Ring)))
	for _, ep := range st.Ring {
		b = binary.LittleEndian.AppendUint64(b, uint64(ep.Seq))
		b = binary.LittleEndian.AppendUint64(b, uint64(ep.Total))
		b = appendInt64s(b, ep.Counts)
	}
	b = appendInt64s(b, st.WinCounts)
	b = binary.LittleEndian.AppendUint64(b, uint64(st.WinTotal))
	b = binary.LittleEndian.AppendUint32(b, uint32(st.WinEpochs))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.History)))
	for _, row := range st.History {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(row)))
		for _, f := range row {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	}
	b = appendInts(b, st.Tracker.Last)
	b = binary.LittleEndian.AppendUint32(b, uint32(st.Tracker.Streak))
	b = appendInts(b, st.Tracker.Stable)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func snapshotSize(st stream.ManagerState) int {
	size := 4 + 2 + 8 + 8 + 8 + 4 + 4 + 8 + 4 + 4 + 8 + 4 + 4 + 4 + 4
	size += (4 + 8 + 8) * len(st.Ring)
	for _, ep := range st.Ring {
		size += 8 * len(ep.Counts)
	}
	size += 8 * len(st.WinCounts)
	for _, row := range st.History {
		size += 4 + 8*len(row)
	}
	size += 8 * (len(st.Tracker.Last) + len(st.Tracker.Stable))
	return size
}

func appendInt64s(b []byte, vs []int64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(v)))
	}
	return b
}

// snapReader is a bounds-checked little-endian cursor.
type snapReader struct {
	data []byte
	off  int
	err  error
}

func (r *snapReader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *snapReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *snapReader) length() int {
	n := r.u32()
	if r.err == nil && (n > snapMaxLen || int64(n)*8 > int64(len(r.data)-r.off)) {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *snapReader) int64s() []int64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.u64())
	}
	return out
}

func (r *snapReader) ints() []int {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(r.u64()))
	}
	return out
}

func (r *snapReader) floats() []float64 {
	n := r.length()
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(r.u64())
	}
	return out
}

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("persist: snapshot truncated at byte %d", r.off)
	}
}

// decodeSnapshot parses and checksums a snapshot file's contents.
func decodeSnapshot(data []byte) (walSeq uint64, st stream.ManagerState, err error) {
	if len(data) < 4+2+4 || string(data[:4]) != string(snapMagic[:]) {
		return 0, st, fmt.Errorf("persist: not a snapshot (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, st, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	r := &snapReader{data: body, off: 4}
	if v := r.u16(); v != snapVersion {
		return 0, st, fmt.Errorf("persist: unsupported snapshot version %d", v)
	}
	walSeq = r.u64()
	st.Seq = int(int64(r.u64()))
	st.Sealed = int64(r.u64())
	ringLen := r.length()
	if r.err == nil {
		st.Ring = make([]stream.Epoch, ringLen)
		for i := range st.Ring {
			st.Ring[i].Seq = int(int64(r.u64()))
			st.Ring[i].Total = int64(r.u64())
			st.Ring[i].Counts = r.int64s()
		}
	}
	st.WinCounts = r.int64s()
	st.WinTotal = int64(r.u64())
	st.WinEpochs = int(int32(r.u32()))
	histLen := r.length()
	if r.err == nil && histLen > 0 {
		st.History = make([][]float64, histLen)
		for i := range st.History {
			st.History[i] = r.floats()
		}
	}
	st.Tracker = detect.TrackerState{Last: r.ints()}
	st.Tracker.Streak = int(int32(r.u32()))
	st.Tracker.Stable = r.ints()
	if r.err != nil {
		return 0, stream.ManagerState{}, r.err
	}
	if r.off != len(body) {
		return 0, stream.ManagerState{}, fmt.Errorf("persist: %d trailing snapshot bytes", len(body)-r.off)
	}
	return walSeq, st, nil
}

// WriteSnapshot atomically persists a snapshot named after the state's
// seal count and returns its path.
func WriteSnapshot(dir string, walSeq uint64, st stream.ManagerState) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, st.Seq, snapSuffix))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	_, err = f.Write(encodeSnapshot(walSeq, st))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, syncDir(dir)
}

// snapFile is one snapshot file, identified by its seal count.
type snapFile struct {
	seq  uint64
	path string
}

// listSnapshots returns the snapshot files in dir, newest first, and
// removes leftover temp files from interrupted writes.
func listSnapshots(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		snaps = append(snaps, snapFile{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	return snaps, nil
}

// LoadLatestSnapshot returns the newest snapshot in dir that decodes and
// checksums clean, skipping (but keeping) invalid newer ones. found is
// false when no valid snapshot exists.
func LoadLatestSnapshot(dir string) (walSeq uint64, st stream.ManagerState, found bool, err error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, st, false, err
	}
	for _, sf := range snaps {
		data, err := os.ReadFile(sf.path)
		if err != nil {
			return 0, st, false, err
		}
		walSeq, st, err = decodeSnapshot(data)
		if err == nil {
			return walSeq, st, true, nil
		}
	}
	return 0, stream.ManagerState{}, false, nil
}

// snapMeta is a retained snapshot's identity: its seal count and the WAL
// position it covers. The Store tracks these so WAL truncation can stop
// at the *oldest* retained snapshot — keeping every record a fallback
// restore would need should the newest snapshot be damaged after the
// fact.
type snapMeta struct {
	seq    int
	walSeq uint64
}

// validSnapshots decodes every snapshot file in dir and returns the ones
// that checksum clean, oldest first. Boot-time only: retention keeps the
// file count tiny.
func validSnapshots(dir string) ([]snapMeta, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	var metas []snapMeta
	for i := len(snaps) - 1; i >= 0; i-- { // listSnapshots is newest first
		data, err := os.ReadFile(snaps[i].path)
		if err != nil {
			return nil, err
		}
		//ldplint:allow failstop a corrupt snapshot candidate is skipped by design; the next-older file is the fallback
		walSeq, st, err := decodeSnapshot(data)
		if err != nil {
			continue
		}
		metas = append(metas, snapMeta{seq: st.Seq, walSeq: walSeq})
	}
	return metas, nil
}

// pruneSnapshots deletes all but the newest keep snapshot files.
func pruneSnapshots(dir string, keep int) error {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, sf := range snaps[min(keep, len(snaps)):] {
		if err := os.Remove(sf.path); err != nil {
			return err
		}
	}
	return nil
}
