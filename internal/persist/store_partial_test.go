package persist

import (
	"errors"
	"reflect"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stream"
)

// partialFrame runs reps through a Collector and returns both the wire
// frame and the decoded partial, the pair AppendPartial takes.
func partialFrame(t testing.TB, d int, hint int, reps []ldp.Report) ([]byte, *ldp.PartialTally) {
	t.Helper()
	col, err := ldp.NewCollector("edge-test", d)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.AddBatch(reps); err != nil {
		t.Fatal(err)
	}
	buf, err := col.Flush(hint)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ldp.UnmarshalPartial(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf, p
}

// TestStoreMixedLaneCrashRestartEquivalence is the tally-first ingest
// acceptance at the store level: a stream ingested over all three lanes
// — decoded report batches, zero-copy batch frames, and edge-aggregated
// partial tallies — with a crash and restart in the middle must produce
// estimates bit-identical to an uninterrupted in-memory manager fed
// every report through the plain report-level path.
func TestStoreMixedLaneCrashRestartEquivalence(t *testing.T) {
	const d, quiet, attacked = 16, 4, 4
	proto, err := ldp.NewOUE(d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	epochs := epochBatches(t, proto, d, quiet, attacked)

	// Reference: uninterrupted, in-memory, pure report-level.
	ref, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	var want []*stream.WindowEstimate
	for _, batches := range epochs {
		for _, b := range batches {
			if err := ref.AddBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		est, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, est)
	}

	// Durable run: batch i of epoch e goes through lane (e+i)%3 —
	// decoded, zero-copy frame, or Collector partial (with the current
	// epoch as its hint). Crash after sealing epoch crashAt plus a
	// partial and a zero-copy frame of the next epoch, so the WAL tail
	// replay covers both new record kinds.
	const crashAt = quiet
	ingest := func(store *Store, e, i int, b []ldp.Report) {
		t.Helper()
		switch (e + i) % 3 {
		case 0:
			if err := store.AppendBatch(frame(t, b), b); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := store.AppendBatchFrame(frame(t, b)); err != nil {
				t.Fatal(err)
			}
		default:
			buf, p := partialFrame(t, d, e, b)
			if err := store.AppendPartial(buf, p); err != nil {
				t.Fatal(err)
			}
		}
	}

	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []*stream.WindowEstimate
	for e := 0; e <= crashAt; e++ {
		for i, b := range epochs[e] {
			ingest(store, e, i, b)
		}
		est, err := store.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}
	// Tail of the crashed epoch: one partial, one zero-copy frame.
	next := epochs[crashAt+1]
	buf, p := partialFrame(t, d, crashAt+1, next[0])
	if err := store.AppendPartial(buf, p); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendBatchFrame(frame(t, next[1])); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no final seal.

	mgr2, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ri := store2.Restored()
	if ri.SnapshotSeq != crashAt+1 || ri.ReplayedPartials != 1 ||
		ri.ReplayedPartialUsers != int64(len(next[0])) ||
		ri.ReplayedBatches != 1 || ri.ReplayedReports != int64(len(next[1])) {
		t.Fatalf("restore info %+v", ri)
	}
	if !reflect.DeepEqual(mgr2.Latest(), got[crashAt]) {
		t.Fatal("restored Latest() differs from the pre-crash estimate")
	}
	for i, b := range next[2:] {
		ingest(store2, crashAt+1, i+2, b)
	}
	est, err := store2.Seal()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, est)
	for e := crashAt + 2; e < len(epochs); e++ {
		for i, b := range epochs[e] {
			ingest(store2, e, i, b)
		}
		est, err := store2.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}

	if len(got) != len(want) {
		t.Fatalf("%d estimates vs %d", len(got), len(want))
	}
	engaged := -1
	for e := range want {
		if !reflect.DeepEqual(got[e], want[e]) {
			t.Fatalf("epoch %d estimate diverged from pure report-level:\n got %+v\nwant %+v",
				e, got[e], want[e])
		}
		if want[e].PartialKnowledge && engaged < 0 {
			engaged = e
		}
	}
	if engaged <= crashAt {
		t.Fatalf("LDPRecover* engaged at epoch %d, not after the crash at %d", engaged, crashAt)
	}
}

// TestStoreAppendPartialStaleLeavesNoTrace: a stale partial is rejected
// before it touches the WAL, so a restart replays nothing for it.
func TestStoreAppendPartialStaleLeavesNoTrace(t *testing.T) {
	const d = 8
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(9), []int64{4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	buf, p := partialFrame(t, d, 0, reps)
	if err := store.AppendPartial(buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Seal(); err != nil {
		t.Fatal(err)
	}
	// Watermark is now 1; the same hint-0 partial is stale.
	buf2, p2 := partialFrame(t, d, 0, reps)
	if err := store.AppendPartial(buf2, p2); !errors.Is(err, stream.ErrStalePartial) {
		t.Fatalf("stale partial: %v, want ErrStalePartial", err)
	}
	if got := mgr.Stats().LiveTotal; got != 0 {
		t.Fatalf("stale partial folded %d live users", got)
	}
	// Crash and reopen: the rejected partial must not replay.
	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ri := store2.Restored()
	if ri.ReplayedPartials != 0 || ri.ReplayedPartialUsers != 0 {
		t.Fatalf("restore info %+v: rejected partial left a WAL trace", ri)
	}
	if got := mgr2.Stats().IngestedTotal; got != int64(len(reps)) {
		t.Fatalf("restored %d users, want %d", got, len(reps))
	}
}

// TestStoreAppendBatchFrameRejectsCorrupt: an invalid frame is rejected
// before it touches the WAL — replay must never meet a frame the
// validator would refuse.
func TestStoreAppendBatchFrameRejectsCorrupt(t *testing.T) {
	const d = 8
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(10), []int64{4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	good := frame(t, reps)
	if err := store.AppendBatchFrame(good[:len(good)-1]); err == nil {
		t.Fatal("corrupt frame appended")
	}
	if err := store.AppendBatchFrame(good); err != nil {
		t.Fatal(err)
	}
	// Crash and reopen: exactly the one valid frame replays.
	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if ri := store2.Restored(); ri.ReplayedBatches != 1 || ri.ReplayedReports != int64(len(reps)) {
		t.Fatalf("restore info %+v", ri)
	}
}
