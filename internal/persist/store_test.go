package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ldprecover/internal/attack"
	"ldprecover/internal/detect"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stream"
)

// testManagerState drives a real manager through a few epochs and
// exports its state, so snapshot round trips exercise realistic floats,
// history rows and tracker contents.
func testManagerState(t testing.TB) stream.ManagerState {
	t.Helper()
	proto, err := ldp.NewOUE(24, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := stream.NewEpochManager(stream.Config{
		Params: proto.Params(), Window: 2, History: 6, StableAfter: 2, MinHistory: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	counts := make([]int64, 24)
	for e := 0; e < 5; e++ {
		for v := range counts {
			counts[v] = int64(300 + 10*v)
		}
		if e >= 3 {
			counts[7] += 800 // a spike the z-score should notice
		}
		sim, err := ldp.BatchSimulate(proto, r, counts, 1)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for _, c := range counts {
			n += c
		}
		if err := m.AddCounts(sim, n); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	return m.SnapshotState()
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	st := testManagerState(t)
	st.Tracker = detect.TrackerState{Last: []int{7}, Streak: 1, Stable: []int{3, 9}}
	buf := encodeSnapshot(42, st)
	walSeq, got, err := decodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if walSeq != 42 {
		t.Fatalf("walSeq %d, want 42", walSeq)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, st)
	}

	// Every kind of damage must be rejected, never mis-decoded.
	for name, mangle := range map[string]func([]byte) []byte{
		"bit-flip":     func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
		"bad-magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":        func(b []byte) []byte { return nil },
		"short-header": func(b []byte) []byte { return b[:6] },
	} {
		buf := encodeSnapshot(42, st)
		if _, _, err := decodeSnapshot(mangle(buf)); err == nil {
			t.Errorf("%s snapshot decoded without error", name)
		}
	}

	// A well-formed future version (valid CRC) must fail on the version
	// field, not mis-decode.
	v2 := encodeSnapshot(42, st)
	v2[4] = 2
	v2 = v2[:len(v2)-4]
	v2 = binary.LittleEndian.AppendUint32(v2, crc32.Checksum(v2, crcTable))
	if _, _, err := decodeSnapshot(v2); err == nil {
		t.Error("future snapshot version decoded without error")
	}
}

func TestSnapshotWriteLoadPrune(t *testing.T) {
	dir := t.TempDir()
	st := testManagerState(t)

	// No snapshots yet.
	_, _, found, err := LoadLatestSnapshot(dir)
	if err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}

	// Write three generations with distinct Seq/walSeq.
	for i := 1; i <= 3; i++ {
		gen := st
		gen.Seq = st.Seq + i
		if _, err := WriteSnapshot(dir, uint64(100+i), gen); err != nil {
			t.Fatal(err)
		}
	}
	walSeq, got, found, err := LoadLatestSnapshot(dir)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if walSeq != 103 || got.Seq != st.Seq+3 {
		t.Fatalf("loaded walSeq=%d seq=%d, want 103/%d", walSeq, got.Seq, st.Seq+3)
	}

	// Corrupt the newest: the loader must fall back to the next valid one.
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0].path, []byte("ruined"), 0o644); err != nil {
		t.Fatal(err)
	}
	walSeq, got, found, err = LoadLatestSnapshot(dir)
	if err != nil || !found {
		t.Fatalf("fallback: found=%v err=%v", found, err)
	}
	if walSeq != 102 || got.Seq != st.Seq+2 {
		t.Fatalf("fallback loaded walSeq=%d seq=%d, want 102/%d", walSeq, got.Seq, st.Seq+2)
	}

	// A leftover temp file from an interrupted write is swept, and
	// pruning keeps only the newest two.
	if err := os.WriteFile(filepath.Join(dir, snapPrefix+"zzz"+snapSuffix+".tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := pruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	snaps, err = listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots after pruning, want 2", len(snaps))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("temp file %s survived", e.Name())
		}
	}
}

// storeConfig is the stream configuration shared by the store tests: a
// window under history, hysteresis short enough to engage mid-test.
func storeConfig(t testing.TB, proto ldp.Protocol) stream.Config {
	t.Helper()
	return stream.Config{
		Params: proto.Params(), Window: 2, History: 10,
		StableAfter: 2, MinHistory: 3, TargetK: 3,
	}
}

// epochBatches pre-generates per-epoch report batches — quiet epochs
// first, then epochs with an MGA attacker — identical for every manager
// that ingests them.
func epochBatches(t testing.TB, proto ldp.Protocol, d, quiet, attacked int) [][][]ldp.Report {
	t.Helper()
	r := rng.New(77)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = 120
	}
	mga, err := attack.NewMGA([]int{3, d - 2})
	if err != nil {
		t.Fatal(err)
	}
	var epochs [][][]ldp.Report
	for e := 0; e < quiet+attacked; e++ {
		reps, err := ldp.PerturbAll(proto, r, trueCounts)
		if err != nil {
			t.Fatal(err)
		}
		if e >= quiet {
			mal, err := mga.CraftReports(r, proto, int64(d)*120/8)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, mal...)
		}
		// Split each epoch into a few wire batches.
		var batches [][]ldp.Report
		const per = 500
		for lo := 0; lo < len(reps); lo += per {
			hi := min(lo+per, len(reps))
			batches = append(batches, reps[lo:hi])
		}
		epochs = append(epochs, batches)
	}
	return epochs
}

// frame encodes a batch for AppendBatch.
func frame(t testing.TB, reps []ldp.Report) []byte {
	t.Helper()
	buf, err := ldp.MarshalReportBatch(reps)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestStoreCrashRestartEquivalence is the persistence acceptance at the
// store level: a durable manager that "crashes" (is abandoned without a
// clean close) mid-epoch and is reopened from snapshot + WAL tail must
// produce, for the rest of the stream, estimates bit-identical to an
// uninterrupted in-memory manager fed the same reports — including the
// epoch at which LDPRecover* engages.
func TestStoreCrashRestartEquivalence(t *testing.T) {
	const d, quiet, attacked = 16, 4, 4
	proto, err := ldp.NewOUE(d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	epochs := epochBatches(t, proto, d, quiet, attacked)

	// Reference: uninterrupted, in-memory.
	ref, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	var want []*stream.WindowEstimate
	for _, batches := range epochs {
		for _, b := range batches {
			if err := ref.AddBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		est, err := ref.Seal()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, est)
	}

	// Durable run, crashing after sealing epoch `crashAt` plus one extra
	// batch of the next epoch (so the WAL tail is non-empty). crashAt is
	// the first attacked epoch: the tracker streak is mid-hysteresis and
	// the LDPRecover* promotion must happen after the restart.
	const crashAt = quiet
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ri := store.Restored(); ri != (RestoreInfo{}) {
		t.Fatalf("cold start restored %+v", ri)
	}
	var got []*stream.WindowEstimate
	for e := 0; e <= crashAt; e++ {
		for _, b := range epochs[e] {
			if err := store.AppendBatch(frame(t, b), b); err != nil {
				t.Fatal(err)
			}
		}
		est, err := store.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}
	if err := store.AppendBatch(frame(t, epochs[crashAt+1][0]), epochs[crashAt+1][0]); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no final seal. (The abandoned store's descriptor
	// stays open; it writes nothing further.)

	mgr2, err := stream.NewEpochManager(storeConfig(t, proto))
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ri := store2.Restored()
	if ri.SnapshotSeq != crashAt+1 || ri.ReplayedBatches != 1 ||
		ri.ReplayedReports != int64(len(epochs[crashAt+1][0])) {
		t.Fatalf("restore info %+v", ri)
	}
	// The restored Latest() is the pre-crash serving estimate.
	if !reflect.DeepEqual(mgr2.Latest(), got[crashAt]) {
		t.Fatal("restored Latest() differs from the pre-crash estimate")
	}
	// Continue the stream: rest of the crashed epoch, then the remainder.
	for _, b := range epochs[crashAt+1][1:] {
		if err := store2.AppendBatch(frame(t, b), b); err != nil {
			t.Fatal(err)
		}
	}
	est, err := store2.Seal()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, est)
	for e := crashAt + 2; e < len(epochs); e++ {
		for _, b := range epochs[e] {
			if err := store2.AppendBatch(frame(t, b), b); err != nil {
				t.Fatal(err)
			}
		}
		est, err := store2.Seal()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}

	if len(got) != len(want) {
		t.Fatalf("%d estimates vs %d", len(got), len(want))
	}
	engaged := -1
	for e := range want {
		if !reflect.DeepEqual(got[e], want[e]) {
			t.Fatalf("epoch %d estimate diverged after restart:\n got %+v\nwant %+v", e, got[e], want[e])
		}
		if want[e].PartialKnowledge && engaged < 0 {
			engaged = e
		}
	}
	// The point of persisting history + hysteresis: the upgrade must
	// actually have happened (after the restart) for the comparison to
	// mean anything.
	if engaged <= crashAt {
		t.Fatalf("LDPRecover* engaged at epoch %d, not after the crash at %d", engaged, crashAt)
	}
	if st := mgr2.Stats(); !reflect.DeepEqual(st.Targets, []int{3, d - 2}) {
		t.Fatalf("restored stream identified targets %v", st.Targets)
	}
}

// TestStoreTornTailOnReplay: a torn final WAL record (crash mid-append)
// loses only that batch; the reopened store replays the intact prefix.
func TestStoreTornTailOnReplay(t *testing.T) {
	const d = 12
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(stream.Config{Params: proto.Params(), TargetK: -1})
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(5), []int64{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := store.AppendBatch(frame(t, reps), reps); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-append: the last record loses its final bytes.
	chop(t, lastSegment(t, filepath.Join(dir, "wal")), 5)

	mgr2, err := stream.NewEpochManager(stream.Config{Params: proto.Params(), TargetK: -1})
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ri := store2.Restored()
	if ri.ReplayedBatches != 2 || ri.ReplayedReports != int64(2*len(reps)) {
		t.Fatalf("restore info %+v, want 2 intact batches", ri)
	}
	if got := mgr2.Stats().IngestedTotal; got != int64(2*len(reps)) {
		t.Fatalf("replayed %d reports, want %d", got, 2*len(reps))
	}
}

// TestStoreLostWALGuard: a snapshot whose WAL position outruns a wiped
// log must not cause fresh appends to land on covered LSNs.
func TestStoreLostWALGuard(t *testing.T) {
	const d = 8
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(6), []int64{5, 5, 5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := store.AppendBatch(frame(t, reps), reps); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.Seal(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	// Wipe the WAL; the snapshot survives.
	if err := os.RemoveAll(filepath.Join(dir, "wal")); err != nil {
		t.Fatal(err)
	}

	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// New batches get fresh LSNs above the snapshot point…
	if err := store2.AppendBatch(frame(t, reps), reps); err != nil {
		t.Fatal(err)
	}
	store2.Close()
	// …so yet another reopen replays exactly the new batch.
	mgr3, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store3, err := Open(dir, mgr3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	if ri := store3.Restored(); ri.ReplayedBatches != 1 {
		t.Fatalf("restore info %+v, want the post-wipe batch replayed", ri)
	}
}

// TestStoreSnapshotFallbackConservesReports: WAL truncation stops at the
// oldest *retained* snapshot, so when the newest snapshot is damaged
// after the fact (the case 2-generation retention exists for), the
// fallback restore still finds every record above its own position — it
// loses the epoch boundaries sealed since, never the reports.
func TestStoreSnapshotFallbackConservesReports(t *testing.T) {
	const d = 8
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), Window: 2, History: 4, TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(31), []int64{6, 6, 6, 6, 6, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	buf := frame(t, reps)
	var total int64
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i < 3; i++ {
			if err := store.AppendBatch(buf, reps); err != nil {
				t.Fatal(err)
			}
			total += int64(len(reps))
		}
		if _, err := store.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	// Damage the newest snapshot on disk.
	snaps, err := listSnapshots(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots retained, want 2", len(snaps))
	}
	if err := os.WriteFile(snaps[0].path, []byte("ruined"), 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ri := store2.Restored()
	if ri.SnapshotSeq != 1 {
		t.Fatalf("fell back to snapshot of %d epochs, want 1", ri.SnapshotSeq)
	}
	// Epoch 2's three batches came back from the WAL (into the live
	// epoch — boundaries since the fallback are lost, reports are not).
	if ri.ReplayedBatches != 3 {
		t.Fatalf("replayed %d batches, want 3", ri.ReplayedBatches)
	}
	st := mgr2.Stats()
	if st.IngestedTotal != total {
		t.Fatalf("restored %d reports, want %d", st.IngestedTotal, total)
	}
	if st.Epochs != 1 || st.LiveTotal != total/2 {
		t.Fatalf("fallback shape: %+v", st)
	}
}

// TestStoreWALGapFailsLoudly: when no loadable snapshot reaches back to
// the log's surviving records — here both retained snapshots damaged
// after the WAL was truncated past older positions — boot must fail
// instead of silently serving a partial stream.
func TestStoreWALGapFailsLoudly(t *testing.T) {
	const d = 8
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), Window: 2, History: 8, TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, err := ldp.PerturbAll(proto, rng.New(32), []int64{6, 6, 6, 6, 6, 6, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	buf := frame(t, reps)
	// Enough seals that truncation has deleted the earliest records.
	for epoch := 0; epoch < 4; epoch++ {
		if err := store.AppendBatch(buf, reps); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	snaps, err := listSnapshots(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sf := range snaps {
		if err := os.WriteFile(sf.path, []byte("ruined"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, mgr2, Options{})
	if err == nil {
		t.Fatal("booted over a WAL whose early records were truncated away")
	}
	// The refusal folds the teardown Close error in with errors.Join;
	// the primary gap diagnosis must survive the composition.
	if !strings.Contains(err.Error(), "records in between are gone") {
		t.Fatalf("gap refusal lost its diagnosis: %v", err)
	}
}

// TestStoreConcurrentAppendAndSeal hammers durable ingest from several
// goroutines while sealing continuously — the serve layer's actual
// concurrency shape (run under -race by make race) — then reopens the
// store and checks conservation: snapshot + WAL tail reproduce every
// report that was appended.
func TestStoreConcurrentAppendAndSeal(t *testing.T) {
	const d, appenders, perAppender = 16, 4, 30
	proto, err := ldp.NewOUE(d, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{Params: proto.Params(), Window: 2, History: 4, TargetK: -1}
	dir := t.TempDir()
	mgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lazy fsync keeps the test quick; seals still sync at boundaries.
	store, err := Open(dir, mgr, Options{SyncEvery: -1, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, d)
	for v := range counts {
		counts[v] = 3
	}
	reps, err := ldp.PerturbAll(proto, rng.New(14), counts)
	if err != nil {
		t.Fatal(err)
	}
	buf := frame(t, reps)

	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if err := store.AppendBatch(buf, reps); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	sealDone := make(chan struct{})
	go func() {
		defer close(sealDone)
		for i := 0; i < 10; i++ {
			if _, err := store.Seal(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-sealDone
	wantTotal := int64(appenders * perAppender * len(reps))
	if got := mgr.Stats().IngestedTotal; got != wantTotal {
		t.Fatalf("ingested %d reports, want %d", got, wantTotal)
	}
	// Crash (no close) and reopen: snapshot + WAL tail conserve every
	// appended report.
	mgr2, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := Open(dir, mgr2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if got := mgr2.Stats().IngestedTotal; got != wantTotal {
		t.Fatalf("restored %d reports, want %d", got, wantTotal)
	}
}

// TestStoreClosedAndInvalid exercises the error surfaces.
func TestStoreClosedAndInvalid(t *testing.T) {
	if _, err := Open(t.TempDir(), nil, Options{}); err == nil {
		t.Fatal("nil manager accepted")
	}
	proto, err := ldp.NewOUE(8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := stream.NewEpochManager(stream.Config{Params: proto.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir(), mgr, Options{KeepSnapshots: -1}); err == nil {
		t.Fatal("negative snapshot retention accepted")
	}
	store, err := Open(t.TempDir(), mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := store.AppendBatch([]byte{1}, nil); err == nil {
		t.Fatal("append on closed store succeeded")
	}
	if _, err := store.Seal(); err == nil {
		t.Fatal("seal on closed store succeeded")
	}
}
