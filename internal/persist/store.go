package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ldprecover/internal/ldp"
	"ldprecover/internal/stream"
)

// Options parameterizes a Store.
type Options struct {
	// SegmentBytes and SyncEvery are the WAL knobs; see WALOptions.
	SegmentBytes int64
	SyncEvery    int
	// KeepSnapshots is how many snapshot generations to retain; zero
	// selects 2 (the newest plus one fallback should the newest be
	// damaged after the fact).
	KeepSnapshots int
}

// DefaultKeepSnapshots is the retention when Options leaves
// KeepSnapshots zero.
const DefaultKeepSnapshots = 2

// RestoreInfo summarizes what Open reconstructed.
type RestoreInfo struct {
	// SnapshotSeq is how many epochs the loaded snapshot had sealed; 0
	// means no snapshot existed (cold start).
	SnapshotSeq int
	// ReplayedBatches and ReplayedReports count the WAL tail's
	// report-batch records folded back into the live epoch.
	ReplayedBatches int
	ReplayedReports int64
	// ReplayedPartials and ReplayedPartialUsers count the WAL tail's
	// partial-tally records folded back into the live epoch.
	ReplayedPartials     int
	ReplayedPartialUsers int64
}

// Store makes one EpochManager durable. Layout under its directory:
//
//	<dir>/wal/wal-<firstLSN>.seg   report-batch write-ahead log
//	<dir>/snap/snap-<seq>.snap     per-seal state snapshots
//
// AppendBatch logs a report batch and folds it into the manager; Seal
// closes the epoch, snapshots the manager's cross-epoch state with the
// WAL position it reflects, and truncates the log up to the oldest
// *retained* snapshot's position (so a fallback restore never misses
// records). Append and Seal exclude each other (an RWMutex appenders
// share), which is the invariant the snapshot depends on: every WAL
// record at or below its recorded position is in the snapshot,
// everything above belongs to the live epoch and is replayed on boot.
//
// Crash windows, for the record: a torn WAL append loses only the batch
// being written (never acknowledged as aggregated); a crash mid-snapshot
// leaves the previous snapshot in place (temp file + rename); a crash
// between snapshot rename and WAL truncation double-applies nothing,
// because replay skips records the snapshot position covers.
type Store struct {
	mgr  *stream.EpochManager
	wal  *WAL
	dir  string
	opts Options

	// mu: AppendBatch holds it shared (the WAL serializes appends, the
	// manager handles concurrent AddBatch), Seal holds it exclusive so
	// the snapshot sees every appended record applied.
	mu       sync.RWMutex
	closed   bool
	restored RestoreInfo
	// snaps are the retained snapshots, oldest first. WAL truncation
	// stops at the oldest one's position, so a fallback restore (the
	// newest snapshot damaged after the fact) still finds every record
	// it needs — it loses the epoch boundaries sealed since the fallback,
	// never the reports.
	snaps []snapMeta
}

// Open makes mgr durable under dir: it loads the newest valid snapshot
// into the (freshly constructed) manager, replays the WAL tail through
// AddBatch to rebuild the live epoch, and leaves the log open for
// appending. The restored manager serves window estimates bit-identical
// to the pre-crash process.
func Open(dir string, mgr *stream.EpochManager, opts Options) (*Store, error) {
	if mgr == nil {
		return nil, errors.New("persist: nil epoch manager")
	}
	if opts.KeepSnapshots == 0 {
		opts.KeepSnapshots = DefaultKeepSnapshots
	}
	if opts.KeepSnapshots < 1 {
		return nil, fmt.Errorf("persist: snapshot retention %d < 1", opts.KeepSnapshots)
	}
	snapDir := filepath.Join(dir, "snap")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{mgr: mgr, dir: dir, opts: opts}

	walSeq, state, found, err := LoadLatestSnapshot(snapDir)
	if err != nil {
		return nil, err
	}
	if found {
		if err := mgr.RestoreState(state); err != nil {
			return nil, fmt.Errorf("persist: restoring snapshot: %w", err)
		}
		s.restored.SnapshotSeq = state.Seq
	}
	if s.snaps, err = validSnapshots(snapDir); err != nil {
		return nil, err
	}

	s.wal, err = OpenWAL(filepath.Join(dir, "wal"), WALOptions{
		SegmentBytes: opts.SegmentBytes,
		SyncEvery:    opts.SyncEvery,
	})
	if err != nil {
		return nil, err
	}
	// The surviving log must reach back to the restored position. A
	// first-segment bound beyond walSeq+1 means records in between were
	// truncated against a newer snapshot that no longer loads — booting
	// anyway would silently drop them. (A log starting at LSN 1 is the
	// tolerated lost-log case: nothing between the snapshot and it.)
	if first := s.wal.FirstLSNBound(); first > walSeq+1 {
		return nil, errors.Join(fmt.Errorf("persist: WAL starts at LSN %d but the restored snapshot covers only LSN %d; "+
			"records in between are gone", first, walSeq), s.wal.Close())
	}
	// If the log has been lost or wiped while a snapshot survived, fresh
	// appends must not reuse LSNs the snapshot already covers.
	s.wal.AdvanceTo(walSeq)

	// The WAL is payload-agnostic; records are dispatched on their
	// 2-byte frame magic. "LP" partial tallies replay through AddCounts
	// regardless of their epoch hint: the hint was checked against the
	// sealed watermark when the record was accepted (append and fold are
	// atomic with respect to seals), so on replay the fold is
	// unconditional — exactly like report batches, every surviving
	// record rebuilds the live epoch.
	err = s.wal.Replay(walSeq, func(_ uint64, payload []byte) error {
		if len(payload) >= 2 && payload[0] == 'L' && payload[1] == 'P' {
			p, err := ldp.UnmarshalPartial(payload)
			if err != nil {
				return fmt.Errorf("persist: replaying WAL partial tally: %w", err)
			}
			if err := s.mgr.AddCounts(p.Counts, p.Users); err != nil {
				return err
			}
			s.restored.ReplayedPartials++
			s.restored.ReplayedPartialUsers += p.Users
			return nil
		}
		reps, err := ldp.UnmarshalReportBatch(payload)
		if err != nil {
			return fmt.Errorf("persist: replaying WAL batch: %w", err)
		}
		if err := s.mgr.AddBatch(reps); err != nil {
			return err
		}
		s.restored.ReplayedBatches++
		s.restored.ReplayedReports += int64(len(reps))
		return nil
	})
	if err != nil {
		return nil, errors.Join(err, s.wal.Close())
	}
	return s, nil
}

// Restored reports what Open reconstructed.
func (s *Store) Restored() RestoreInfo { return s.restored }

// Manager returns the manager this store persists.
func (s *Store) Manager() *stream.EpochManager { return s.mgr }

// AppendBatch durably logs a report batch and folds it into the live
// epoch. frame must be the ldp batch codec encoding of reps — servers
// pass the wire bytes they already hold alongside the decoded reports,
// so nothing is re-marshaled on the hot path. The batch is durable (per
// the fsync policy) before it is aggregated; a crash in between replays
// it on boot, which yields the same counts.
func (s *Store) AppendBatch(frame []byte, reps []ldp.Report) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if _, err := s.wal.Append(frame); err != nil {
		return err
	}
	return s.mgr.AddBatch(reps)
}

// AppendBatchFrame durably logs a report batch frame and folds it into
// the live epoch without ever decoding it into reports — the zero-copy
// ingest lane. The frame is structurally validated before it touches
// the log (an invalid frame must not poison replay), appended verbatim,
// and counted in place; the result is bit-identical to AppendBatch with
// the decoded reports.
func (s *Store) AppendBatchFrame(frame []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if _, err := ldp.ValidateReportBatchFrame(frame); err != nil {
		return err
	}
	if _, err := s.wal.Append(frame); err != nil {
		return err
	}
	return s.mgr.AddBatchFrame(frame)
}

// AppendPartial durably logs an edge-aggregated partial tally and folds
// it into the live epoch. frame must be the ldp partial codec encoding
// of p — servers pass the wire bytes they already hold alongside the
// decoded partial. The staleness check runs before the append so a
// rejected partial leaves no durable trace; holding the append lock
// shared excludes Seal, so the watermark cannot move between the check
// and the fold — the WAL never holds a partial the manager rejected,
// and replay can fold every surviving record unconditionally.
func (s *Store) AppendPartial(frame []byte, p *ldp.PartialTally) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	if p == nil {
		return errors.New("persist: nil partial tally")
	}
	if p.EpochHint < s.mgr.SealedWatermark() {
		return fmt.Errorf("%w: hint %d, watermark %d",
			stream.ErrStalePartial, p.EpochHint, s.mgr.SealedWatermark())
	}
	if _, err := s.wal.Append(frame); err != nil {
		return err
	}
	return s.mgr.AddPartial(p)
}

// Seal closes the live epoch, snapshots the manager's state, and
// truncates the WAL up to the oldest retained snapshot's position. When
// the in-memory seal succeeded but persisting did not, the estimate is
// returned alongside the error so the caller can still serve it while
// deciding whether a degraded-durability server should stay up.
func (s *Store) Seal() (*stream.WindowEstimate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("persist: store is closed")
	}
	est, err := s.mgr.Seal()
	if err != nil {
		return nil, err
	}
	// With appenders excluded, everything in the WAL is in the manager:
	// the log's last LSN is exactly the snapshot point.
	walSeq := s.wal.LastLSN()
	// Epoch boundaries always sync, whatever the append policy: with
	// lazy fsync this bounds a power-loss to the live epoch's batches
	// (everything sealed is durable), and under SyncEvery==1 the file is
	// clean and the call is free.
	if err := s.wal.Sync(); err != nil {
		return est, err
	}
	state := s.mgr.SnapshotState()
	if _, err := WriteSnapshot(filepath.Join(s.dir, "snap"), walSeq, state); err != nil {
		return est, err
	}
	s.snaps = append(s.snaps, snapMeta{seq: state.Seq, walSeq: walSeq})
	if len(s.snaps) > s.opts.KeepSnapshots {
		s.snaps = s.snaps[len(s.snaps)-s.opts.KeepSnapshots:]
	}
	if err := pruneSnapshots(filepath.Join(s.dir, "snap"), s.opts.KeepSnapshots); err != nil {
		return est, err
	}
	// Truncate only through the *oldest retained* snapshot's position:
	// should the newest snapshot be damaged after the fact, the fallback
	// restore still finds every record above its own position — it loses
	// the epoch boundaries sealed since, never the reports.
	if err := s.wal.TruncateThrough(s.snaps[0].walSeq); err != nil {
		return est, err
	}
	return est, nil
}

// Close syncs and closes the WAL. The manager itself stays usable in
// memory; further AppendBatch/Seal calls on the store fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
