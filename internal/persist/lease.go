package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// The root lease is the failover tier's split-brain guard for the
// shared root data directory. Whoever merges tallies for the cluster
// holds the lease: a file naming the owner, kept fresh by heartbeat
// touches. A standby promotes only after the lease has gone stale (the
// old root stopped heartbeating for longer than the promotion
// threshold), and a restarting root refuses a directory whose lease a
// different owner holds fresh — two mergers advancing the same
// watermark would hand frontends acknowledgements for state only one of
// them persisted.
//
// The guard is cooperative, not a distributed lock: it relies on the
// shared filesystem's rename atomicity and on both contenders observing
// the same clock within the staleness threshold. DESIGN.md §7 spells
// out the caveat.
const leaseName = "root.lease"

// Lease is a held root lease.
type Lease struct {
	dir   string
	owner string
}

// LeaseInfo describes the lease file's current state.
type LeaseInfo struct {
	// Owner is the node id written by the holder; empty when no lease
	// file exists.
	Owner string
	// Age is how long ago the holder last heartbeat.
	Age time.Duration
}

// InspectLease reads dir's lease without taking it. A missing lease
// returns a zero LeaseInfo and no error.
func InspectLease(dir string) (LeaseInfo, error) {
	path := filepath.Join(dir, leaseName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return LeaseInfo{}, nil
	}
	if err != nil {
		return LeaseInfo{}, err
	}
	info, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return LeaseInfo{}, nil
	}
	if err != nil {
		return LeaseInfo{}, err
	}
	//ldplint:allow nowallclock lease age is wall-clock liveness by definition
	return LeaseInfo{Owner: strings.TrimSpace(string(data)), Age: time.Since(info.ModTime())}, nil
}

// AcquireLease takes dir's root lease for owner. It refuses while a
// different owner's lease is fresher than staleAfter; a stale foreign
// lease (its holder stopped heartbeating) or the owner's own lease is
// replaced. The caller heartbeats with Refresh at a period well under
// staleAfter.
func AcquireLease(dir string, owner string, staleAfter time.Duration) (*Lease, error) {
	if owner == "" {
		return nil, errors.New("persist: lease without an owner id")
	}
	if staleAfter <= 0 {
		return nil, errors.New("persist: lease without a staleness threshold")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cur, err := InspectLease(dir)
	if err != nil {
		return nil, err
	}
	if cur.Owner != "" && cur.Owner != owner && cur.Age < staleAfter {
		return nil, fmt.Errorf("persist: %s is leased to %q (heartbeat %v ago, staleness threshold %v); "+
			"refusing to merge into a directory another root is serving", dir, cur.Owner, cur.Age.Round(time.Millisecond), staleAfter)
	}
	l := &Lease{dir: dir, owner: owner}
	if err := l.write(); err != nil {
		return nil, err
	}
	return l, nil
}

// write atomically (re)writes the lease file, stamping a fresh mtime.
func (l *Lease) write() error {
	path := filepath.Join(l.dir, leaseName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.owner+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Refresh is the heartbeat: it re-asserts ownership and freshens the
// lease's age. Finding another owner's name in the file means this
// holder was presumed dead and superseded — the caller must stop
// merging immediately rather than fight for the file.
func (l *Lease) Refresh() error {
	cur, err := InspectLease(l.dir)
	if err != nil {
		return err
	}
	if cur.Owner != "" && cur.Owner != l.owner {
		return fmt.Errorf("persist: lease on %s was taken over by %q; this root was superseded and must stop", l.dir, cur.Owner)
	}
	return l.write()
}

// Release drops the lease if this holder still owns it, letting a
// successor acquire without waiting out the staleness threshold.
func (l *Lease) Release() error {
	cur, err := InspectLease(l.dir)
	if err != nil {
		return err
	}
	if cur.Owner != l.owner {
		return nil // superseded already; nothing of ours to remove
	}
	err = os.Remove(filepath.Join(l.dir, leaseName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Owner returns the id the lease was acquired under.
func (l *Lease) Owner() string { return l.owner }
