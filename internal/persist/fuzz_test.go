package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// walRecord frames one valid WAL record for fuzz seeding.
func walRecord(lsn uint64, payload []byte) []byte {
	rec := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:], lsn)
	copy(rec[walHeaderSize:], payload)
	crc := crc32.Update(0, crcTable, rec[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(rec[12:], crc)
	return rec
}

// FuzzWALOpen: a segment holding arbitrary bytes — torn tails, flipped
// bits, hostile length fields — must never panic OpenWAL or Replay,
// only error or truncate cleanly. When the log does open, the surviving
// prefix must replay with monotone LSNs and the log must accept new
// appends that land after everything replayed.
func FuzzWALOpen(f *testing.F) {
	r1 := walRecord(1, []byte("batch-one"))
	r2 := walRecord(2, []byte("batch-two"))
	full := append(append([]byte(nil), r1...), r2...)
	f.Add([]byte{})
	f.Add(append([]byte(nil), r1...))
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	f.Add(append(full, 0xff)) // trailing garbage
	flip := append([]byte(nil), full...)
	flip[walHeaderSize+2] ^= 0x10 // corrupt first payload
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // cap I/O per exec; the parser sees sliced variants anyway
		}
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-00000000000000000001.seg")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALOptions{SyncEvery: -1})
		if err != nil {
			return // refusing a mangled log is fine; panicking is not
		}
		defer w.Close()
		var last uint64
		var replayed int
		err = w.Replay(0, func(lsn uint64, payload []byte) error {
			if lsn <= last {
				t.Fatalf("replay LSNs not monotone: %d after %d", lsn, last)
			}
			last = lsn
			replayed++
			return nil
		})
		if err != nil {
			t.Fatalf("replay of a freshly opened log failed: %v", err)
		}
		lsn, err := w.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery failed: %v", err)
		}
		if lsn <= last {
			t.Fatalf("fresh append reused LSN %d (last replayed %d)", lsn, last)
		}
	})
}
