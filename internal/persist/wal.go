// Package persist makes the epoch-streamed recovery service crash-safe.
// It provides two building blocks and a Store that ties them to an
// EpochManager:
//
//   - a segmented, CRC-framed write-ahead log (WAL) whose record payloads
//     are the ldp batch codec's wire frames — the exact bytes the serving
//     layer ingests over HTTP — with segment rotation, fsync policy
//     knobs, and torn-tail tolerance on replay;
//   - versioned snapshots of the full EpochManager state (sealed-epoch
//     ring, sliding window, recovered history, target-tracker hysteresis,
//     sequence counters) written atomically via temp file + rename at
//     each seal, after which the WAL is truncated up to the snapshot
//     point.
//
// On boot a Store loads the newest valid snapshot, replays the WAL tail
// through AddBatch, and the manager serves window estimates bit-identical
// to an uninterrupted run: support counting is additive, so re-applying
// the live epoch's batches in any order reproduces the same counts, and
// recovery itself is deterministic.
//
// The merging tiers reuse the same blocks without the WAL: roots and
// interior mergers (-role=merger, DESIGN.md §9) persist per-seal
// SnapshotStore snapshots plus a SealLog of sealed epochs and
// membership changes — their inputs are re-sent by the tier below
// until the persisted watermark covers them, so a log of individual
// tallies would be redundant.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WAL record frame (little endian):
//
//	byte 0..3:   uint32 payload length n
//	byte 4..11:  uint64 LSN (log sequence number, 1-based, monotone)
//	byte 12..15: uint32 CRC-32C over bytes 4..11 and the payload
//	byte 16..:   n payload bytes
//
// The CRC covers the LSN so a record spliced from another position (or a
// stale block the filesystem resurfaced) fails verification, not just
// bit flips in the payload. Records live in segment files named
// wal-<firstLSN>.seg; a segment's records all have LSNs below the next
// segment's name, which is what makes truncation a pure file delete.
const (
	walHeaderSize = 16

	// walMaxPayload caps a record so a corrupt length field cannot make
	// replay allocate gigabytes. It comfortably exceeds any HTTP batch
	// the server accepts (default -max-body is 8 MiB).
	walMaxPayload = 64 << 20

	walSegPrefix = "wal-"
	walSegSuffix = ".seg"

	// DefaultSegmentBytes is the rotation threshold when WALOptions
	// leaves SegmentBytes zero.
	DefaultSegmentBytes = 8 << 20
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms a server runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALOptions are the durability/throughput knobs of a WAL.
type WALOptions struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// reaches this many bytes. Zero or negative selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEvery fsyncs the segment after every n-th append. Zero selects
	// 1 (fsync every append — durable acknowledgements); negative
	// disables explicit fsync entirely and leaves flushing to the OS,
	// trading the tail of the log on power loss for throughput. Rotation
	// and Close always sync regardless of policy.
	SyncEvery int
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	return o
}

// walSegment is one closed or live segment file.
type walSegment struct {
	first uint64 // LSN named in the file (lower bound of its records)
	path  string
}

// WAL is a segmented write-ahead log. Append is safe for concurrent use;
// Replay is meant for boot time, before appending resumes.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	segments []walSegment // all segments, oldest first; last is live
	f        *os.File     // live segment, positioned at its end
	size     int64        // live segment size
	nextLSN  uint64       // LSN the next append receives
	unsynced int          // appends since the last fsync
	rec      []byte       // reusable record scratch, guarded by mu
}

// OpenWAL opens (or creates) the write-ahead log in dir. The final
// segment is scanned and any torn tail — a partially written last record
// from a crash mid-append — is truncated away, so appending resumes at
// the first LSN that was never durably written.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts, segments: segs}
	if len(segs) == 0 {
		w.nextLSN = 1
		if err := w.createSegmentLocked(); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Scan the final segment for its valid extent; earlier segments are
	// verified lazily by Replay (corruption there is a hard error, not a
	// torn tail).
	last := segs[len(segs)-1]
	end, lastLSN, _, err := scanSegment(last.path, last.first, nil)
	if err != nil {
		return nil, err
	}
	w.nextLSN = last.first
	if lastLSN != 0 {
		w.nextLSN = lastLSN + 1
	}
	if err := os.Truncate(last.path, end); err != nil {
		return nil, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.f = f
	w.size = end
	return w, nil
}

// createSegmentLocked starts a fresh segment named after nextLSN. The
// caller holds w.mu (or exclusive access during Open).
func (w *WAL) createSegmentLocked() error {
	path := filepath.Join(w.dir, fmt.Sprintf("%s%020d%s", walSegPrefix, w.nextLSN, walSegSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.segments = append(w.segments, walSegment{first: w.nextLSN, path: path})
	w.f = f
	w.size = 0
	return nil
}

// Append writes one record and returns its LSN. The payload is typically
// an ldp batch codec frame, but the WAL is payload-agnostic.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if len(payload) > walMaxPayload {
		return 0, fmt.Errorf("persist: WAL payload of %d bytes exceeds cap %d", len(payload), walMaxPayload)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errors.New("persist: WAL is closed")
	}
	lsn := w.nextLSN
	// The record scratch is reused across appends (the ingest hot path
	// runs one append per HTTP batch) so steady-state appends allocate
	// nothing; w.mu already serializes access.
	if need := walHeaderSize + len(payload); cap(w.rec) < need {
		w.rec = make([]byte, need)
	}
	rec := w.rec[:walHeaderSize+len(payload)]
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:], lsn)
	copy(rec[walHeaderSize:], payload)
	crc := crc32.Update(0, crcTable, rec[4:12])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(rec[12:], crc)
	if _, err := w.f.Write(rec); err != nil {
		return 0, err
	}
	w.nextLSN++
	w.size += int64(len(rec))
	w.unsynced++
	if w.opts.SyncEvery > 0 && w.unsynced >= w.opts.SyncEvery {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
		w.unsynced = 0
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked syncs and closes the live segment and starts a new one.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.unsynced = 0
	return w.createSegmentLocked()
}

// LastLSN returns the LSN of the newest appended record, 0 when the log
// has never held one.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// FirstLSNBound returns the oldest segment's lower LSN bound (its file
// name): every surviving record's LSN is at least this. The Store checks
// it against the restored snapshot's WAL position on boot — a bound more
// than one past the position means records in between were truncated
// against a newer snapshot that no longer loads, and a silent restore
// would lose them.
func (w *WAL) FirstLSNBound() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segments[0].first
}

// AdvanceTo bumps the next LSN past lsn. The Store calls it when a
// snapshot records a WAL position beyond the log's end (the log was
// deleted or lost): without the bump, fresh appends would reuse LSNs the
// snapshot already covers and replay would silently skip them.
func (w *WAL) AdvanceTo(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.nextLSN <= lsn {
		w.nextLSN = lsn + 1
	}
}

// Sync flushes the live segment to stable storage regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.unsynced = 0
	return w.f.Sync()
}

// Close syncs and closes the live segment. The WAL rejects appends
// afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Replay streams every record with LSN > after, oldest first, to fn. A
// torn tail — a final record the crash cut short — ends replay cleanly;
// corruption anywhere else (or in a non-final segment) is an error, since
// valid records are known to follow it and silently dropping them would
// diverge the restored state. Replay is a boot-time operation: run it
// before appending resumes.
func (w *WAL) Replay(after uint64, fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segments...)
	w.mu.Unlock()
	for i, seg := range segs {
		final := i == len(segs)-1
		_, _, torn, err := scanSegment(seg.path, seg.first, func(lsn uint64, payload []byte) error {
			if lsn <= after {
				return nil
			}
			return fn(lsn, payload)
		})
		if err != nil {
			return err
		}
		if torn && !final {
			return fmt.Errorf("persist: WAL segment %s is corrupt mid-log", filepath.Base(seg.path))
		}
	}
	return nil
}

// TruncateThrough garbage-collects segments whose records are all
// covered by a snapshot at lsn. The live segment is first rotated away if
// it holds any such record, so truncation after a seal leaves the log
// holding only post-snapshot batches. Deleting is pure GC — replay skips
// snapshot-covered records by LSN either way — so a crash between
// snapshot and truncation double-deletes nothing.
func (w *WAL) TruncateThrough(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("persist: WAL is closed")
	}
	live := w.segments[len(w.segments)-1]
	if w.size > 0 && live.first <= lsn && live.first < w.nextLSN {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	// A closed segment's records are all below the next segment's first
	// LSN, so it is fully covered when that bound is <= lsn+1.
	keep := w.segments[:0]
	for i, seg := range w.segments {
		if i+1 < len(w.segments) && w.segments[i+1].first <= lsn+1 {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			continue
		}
		keep = append(keep, seg)
	}
	w.segments = append([]walSegment(nil), keep...)
	return syncDir(w.dir)
}

// listSegments finds and orders the segment files in dir.
func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: unparseable WAL segment name %q", name)
		}
		segs = append(segs, walSegment{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scanSegment parses one segment, calling fn (when non-nil) per valid
// record. It returns the byte offset past the last valid record, the
// last valid LSN (0 if none), and whether the segment ends in a torn or
// invalid record. I/O failures are returned as errors; parse failures
// are "torn" — the caller decides whether that is tolerable (final
// segment) or corruption (mid-log).
func scanSegment(path string, first uint64, fn func(lsn uint64, payload []byte) error) (validEnd int64, lastLSN uint64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	var off int64
	want := first
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, lastLSN, false, nil
		}
		if len(rest) < walHeaderSize {
			return off, lastLSN, true, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		lsn := binary.LittleEndian.Uint64(rest[4:])
		crc := binary.LittleEndian.Uint32(rest[12:])
		if n > walMaxPayload || int64(n) > int64(len(rest)-walHeaderSize) {
			return off, lastLSN, true, nil
		}
		payload := rest[walHeaderSize : walHeaderSize+int64(n)]
		sum := crc32.Update(0, crcTable, rest[4:12])
		sum = crc32.Update(sum, crcTable, payload)
		// LSNs within a segment are monotone from the segment's name
		// (gaps are legal after AdvanceTo), so a stale record a crashy
		// filesystem resurfaced from an older position also fails here.
		if sum != crc || lsn < want {
			return off, lastLSN, true, nil
		}
		if fn != nil {
			if err := fn(lsn, payload); err != nil {
				return off, lastLSN, false, err
			}
		}
		lastLSN = lsn
		want = lsn + 1
		off += walHeaderSize + int64(n)
	}
}

// syncDir fsyncs a directory so file creations, deletions and renames in
// it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
