package persist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ldprecover/internal/stream"
)

// The seal-log is the root's tiny append-only companion to its per-seal
// snapshots: one record per sealed epoch and one per membership change,
// each carrying the *complete* post-event membership (member set plus
// pending boundary schedule). Snapshots make the merged estimate state
// durable; the seal-log makes the barrier's expectations durable — who
// the next epoch must wait for. Replay is trivial by construction: the
// last valid record wins, so a restarting root or a promoting standby
// never reconstructs membership by folding history.
//
// Records are length-prefixed JSON frames with a CRC-32C trailer
// (u32 payload length, u32 CRC, payload); a torn tail from a crash
// mid-append is detected and truncated on open, like the WAL's.
const (
	sealLogName   = "seals.log"
	sealLogHeader = 8 // u32 length + u32 crc

	// sealLogMaxRecord bounds a record so a corrupt length field cannot
	// drive an unbounded allocation. Membership of a few hundred nodes
	// fits in a few KiB; 1 MiB is generous.
	sealLogMaxRecord = 1 << 20
)

// SealRecord is one seal-log entry. Kind "seal" records a sealed epoch
// (Epoch, Nodes, Missing); kind "member" records a join or leave (Node,
// Join, Epoch = effective boundary). Every record of either kind also
// snapshots the full membership state after the event.
type SealRecord struct {
	Kind    string   `json:"kind"`
	Epoch   int      `json:"epoch"`
	Node    string   `json:"node,omitempty"`
	Join    bool     `json:"join,omitempty"`
	Nodes   []string `json:"nodes,omitempty"`
	Missing []string `json:"missing,omitempty"`

	// Members and Sched are the post-event membership: the expected set
	// and the pending boundary changes, as exported by
	// stream.SealedMerger.Membership.
	Members []string              `json:"members"`
	Sched   []stream.MemberChange `json:"sched,omitempty"`
}

const (
	// SealRecordSeal marks a sealed-epoch record.
	SealRecordSeal = "seal"
	// SealRecordMember marks a membership-change record.
	SealRecordMember = "member"
)

// SealLog is the root's open seal-log, append side.
type SealLog struct {
	mu     sync.Mutex
	f      *os.File
	dir    string
	closed bool
	last   *SealRecord // most recent valid record, nil on a fresh log
}

// OpenSealLog opens (creating if absent) dir's seal-log, truncates any
// torn tail, and remembers the last valid record so Membership answers
// without rescanning.
func OpenSealLog(dir string) (*SealLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, sealLogName)
	records, validLen, err := readSealLog(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if info, err := f.Stat(); err == nil && info.Size() > validLen {
		// Torn tail from a crash mid-append: drop it, keep the prefix.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l := &SealLog{f: f, dir: dir}
	if len(records) > 0 {
		l.last = &records[len(records)-1]
	}
	return l, nil
}

// Append frames, writes, and fsyncs one record. The caller orders it
// against the acknowledgement it backs: a membership record goes down
// before the join/leave is acked, a seal record before the new
// watermark is advertised.
func (l *SealLog) Append(rec SealRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > sealLogMaxRecord {
		return fmt.Errorf("persist: seal-log record of %d bytes exceeds cap %d", len(payload), sealLogMaxRecord)
	}
	frame := make([]byte, sealLogHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[sealLogHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: seal-log is closed")
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	clone := rec
	l.last = &clone
	return nil
}

// Membership returns the membership state of the last record, ok=false
// on a fresh log (caller falls back to its -nodes config).
func (l *SealLog) Membership() (members []string, sched []stream.MemberChange, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last == nil {
		return nil, nil, false
	}
	return append([]string(nil), l.last.Members...), append([]stream.MemberChange(nil), l.last.Sched...), true
}

// Close fsyncs and closes the log file.
func (l *SealLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadSealLogMembership scans dir's seal-log read-only — the standby's
// view — and returns the last record's membership. ok is false when the
// log is absent or holds no valid record.
func ReadSealLogMembership(dir string) (members []string, sched []stream.MemberChange, ok bool, err error) {
	records, _, err := readSealLog(filepath.Join(dir, sealLogName))
	if err != nil || len(records) == 0 {
		return nil, nil, false, err
	}
	last := records[len(records)-1]
	return last.Members, last.Sched, true, nil
}

// readSealLog parses every valid record of the log at path, stopping at
// the first frame that is truncated or fails its checksum; validLen is
// the byte offset of the clean prefix. A missing file is an empty log.
func readSealLog(path string) (records []SealRecord, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for int64(len(data))-off >= sealLogHeader {
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > sealLogMaxRecord || int64(n) > int64(len(data))-off-sealLogHeader {
			break
		}
		payload := data[off+sealLogHeader : off+sealLogHeader+int64(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4:]) {
			break
		}
		var rec SealRecord
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		records = append(records, rec)
		off += sealLogHeader + int64(n)
	}
	return records, off, nil
}
