package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ldprecover/internal/ldp"
	"ldprecover/internal/stream"
)

func rootTestManager(t *testing.T) *stream.EpochManager {
	t.Helper()
	mgr, err := stream.NewEpochManager(stream.Config{
		Params:  ldp.Params{Epsilon: 0.7, P: 0.5, Q: 0.25, Domain: 8},
		Window:  2,
		History: 4,
		TargetK: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestSnapshotStoreRoundTrip: a root restored from its per-seal
// snapshot serves the same window estimate and resumes at the same
// sealed watermark.
func TestSnapshotStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mgr := rootTestManager(t)
	store, err := OpenSnapshotStore(dir, mgr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Restored().SnapshotSeq != 0 {
		t.Fatalf("cold start restored %+v", store.Restored())
	}
	counts := []int64{5, 4, 3, 2, 1, 0, 7, 6}
	for e := 0; e < 3; e++ {
		if err := mgr.AddCounts(counts, 20); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := store.Persist(); err != nil {
			t.Fatal(err)
		}
	}
	want := mgr.Latest()

	mgr2 := rootTestManager(t)
	store2, err := OpenSnapshotStore(dir, mgr2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Restored().SnapshotSeq != 3 {
		t.Fatalf("restored %+v, want 3 sealed epochs", store2.Restored())
	}
	if !reflect.DeepEqual(mgr2.Latest(), want) {
		t.Fatal("restored latest estimate differs")
	}
	if got := mgr2.Stats().Epochs; got != 3 {
		t.Fatalf("restored %d epochs", got)
	}
	// Retention pruned to 2 generations.
	snaps, err := os.ReadDir(filepath.Join(dir, "snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshot files retained, want 2", len(snaps))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Persist(); err == nil {
		t.Fatal("persist after close succeeded")
	}
}

// TestSnapshotStoreRejectsReportWAL: a directory holding a report-level
// WAL belongs to a frontend or single-node server; opening it as a root
// snapshot store must refuse, not replay tally-incompatible frames.
func TestSnapshotStoreRejectsReportWAL(t *testing.T) {
	dir := t.TempDir()
	mgr := rootTestManager(t)
	// Give the directory a report-level WAL, as a frontend would.
	front, err := Open(dir, mgr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := ldp.GRRReport(3)
	frame, err := ldp.MarshalReportBatch([]ldp.Report{rep})
	if err != nil {
		t.Fatal(err)
	}
	if err := front.AppendBatch(frame, []ldp.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := front.Close(); err != nil {
		t.Fatal(err)
	}

	_, err = OpenSnapshotStore(dir, rootTestManager(t), 2)
	if err == nil {
		t.Fatal("root snapshot store opened over a report-level WAL")
	}
	if !strings.Contains(err.Error(), "report-level WAL") {
		t.Fatalf("error %q does not explain the WAL conflict", err)
	}
}
