package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays everything after `after` into memory.
func collect(t *testing.T, w *WAL, after uint64) (lsns []uint64, payloads [][]byte) {
	t.Helper()
	err := w.Replay(after, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lsns, payloads
}

func payload(i int) []byte {
	return bytes.Repeat([]byte{byte(i)}, 10+i%7)
}

func TestWALAppendReplayReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		lsn, err := w.Append(payload(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	check := func(w *WAL, after uint64) {
		t.Helper()
		lsns, payloads := collect(t, w, after)
		if len(lsns) != n-int(after) {
			t.Fatalf("replay after %d returned %d records, want %d", after, len(lsns), n-int(after))
		}
		for j, lsn := range lsns {
			i := int(after) + j
			if lsn != uint64(i+1) || !bytes.Equal(payloads[j], payload(i)) {
				t.Fatalf("record %d: lsn %d payload %v", i, lsn, payloads[j])
			}
		}
	}
	check(w, 0)
	check(w, 9)
	if got := w.LastLSN(); got != n {
		t.Fatalf("LastLSN %d, want %d", got, n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(payload(0)); err == nil {
		t.Fatal("append after close succeeded")
	}

	// Reopen: same records, appends continue at the next LSN.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	check(w2, 0)
	lsn, err := w2.Append(payload(99))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != n+1 {
		t.Fatalf("post-reopen append got LSN %d, want %d", lsn, n+1)
	}
}

// lastSegment returns the path of the newest WAL segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1].path
}

// TestWALTornTail pins the crash-mid-append semantics: however the final
// record is damaged — truncated header, truncated payload, flipped bit,
// garbage length — reopening tolerates it, replay stops at the last
// intact record, and the torn LSN is reissued to the next append.
func TestWALTornTail(t *testing.T) {
	damage := map[string]func(t *testing.T, path string){
		"truncated-header": func(t *testing.T, path string) {
			chop(t, path, walHeaderSize+3) // cuts into the final header
		},
		"truncated-payload": func(t *testing.T, path string) {
			chop(t, path, 9) // header intact, payload short
		},
		"flipped-payload-bit": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage-appended": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// A wildly wrong length field must not drive an allocation.
			if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
	}
	for name, damageFn := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := w.Append(payload(i)); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			keep := 2
			if name == "garbage-appended" {
				keep = 3 // the garbage follows three intact records
			}
			damageFn(t, lastSegment(t, dir))

			w2, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			lsns, _ := collect(t, w2, 0)
			if len(lsns) != keep {
				t.Fatalf("replay kept %d records, want %d", len(lsns), keep)
			}
			// The torn LSN was never durable, so it is reissued.
			lsn, err := w2.Append(payload(9))
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(keep + 1); lsn != want {
				t.Fatalf("post-damage append got LSN %d, want %d", lsn, want)
			}
		})
	}
}

// chop truncates the last n bytes off a file.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// TestWALMidLogCorruption: damage in a non-final segment is not a torn
// tail — valid records follow it, so replay must fail loudly instead of
// silently dropping them.
func TestWALMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want >= 3", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("mid-log corruption replayed silently")
	}
	w.Close()
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := w.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != n+1 { // each append rotated; one fresh live segment
		t.Fatalf("%d segments after %d appends, want %d", len(segs), n, n+1)
	}

	// Truncating through LSN 5 must drop exactly the segments holding
	// records 1..5 and keep 6..8 replayable.
	if err := w.TruncateThrough(5); err != nil {
		t.Fatal(err)
	}
	lsns, _ := collect(t, w, 0)
	if len(lsns) != 3 || lsns[0] != 6 {
		t.Fatalf("post-truncate replay: %v", lsns)
	}
	// Appends continue unaffected.
	if lsn, err := w.Append(payload(9)); err != nil || lsn != n+1 {
		t.Fatalf("append after truncate: lsn %d err %v", lsn, err)
	}

	// Truncating through everything leaves an empty but appendable log.
	if err := w.TruncateThrough(w.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if lsns, _ := collect(t, w, 0); len(lsns) != 0 {
		t.Fatalf("records survived full truncation: %v", lsns)
	}
	if lsn, err := w.Append(payload(10)); err != nil || lsn != n+2 {
		t.Fatalf("append after full truncate: lsn %d err %v", lsn, err)
	}
}

// TestWALAdvanceTo pins the lost-log guard: when a snapshot's WAL
// position is beyond the (wiped) log, fresh appends must not reuse
// covered LSNs, and the resulting in-segment LSN gap must survive a
// reopen rather than read as a torn tail.
func TestWALAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(payload(0)); err != nil {
		t.Fatal(err)
	}
	w.AdvanceTo(100)
	lsn, err := w.Append(payload(1))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 101 {
		t.Fatalf("append after AdvanceTo got LSN %d, want 101", lsn)
	}
	w.AdvanceTo(50) // never moves backwards
	if lsn, err = w.Append(payload(2)); err != nil || lsn != 102 {
		t.Fatalf("append got LSN %d err %v, want 102", lsn, err)
	}
	w.Close()

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	lsns, _ := collect(t, w2, 0)
	want := []uint64{1, 101, 102}
	if fmt.Sprint(lsns) != fmt.Sprint(want) {
		t.Fatalf("replay after reopen: %v, want %v", lsns, want)
	}
	if got := w2.LastLSN(); got != 102 {
		t.Fatalf("LastLSN %d after reopen, want 102", got)
	}
}

func TestWALEmptyAndFreshDirs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal") // created on demand
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.LastLSN(); got != 0 {
		t.Fatalf("fresh WAL LastLSN %d", got)
	}
	if lsns, _ := collect(t, w, 0); len(lsns) != 0 {
		t.Fatal("fresh WAL replayed records")
	}
	w.Close()
	// Reopen with zero records is fine too.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, err := w2.Append(payload(0)); err != nil || lsn != 1 {
		t.Fatalf("first append: lsn %d err %v", lsn, err)
	}
	w2.Close()
}

func TestWALOversizedPayload(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, walMaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
