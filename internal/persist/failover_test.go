package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ldprecover/internal/ldp"
	"ldprecover/internal/stream"
)

func failoverStreamConfig(d int) stream.Config {
	return stream.Config{
		Params:      ldp.Params{Epsilon: 0.7, P: 0.5, Q: 1.0 / 3.0, Domain: d},
		Window:      2,
		History:     8,
		TargetK:     2,
		MinZ:        2,
		StableAfter: 2,
		MinHistory:  2,
	}
}

func TestSealLogAppendReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	log, err := OpenSealLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := log.Membership(); ok {
		t.Fatal("fresh log claims membership")
	}
	recs := []SealRecord{
		{Kind: SealRecordMember, Epoch: 0, Node: "fe-2", Join: true,
			Members: []string{"fe-0", "fe-1", "fe-2"}},
		{Kind: SealRecordSeal, Epoch: 0, Nodes: []string{"fe-0", "fe-1", "fe-2"},
			Members: []string{"fe-0", "fe-1", "fe-2"}},
		{Kind: SealRecordMember, Epoch: 2, Node: "fe-0", Join: false,
			Members: []string{"fe-0", "fe-1", "fe-2"},
			Sched:   []stream.MemberChange{{Epoch: 2, Node: "fe-0", Join: false}}},
	}
	for _, r := range recs {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	members, sched, ok := log.Membership()
	if !ok || !reflect.DeepEqual(members, recs[2].Members) || !reflect.DeepEqual(sched, recs[2].Sched) {
		t.Fatalf("in-memory membership: %v %v %v", members, sched, ok)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Read-only scan (the standby's view) agrees.
	members, sched, ok, err = ReadSealLogMembership(dir)
	if err != nil || !ok || !reflect.DeepEqual(members, recs[2].Members) || !reflect.DeepEqual(sched, recs[2].Sched) {
		t.Fatalf("read-only membership: %v %v %v %v", members, sched, ok, err)
	}

	// A torn tail (crash mid-append) is truncated; the prefix survives.
	path := filepath.Join(dir, sealLogName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, sealLogHeader+3)
	binary.LittleEndian.PutUint32(torn, 100) // claims 100 payload bytes, has 3
	if err := os.WriteFile(path, append(append([]byte(nil), clean...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	log2, err := OpenSealLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if members, _, ok := log2.Membership(); !ok || !reflect.DeepEqual(members, recs[2].Members) {
		t.Fatalf("membership after torn tail: %v %v", members, ok)
	}
	// Appends after truncation land on the clean prefix.
	next := SealRecord{Kind: SealRecordSeal, Epoch: 1, Members: []string{"fe-1", "fe-2"}}
	if err := log2.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err := readSealLog(path)
	if err != nil || len(records) != len(recs)+1 {
		t.Fatalf("replay after torn-tail append: %d records, err %v", len(records), err)
	}
	if !reflect.DeepEqual(records[len(records)-1], next) {
		t.Fatalf("last record: %+v", records[len(records)-1])
	}

	// A corrupted byte mid-log stops replay at the damage, keeping the
	// prefix — the last *valid* record still wins.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(clean)+4] ^= 0xff // flip inside the appended record's CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	members, _, ok, err = ReadSealLogMembership(dir)
	if err != nil || !ok || !reflect.DeepEqual(members, recs[2].Members) {
		t.Fatalf("membership after corruption: %v %v %v", members, ok, err)
	}

	// An absent log is an empty log, not an error.
	if _, _, ok, err := ReadSealLogMembership(t.TempDir()); err != nil || ok {
		t.Fatalf("absent log: ok=%v err=%v", ok, err)
	}
}

func TestLeaseAcquireRefuseRefreshRelease(t *testing.T) {
	dir := t.TempDir()
	const stale = 250 * time.Millisecond

	l, err := AcquireLease(dir, "root-a", stale)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh foreign lease blocks acquisition.
	if _, err := AcquireLease(dir, "root-b", stale); err == nil {
		t.Fatal("fresh foreign lease acquired")
	}
	// The holder itself may re-acquire (restart of the same root).
	if _, err := AcquireLease(dir, "root-a", stale); err != nil {
		t.Fatalf("self re-acquire: %v", err)
	}
	if info, err := InspectLease(dir); err != nil || info.Owner != "root-a" {
		t.Fatalf("inspect: %+v err=%v", info, err)
	}
	// Heartbeats keep it fresh.
	if err := l.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Once stale, a standby takes over...
	time.Sleep(stale + 50*time.Millisecond)
	l2, err := AcquireLease(dir, "root-b", stale)
	if err != nil {
		t.Fatalf("stale lease not taken: %v", err)
	}
	// ...and the superseded holder's next heartbeat tells it to stop.
	if err := l.Refresh(); err == nil {
		t.Fatal("superseded holder heartbeat succeeded")
	}
	// The superseded holder's release is a no-op, not a theft.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if info, err := InspectLease(dir); err != nil || info.Owner != "root-b" {
		t.Fatalf("lease after superseded release: %+v err=%v", info, err)
	}
	// The real holder's release clears the way without waiting out TTL.
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireLease(dir, "root-c", time.Hour); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}

	// Parameter validation.
	if _, err := AcquireLease(dir, "", stale); err == nil {
		t.Fatal("empty owner accepted")
	}
	if _, err := AcquireLease(dir, "x", 0); err == nil {
		t.Fatal("zero staleness accepted")
	}
}

// TestStandbyTailerTracksRootAndPromotes is the persist-level failover
// story: a root seals epochs, persisting a snapshot per seal and a
// seal-log; a standby tails both; when the root dies the standby
// promotes a merger that resumes at the persisted watermark with the
// logged membership, dedupes every re-sent tally, and merges the
// in-flight epoch the crash lost.
func TestStandbyTailerTracksRootAndPromotes(t *testing.T) {
	const d = 16
	dir := t.TempDir()
	cfg := failoverStreamConfig(d)

	rootMgr, err := stream.NewEpochManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := OpenSnapshotStore(dir, rootMgr, 4)
	if err != nil {
		t.Fatal(err)
	}
	merger, err := stream.NewSealedMerger(rootMgr, []string{"fe-0", "fe-1"})
	if err != nil {
		t.Fatal(err)
	}
	slog, err := OpenSealLog(dir)
	if err != nil {
		t.Fatal(err)
	}

	tailer, err := NewStandbyTailer(dir, func() (*stream.EpochManager, error) {
		return stream.NewEpochManager(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	if adv, err := tailer.Poll(); err != nil || adv {
		t.Fatalf("poll of an empty dir: adv=%v err=%v", adv, err)
	}
	if tailer.Manager() != nil {
		t.Fatal("warm manager before any snapshot")
	}

	tally := func(node string, epoch int) *ldp.Tally {
		tl := &ldp.Tally{NodeID: node, Epoch: epoch, Counts: make([]int64, d), Total: 100}
		tl.Counts[epoch%d] = 100
		return tl
	}
	var sent []*ldp.Tally
	sealEpoch := func(e int) {
		t.Helper()
		for _, n := range merger.Nodes() {
			tl := tally(n, e)
			if _, err := merger.MergeSealed(tl); err != nil {
				t.Fatal(err)
			}
			sent = append(sent, tl)
		}
		if est, info, err := merger.TrySeal(); err != nil || est == nil {
			t.Fatalf("seal %d: est=%v err=%v", e, est, err)
		} else {
			if err := snaps.Persist(); err != nil {
				t.Fatal(err)
			}
			members, sched := merger.Membership()
			if err := slog.Append(SealRecord{Kind: SealRecordSeal, Epoch: info.Epoch,
				Nodes: info.Nodes, Missing: info.Missing, Members: members, Sched: sched}); err != nil {
				t.Fatal(err)
			}
		}
	}

	sealEpoch(0)
	sealEpoch(1)
	if adv, err := tailer.Poll(); err != nil || !adv {
		t.Fatalf("tailer missed snapshots: adv=%v err=%v", adv, err)
	}
	if seq, ok := tailer.SnapshotSeq(); !ok || seq != 2 {
		t.Fatalf("tailed seq %d ok=%v, want 2", seq, ok)
	}
	warm := tailer.Manager()
	if warm == nil || warm.Stats().Epochs != 2 {
		t.Fatalf("warm manager: %+v", warm)
	}
	// Polling with nothing new keeps the same generation.
	if adv, err := tailer.Poll(); err != nil || adv {
		t.Fatalf("idle poll advanced: adv=%v err=%v", adv, err)
	}
	if tailer.Manager() != warm {
		t.Fatal("idle poll replaced the warm manager")
	}

	// Membership changes flow through the seal-log.
	eff, err := merger.Join("fe-2")
	if err != nil {
		t.Fatal(err)
	}
	members, sched := merger.Membership()
	if err := slog.Append(SealRecord{Kind: SealRecordMember, Epoch: eff, Node: "fe-2", Join: true,
		Members: members, Sched: sched}); err != nil {
		t.Fatal(err)
	}
	sealEpoch(2)

	// The root dies mid-epoch 3: fe-0's tally is in flight, nothing of
	// epoch 3 is persisted.
	if _, err := merger.MergeSealed(tally("fe-0", 3)); err != nil {
		t.Fatal(err)
	}
	wantEst := func() *stream.WindowEstimate {
		// The reference: an uninterrupted root sealing epoch 3 from both
		// deliveries.
		refMgr, err := stream.NewEpochManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stream.NewSealedMerger(refMgr, []string{"fe-0", "fe-1", "fe-2"})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 4; e++ {
			for _, n := range ref.Nodes() {
				if e < 2 && n == "fe-2" {
					continue
				}
				if _, err := ref.MergeSealed(tally(n, e)); err != nil {
					t.Fatal(err)
				}
			}
			est, _, err := ref.SealPartial()
			if err != nil || est == nil {
				t.Fatalf("ref seal %d: %v %v", e, est, err)
			}
			if e == 3 {
				return est
			}
		}
		return nil
	}()

	promoted, err := tailer.Promote([]string{"wrong-fallback"})
	if err != nil {
		t.Fatal(err)
	}
	if got := promoted.SealedThrough(); got != 3 {
		t.Fatalf("promoted watermark %d, want 3", got)
	}
	if got := promoted.Nodes(); !reflect.DeepEqual(got, []string{"fe-0", "fe-1", "fe-2"}) {
		t.Fatalf("promoted membership %v (fallback must lose to the seal-log)", got)
	}
	// Frontends re-send everything unacked and then some: every sealed
	// tally dedupes, the lost in-flight one merges fresh.
	for _, tl := range sent {
		res, err := promoted.MergeSealed(tl.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Duplicate {
			t.Fatalf("tally %s/%d double-merged across promotion", tl.NodeID, tl.Epoch)
		}
	}
	for _, n := range []string{"fe-0", "fe-1", "fe-2"} {
		if _, err := promoted.MergeSealed(tally(n, 3)); err != nil {
			t.Fatal(err)
		}
	}
	est, info, err := promoted.TrySeal()
	if err != nil || est == nil {
		t.Fatalf("promoted seal: est=%v err=%v", est, err)
	}
	if info.Epoch != 3 || len(info.Missing) != 0 {
		t.Fatalf("promoted accounting: %+v", info)
	}
	if !reflect.DeepEqual(est, wantEst) {
		t.Fatalf("promoted estimate diverged from uninterrupted root\ngot  %+v\nwant %+v", est, wantEst)
	}
}

// TestStandbyPromoteEmptyDirFallsBack: promoting against a directory
// the root never sealed into uses the fallback membership and a fresh
// manager — the cluster simply starts from epoch 0 under the new root.
func TestStandbyPromoteEmptyDirFallsBack(t *testing.T) {
	const d = 8
	tailer, err := NewStandbyTailer(t.TempDir(), func() (*stream.EpochManager, error) {
		return stream.NewEpochManager(failoverStreamConfig(d))
	})
	if err != nil {
		t.Fatal(err)
	}
	promoted, err := tailer.Promote([]string{"fe-0", "fe-1"})
	if err != nil {
		t.Fatal(err)
	}
	if promoted.SealedThrough() != 0 || !reflect.DeepEqual(promoted.Nodes(), []string{"fe-0", "fe-1"}) {
		t.Fatalf("empty-dir promotion: through=%d nodes=%v", promoted.SealedThrough(), promoted.Nodes())
	}
	// With neither a seal-log nor fallback nodes there is nothing to
	// promote onto.
	if _, err := tailer.Promote(nil); err == nil {
		t.Fatal("promotion with no membership source accepted")
	}
}
