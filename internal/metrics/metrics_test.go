package metrics

import (
	"math"
	"testing"
)

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2}, []float64{1, 4})
	if err != nil || got != 2 {
		t.Fatalf("MSE %v (err %v)", got, err)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestFrequencyGain(t *testing.T) {
	est := []float64{0.5, 0.3, 0.2}
	gen := []float64{0.4, 0.4, 0.2}
	fg, err := FrequencyGain(est, gen, []int{0})
	if err != nil || math.Abs(fg-0.1) > 1e-12 {
		t.Fatalf("fg %v (err %v)", fg, err)
	}
	fg, err = FrequencyGain(est, gen, []int{0, 1})
	if err != nil || math.Abs(fg) > 1e-12 {
		t.Fatalf("fg %v (err %v)", fg, err)
	}
}

func TestFrequencyGainValidation(t *testing.T) {
	if _, err := FrequencyGain([]float64{1}, []float64{1, 2}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FrequencyGain([]float64{1}, []float64{1}, nil); err == nil {
		t.Fatal("no targets accepted")
	}
	if _, err := FrequencyGain([]float64{1}, []float64{1}, []int{5}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}
