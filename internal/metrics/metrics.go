// Package metrics implements the paper's evaluation metrics (§VI-B):
// mean squared error between frequency vectors (Eq. 36) and the frequency
// gain of targeted attacks (Eq. 37).
package metrics

import (
	"errors"
	"fmt"

	"ldprecover/internal/stats"
)

// MSE is the mean squared error between an estimate and a reference
// vector: (1/d)·Σ_v (est_v - ref_v)² (Eq. 36).
func MSE(estimate, reference []float64) (float64, error) {
	return stats.MSE(estimate, reference)
}

// FrequencyGain is the total increase of the target items' frequencies in
// estimate relative to the genuine estimate (Eq. 37, oriented so a
// successful attack yields a positive gain):
//
//	FG = Σ_{t∈T} (estimate(t) - genuine(t))
func FrequencyGain(estimate, genuine []float64, targets []int) (float64, error) {
	if len(estimate) != len(genuine) {
		return 0, fmt.Errorf("metrics: estimate length %d, genuine length %d",
			len(estimate), len(genuine))
	}
	if len(targets) == 0 {
		return 0, errors.New("metrics: frequency gain requires targets")
	}
	var fg float64
	for _, t := range targets {
		if t < 0 || t >= len(estimate) {
			return 0, fmt.Errorf("metrics: target %d outside domain [0,%d)", t, len(estimate))
		}
		fg += estimate[t] - genuine[t]
	}
	return fg, nil
}
