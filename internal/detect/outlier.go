package detect

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ldprecover/internal/stats"
)

// ZScoreOutliers identifies likely attack targets by statistical anomaly
// against historical frequency series (§V-D's outlier-detection oracle):
// for each item it computes the z-score of the current frequency against
// the item's own history and returns up to k items whose score exceeds
// minZ, ordered by decreasing score. The history is periods × items.
func ZScoreOutliers(history [][]float64, current []float64, k int, minZ float64) ([]int, error) {
	return ZScoreOutliersMinSD(history, current, k, minZ, 0)
}

// ZScoreOutliersMinSD is ZScoreOutliers with a deviation floor: each
// item's historical standard deviation is taken as at least minSD before
// scoring. Callers who know the estimator's theoretical noise (e.g. the
// LDP aggregation variance of Eq. 4/7 at the current report count) pass
// it here so items whose history happens to be degenerate — a tail item
// the simplex refinement clips to zero every period has sample deviation
// zero — cannot turn ordinary estimation noise into an astronomical
// score and crowd the genuinely attacked items out of the top k.
func ZScoreOutliersMinSD(history [][]float64, current []float64, k int, minZ, minSD float64) ([]int, error) {
	if len(history) < 2 {
		return nil, errors.New("detect: need at least 2 history periods")
	}
	d := len(current)
	if d == 0 {
		return nil, errors.New("detect: empty current frequencies")
	}
	for t, fs := range history {
		if len(fs) != d {
			return nil, fmt.Errorf("detect: history period %d has %d items, want %d", t, len(fs), d)
		}
	}
	if k < 1 {
		return nil, fmt.Errorf("detect: invalid outlier count %d", k)
	}
	if minZ < 0 || math.IsNaN(minZ) {
		return nil, fmt.Errorf("detect: invalid z threshold %v", minZ)
	}
	if minSD < 0 || math.IsNaN(minSD) || math.IsInf(minSD, 0) {
		return nil, fmt.Errorf("detect: invalid deviation floor %v", minSD)
	}

	type scored struct {
		item int
		z    float64
	}
	var out []scored
	series := make([]float64, len(history))
	for v := 0; v < d; v++ {
		for t := range history {
			series[t] = history[t][v]
		}
		mu := stats.Mean(series)
		sd := math.Sqrt(stats.SampleVariance(series))
		if sd < minSD {
			sd = minSD
		}
		if sd == 0 {
			// A perfectly flat history cannot absorb any deviation; any
			// change is infinitely anomalous. Use a tiny floor instead to
			// keep scores finite and comparable.
			sd = 1e-12
		}
		z := (current[v] - mu) / sd
		if z >= minZ {
			out = append(out, scored{v, z})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].z != out[b].z {
			return out[a].z > out[b].z
		}
		return out[a].item < out[b].item
	})
	if len(out) > k {
		out = out[:k]
	}
	items := make([]int, len(out))
	for i, s := range out {
		items[i] = s.item
	}
	return items, nil
}

// TopIncrease returns the k items with the largest frequency increase
// from before to after — the paper's target-identification rule for the
// adaptive attack ("items that exhibit the top-r/2 frequency increase
// following the attack", §VI-A.4).
func TopIncrease(before, after []float64, k int) ([]int, error) {
	if len(before) != len(after) {
		return nil, fmt.Errorf("detect: before length %d, after length %d", len(before), len(after))
	}
	if len(before) == 0 {
		return nil, errors.New("detect: empty frequency vectors")
	}
	if k < 1 || k > len(before) {
		return nil, fmt.Errorf("detect: invalid top count %d", k)
	}
	idx := make([]int, len(before))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := after[idx[a]] - before[idx[a]]
		db := after[idx[b]] - before[idx[b]]
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}
