package detect

import (
	"errors"
	"fmt"

	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

// KMeansDefense is the k-means-based defense of §VII-B (after Li et al.
// and Du et al.): sample several subsets of the reports, estimate a
// frequency vector per subset, cluster the vectors into two groups, and
// trust the larger cluster as genuine. The smaller cluster's mean
// frequency vector doubles as a malicious-statistics estimate, which
// LDPRecover-KM feeds into the recovery pipeline.
type KMeansDefense struct {
	// Subsets is the number s of sampled subsets (default 10).
	Subsets int
	// SampleRate is the per-report inclusion probability ξ in (0,1].
	SampleRate float64
	// MaxIters bounds the Lloyd iterations (default 20).
	MaxIters int
	// Restarts is the number of k-means++ restarts (default 4).
	Restarts int
}

// KMResult carries the defense's outputs.
type KMResult struct {
	// Genuine is the majority cluster's mean frequency estimate projected
	// onto the simplex.
	Genuine []float64
	// RawGenuine is the unprojected majority-cluster mean.
	RawGenuine []float64
	// Malicious is the minority cluster's mean frequency estimate — the
	// learnt malicious statistics for LDPRecover-KM.
	Malicious []float64
	// GenuineSubsets and MaliciousSubsets count cluster memberships.
	GenuineSubsets, MaliciousSubsets int
}

func (kd *KMeansDefense) validate() error {
	if kd.Subsets < 2 {
		return fmt.Errorf("detect: k-means defense needs >= 2 subsets, got %d", kd.Subsets)
	}
	if !(kd.SampleRate > 0) || kd.SampleRate > 1 {
		return fmt.Errorf("detect: sample rate %v outside (0,1]", kd.SampleRate)
	}
	return nil
}

// NewKMeansDefense returns a defense with the paper-style defaults.
func NewKMeansDefense(sampleRate float64) (*KMeansDefense, error) {
	kd := &KMeansDefense{Subsets: 10, SampleRate: sampleRate, MaxIters: 20, Restarts: 4}
	if err := kd.validate(); err != nil {
		return nil, err
	}
	return kd, nil
}

// Run executes the defense on report-level data.
func (kd *KMeansDefense) Run(r *rng.Rand, reports []ldp.Report, pr ldp.Params) (*KMResult, error) {
	if err := kd.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("detect: nil random generator")
	}
	if len(reports) == 0 {
		return nil, errors.New("detect: no reports")
	}
	vectors := make([][]float64, 0, kd.Subsets)
	for s := 0; s < kd.Subsets; s++ {
		var sub []ldp.Report
		for _, rep := range reports {
			if r.Bernoulli(kd.SampleRate) {
				sub = append(sub, rep)
			}
		}
		if len(sub) == 0 {
			continue
		}
		fs, err := ldp.EstimateFrequencies(sub, pr)
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, fs)
	}
	return kd.finish(r, vectors)
}

// RunCounts executes the defense on aggregated support counts (the fast
// simulation path): a subset's support count for item v is marginally
// Binomial(C(v), ξ) under per-report Bernoulli(ξ) inclusion, and the
// subset size is Binomial(total, ξ).
func (kd *KMeansDefense) RunCounts(r *rng.Rand, counts []int64, total int64, pr ldp.Params) (*KMResult, error) {
	if err := kd.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, errors.New("detect: nil random generator")
	}
	if len(counts) != pr.Domain {
		return nil, fmt.Errorf("detect: counts length %d, domain %d", len(counts), pr.Domain)
	}
	if total <= 0 {
		return nil, fmt.Errorf("detect: non-positive total %d", total)
	}
	vectors := make([][]float64, 0, kd.Subsets)
	for s := 0; s < kd.Subsets; s++ {
		size := r.Binomial(total, kd.SampleRate)
		if size == 0 {
			continue
		}
		sub := make([]int64, len(counts))
		for v, c := range counts {
			sub[v] = r.Binomial(c, kd.SampleRate)
		}
		fs, err := ldp.Unbias(sub, size, pr)
		if err != nil {
			return nil, err
		}
		vectors = append(vectors, fs)
	}
	return kd.finish(r, vectors)
}

// finish clusters subset vectors and assembles the result.
func (kd *KMeansDefense) finish(r *rng.Rand, vectors [][]float64) (*KMResult, error) {
	if len(vectors) < 2 {
		return nil, errors.New("detect: too few non-empty subsets to cluster")
	}
	assign, cents, err := KMeans2(r, vectors, kd.MaxIters, kd.Restarts)
	if err != nil {
		return nil, err
	}
	sizes := [2]int{}
	for _, a := range assign {
		sizes[a]++
	}
	genuine, malicious := 0, 1
	if sizes[1] > sizes[0] {
		genuine, malicious = 1, 0
	}
	projected, err := core.RefineKKT(cents[genuine])
	if err != nil {
		return nil, err
	}
	return &KMResult{
		Genuine:          projected,
		RawGenuine:       cents[genuine],
		Malicious:        cents[malicious],
		GenuineSubsets:   sizes[genuine],
		MaliciousSubsets: sizes[malicious],
	}, nil
}

// RecoverKM is the LDPRecover-KM integration (§VII-B): recovery driven by
// the malicious statistics learnt from the minority cluster rather than
// by Eq. 21 (which is unavailable under input poisoning, where malicious
// data pass through honest perturbation).
func RecoverKM(poisoned []float64, km *KMResult, pr core.Params, eta float64) (*core.Result, error) {
	if km == nil {
		return nil, errors.New("detect: nil k-means result")
	}
	return core.Recover(poisoned, pr, core.Options{
		Eta:               eta,
		MaliciousOverride: km.Malicious,
	})
}
