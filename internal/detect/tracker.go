package detect

import (
	"fmt"
	"slices"
	"sort"
)

// TargetTracker turns a per-epoch stream of outlier observations (e.g.
// ZScoreOutliers over the rolling history) into a stable target set for
// LDPRecover*. A single anomalous epoch proves nothing — genuine drift
// and LDP noise flag items transiently — so the tracker promotes a set
// only after it has been observed identically for StableAfter consecutive
// epochs, and demotes it again only after the same number of consecutive
// empty observations. This is the hysteresis that lets a stream upgrade
// itself from LDPRecover to the paper's partial-knowledge variant (§V-D)
// driven by real history instead of an oracle, without flapping between
// the two estimators on noise.
type TargetTracker struct {
	need   int
	last   []int // canonical form of the previous observation
	streak int
	stable []int
}

// NewTargetTracker returns a tracker that promotes or demotes a target
// set after stableAfter consecutive identical observations.
func NewTargetTracker(stableAfter int) (*TargetTracker, error) {
	if stableAfter < 1 {
		return nil, fmt.Errorf("detect: stableAfter %d < 1", stableAfter)
	}
	return &TargetTracker{need: stableAfter}, nil
}

// Observe folds one epoch's flagged targets (order-insensitive,
// duplicates ignored; nil or empty means "no outliers this epoch") and
// returns the current stable set, which changes only on promotion or
// demotion.
//
// Sharing contract: the returned slice is the tracker's internal stable
// set — the same backing array Stable returns — and must be treated as
// read-only. Callers that publish it to concurrent consumers (JSON
// encoders, monitoring endpoints) must copy first; the stream layer does
// exactly that before handing targets to WindowEstimate or Stats.
func (t *TargetTracker) Observe(targets []int) []int {
	obs := canonicalTargets(targets)
	if equalInts(obs, t.last) {
		t.streak++
	} else {
		t.last = obs
		t.streak = 1
	}
	if t.streak >= t.need {
		if len(obs) == 0 {
			t.stable = nil // demote: the anomaly has gone quiet
		} else {
			t.stable = obs // promote (or switch to a new stable set)
		}
	}
	return t.stable
}

// Stable returns the current stable target set: nil while no set is
// promoted (run LDPRecover), non-empty once one is (run LDPRecover*).
// The same sharing contract as Observe applies: the slice is the
// tracker's internal state and must not be mutated.
func (t *TargetTracker) Stable() []int { return t.stable }

// TrackerState is an exportable copy of a TargetTracker's hysteresis
// state — the last observation, how many consecutive epochs it has held,
// and the promoted stable set. The persistence layer stores it inside
// epoch snapshots so a restarted server resumes mid-streak instead of
// forgetting a partially confirmed attack. The promotion threshold
// (stableAfter) is configuration, not state, and is deliberately absent:
// it comes from NewTargetTracker on both sides of a restart.
type TrackerState struct {
	// Last is the canonical (sorted, deduped) previous observation.
	Last []int
	// Streak is how many consecutive epochs Last has been observed.
	Streak int
	// Stable is the currently promoted target set, nil when none is.
	Stable []int
}

// State exports a deep copy of the tracker's hysteresis state.
func (t *TargetTracker) State() TrackerState {
	return TrackerState{
		Last:   slices.Clone(t.last),
		Streak: t.streak,
		Stable: slices.Clone(t.stable),
	}
}

// SetState replaces the tracker's hysteresis state with a deep copy of
// st. Observations are canonicalized on the way in, so a state produced
// by State restores bit-identically and a hand-built one is normalized
// the same way Observe would have.
func (t *TargetTracker) SetState(st TrackerState) error {
	if st.Streak < 0 {
		return fmt.Errorf("detect: negative observation streak %d", st.Streak)
	}
	t.last = canonicalTargets(st.Last)
	t.streak = st.Streak
	t.stable = canonicalTargets(st.Stable)
	return nil
}

// canonicalTargets sorts and dedups an observation.
func canonicalTargets(targets []int) []int {
	if len(targets) == 0 {
		return nil
	}
	out := append([]int(nil), targets...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
