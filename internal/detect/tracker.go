package detect

import (
	"fmt"
	"sort"
)

// TargetTracker turns a per-epoch stream of outlier observations (e.g.
// ZScoreOutliers over the rolling history) into a stable target set for
// LDPRecover*. A single anomalous epoch proves nothing — genuine drift
// and LDP noise flag items transiently — so the tracker promotes a set
// only after it has been observed identically for StableAfter consecutive
// epochs, and demotes it again only after the same number of consecutive
// empty observations. This is the hysteresis that lets a stream upgrade
// itself from LDPRecover to the paper's partial-knowledge variant (§V-D)
// driven by real history instead of an oracle, without flapping between
// the two estimators on noise.
type TargetTracker struct {
	need   int
	last   []int // canonical form of the previous observation
	streak int
	stable []int
}

// NewTargetTracker returns a tracker that promotes or demotes a target
// set after stableAfter consecutive identical observations.
func NewTargetTracker(stableAfter int) (*TargetTracker, error) {
	if stableAfter < 1 {
		return nil, fmt.Errorf("detect: stableAfter %d < 1", stableAfter)
	}
	return &TargetTracker{need: stableAfter}, nil
}

// Observe folds one epoch's flagged targets (order-insensitive,
// duplicates ignored; nil or empty means "no outliers this epoch") and
// returns the current stable set, which changes only on promotion or
// demotion. The returned slice is read-only and shared across calls.
func (t *TargetTracker) Observe(targets []int) []int {
	obs := canonicalTargets(targets)
	if equalInts(obs, t.last) {
		t.streak++
	} else {
		t.last = obs
		t.streak = 1
	}
	if t.streak >= t.need {
		if len(obs) == 0 {
			t.stable = nil // demote: the anomaly has gone quiet
		} else {
			t.stable = obs // promote (or switch to a new stable set)
		}
	}
	return t.stable
}

// Stable returns the current stable target set: nil while no set is
// promoted (run LDPRecover), non-empty once one is (run LDPRecover*).
func (t *TargetTracker) Stable() []int { return t.stable }

// canonicalTargets sorts and dedups an observation.
func canonicalTargets(targets []int) []int {
	if len(targets) == 0 {
		return nil
	}
	out := append([]int(nil), targets...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
