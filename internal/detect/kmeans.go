package detect

import (
	"errors"
	"fmt"
	"math"

	"ldprecover/internal/rng"
)

// KMeans2 clusters vectors into two clusters with Lloyd's algorithm and
// k-means++ initialization, restarted several times and keeping the
// lowest-inertia solution. It returns the assignment (0 or 1 per vector)
// and the two centroids. Designed for the defense's small inputs (tens of
// subset frequency vectors), not for large-scale clustering.
func KMeans2(r *rng.Rand, vectors [][]float64, maxIters, restarts int) (assign []int, centroids [][]float64, err error) {
	if r == nil {
		return nil, nil, errors.New("detect: nil random generator")
	}
	n := len(vectors)
	if n < 2 {
		return nil, nil, fmt.Errorf("detect: k-means needs >= 2 vectors, got %d", n)
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, nil, fmt.Errorf("detect: vector %d has length %d, want %d", i, len(v), dim)
		}
	}
	if maxIters < 1 {
		maxIters = 20
	}
	if restarts < 1 {
		restarts = 4
	}

	bestInertia := math.Inf(1)
	var bestAssign []int
	var bestCents [][]float64
	for rs := 0; rs < restarts; rs++ {
		cents := kppInit(r, vectors)
		a := make([]int, n)
		for iter := 0; iter < maxIters; iter++ {
			changed := false
			for i, v := range vectors {
				c := 0
				if sqDist(v, cents[1]) < sqDist(v, cents[0]) {
					c = 1
				}
				if a[i] != c {
					a[i] = c
					changed = true
				}
			}
			recomputeCentroids(vectors, a, cents)
			if !changed {
				break
			}
		}
		inertia := 0.0
		for i, v := range vectors {
			inertia += sqDist(v, cents[a[i]])
		}
		if inertia < bestInertia {
			bestInertia = inertia
			bestAssign = append([]int(nil), a...)
			bestCents = [][]float64{
				append([]float64(nil), cents[0]...),
				append([]float64(nil), cents[1]...),
			}
		}
	}
	return bestAssign, bestCents, nil
}

// kppInit picks two initial centroids with k-means++ seeding.
func kppInit(r *rng.Rand, vectors [][]float64) [][]float64 {
	n := len(vectors)
	first := vectors[r.Intn(n)]
	weights := make([]float64, n)
	var total float64
	for i, v := range vectors {
		weights[i] = sqDist(v, first)
		total += weights[i]
	}
	second := vectors[(r.Intn(n)+1)%n] // fallback: any other vector
	if total > 0 {
		u := r.Float64() * total
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u <= acc {
				second = vectors[i]
				break
			}
		}
	}
	return [][]float64{
		append([]float64(nil), first...),
		append([]float64(nil), second...),
	}
}

func recomputeCentroids(vectors [][]float64, assign []int, cents [][]float64) {
	dim := len(cents[0])
	counts := [2]int{}
	sums := [2][]float64{make([]float64, dim), make([]float64, dim)}
	for i, v := range vectors {
		c := assign[i]
		counts[c]++
		for j, x := range v {
			sums[c][j] += x
		}
	}
	for c := 0; c < 2; c++ {
		if counts[c] == 0 {
			continue // keep the previous centroid for an empty cluster
		}
		for j := range cents[c] {
			cents[c][j] = sums[c][j] / float64(counts[c])
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
