package detect

import (
	"math"
	"testing"

	"ldprecover/internal/dataset"
	"ldprecover/internal/rng"
)

func TestZScoreOutliersFindsInjectedSpike(t *testing.T) {
	ds, err := dataset.Zipf("z", 50, 100000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	history, err := dataset.GenerateHistory(ds, 10, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	current := append([]float64(nil), ds.Frequencies()...)
	// Inject a large spike on items 7 and 31.
	current[7] += 0.15
	current[31] += 0.10
	found, err := ZScoreOutliers(history, current, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("found %v", found)
	}
	if found[0] != 7 && found[0] != 31 {
		t.Fatalf("top outlier %d not a spiked item", found[0])
	}
	has := map[int]bool{found[0]: true, found[1]: true}
	if !has[7] || !has[31] {
		t.Fatalf("outliers %v want {7, 31}", found)
	}
}

func TestZScoreOutliersNoFalsePositivesOnCleanData(t *testing.T) {
	ds, _ := dataset.Zipf("z", 30, 50000, 1.0)
	r := rng.New(8)
	history, _ := dataset.GenerateHistory(ds, 10, 0.02, r)
	// Current = one more clean period.
	extra, _ := dataset.GenerateHistory(ds, 1, 0.02, r)
	found, err := ZScoreOutliers(history, extra[0], 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) > 1 {
		t.Fatalf("clean data flagged %v", found)
	}
}

func TestZScoreOutliersValidation(t *testing.T) {
	h := [][]float64{{0.5, 0.5}, {0.4, 0.6}}
	if _, err := ZScoreOutliers(h[:1], []float64{0.5, 0.5}, 1, 2); err == nil {
		t.Fatal("1 period accepted")
	}
	if _, err := ZScoreOutliers(h, []float64{0.5}, 1, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ZScoreOutliers(h, nil, 1, 2); err == nil {
		t.Fatal("empty current accepted")
	}
	if _, err := ZScoreOutliers(h, []float64{0.5, 0.5}, 0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ZScoreOutliers(h, []float64{0.5, 0.5}, 1, math.NaN()); err == nil {
		t.Fatal("NaN threshold accepted")
	}
}

func TestZScoreOutliersFlatHistory(t *testing.T) {
	// Identical history periods: sd=0; the floor keeps scores finite and a
	// genuinely changed item must still surface.
	h := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	found, err := ZScoreOutliers(h, []float64{0.8, 0.2}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0] != 0 {
		t.Fatalf("found %v want [0]", found)
	}
}

func TestTopIncrease(t *testing.T) {
	before := []float64{0.25, 0.25, 0.25, 0.25}
	after := []float64{0.10, 0.40, 0.30, 0.20}
	top, err := TopIncrease(before, after, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("top %v want [1 2]", top)
	}
}

func TestTopIncreaseTies(t *testing.T) {
	before := []float64{0, 0, 0}
	after := []float64{0.1, 0.1, 0.1}
	top, err := TopIncrease(before, after, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ties break by item id.
	if top[0] != 0 || top[1] != 1 {
		t.Fatalf("top %v", top)
	}
}

func TestTopIncreaseValidation(t *testing.T) {
	if _, err := TopIncrease([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := TopIncrease(nil, nil, 1); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := TopIncrease([]float64{1, 2}, []float64{1, 2}, 3); err == nil {
		t.Fatal("k > d accepted")
	}
	if _, err := TopIncrease([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
