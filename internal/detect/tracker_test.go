package detect

import (
	"reflect"
	"testing"
)

func TestTargetTrackerValidation(t *testing.T) {
	if _, err := NewTargetTracker(0); err == nil {
		t.Fatal("stableAfter=0 accepted")
	}
}

// TestTargetTrackerPromotion walks the promote/demote hysteresis.
func TestTargetTrackerPromotion(t *testing.T) {
	tr, err := NewTargetTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet epochs: nothing stabilizes.
	for i := 0; i < 5; i++ {
		if got := tr.Observe(nil); got != nil {
			t.Fatalf("quiet epoch %d promoted %v", i, got)
		}
	}
	// Two agreeing observations are not enough...
	tr.Observe([]int{7, 3})
	if got := tr.Observe([]int{3, 7}); got != nil {
		t.Fatalf("promoted after 2 observations: %v", got)
	}
	// ...the third promotes, order- and duplicate-insensitively.
	if got := tr.Observe([]int{7, 3, 3}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable after 3 observations: %v", got)
	}
	// A transient disagreement does not demote.
	if got := tr.Observe([]int{3}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable lost on transient disagreement: %v", got)
	}
	if got := tr.Observe(nil); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable lost on single empty observation: %v", got)
	}
	// A new set observed persistently replaces the old one.
	tr.Observe([]int{12})
	tr.Observe([]int{12})
	if got := tr.Observe([]int{12}); !reflect.DeepEqual(got, []int{12}) {
		t.Fatalf("stable not switched: %v", got)
	}
	// Persistent quiet demotes back to nil (LDPRecover, non-knowledge).
	tr.Observe(nil)
	tr.Observe(nil)
	if got := tr.Observe(nil); got != nil {
		t.Fatalf("not demoted after persistent quiet: %v", got)
	}
	if tr.Stable() != nil {
		t.Fatalf("Stable() = %v after demotion", tr.Stable())
	}
}

// TestTrackerStateRoundTrip pins the export/import the persistence layer
// uses: a tracker restored mid-streak must behave, observation for
// observation, exactly like one that was never interrupted.
func TestTrackerStateRoundTrip(t *testing.T) {
	a, err := NewTargetTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe([]int{4, 9})
	a.Observe([]int{9, 4}) // streak 2 of 3: promotion is one epoch away

	st := a.State()
	if st.Streak != 2 || !reflect.DeepEqual(st.Last, []int{4, 9}) || st.Stable != nil {
		t.Fatalf("exported state %+v", st)
	}
	// The export is a deep copy.
	st.Last[0] = 99
	if a.State().Last[0] == 99 {
		t.Fatal("State shares its slices with the tracker")
	}
	st.Last[0] = 4

	b, err := NewTargetTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetState(st); err != nil {
		t.Fatal(err)
	}
	// The import is a deep copy too.
	st.Last[0] = 99
	if b.State().Last[0] == 99 {
		t.Fatal("SetState shares its argument's slices")
	}

	// Lockstep from here: the restored tracker promotes on the very next
	// agreeing observation, exactly like the original.
	for i, obs := range [][]int{{4, 9}, {4, 9}, nil, nil, nil} {
		ga, gb := a.Observe(obs), b.Observe(obs)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("observation %d diverged: %v vs %v", i, ga, gb)
		}
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatalf("final states diverged: %+v vs %+v", a.State(), b.State())
	}
}

// TestTrackerSetStateValidation: hand-built states are normalized or
// rejected the way Observe would have produced them.
func TestTrackerSetStateValidation(t *testing.T) {
	tr, err := NewTargetTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetState(TrackerState{Streak: -1}); err == nil {
		t.Fatal("negative streak accepted")
	}
	// Unsorted, duplicated, empty-but-non-nil inputs canonicalize.
	if err := tr.SetState(TrackerState{
		Last: []int{5, 1, 5}, Streak: 1, Stable: []int{},
	}); err != nil {
		t.Fatal(err)
	}
	if st := tr.State(); !reflect.DeepEqual(st.Last, []int{1, 5}) || st.Stable != nil {
		t.Fatalf("state not canonicalized: %+v", st)
	}
	if tr.Stable() != nil {
		t.Fatal("empty stable set did not normalize to nil")
	}
	// One more agreeing observation completes the restored streak.
	if got := tr.Observe([]int{1, 5}); !reflect.DeepEqual(got, []int{1, 5}) {
		t.Fatalf("restored streak did not promote: %v", got)
	}
}

// TestTargetTrackerStreakResets pins that the consecutive-agreement
// counter restarts whenever the observation changes.
func TestTargetTrackerStreakResets(t *testing.T) {
	tr, err := NewTargetTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe([]int{1})
	tr.Observe([]int{2})
	if got := tr.Observe([]int{1}); got != nil {
		t.Fatalf("alternating observations promoted %v", got)
	}
	tr.Observe([]int{1})
	if got := tr.Stable(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("stable after two consecutive: %v", got)
	}
}
