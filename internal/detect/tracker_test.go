package detect

import (
	"reflect"
	"testing"
)

func TestTargetTrackerValidation(t *testing.T) {
	if _, err := NewTargetTracker(0); err == nil {
		t.Fatal("stableAfter=0 accepted")
	}
}

// TestTargetTrackerPromotion walks the promote/demote hysteresis.
func TestTargetTrackerPromotion(t *testing.T) {
	tr, err := NewTargetTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet epochs: nothing stabilizes.
	for i := 0; i < 5; i++ {
		if got := tr.Observe(nil); got != nil {
			t.Fatalf("quiet epoch %d promoted %v", i, got)
		}
	}
	// Two agreeing observations are not enough...
	tr.Observe([]int{7, 3})
	if got := tr.Observe([]int{3, 7}); got != nil {
		t.Fatalf("promoted after 2 observations: %v", got)
	}
	// ...the third promotes, order- and duplicate-insensitively.
	if got := tr.Observe([]int{7, 3, 3}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable after 3 observations: %v", got)
	}
	// A transient disagreement does not demote.
	if got := tr.Observe([]int{3}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable lost on transient disagreement: %v", got)
	}
	if got := tr.Observe(nil); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("stable lost on single empty observation: %v", got)
	}
	// A new set observed persistently replaces the old one.
	tr.Observe([]int{12})
	tr.Observe([]int{12})
	if got := tr.Observe([]int{12}); !reflect.DeepEqual(got, []int{12}) {
		t.Fatalf("stable not switched: %v", got)
	}
	// Persistent quiet demotes back to nil (LDPRecover, non-knowledge).
	tr.Observe(nil)
	tr.Observe(nil)
	if got := tr.Observe(nil); got != nil {
		t.Fatalf("not demoted after persistent quiet: %v", got)
	}
	if tr.Stable() != nil {
		t.Fatalf("Stable() = %v after demotion", tr.Stable())
	}
}

// TestTargetTrackerStreakResets pins that the consecutive-agreement
// counter restarts whenever the observation changes.
func TestTargetTrackerStreakResets(t *testing.T) {
	tr, err := NewTargetTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe([]int{1})
	tr.Observe([]int{2})
	if got := tr.Observe([]int{1}); got != nil {
		t.Fatalf("alternating observations promoted %v", got)
	}
	tr.Observe([]int{1})
	if got := tr.Stable(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("stable after two consecutive: %v", got)
	}
}
