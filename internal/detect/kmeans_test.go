package detect

import (
	"math"
	"testing"

	"ldprecover/internal/attack"
	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
)

func TestKMeans2Validation(t *testing.T) {
	r := rng.New(1)
	if _, _, err := KMeans2(nil, [][]float64{{1}, {2}}, 10, 2); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, _, err := KMeans2(r, [][]float64{{1}}, 10, 2); err == nil {
		t.Fatal("single vector accepted")
	}
	if _, _, err := KMeans2(r, [][]float64{{1, 2}, {1}}, 10, 2); err == nil {
		t.Fatal("ragged vectors accepted")
	}
}

func TestKMeans2SeparatesClearClusters(t *testing.T) {
	r := rng.New(2)
	var vectors [][]float64
	// Cluster A near (0,0), cluster B near (10,10).
	for i := 0; i < 8; i++ {
		vectors = append(vectors, []float64{r.Float64() * 0.1, r.Float64() * 0.1})
	}
	for i := 0; i < 4; i++ {
		vectors = append(vectors, []float64{10 + r.Float64()*0.1, 10 + r.Float64()*0.1})
	}
	assign, cents, err := KMeans2(r, vectors, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	// All of A together, all of B together.
	for i := 1; i < 8; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("cluster A split: %v", assign)
		}
	}
	for i := 9; i < 12; i++ {
		if assign[i] != assign[8] {
			t.Fatalf("cluster B split: %v", assign)
		}
	}
	if assign[0] == assign[8] {
		t.Fatal("clusters merged")
	}
	// Centroids near the true means.
	a, b := cents[assign[0]], cents[assign[8]]
	if math.Abs(a[0]) > 0.2 || math.Abs(b[0]-10) > 0.2 {
		t.Fatalf("centroids off: %v %v", a, b)
	}
}

func TestKMeans2IdenticalVectors(t *testing.T) {
	r := rng.New(3)
	vectors := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	assign, _, err := KMeans2(r, vectors, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 3 {
		t.Fatalf("assign %v", assign)
	}
}

func TestNewKMeansDefenseValidation(t *testing.T) {
	if _, err := NewKMeansDefense(0); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := NewKMeansDefense(1.2); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	kd := &KMeansDefense{Subsets: 1, SampleRate: 0.5}
	if err := kd.validate(); err == nil {
		t.Fatal("1 subset accepted")
	}
}

func TestKMeansDefenseRunCounts(t *testing.T) {
	const d, eps = 20, 0.5
	const n = int64(50000)
	grr, _ := ldp.NewGRR(d, eps)
	r := rng.New(4)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = n / int64(d)
	}
	counts, err := grr.SimulateGenuineCounts(r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	kd, _ := NewKMeansDefense(0.5)
	res, err := kd.RunCounts(r, counts, n, grr.Params())
	if err != nil {
		t.Fatal(err)
	}
	onSimplexT(t, res.Genuine)
	if res.GenuineSubsets+res.MaliciousSubsets != kd.Subsets {
		t.Fatalf("cluster sizes %d + %d != %d",
			res.GenuineSubsets, res.MaliciousSubsets, kd.Subsets)
	}
	if res.GenuineSubsets < res.MaliciousSubsets {
		t.Fatal("genuine cluster is not the majority")
	}
	// On clean data the genuine estimate must track the uniform truth on
	// average (individual items carry GRR noise amplified by subsetting).
	var mse float64
	for v := 0; v < d; v++ {
		dv := res.Genuine[v] - 1.0/float64(d)
		mse += dv * dv
	}
	mse /= float64(d)
	if mse > 3e-3 {
		t.Fatalf("genuine estimate MSE %v too large on clean data", mse)
	}
}

func TestKMeansDefenseRunCountsValidation(t *testing.T) {
	grr, _ := ldp.NewGRR(5, 0.5)
	kd, _ := NewKMeansDefense(0.5)
	r := rng.New(1)
	if _, err := kd.RunCounts(nil, make([]int64, 5), 10, grr.Params()); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := kd.RunCounts(r, make([]int64, 3), 10, grr.Params()); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := kd.RunCounts(r, make([]int64, 5), 0, grr.Params()); err == nil {
		t.Fatal("zero total accepted")
	}
}

func TestKMeansDefenseRunReportsEndToEnd(t *testing.T) {
	const d, eps = 15, 0.8
	const n, m = int64(4000), int64(200)
	oue, _ := ldp.NewOUE(d, eps)
	r := rng.New(5)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = n / int64(d)
	}
	ipa, err := attack.NewMGAIPA([]int{3}, d)
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := ldp.PerturbAll(oue, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	malicious, err := ipa.CraftReports(r, oue, m)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]ldp.Report{}, genuine...), malicious...)
	kd, _ := NewKMeansDefense(0.5)
	res, err := kd.Run(r, all, oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	onSimplexT(t, res.Genuine)

	// LDPRecover-KM integration: must produce a simplex vector and not
	// blow up the error versus the plain poisoned estimate.
	poisoned, err := ldp.EstimateFrequencies(all, oue.Params())
	if err != nil {
		t.Fatal(err)
	}
	prCore := core.Params{P: oue.Params().P, Q: oue.Params().Q, Domain: d}
	rec, err := RecoverKM(poisoned, res, prCore, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	onSimplexT(t, rec.Frequencies)
}

func TestRecoverKMNil(t *testing.T) {
	if _, err := RecoverKM([]float64{1}, nil, core.Params{P: 0.5, Q: 0.2, Domain: 1}, 0.1); err == nil {
		t.Fatal("nil km result accepted")
	}
}
