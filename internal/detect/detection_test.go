package detect

import (
	"math"
	"testing"

	"ldprecover/internal/attack"
	"ldprecover/internal/ldp"
	"ldprecover/internal/rng"
	"ldprecover/internal/stats"
)

func TestRuleString(t *testing.T) {
	if AnyTarget.String() != "any-target" || AllTargets.String() != "all-targets" {
		t.Fatal("rule names wrong")
	}
	if Rule(9).String() == "" {
		t.Fatal("unknown rule empty")
	}
}

func TestDetectionValidation(t *testing.T) {
	grr, _ := ldp.NewGRR(10, 0.5)
	pr := grr.Params()
	reports := []ldp.Report{ldp.GRRReport(1)}
	if _, err := Detection(reports, nil, pr, AnyTarget); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := Detection(reports, []int{11}, pr, AnyTarget); err == nil {
		t.Fatal("out-of-domain target accepted")
	}
	if _, err := Detection(nil, []int{1}, pr, AnyTarget); err == nil {
		t.Fatal("no reports accepted")
	}
	if _, err := Detection([]ldp.Report{nil}, []int{1}, pr, AnyTarget); err == nil {
		t.Fatal("nil report accepted")
	}
	// All reports are targets -> everything removed -> error.
	if _, err := Detection([]ldp.Report{ldp.GRRReport(1)}, []int{1}, pr, AnyTarget); err == nil {
		t.Fatal("total removal accepted")
	}
}

func TestDetectionRemovesTargetsGRR(t *testing.T) {
	grr, _ := ldp.NewGRR(10, 0.5)
	pr := grr.Params()
	reports := []ldp.Report{
		ldp.GRRReport(0), ldp.GRRReport(1), ldp.GRRReport(2),
		ldp.GRRReport(2), ldp.GRRReport(3), ldp.GRRReport(4),
	}
	res, err := Detection(reports, []int{2}, pr, AnyTarget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Kept != 4 {
		t.Fatalf("removed %d kept %d", res.Removed, res.Kept)
	}
	onSimplexT(t, res.Frequencies)
}

func TestDetectionAllTargetsRuleKeepsPartialMatches(t *testing.T) {
	oue, _ := ldp.NewOUE(10, 0.5)
	pr := oue.Params()
	// Report supporting only target 1 of {1, 2}: kept under AllTargets,
	// removed under AnyTarget.
	partial := ldp.NewBitset(10)
	partial.Set(1)
	full := ldp.NewBitset(10)
	full.Set(1)
	full.Set(2)
	clean := ldp.NewBitset(10)
	clean.Set(5)
	reports := []ldp.Report{
		ldp.OUEReport{Bits: partial},
		ldp.OUEReport{Bits: full},
		ldp.OUEReport{Bits: clean},
	}
	resAll, err := Detection(reports, []int{1, 2}, pr, AllTargets)
	if err != nil {
		t.Fatal(err)
	}
	if resAll.Removed != 1 || resAll.Kept != 2 {
		t.Fatalf("AllTargets removed %d kept %d", resAll.Removed, resAll.Kept)
	}
	resAny, err := Detection(reports, []int{1, 2}, pr, AnyTarget)
	if err != nil {
		t.Fatal(err)
	}
	if resAny.Removed != 2 || resAny.Kept != 1 {
		t.Fatalf("AnyTarget removed %d kept %d", resAny.Removed, resAny.Kept)
	}
}

// TestDetectionCatchesMGAOnOUE: under the strict rule, detection removes
// exactly the malicious reports with high probability (Cao et al.'s
// observation), because honest reports rarely set all target bits.
func TestDetectionCatchesMGAOnOUE(t *testing.T) {
	const d, eps = 40, 0.5
	const n, m = int64(3000), int64(300)
	oue, _ := ldp.NewOUE(d, eps)
	r := rng.New(9)
	targets := []int{1, 5, 9, 13, 17, 21, 25, 29, 33, 37}
	mga, err := attack.NewMGA(targets)
	if err != nil {
		t.Fatal(err)
	}
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = n / int64(d)
	}
	genuine, err := ldp.PerturbAll(oue, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	malicious, err := mga.CraftReports(r, oue, m)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]ldp.Report{}, genuine...), malicious...)
	res, err := Detection(all, targets, oue.Params(), AllTargets)
	if err != nil {
		t.Fatal(err)
	}
	// All m malicious removed; false positives ~ n*q^9*p ~ 0.
	if res.Removed < int(m) || res.Removed > int(m)+10 {
		t.Fatalf("removed %d want ~%d", res.Removed, m)
	}
}

// TestDetectionAnyRuleOverRemoves: the paper's comparator removes genuine
// users holding target items, its documented failure mode.
func TestDetectionAnyRuleOverRemoves(t *testing.T) {
	const d, eps = 20, 0.5
	const n = int64(5000)
	grr, _ := ldp.NewGRR(d, eps)
	r := rng.New(10)
	trueCounts := make([]int64, d)
	for v := range trueCounts {
		trueCounts[v] = n / int64(d)
	}
	genuine, err := ldp.PerturbAll(grr, r, trueCounts)
	if err != nil {
		t.Fatal(err)
	}
	targets := []int{0, 1, 2}
	res, err := Detection(genuine, targets, grr.Params(), AnyTarget)
	if err != nil {
		t.Fatal(err)
	}
	// Honest reports land on a target with probability ~3/d-ish; with no
	// attack at all a sizeable share of genuine users is still removed.
	if res.Removed == 0 {
		t.Fatal("any-target rule removed nobody on genuine data")
	}
	// Estimated target frequencies collapse to zero after projection.
	for _, tt := range targets {
		if res.Frequencies[tt] > 1e-9 {
			t.Fatalf("target %d frequency %v after removal", tt, res.Frequencies[tt])
		}
	}
}

func onSimplexT(t *testing.T, fs []float64) {
	t.Helper()
	var sum float64
	for v, f := range fs {
		if f < -1e-9 {
			t.Fatalf("negative frequency %v at %d", f, v)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("frequencies sum to %v", sum)
	}
	_ = stats.Sum(fs)
}
