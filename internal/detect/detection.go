// Package detect implements the countermeasures the paper compares
// against and integrates with: the Detection baseline (§VI-A.5), the
// k-means subset defense with its LDPRecover-KM integration (§VII-B), and
// the outlier-based target identification that motivates LDPRecover*'s
// partial-knowledge mode (§V-D).
package detect

import (
	"errors"
	"fmt"

	"ldprecover/internal/core"
	"ldprecover/internal/ldp"
)

// Rule selects how Detection decides a report is malicious.
type Rule int

const (
	// AnyTarget removes a report that supports at least one target item —
	// the paper's comparator ("Detection identifies users as malicious if
	// their reported data matches the target items"), whose failure mode
	// is removing genuine users holding target items (§VI-C).
	AnyTarget Rule = iota
	// AllTargets removes a report only when it supports every target item
	// — the stricter rule from Cao et al.'s countermeasure discussion,
	// provided for the detection-rule ablation bench.
	AllTargets
)

// String returns the rule name.
func (r Rule) String() string {
	switch r {
	case AnyTarget:
		return "any-target"
	case AllTargets:
		return "all-targets"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// DetectionResult reports what the Detection baseline kept and estimated.
type DetectionResult struct {
	// Frequencies is the survivors' frequency estimate projected onto the
	// probability simplex (the same public-knowledge post-processing every
	// method gets, so comparisons are like-for-like).
	Frequencies []float64
	// RawFrequencies is the survivors' unprojected unbiased estimate.
	RawFrequencies []float64
	// Removed and Kept count the filtered and surviving reports.
	Removed, Kept int
}

// Detection is the baseline countermeasure: drop every report matching
// the target items under the given rule, then aggregate the survivors.
func Detection(reports []ldp.Report, targets []int, pr ldp.Params, rule Rule) (*DetectionResult, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, errors.New("detect: Detection requires a non-empty target set")
	}
	for _, t := range targets {
		if t < 0 || t >= pr.Domain {
			return nil, fmt.Errorf("detect: target %d outside domain [0,%d)", t, pr.Domain)
		}
	}
	if len(reports) == 0 {
		return nil, errors.New("detect: no reports")
	}

	survivors := make([]ldp.Report, 0, len(reports))
	for i, rep := range reports {
		if rep == nil {
			return nil, fmt.Errorf("detect: nil report at index %d", i)
		}
		matched := 0
		for _, t := range targets {
			if rep.Supports(t) {
				matched++
				if rule == AnyTarget {
					break
				}
			}
		}
		remove := (rule == AnyTarget && matched > 0) ||
			(rule == AllTargets && matched == len(targets))
		if !remove {
			survivors = append(survivors, rep)
		}
	}
	if len(survivors) == 0 {
		return nil, errors.New("detect: detection removed every report")
	}
	raw, err := ldp.EstimateFrequencies(survivors, pr)
	if err != nil {
		return nil, err
	}
	projected, err := core.RefineKKT(raw)
	if err != nil {
		return nil, err
	}
	return &DetectionResult{
		Frequencies:    projected,
		RawFrequencies: raw,
		Removed:        len(reports) - len(survivors),
		Kept:           len(survivors),
	}, nil
}
