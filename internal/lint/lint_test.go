package lint

import (
	"testing"

	"ldprecover/internal/lint/linttest"
)

func TestCodecbounds(t *testing.T) {
	linttest.Run(t, "testdata", Codecbounds, "codecbounds", "codecbounds/nocrc")
}

func TestNoalias(t *testing.T) {
	linttest.Run(t, "testdata", Noalias, "noalias")
}

func TestExactfold(t *testing.T) {
	linttest.Run(t, "testdata", Exactfold,
		"exactfold/ldp", "exactfold/stream", "exactfold/persist")
}

func TestFailstop(t *testing.T) {
	linttest.Run(t, "testdata", Failstop, "failstop")
}

func TestNowallclock(t *testing.T) {
	linttest.Run(t, "testdata", Nowallclock,
		"nowallclock", "ldprecover/examples/demo")
}
