package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"ldprecover/internal/lint/analysis"
)

// Codecbounds enforces the wire-codec decode discipline (DESIGN.md §10):
// inside every Unmarshal*/Validate*Frame function, a length that was
// read off the wire must be bounds-checked before it drives a make, and
// the CRC-carrying frame families must verify their CRC-32C before any
// wire-derived allocation. The convention dates to the PR 5 tally codec
// ("bounds-checked before allocation") and exists so a corrupt or
// hostile frame can neither balloon memory nor smuggle unverified bytes
// into fields.
var Codecbounds = &analysis.Analyzer{
	Name: "codecbounds",
	Doc: "wire codecs must bounds-check wire-derived lengths before allocating " +
		"and verify CRC-32C before trusting frame fields",
	Run: runCodecbounds,
}

// codecFuncRE scopes the analyzer: the codec family's decode entry
// points, by naming convention.
var codecFuncRE = regexp.MustCompile(`^Unmarshal|^Validate.*Frame$`)

// crcRequiredRE names the decode functions whose frame format carries a
// CRC-32C trailer (the "LT"/"LP"/"LA" family and WAL-derived frames);
// these must call hash/crc32 at all. Every other scoped function is
// only held to check-order: if it verifies a CRC, no wire-derived
// allocation may precede the verification.
var crcRequiredRE = regexp.MustCompile(`^Unmarshal(Tally|Partial|Announce)$`)

func runCodecbounds(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !codecFuncRE.MatchString(fd.Name.Name) {
				continue
			}
			checkCodecFunc(pass, fd)
		}
	}
	return nil
}

// wireMake is one make() whose size mentions wire-derived lengths.
type wireMake struct {
	pos    token.Pos
	vars   []types.Object // wire-derived variables mentioned in size args
	inline bool           // a binary read appears directly in a size arg
}

func checkCodecFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]token.Pos) // wire-derived var → first taint
	checked := make(map[types.Object]token.Pos) // wire-derived var → first bounds check
	var makes []wireMake
	var crcPos token.Pos
	delegated := false // calls another CRC-required decoder
	ownObj := info.Defs[fd.Name]

	// exprWire reports whether expr derives from wire bytes: it calls
	// an encoding/binary read, or mentions an already-tainted variable.
	exprWire := func(expr ast.Expr) bool {
		wire := false
		ast.Inspect(expr, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isBinaryRead(info, n) {
					wire = true
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil {
					if _, ok := tainted[obj]; ok {
						wire = true
					}
				}
			}
			return !wire
		})
		return wire
	}
	// taintTargets marks assignment targets whose RHS derives from the
	// wire (and clears re-assigned ones that no longer do).
	taintTargets := func(lhs, rhs []ast.Expr) {
		if len(lhs) != len(rhs) {
			return // tuple assignment from a call: nothing here reads wire ints
		}
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if exprWire(rhs[i]) {
				if _, seen := tainted[obj]; !seen {
					tainted[obj] = id.Pos()
				}
			} else {
				delete(tainted, obj)
				delete(checked, obj)
			}
		}
	}
	markCompared := func(expr ast.Expr) {
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isWire := tainted[obj]; isWire {
						if _, done := checked[obj]; !done {
							checked[obj] = id.Pos()
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			taintTargets(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			taintTargets(lhs, n.Values)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ, token.EQL:
				markCompared(n)
			}
		case *ast.SwitchStmt:
			// switch n { case ...: } compares the tag against each case.
			if n.Tag != nil {
				markCompared(n.Tag)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "make" && len(n.Args) > 1 {
					m := wireMake{pos: n.Pos()}
					for _, arg := range n.Args[1:] {
						ast.Inspect(arg, func(an ast.Node) bool {
							switch an := an.(type) {
							case *ast.CallExpr:
								if isBinaryRead(info, an) {
									m.inline = true
								}
							case *ast.Ident:
								if obj := info.Uses[an]; obj != nil {
									if _, isWire := tainted[obj]; isWire {
										m.vars = append(m.vars, obj)
									}
								}
							}
							return true
						})
					}
					if m.inline || len(m.vars) > 0 {
						makes = append(makes, m)
					}
				}
			}
			if crcPos == token.NoPos && isCRCCall(info, n) {
				crcPos = n.Pos()
			}
			// A wrapper that hands the frame to another CRC-required
			// decoder inherits that decoder's verification.
			if f := callee(info, n); f != nil && f != ownObj && crcRequiredRE.MatchString(f.Name()) {
				delegated = true
			}
		}
		return true
	})

	for _, m := range makes {
		if m.inline {
			pass.Reportf(m.pos,
				"%s allocates from a wire-derived length read inline; bind and bounds-check it first",
				fd.Name.Name)
			continue
		}
		for _, v := range m.vars {
			cp, ok := checked[v]
			if !ok || cp > m.pos {
				pass.Reportf(m.pos,
					"%s allocates from wire-derived length %q without a prior bounds check",
					fd.Name.Name, v.Name())
			}
		}
	}
	if crcRequiredRE.MatchString(fd.Name.Name) && crcPos == token.NoPos && !delegated {
		pass.Reportf(fd.Pos(),
			"%s decodes a CRC-carrying frame but never verifies a CRC-32C (hash/crc32)",
			fd.Name.Name)
	}
	if crcPos != token.NoPos {
		for _, m := range makes {
			if m.pos < crcPos {
				pass.Reportf(m.pos,
					"%s allocates from a wire-derived length before the CRC-32C check; verify the frame first",
					fd.Name.Name)
			}
		}
	}
}

// isBinaryRead reports whether call reads an integer off a byte slice
// via encoding/binary (LittleEndian/BigEndian Uint*/Varint helpers).
func isBinaryRead(info *types.Info, call *ast.CallExpr) bool {
	f := callee(info, call)
	return isPkgFunc(f, "encoding/binary",
		"Uint16", "Uint32", "Uint64", "Varint", "Uvarint", "ReadVarint", "ReadUvarint")
}

// isCRCCall reports whether call computes or folds a CRC via
// hash/crc32.
func isCRCCall(info *types.Info, call *ast.CallExpr) bool {
	f := callee(info, call)
	return isPkgFunc(f, "hash/crc32", "Checksum", "ChecksumIEEE", "Update")
}
